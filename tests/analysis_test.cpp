// Tests for p2g-lint (src/analysis): the write-once slice/age overlap
// analysis, undefined-fetch and constant-index checks, zero-net-aging
// cycle detection, unused/unreachable warnings, Program::validate(), and
// the text/JSON renderings.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/lint.h"
#include "common/error.h"
#include "core/program.h"
#include "media/yuv.h"
#include "workloads/kmeans.h"
#include "workloads/mjpeg_workload.h"
#include "workloads/motion.h"
#include "workloads/mul2plus5.h"

namespace p2g::analysis {
namespace {

// Lint never executes kernel bodies; give every kernel a no-op one so the
// builder accepts the program.
KernelBuilder& nop_kernel(ProgramBuilder& pb, const std::string& name) {
  return pb.kernel(name).body([](KernelContext&) {});
}

// Two kernels writing the same slice of the same field at the same ages.
Program conflicting_writers() {
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("dst", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"writer_a")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x"));
  nop_kernel(pb,"writer_b")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x"));
  return pb.build();
}

TEST(Lint, OverlappingStoresAcrossKernels) {
  const LintReport report = lint(conflicting_writers());
  ASSERT_EQ(report.count(kWriteConflict), 1u) << report.to_text();
  const Diagnostic* d = report.find(kWriteConflict);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->primary.kind, Anchor::Kind::kStore);
  EXPECT_EQ(d->primary.name, "writer_a");
  EXPECT_EQ(d->secondary.name, "writer_b");
  EXPECT_TRUE(report.has_errors());
}

TEST(Lint, SelfConflictWhenStoreIgnoresAnIndexVariable) {
  // Every (x, y) instance stores dst[x] — instances differing only in y
  // collide.
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 2);
  pb.field("dst", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"collapse")
      .index("x")
      .index("y")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x").var("y"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kWriteConflict), 1u) << report.to_text();
  const Diagnostic* d = report.find(kWriteConflict);
  EXPECT_EQ(d->primary.name, "collapse");
  EXPECT_NE(d->message.find("'y'"), std::string::npos) << d->message;
}

TEST(Lint, ConstInitAndAgedRelativeStoresAreDisjoint) {
  // The canonical seed pattern: init writes age 0, the aged producer
  // writes ages >= 1. No overlap — must not be flagged.
  ProgramBuilder pb;
  pb.field("data", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"init").run_once().store("out", "data", AgeExpr::constant(0),
                                     Slice());
  nop_kernel(pb,"advance")
      .index("x")
      .fetch("in", "data", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "data", AgeExpr::relative(1), Slice().var("x"));
  const LintReport report = lint(pb.build());
  EXPECT_EQ(report.count(kWriteConflict), 0u) << report.to_text();
}

TEST(Lint, DistinctConstantColumnsAreDisjoint) {
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("dst", nd::ElementType::kInt32, 2);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"left")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x").at(0));
  nop_kernel(pb,"right")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x").at(1));
  const LintReport report = lint(pb.build());
  EXPECT_EQ(report.count(kWriteConflict), 0u) << report.to_text();
}

TEST(Lint, FetchOfNeverStoredField) {
  ProgramBuilder pb;
  pb.field("ghost", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"consumer")
      .index("x")
      .fetch("in", "ghost", AgeExpr::relative(0), Slice().var("x"))
      .store("res", "out", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kUndefinedFetch), 1u) << report.to_text();
  const Diagnostic* d = report.find(kUndefinedFetch);
  EXPECT_EQ(d->primary.kind, Anchor::Kind::kFetch);
  EXPECT_EQ(d->primary.name, "consumer");
  EXPECT_EQ(d->secondary.name, "ghost");
  // Root cause reported once: no extra W006 for the doomed consumer.
  EXPECT_EQ(report.count(kUnreachableKernel), 0u) << report.to_text();
}

TEST(Lint, ZeroNetAgingCycle) {
  ProgramBuilder pb;
  pb.field("p", nd::ElementType::kInt32, 1);
  pb.field("q", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"forward")
      .index("x")
      .fetch("in", "q", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "p", AgeExpr::relative(0), Slice().var("x"));
  nop_kernel(pb,"backward")
      .index("x")
      .fetch("in", "p", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "q", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kZeroAgingCycle), 1u) << report.to_text();
  const Diagnostic* d = report.find(kZeroAgingCycle);
  EXPECT_NE(d->message.find("forward"), std::string::npos);
  EXPECT_NE(d->message.find("backward"), std::string::npos);
}

TEST(Lint, MixedOffsetsWithNegativeNetAreCaught) {
  // +1 forward, -2 backward: net aging -1 per turn — still a deadlock,
  // and invisible to a plain zero-offset-edge cycle check.
  ProgramBuilder pb;
  pb.field("p", nd::ElementType::kInt32, 1);
  pb.field("q", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"forward")
      .index("x")
      .fetch("in", "q", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "p", AgeExpr::relative(1), Slice().var("x"));
  nop_kernel(pb,"backward")
      .index("x")
      .fetch("in", "p", AgeExpr::relative(2), Slice().var("x"))
      .store("out", "q", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kZeroAgingCycle), 1u) << report.to_text();
  EXPECT_NE(report.find(kZeroAgingCycle)->message.find("net aging -1"),
            std::string::npos)
      << report.find(kZeroAgingCycle)->message;
}

TEST(Lint, AgingCycleIsLegal) {
  workloads::Mul2Plus5 workload;
  const LintReport report = lint(workload.build());
  EXPECT_EQ(report.count(kZeroAgingCycle), 0u) << report.to_text();
}

TEST(Lint, ConstantAgeNeverProduced) {
  ProgramBuilder pb;
  pb.field("data", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"init").run_once().store("out", "data", AgeExpr::constant(0),
                                     Slice());
  nop_kernel(pb,"reader")
      .index("x")
      .fetch("now", "data", AgeExpr::relative(0), Slice().var("x"))
      .fetch("later", "data", AgeExpr::constant(7), Slice().var("x"))
      .store("res", "out", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  ASSERT_GE(report.count(kBadConstIndex), 1u) << report.to_text();
  const Diagnostic* d = report.find(kBadConstIndex);
  EXPECT_EQ(d->primary.name, "reader");
  EXPECT_NE(d->message.find("age 7"), std::string::npos) << d->message;
}

TEST(Lint, ConstantIndexNeverWritten) {
  // Producers only ever write rows 0 and 1; fetching row 5 can never be
  // satisfied.
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("grid", nd::ElementType::kInt32, 2);
  pb.field("out", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"fill")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("row0", "grid", AgeExpr::relative(0), Slice().at(0).var("x"))
      .store("row1", "grid", AgeExpr::relative(0), Slice().at(1).var("x"));
  nop_kernel(pb,"reader")
      .index("x")
      .fetch("row", "grid", AgeExpr::relative(0), Slice().at(5).var("x"))
      .store("res", "out", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kBadConstIndex), 1u) << report.to_text();
  const Diagnostic* d = report.find(kBadConstIndex);
  EXPECT_EQ(d->primary.name, "reader");
  EXPECT_NE(d->message.find("index 5"), std::string::npos) << d->message;
}

TEST(Lint, NegativeConstantsAreErrors) {
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("dst", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"bad")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .fetch("past", "src", AgeExpr::constant(-1), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().at(-3));
  const LintReport report = lint(pb.build());
  // One for the fetch age -1, one for the store index -3.
  EXPECT_EQ(report.count(kBadConstIndex), 2u) << report.to_text();
  EXPECT_TRUE(report.has_errors());
}

TEST(Lint, UnusedFieldWarning) {
  ProgramBuilder pb;
  pb.field("data", nd::ElementType::kInt32, 1);
  pb.field("orphan", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "data", AgeExpr::relative(0), Slice());
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kUnusedField), 1u) << report.to_text();
  EXPECT_EQ(report.find(kUnusedField)->severity, Severity::kWarning);
  EXPECT_EQ(report.find(kUnusedField)->primary.name, "orphan");
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(report.warning_count(), 1u);

  LintOptions quiet;
  quiet.warn_unused = false;
  EXPECT_TRUE(lint(pb.build(), quiet).empty());
}

TEST(Lint, UnreachableKernelDownstreamOfUndefinedFetch) {
  // "blocked" carries the W002 root cause; "downstream" only ever fetches
  // what "blocked" would have produced, so it gets the W006 warning.
  ProgramBuilder pb;
  pb.field("ghost", nd::ElementType::kInt32, 1);
  pb.field("mid", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"blocked")
      .index("x")
      .fetch("in", "ghost", AgeExpr::relative(0), Slice().var("x"))
      .store("res", "mid", AgeExpr::relative(0), Slice().var("x"));
  nop_kernel(pb,"downstream")
      .index("x")
      .fetch("in", "mid", AgeExpr::relative(0), Slice().var("x"))
      .store("res", "out", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  EXPECT_EQ(report.count(kUndefinedFetch), 1u) << report.to_text();
  ASSERT_EQ(report.count(kUnreachableKernel), 1u) << report.to_text();
  const Diagnostic* d = report.find(kUnreachableKernel);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->primary.name, "downstream");
}

// W007 scaffold: `acc` stores a new age of `history` every turn; the
// consumer's fetch age is the variable under test.
Program growth_program(AgeExpr probe_age) {
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("history", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"acc")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("res", "history", AgeExpr::relative(0), Slice().var("x"));
  // The tick fetch bounds probe's age domain (an aged kernel cannot fetch
  // only constant ages); the history fetch age is what W007 looks at.
  nop_kernel(pb,"probe")
      .fetch("tick", "src", AgeExpr::relative(0), Slice())
      .fetch("in", "history", probe_age, Slice())
      .store("res", "out", AgeExpr::relative(0), Slice());
  return pb.build();
}

TEST(Lint, UnboundedGrowthWhenAllConsumersPinConstantAges) {
  const LintReport report = lint(growth_program(AgeExpr::constant(0)));
  ASSERT_EQ(report.count(kUnboundedGrowth), 1u) << report.to_text();
  const Diagnostic* d = report.find(kUnboundedGrowth);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->primary.kind, Anchor::Kind::kStore);
  EXPECT_EQ(d->primary.name, "acc");
  EXPECT_EQ(d->secondary.name, "history");
  EXPECT_NE(d->message.find("without bound"), std::string::npos) << d->message;
  EXPECT_FALSE(report.has_errors());
}

TEST(Lint, RelativeConsumerDrainsGrowthCleanly) {
  const LintReport report = lint(growth_program(AgeExpr::relative(0)));
  EXPECT_EQ(report.count(kUnboundedGrowth), 0u) << report.to_text();
}

TEST(Lint, WriteOnlyTerminalFieldIsNotUnboundedGrowth) {
  // The smoothing.p2g `averages` pattern: stored at a relative age, zero
  // consumers — drained by the host after the run, not a leak.
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("sink", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb,"emit")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("res", "sink", AgeExpr::relative(0), Slice().var("x"));
  const LintReport report = lint(pb.build());
  EXPECT_EQ(report.count(kUnboundedGrowth), 0u) << report.to_text();
}

TEST(Lint, ConstantAgeStoreIsNotUnboundedGrowth) {
  // A constant-age store writes once, not once per turn: a constant-age
  // consumer of it is the natural pairing (kmeans' datapoints(0)).
  ProgramBuilder pb;
  pb.field("snapshot", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  nop_kernel(pb,"init").run_once().store("out", "snapshot",
                                         AgeExpr::constant(0), Slice());
  nop_kernel(pb,"probe")
      .run_once()
      .fetch("in", "snapshot", AgeExpr::constant(0), Slice())
      .store("res", "out", AgeExpr::constant(0), Slice());
  const LintReport report = lint(pb.build());
  EXPECT_EQ(report.count(kUnboundedGrowth), 0u) << report.to_text();
}

TEST(Lint, WorkloadProgramsHaveZeroFindings) {
  // Acceptance: zero false positives over every shipped workload.
  EXPECT_TRUE(lint(workloads::Mul2Plus5{}.build()).empty());
  EXPECT_TRUE(lint(workloads::KmeansWorkload{}.build()).empty());
  const auto video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(64, 48, 3));
  workloads::MjpegWorkload mjpeg;
  mjpeg.video = video;
  EXPECT_TRUE(lint(mjpeg.build()).empty());
  workloads::MotionWorkload motion;
  motion.video = video;
  EXPECT_TRUE(lint(motion.build()).empty());
}

TEST(Validate, ThrowsOnErrorsAndReturnsReportOtherwise) {
  const Program broken = conflicting_writers();
  try {
    broken.validate();
    FAIL() << "validate() must throw on a W001 program";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSema);
    EXPECT_NE(std::string(e.what()).find("P2G-W001"), std::string::npos);
  }
  const LintReport report = broken.validate(/*throw_on_error=*/false);
  EXPECT_TRUE(report.has_errors());

  workloads::Mul2Plus5 clean;
  EXPECT_TRUE(clean.build().validate().empty());
}

TEST(Report, TextAndJsonRenderings) {
  const LintReport report = lint(conflicting_writers());
  const std::string text = report.to_text();
  EXPECT_NE(text.find("P2G-W001"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"code\":\"P2G-W001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"secondary\""), std::string::npos);

  EXPECT_EQ(LintReport{}.to_text(), "");
}

}  // namespace
}  // namespace p2g::analysis
