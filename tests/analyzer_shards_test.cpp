// Bit-exactness and bookkeeping tests for the sharded dependency analyzer
// (RunOptions::analyzer_shards). The sharded analyzer must dispatch the
// exact same instance set as the paper's single analyzer thread for any
// shard count: dispatch conditions are monotone (write-once data only
// accumulates, seals are final) and every state change is announced to the
// interested shards, so the least fixpoint — the dispatched set — is
// independent of event interleaving across shards.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/dependency.h"
#include "core/runtime.h"
#include "media/yuv.h"
#include "workloads/kmeans.h"
#include "workloads/mjpeg_workload.h"
#include "workloads/mul2plus5.h"

namespace p2g {
namespace {

/// `width` source -> stage -> sink chains. Fields are declared grouped
/// (all a's, then all b's), so with width = 5 and 4 shards every chain's
/// b field lands on a different shard than its a field — guaranteed
/// cross-shard seal/scan traffic. The serial sink appends one row per age
/// to its chain's output vector, which both captures the data for
/// bit-exact comparison and exercises serial gating across shards.
struct ChainedWide {
  int width = 5;
  int elements = 8;
  int ages = 12;
  /// outputs[w] = rows appended by sink_w, one per age, in age order.
  std::shared_ptr<std::vector<std::vector<std::vector<int32_t>>>> outputs =
      std::make_shared<std::vector<std::vector<std::vector<int32_t>>>>();

  Program build() const {
    outputs->assign(static_cast<size_t>(width), {});
    ProgramBuilder pb;
    for (int w = 0; w < width; ++w) {
      pb.field("a" + std::to_string(w), nd::ElementType::kInt32, 1);
    }
    for (int w = 0; w < width; ++w) {
      pb.field("b" + std::to_string(w), nd::ElementType::kInt32, 1);
    }
    for (int w = 0; w < width; ++w) {
      const std::string suffix = std::to_string(w);
      const int n = elements;
      const int last = ages;
      pb.kernel("source" + suffix)
          .store("v", "a" + suffix, AgeExpr::relative(0), Slice::whole())
          .body([n, last, w](KernelContext& ctx) {
            if (ctx.age() >= last) return;
            nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({n}));
            for (int i = 0; i < n; ++i) {
              v.data<int32_t>()[i] = static_cast<int32_t>(
                  w * 1000 + static_cast<int>(ctx.age()) * 100 + i);
            }
            ctx.store_array("v", std::move(v));
            ctx.continue_next_age();
          });
      pb.kernel("stage" + suffix)
          .index("x")
          .fetch("in", "a" + suffix, AgeExpr::relative(0), Slice().var("x"))
          .store("out", "b" + suffix, AgeExpr::relative(0), Slice().var("x"))
          .body([](KernelContext& ctx) {
            ctx.store_scalar<int32_t>("out",
                                      ctx.fetch_scalar<int32_t>("in") * 2);
          });
      auto outputs_ref = outputs;
      pb.kernel("sink" + suffix)
          .serial()
          .fetch("in", "b" + suffix, AgeExpr::relative(0), Slice::whole())
          .body([outputs_ref, n, w](KernelContext& ctx) {
            const nd::AnyBuffer& view = ctx.fetch_array("in");
            std::vector<int32_t> row(view.data<int32_t>(),
                                     view.data<int32_t>() + n);
            (*outputs_ref)[static_cast<size_t>(w)].push_back(std::move(row));
          });
    }
    return pb.build();
  }
};

struct ChainedWideResult {
  std::vector<std::vector<std::vector<int32_t>>> outputs;
  std::vector<int64_t> instances;  ///< per kernel name, fixed order
  int64_t cross_shard_messages = 0;
};

ChainedWideResult run_chained_wide(int shards) {
  ChainedWide program;
  RunOptions opts;
  opts.workers = 2;
  opts.analyzer_shards = shards;
  Runtime rt(program.build(), opts);
  const RunReport report = rt.run();

  ChainedWideResult result;
  result.outputs = *program.outputs;
  for (int w = 0; w < program.width; ++w) {
    for (const char* base : {"source", "stage", "sink"}) {
      const auto* stats =
          report.instrumentation.find(base + std::to_string(w));
      result.instances.push_back(stats != nullptr ? stats->instances : -1);
    }
  }
  result.cross_shard_messages = rt.analyzer().cross_shard_messages();
  return result;
}

TEST(AnalyzerShards, ChainedWideBitExactAcrossShardCounts) {
  const ChainedWideResult one = run_chained_wide(1);
  // Sanity: every age of every chain was captured, in age order.
  ASSERT_EQ(one.outputs.size(), 5u);
  for (int w = 0; w < 5; ++w) {
    ASSERT_EQ(one.outputs[w].size(), 12u) << "chain " << w;
    EXPECT_EQ(one.outputs[w][3][2], (w * 1000 + 302) * 2) << "chain " << w;
  }
  // One shard must not emit cross-shard messages (it is the paper's
  // single analyzer thread, bit for bit).
  EXPECT_EQ(one.cross_shard_messages, 0);

  for (const int shards : {2, 4}) {
    const ChainedWideResult many = run_chained_wide(shards);
    EXPECT_EQ(many.outputs, one.outputs) << shards << " shards";
    EXPECT_EQ(many.instances, one.instances) << shards << " shards";
  }
  // Width 5 over 4 shards puts each chain's b field on a different shard
  // than its a field, so the run must have used the message protocol.
  EXPECT_GT(run_chained_wide(4).cross_shard_messages, 0);
}

TEST(AnalyzerShards, MjpegBitExactAcrossShardCounts) {
  const auto video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(64, 48, 5));

  auto encode = [&video](int shards) {
    workloads::MjpegWorkload workload;
    workload.video = video;
    RunOptions opts;
    opts.workers = 2;
    opts.analyzer_shards = shards;
    Runtime rt(workload.build(), opts);
    rt.run();
    return workload.output->stream();
  };

  const auto baseline = encode(1);
  ASSERT_FALSE(baseline.empty());
  for (const int shards : {2, 4}) {
    EXPECT_EQ(encode(shards), baseline) << shards << " shards";
  }
}

TEST(AnalyzerShards, KmeansMatchesAcrossShardCounts) {
  workloads::KmeansConfig config;
  config.n = 60;
  config.k = 5;
  config.iterations = 4;

  auto cluster = [&config](int shards) {
    workloads::KmeansWorkload workload;
    workload.config = config;
    RunOptions opts;
    opts.workers = 2;
    opts.analyzer_shards = shards;
    workload.apply_schedule(opts);
    Runtime rt(workload.build(), opts);
    rt.run();
    return *workload.snapshots;
  };

  const auto baseline = cluster(1);
  ASSERT_FALSE(baseline.empty());
  // The assign kernel fetches datapoints at constant age 0 from every
  // iteration — the per-(field, age) retry index must keep re-driving
  // those const-age candidates on every shard count.
  EXPECT_EQ(cluster(4), baseline);
}

TEST(AnalyzerShards, SerialOrderingPreservedAcrossShards) {
  auto run = [](int shards) {
    workloads::Mul2Plus5 workload;
    RunOptions opts;
    opts.workers = 4;
    opts.max_age = 6;
    opts.analyzer_shards = shards;
    Runtime rt(workload.build(), opts);
    rt.run();
    return *workload.printed;
  };

  const auto baseline = run(1);
  ASSERT_FALSE(baseline.empty());
  // The serial print kernel must observe ages in order even when its gate
  // advances via cross-shard done events.
  EXPECT_EQ(run(4), baseline);
}

TEST(AnalyzerShards, StreamingRunRetiresAnalyzerState) {
  ChainedWide program;
  program.width = 2;
  program.elements = 16;
  program.ages = 40;
  RunOptions opts;
  opts.workers = 2;
  opts.analyzer_shards = 2;
  Runtime rt(program.build(), opts);
  rt.run();

  // Streaming memory: sealed ages drop their bookkeeping and fully
  // dispatched ages retire their dedup coordinates, so a long run ends
  // with nothing accumulated.
  const auto stats = rt.analyzer().memory_stats();
  EXPECT_EQ(stats.fa_states, 0u);
  EXPECT_EQ(stats.open_ages, 0u);
  EXPECT_EQ(stats.open_coords, 0u);
  EXPECT_EQ(stats.retry_entries, 0u);
}

TEST(AnalyzerShards, PerShardCountersSumToTotals) {
  ChainedWide program;
  RunOptions opts;
  opts.workers = 2;
  opts.analyzer_shards = 2;
  opts.metrics.enabled = true;
  Runtime rt(program.build(), opts);
  const RunReport report = rt.run();

  const auto* total = report.metrics.find_counter("analyzer_events_total");
  const auto* shard0 =
      report.metrics.find_counter("analyzer_events_total:shard0");
  const auto* shard1 =
      report.metrics.find_counter("analyzer_events_total:shard1");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(shard0, nullptr);
  ASSERT_NE(shard1, nullptr);
  EXPECT_GT(total->value, 0);
  EXPECT_EQ(shard0->value + shard1->value, total->value);

  const auto* xshard0 =
      report.metrics.find_counter("analyzer_xshard_msgs_total:shard0");
  const auto* xshard1 =
      report.metrics.find_counter("analyzer_xshard_msgs_total:shard1");
  ASSERT_NE(xshard0, nullptr);
  ASSERT_NE(xshard1, nullptr);
  EXPECT_EQ(xshard0->value + xshard1->value,
            rt.analyzer().cross_shard_messages());
}

TEST(AnalyzerShards, OvershardingIsSafe) {
  // More shards than fields: most shards idle, result still identical.
  const ChainedWideResult one = run_chained_wide(1);
  ChainedWide program;
  RunOptions opts;
  opts.workers = 2;
  opts.analyzer_shards = 64;
  Runtime rt(program.build(), opts);
  rt.run();
  EXPECT_EQ(*program.outputs, one.outputs);
}

}  // namespace
}  // namespace p2g
