// Unit tests for Program building and validation (the C++-side "sema").
#include <gtest/gtest.h>

#include "core/program.h"

namespace p2g {
namespace {

void noop_body(KernelContext&) {}

TEST(ProgramBuilder, BuildsFieldAndKernelIds) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kFloat64, 2);
  pb.kernel("src").body(noop_body);  // source: age, no fetches
  pb.kernel("k")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "a", AgeExpr::relative(1), Slice().var("x"))
      .body(noop_body);
  Program p = pb.build();

  EXPECT_EQ(p.fields().size(), 2u);
  EXPECT_EQ(p.kernels().size(), 2u);
  EXPECT_EQ(p.find_field("b"), 1);
  EXPECT_EQ(p.find_field("zzz"), kInvalidField);
  EXPECT_EQ(p.find_kernel("k"), 1);
  EXPECT_TRUE(p.kernel(0).is_source());
  EXPECT_FALSE(p.kernel(1).is_source());

  ASSERT_EQ(p.consumers_of(0).size(), 1u);
  EXPECT_EQ(p.consumers_of(0)[0].kernel, 1);
  ASSERT_EQ(p.producers_of(0).size(), 1u);
  EXPECT_EQ(p.producers_of(0)[0].kernel, 1);
  EXPECT_TRUE(p.consumers_of(1).empty());
}

TEST(ProgramBuilder, DuplicateFieldNameThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  EXPECT_THROW(pb.field("a", nd::ElementType::kInt32, 1), Error);
}

TEST(ProgramBuilder, DuplicateKernelNameThrows) {
  ProgramBuilder pb;
  pb.kernel("k").body(noop_body);
  EXPECT_THROW(pb.kernel("k"), Error);
}

TEST(ProgramBuilder, UnknownFieldThrows) {
  ProgramBuilder pb;
  pb.kernel("k")
      .index("x")
      .fetch("in", "nope", AgeExpr::relative(0), Slice().var("x"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, MissingBodyThrows) {
  ProgramBuilder pb;
  pb.kernel("k");
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, SliceRankMismatchThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 2);
  pb.kernel("k")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))  // rank 1
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, UndeclaredSliceVariableThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("y"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, UnboundIndexVariableThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().all())
      .store("out", "a", AgeExpr::relative(1), Slice().var("x"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, RunOnceWithRelativeAgeThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("init")
      .run_once()
      .store("out", "a", AgeExpr::relative(0), Slice::whole())
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, RunOnceWithIndexVarsThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("init").run_once().index("x").body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, SourceWithIndexVarsThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("src")
      .index("x")
      .store("out", "a", AgeExpr::relative(0), Slice().var("x"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, SerialWithIndexVarsThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .serial()
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, AgedKernelNeedsRelativeFetch) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .fetch("in", "a", AgeExpr::constant(0), Slice::whole())
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, AgedKernelConstStoreThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "b", AgeExpr::constant(0), Slice().var("x"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, DuplicateSlotNamesThrow) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .body(noop_body);
  EXPECT_THROW(pb.build(), Error);
}

TEST(ProgramBuilder, RunOnceAggregatorWithConstFetchIsValid) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("agg")
      .run_once()
      .fetch("in", "a", AgeExpr::constant(3), Slice::whole())
      .body(noop_body);
  EXPECT_NO_THROW(pb.build());
}

TEST(KernelDef, SlotAndBindingLookups) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 2);
  pb.kernel("k")
      .index("i")
      .index("j")
      .fetch("in", "a", AgeExpr::relative(0),
             Slice().var("i").var("j"))
      .store("out", "a", AgeExpr::relative(1),
             Slice().var("i").var("j"))
      .body(noop_body);
  Program p = pb.build();
  const KernelDef& k = p.kernel(0);
  EXPECT_EQ(k.fetch_slot("in"), 0);
  EXPECT_EQ(k.fetch_slot("nope"), -1);
  EXPECT_EQ(k.store_slot("out"), 0);
  const auto b0 = k.binding_of_var(0);
  ASSERT_TRUE(b0.has_value());
  EXPECT_EQ(b0->fetch_index, 0u);
  EXPECT_EQ(b0->dim, 0u);
  const auto b1 = k.binding_of_var(1);
  ASSERT_TRUE(b1.has_value());
  EXPECT_EQ(b1->dim, 1u);
}

TEST(AgeExprTest, ResolveAndMatch) {
  EXPECT_EQ(AgeExpr::relative(2).resolve(3), 5);
  EXPECT_EQ(AgeExpr::relative(-1).resolve(0), -1);
  EXPECT_EQ(AgeExpr::constant(7).resolve(100), 7);
  EXPECT_TRUE(AgeExpr::constant(7).matches_concrete(7));
  EXPECT_FALSE(AgeExpr::constant(7).matches_concrete(8));
  EXPECT_TRUE(AgeExpr::relative(1).matches_concrete(42));
}

}  // namespace
}  // namespace p2g
