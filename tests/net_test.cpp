// Tests for the out-of-process transport and the shared-memory data plane
// (src/net): SPSC ring semantics, arena allocation and cross-mapping
// aliasing, the framed wire format, the socket hub/node transports (with
// MessageBus-parity dead-letter accounting), ChaosBus decorating a real
// socket transport, and — behind P2G_NODE_BINARY — real multi-process
// clusters compared bit-exactly against the in-process Master.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "dist/master.h"
#include "ft/chaos_bus.h"
#include "ft/reliable.h"
#include "net/cluster.h"
#include "net/shm.h"
#include "net/socket.h"
#include "net/wire.h"
#include "workloads/mul2plus5.h"

namespace p2g::net {
namespace {

using dist::Message;
using dist::MessageType;

// --- ShmRing ----------------------------------------------------------------

ShmSlot make_slot(int64_t age) {
  ShmSlot slot{};
  slot.field = 3;
  slot.age = age;
  slot.offset = static_cast<uint64_t>(age) * 64;
  slot.bytes = 48;
  return slot;
}

TEST(ShmRing, ZeroedMemoryIsTheValidEmptyState) {
  std::vector<uint8_t> mem(ShmRing::bytes_required(4), 0);
  ShmRing ring(mem.data(), 4);
  ASSERT_TRUE(ring.valid());
  EXPECT_FALSE(ring.closed());
  ShmSlot slot{};
  EXPECT_EQ(ring.pop(&slot), ShmRing::Pop::kEmpty);
}

TEST(ShmRing, PushPopRoundTripsSlotContents) {
  std::vector<uint8_t> mem(ShmRing::bytes_required(4), 0);
  ShmRing tx(mem.data(), 4);
  ShmRing rx(mem.data(), 4);  // the other process's mapping of same pages

  ASSERT_TRUE(tx.push(make_slot(7)));
  ShmSlot got{};
  ASSERT_EQ(rx.pop(&got), ShmRing::Pop::kGot);
  EXPECT_EQ(got.field, 3);
  EXPECT_EQ(got.age, 7);
  EXPECT_EQ(got.offset, 7u * 64);
  EXPECT_EQ(got.bytes, 48u);
  EXPECT_EQ(rx.pop(&got), ShmRing::Pop::kEmpty);
}

TEST(ShmRing, FullWindowRejectsPushUntilConsumerDrains) {
  std::vector<uint8_t> mem(ShmRing::bytes_required(2), 0);
  ShmRing tx(mem.data(), 2);
  ShmRing rx(mem.data(), 2);

  ASSERT_TRUE(tx.push(make_slot(0)));
  ASSERT_TRUE(tx.push(make_slot(1)));
  EXPECT_FALSE(tx.push(make_slot(2))) << "2-slot ring must be full";

  ShmSlot got{};
  ASSERT_EQ(rx.pop(&got), ShmRing::Pop::kGot);
  EXPECT_TRUE(tx.push(make_slot(2))) << "drained slot must be reusable";
}

TEST(ShmRing, WrapsAroundManyTimesInOrder) {
  std::vector<uint8_t> mem(ShmRing::bytes_required(3), 0);
  ShmRing tx(mem.data(), 3);
  ShmRing rx(mem.data(), 3);

  for (int64_t i = 0; i < 100; ++i) {  // 100 slots through a 3-slot ring
    ASSERT_TRUE(tx.push(make_slot(i))) << i;
    ShmSlot got{};
    ASSERT_EQ(rx.pop(&got), ShmRing::Pop::kGot) << i;
    EXPECT_EQ(got.age, i);
  }
}

TEST(ShmRing, CloseDrainsBufferedSlotsThenReportsClosed) {
  std::vector<uint8_t> mem(ShmRing::bytes_required(4), 0);
  ShmRing tx(mem.data(), 4);
  ShmRing rx(mem.data(), 4);

  ASSERT_TRUE(tx.push(make_slot(1)));
  ASSERT_TRUE(tx.push(make_slot(2)));
  tx.close();

  ShmSlot got{};
  ASSERT_EQ(rx.pop(&got), ShmRing::Pop::kGot) << "buffered slots drain first";
  EXPECT_EQ(got.age, 1);
  ASSERT_EQ(rx.pop(&got), ShmRing::Pop::kGot);
  EXPECT_EQ(got.age, 2);
  EXPECT_EQ(rx.pop(&got), ShmRing::Pop::kClosed);
  EXPECT_EQ(rx.pop(&got), ShmRing::Pop::kClosed) << "kClosed is sticky";
}

TEST(ShmRing, ConcurrentProducerConsumerPreservesFifo) {
  std::vector<uint8_t> mem(ShmRing::bytes_required(8), 0);
  ShmRing tx(mem.data(), 8);
  ShmRing rx(mem.data(), 8);

  const int64_t kCount = 20'000;
  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      while (!tx.push(make_slot(i))) std::this_thread::yield();
    }
    tx.close();
  });
  int64_t expected = 0;
  while (true) {
    ShmSlot got{};
    const ShmRing::Pop r = rx.pop(&got);
    if (r == ShmRing::Pop::kClosed) break;
    if (r == ShmRing::Pop::kEmpty) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(got.age, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
}

// --- ShmArena ---------------------------------------------------------------

TEST(ShmArena, AllocatesAlignedChunksAndTracksContainment) {
  auto arena = ShmArena::create(1u << 16);
  std::byte* a = arena->alloc(10);
  std::byte* b = arena->alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_GE(b - a, 64) << "10-byte chunk still occupies a 64-byte stride";

  EXPECT_TRUE(arena->contains(a, 10));
  EXPECT_TRUE(arena->contains(b, 100));
  int64_t stack_local = 0;
  EXPECT_FALSE(arena->contains(
      reinterpret_cast<const std::byte*>(&stack_local), sizeof(stack_local)));

  // Offsets round-trip through the "other process" view of the mapping.
  EXPECT_EQ(arena->at(arena->offset_of(b)), b);
}

TEST(ShmArena, ExhaustionReturnsNullInsteadOfOverflowing) {
  auto arena = ShmArena::create(4096);
  std::byte* first = arena->alloc(1024);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(arena->alloc(1u << 20), nullptr);
  // A smaller request may still fit after the oversized one was refused.
  EXPECT_NE(arena->alloc(512), nullptr);
}

TEST(ShmArena, AttachedMappingAliasesTheSamePages) {
  auto owner = ShmArena::create(1u << 16);
  auto peer = ShmArena::attach(owner->fd(), owner->capacity());

  std::byte* p = owner->alloc(64);
  ASSERT_NE(p, nullptr);
  std::memcpy(p, "frame-payload", 13);

  // The peer mapping sees the bytes at the same offset without any copy —
  // the property the whole data plane rests on.
  const std::byte* mirrored = peer->at(owner->offset_of(p));
  EXPECT_EQ(std::memcmp(mirrored, "frame-payload", 13), 0);
}

// --- wire format ------------------------------------------------------------

NetEnvelope sample_envelope() {
  NetEnvelope envelope;
  envelope.to = "node1";
  envelope.msg.type = MessageType::kRemoteStore;
  envelope.msg.from = "node0";
  envelope.msg.payload = {1, 2, 3, 4, 5};
  envelope.msg.seq = 0x8000000000000001ULL;  // u64 MSB survives i64 transit
  envelope.msg.attempt = 3;
  envelope.msg.trace.trace_id = 0x1122334455667788ULL;
  envelope.msg.trace.span_id = 0x99AABBCCDDEEFF00ULL;
  return envelope;
}

TEST(Wire, FrameRoundTripsEveryEnvelopeField) {
  const NetEnvelope sent = sample_envelope();
  const NetEnvelope got = decode_frame(encode_frame(sent));
  EXPECT_EQ(got.to, sent.to);
  EXPECT_EQ(got.msg.type, sent.msg.type);
  EXPECT_EQ(got.msg.from, sent.msg.from);
  EXPECT_EQ(got.msg.payload, sent.msg.payload);
  EXPECT_EQ(got.msg.seq, sent.msg.seq);
  EXPECT_EQ(got.msg.attempt, sent.msg.attempt);
  EXPECT_EQ(got.msg.trace.trace_id, sent.msg.trace.trace_id);
  EXPECT_EQ(got.msg.trace.span_id, sent.msg.trace.span_id);
}

TEST(Wire, FrameReaderCutsFramesFromAByteDribble) {
  const std::vector<uint8_t> one = encode_frame(sample_envelope());
  NetEnvelope second_envelope = sample_envelope();
  second_envelope.to = "master";
  second_envelope.msg.payload.clear();
  const std::vector<uint8_t> two = encode_frame(second_envelope);

  std::vector<uint8_t> stream = one;
  stream.insert(stream.end(), two.begin(), two.end());

  FrameReader reader;
  std::vector<NetEnvelope> out;
  for (const uint8_t byte : stream) {  // worst-case fragmentation
    reader.feed(&byte, 1);
    while (auto envelope = reader.poll()) out.push_back(std::move(*envelope));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].to, "node1");
  EXPECT_EQ(out[1].to, "master");
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(Wire, FrameReaderRejectsAbsurdLengthPrefix) {
  FrameReader reader;
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  reader.feed(huge, sizeof(huge));
  try {
    reader.poll();
    FAIL() << "4 GiB frame length must be rejected";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(Wire, DecodeFrameRejectsLengthPayloadMismatch) {
  std::vector<uint8_t> frame = encode_frame(sample_envelope());
  frame.push_back(0xEE);  // trailing garbage: length word no longer matches
  try {
    decode_frame(frame);
    FAIL() << "length/payload mismatch must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

// --- socket transport -------------------------------------------------------

Message make_message(MessageType type, const std::string& from,
                     std::vector<uint8_t> payload = {}) {
  Message message;
  message.type = type;
  message.from = from;
  message.payload = std::move(payload);
  return message;
}

TEST(Socket, HubAndNodeExchangeMessagesBothWays) {
  SocketHub hub;
  auto master_box = hub.register_endpoint("master");
  SocketNodeTransport node("127.0.0.1", hub.port(), "a");
  auto a_box = node.register_endpoint("a");
  ASSERT_TRUE(hub.wait_for_nodes(1, std::chrono::seconds(10)));
  EXPECT_EQ(hub.connected_nodes(), std::vector<std::string>{"a"});

  EXPECT_EQ(node.send("master",
                      make_message(MessageType::kIdleReport, "a", {1, 2})),
            SendStatus::kDelivered);
  auto up = master_box->pop();
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->type, MessageType::kIdleReport);
  EXPECT_EQ(up->from, "a");
  EXPECT_EQ(up->payload, (std::vector<uint8_t>{1, 2}));

  EXPECT_EQ(hub.send("a", make_message(MessageType::kShutdown, "master")),
            SendStatus::kDelivered);
  auto down = a_box->pop();
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->type, MessageType::kShutdown);
  EXPECT_EQ(down->from, "master");

  hub.close_all();
  node.close_all();
}

TEST(Socket, BroadcastReachesEveryEndpointExceptTheSender) {
  SocketHub hub;
  auto master_box = hub.register_endpoint("master");
  SocketNodeTransport a("127.0.0.1", hub.port(), "a");
  auto a_box = a.register_endpoint("a");
  SocketNodeTransport b("127.0.0.1", hub.port(), "b");
  auto b_box = b.register_endpoint("b");
  ASSERT_TRUE(hub.wait_for_nodes(2, std::chrono::seconds(10)));

  EXPECT_EQ(hub.broadcast(make_message(MessageType::kIdleProbe, "master")), 2);
  EXPECT_EQ(a_box->pop()->type, MessageType::kIdleProbe);
  EXPECT_EQ(b_box->pop()->type, MessageType::kIdleProbe);
  EXPECT_FALSE(master_box->try_pop().has_value())
      << "broadcast must skip the sender";

  hub.close_all();
  a.close_all();
  b.close_all();
}

TEST(Socket, UnknownEndpointThrowsProtocolLikeTheInProcessBus) {
  SocketHub hub;
  hub.register_endpoint("master");
  try {
    hub.send("nobody", make_message(MessageType::kShutdown, "master"));
    FAIL() << "unknown endpoint must throw (wiring bug, not a failure)";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
  hub.close_all();
}

TEST(Socket, DeadEndpointFeedsDeadLetterStatsAndObsCounter) {
  // The SendStatus seam must behave exactly like MessageBus::mark_dead:
  // kDead results feed BusStats::dead_letters (total and per endpoint) and
  // bump the per-link obs counter.
  obs::MetricsRegistry metrics;
  SocketHub hub(&metrics);
  hub.register_endpoint("master");
  SocketNodeTransport node("127.0.0.1", hub.port(), "a");
  node.register_endpoint("a");
  ASSERT_TRUE(hub.wait_for_nodes(1, std::chrono::seconds(10)));

  hub.mark_dead("a");
  EXPECT_TRUE(hub.is_dead("a"));
  EXPECT_TRUE(hub.unreachable("a"));
  EXPECT_FALSE(hub.unreachable("master"));

  EXPECT_EQ(hub.send("a", make_message(MessageType::kShutdown, "master")),
            SendStatus::kDead);
  EXPECT_EQ(hub.send("a", make_message(MessageType::kShutdown, "master")),
            SendStatus::kDead);

  const BusStats stats = hub.stats();
  EXPECT_EQ(stats.dead_letters, 2);
  ASSERT_TRUE(stats.per_endpoint.count("a"));
  EXPECT_EQ(stats.per_endpoint.at("a").dead_letters, 2);

  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  const obs::CounterValue* dead_letters =
      snapshot.find_counter("net_dead_letters_total:a");
  ASSERT_NE(dead_letters, nullptr);
  EXPECT_EQ(dead_letters->value, 2);

  hub.close_all();
  node.close_all();
}

TEST(Socket, ClosedTransportReturnsClosedStatus) {
  SocketHub hub;
  hub.register_endpoint("master");
  hub.close_all();
  EXPECT_EQ(hub.send("master", make_message(MessageType::kShutdown, "x")),
            SendStatus::kClosed);
  EXPECT_GE(hub.stats().dead_letters, 1);
}

// --- chaos over a real socket transport -------------------------------------

// Pumps one endpoint's mailbox through its reliable channel (dedup,
// in-order delivery, ack-after-apply) — the ft_test pump, unchanged except
// that the mailbox now hangs off a socket transport.
struct Pump {
  std::shared_ptr<Transport::Mailbox> mailbox;
  ft::ReliableChannel* channel;
  std::vector<std::vector<uint8_t>>* received = nullptr;
  std::thread thread;

  void start() {
    thread = std::thread([this] {
      while (auto message = mailbox->pop()) {
        if (message->type == MessageType::kData) {
          for (const Message& inner : channel->on_data(*message)) {
            if (received) received->push_back(inner.payload);
          }
          channel->ack(message->from);
        } else if (message->type == MessageType::kAck) {
          channel->on_ack(*message);
        }
      }
    });
  }
};

TEST(ChaosSocket, ReliableChannelRecoversDropsOverARealSocketPair) {
  // ChaosBus decorating a *socket* transport: every first-attempt kData
  // frame from "a" rolls the drop dice before hitting the real TCP
  // connection; the reliable channel's retransmissions (exempt from chaos)
  // recover every loss, end to end across hub routing.
  SocketHub hub;
  hub.register_endpoint("master");
  SocketNodeTransport a_socket("127.0.0.1", hub.port(), "a");
  auto a_box = a_socket.register_endpoint("a");
  SocketNodeTransport b_socket("127.0.0.1", hub.port(), "b");
  auto b_box = b_socket.register_endpoint("b");
  ASSERT_TRUE(hub.wait_for_nodes(2, std::chrono::seconds(10)));

  ft::ChaosBus lossy(ft::FaultPlan::uniform(21, 0.3), a_socket);

  ft::ReliableChannel::Options fast;
  fast.rto_initial_us = 3000;
  fast.rto_max_us = 20000;
  ft::ReliableChannel a(lossy, "a", fast);
  ft::ReliableChannel b(b_socket, "b", fast);

  std::vector<std::vector<uint8_t>> received;
  Pump pump_a{a_box, &a, nullptr, {}};
  Pump pump_b{b_box, &b, &received, {}};
  pump_a.start();
  pump_b.start();

  const int n = 40;
  for (uint8_t i = 0; i < n; ++i) {
    a.send("b", MessageType::kRemoteStore, {i});
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (a.unacked() != 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(a.unacked(), 0) << "every drop must be recovered by retransmit";

  a_socket.close_all();
  b_socket.close_all();
  hub.close_all();
  pump_a.thread.join();
  pump_b.thread.join();
  a.stop();
  b.stop();

  ASSERT_EQ(received.size(), static_cast<size_t>(n))
      << "exactly-once application despite socket transit and chaos";
  for (uint8_t i = 0; i < n; ++i) {
    EXPECT_EQ(received[i], std::vector<uint8_t>{i}) << "in-order delivery";
  }
  EXPECT_GT(lossy.chaos_stats().dropped, 0)
      << "seed produced no drops; the test proved nothing";
  EXPECT_GT(a.stats().retransmits, 0);
}

// --- real multi-process clusters --------------------------------------------

#ifdef P2G_NODE_BINARY

ClusterOptions cluster_options(const std::string& workload, int nodes,
                               bool shm) {
  ClusterOptions options;
  options.workload = workload;
  options.nodes = nodes;
  options.shm = shm;
  options.node_binary = P2G_NODE_BINARY;
  return options;
}

TEST(Cluster, SocketRunIsBitExactAgainstTheInProcessBus) {
  // Three real OS processes over the socket transport must produce the
  // same field contents, age by age and byte by byte, as the in-process
  // MessageBus run of the same program — same partitioning, same
  // placement, only the interconnect differs.
  const ClusterReport cluster = run_cluster(cluster_options("mul2", 3, false));
  ASSERT_FALSE(cluster.timed_out);
  EXPECT_TRUE(cluster.dead_nodes.empty());
  for (const auto& [name, ok] : cluster.node_ok) EXPECT_TRUE(ok) << name;

  workloads::Mul2Plus5 workload;
  dist::MasterOptions in_process;
  in_process.nodes = 3;
  in_process.base_options.max_age = 3;  // the "mul2" WorkloadSpec schedule
  in_process.program_factory = [&workload] { return workload.build(); };
  in_process.capture_fields = {"m_data", "p_data"};
  dist::Master master(in_process);
  const dist::DistributedRunReport reference = master.run();
  ASSERT_FALSE(reference.timed_out);

  EXPECT_EQ(cluster.captured, reference.captured)
      << "socket transport changed the data";
  EXPECT_GT(cluster.data_frames, 0)
      << "a 3-way split of mul2 must cross the wire";
}

TEST(Cluster, ShmDataPlaneShipsFramesWithoutCopies) {
  // Same host, same program, two transports: the shm run must be bit-exact
  // with the socket run while copying (approximately) zero payload bytes —
  // whole frames travel as arena offsets and the receiver adopts the
  // mapped pages directly.
  const ClusterReport socket =
      run_cluster(cluster_options("pipeline", 3, false));
  const ClusterReport shm = run_cluster(cluster_options("pipeline", 3, true));
  ASSERT_FALSE(socket.timed_out);
  ASSERT_FALSE(shm.timed_out);
  EXPECT_TRUE(shm.dead_nodes.empty());

  ASSERT_FALSE(shm.captured.empty());
  EXPECT_EQ(shm.captured, socket.captured)
      << "transports must agree bit-exactly";

  EXPECT_GT(socket.data_frames, 0);
  EXPECT_GT(socket.bytes_copied_per_frame, 1000.0)
      << "socket frames serialize whole 4 KiB payloads";
  EXPECT_GT(shm.data_frames, 0);
  EXPECT_EQ(shm.copied_bytes, 0)
      << "every whole-frame store must take the zero-copy fast lane";
  EXPECT_EQ(shm.bytes_copied_per_frame, 0.0);

  // The receiver really adopted mapped pages (no fallback rebuilds).
  const obs::CounterValue* adopted =
      shm.combined_metrics.find_counter("shm_rx_adopted_total");
  ASSERT_NE(adopted, nullptr);
  EXPECT_GT(adopted->value, 0);
}

TEST(Cluster, CrashedNodeIsDetectedFencedAndReported) {
  // Kill one node process mid-run: the supervisor must detect the death
  // (dead socket / silent heartbeats), fence the endpoint, keep the
  // surviving processes draining, and still terminate without tripping
  // the watchdog.
  ClusterOptions options = cluster_options("pipeline", 2, false);
  options.crash_node = "node1";
  options.crash_after_ms = 5;
  const ClusterReport report = run_cluster(options);

  ASSERT_FALSE(report.timed_out)
      << "a crash must not stall termination detection";
  ASSERT_EQ(report.dead_nodes, std::vector<std::string>{"node1"});
  ASSERT_TRUE(report.node_ok.count("node0"));
  EXPECT_TRUE(report.node_ok.at("node0"))
      << "the survivor must still shut down cleanly";
  EXPECT_GT(report.bus.dead_letters, 0)
      << "traffic to the fenced node must surface as dead letters";
}

#endif  // P2G_NODE_BINARY

}  // namespace
}  // namespace p2g::net
