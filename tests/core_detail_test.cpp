// Focused unit tests for runtime internals: contiguous-span detection,
// ready-queue ordering, store-event coalescing, instrumentation report
// formatting and context behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/context.h"
#include "core/ready_queue.h"
#include "core/runtime.h"
#include "nd/region.h"

namespace p2g {
namespace {

using nd::Extents;
using nd::Interval;
using nd::Region;

TEST(ContiguousSpan, WholeFieldIsOneSpan) {
  const Extents ext({4, 6});
  const auto span = Region::whole(ext).contiguous_span(ext);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->offset, 0);
  EXPECT_EQ(span->length, 24);
}

TEST(ContiguousSpan, SingleElement) {
  const Extents ext({4, 6});
  const auto span = Region::point({2, 3}).contiguous_span(ext);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->offset, 2 * 6 + 3);
  EXPECT_EQ(span->length, 1);
}

TEST(ContiguousSpan, TrailingBlockDimension) {
  // The MJPEG layout: [bh][bw][64] with a (by, bx, all) slice.
  const Extents ext({36, 44, 64});
  const Region block(std::vector<Interval>{{10, 11}, {20, 21}, {0, 64}});
  const auto span = block.contiguous_span(ext);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->offset, (10 * 44 + 20) * 64);
  EXPECT_EQ(span->length, 64);
}

TEST(ContiguousSpan, FullRowsAreContiguous) {
  const Extents ext({8, 5});
  const Region rows(std::vector<Interval>{{2, 5}, {0, 5}});
  const auto span = rows.contiguous_span(ext);
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(span->offset, 10);
  EXPECT_EQ(span->length, 15);
}

TEST(ContiguousSpan, PartialColumnIsNot) {
  const Extents ext({8, 5});
  const Region column(std::vector<Interval>{{0, 8}, {2, 3}});
  EXPECT_FALSE(column.contiguous_span(ext).has_value());
  const Region box(std::vector<Interval>{{0, 2}, {0, 3}});
  EXPECT_FALSE(box.contiguous_span(ext).has_value());
}

TEST(ContiguousSpan, OutsideExtentsIsNot) {
  const Extents ext({4});
  const Region region(std::vector<Interval>{{2, 6}});
  EXPECT_FALSE(region.contiguous_span(ext).has_value());
}

TEST(ReadyQueueTest, AgePriorityOrder) {
  ReadyQueue queue(/*age_priority=*/true);
  auto item = [](KernelId k, Age a) {
    WorkItem w;
    w.kernel = k;
    w.age = a;
    w.coords = {nd::Coord{}};
    return w;
  };
  queue.push(item(0, 5));
  queue.push(item(1, 2));
  queue.push(item(2, 2));
  queue.push(item(3, 0));
  EXPECT_EQ(queue.pop()->kernel, 3);  // age 0 first
  EXPECT_EQ(queue.pop()->kernel, 1);  // FIFO within age 2
  EXPECT_EQ(queue.pop()->kernel, 2);
  EXPECT_EQ(queue.pop()->kernel, 0);
}

TEST(ReadyQueueTest, FifoModeIgnoresAges) {
  ReadyQueue queue(/*age_priority=*/false);
  auto item = [](KernelId k, Age a) {
    WorkItem w;
    w.kernel = k;
    w.age = a;
    return w;
  };
  queue.push(item(0, 9));
  queue.push(item(1, 1));
  EXPECT_EQ(queue.pop()->kernel, 0);
  EXPECT_EQ(queue.pop()->kernel, 1);
}

TEST(ReadyQueueTest, CloseUnblocksWaiters) {
  ReadyQueue queue;
  std::thread waiter([&] { EXPECT_FALSE(queue.pop().has_value()); });
  queue.close();
  waiter.join();
}

TEST(ReadyQueueTest, PushBatchPreservesAgeOrderAcrossBatches) {
  ReadyQueue queue(/*age_priority=*/true);
  auto item = [](KernelId k, Age a) {
    WorkItem w;
    w.kernel = k;
    w.age = a;
    w.coords = {nd::Coord{}};
    return w;
  };
  std::vector<WorkItem> first;
  first.push_back(item(0, 4));
  first.push_back(item(1, 1));
  queue.push_batch(std::move(first));
  std::vector<WorkItem> second;
  second.push_back(item(2, 0));
  second.push_back(item(3, 1));
  queue.push_batch(std::move(second));
  queue.push_batch({});  // empty batch is a no-op

  EXPECT_EQ(queue.pop()->kernel, 2);  // age 0
  EXPECT_EQ(queue.pop()->kernel, 1);  // age 1, pushed before kernel 3
  EXPECT_EQ(queue.pop()->kernel, 3);
  EXPECT_EQ(queue.pop()->kernel, 0);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(ReadyQueueTest, BonusPopHandsOverSecondItemWhenAlone) {
  ReadyQueue queue;
  auto item = [](KernelId k, Age a) {
    WorkItem w;
    w.kernel = k;
    w.age = a;
    w.coords = {nd::Coord{}};
    return w;
  };
  queue.push(item(0, 1));
  queue.push(item(1, 0));
  queue.push(item(2, 2));

  // Single consumer: pop grants the best item plus the next-best bonus.
  std::optional<WorkItem> bonus;
  const auto first = queue.pop(bonus);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kernel, 1);  // age 0
  ASSERT_TRUE(bonus.has_value());
  EXPECT_EQ(bonus->kernel, 0);  // age 1
  const auto last = queue.pop(bonus);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->kernel, 2);
  EXPECT_FALSE(bonus.has_value()) << "no bonus when the queue runs dry";
}

TEST(ReadyQueueTest, BatchedPushWakesBlockedConsumers) {
  ReadyQueue queue;
  constexpr int kItems = 256;
  constexpr int kConsumers = 4;
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int t = 0; t < kConsumers; ++t) {
    consumers.emplace_back([&queue, &popped] {
      std::optional<WorkItem> bonus;
      while (auto w = queue.pop(bonus)) {
        popped.fetch_add(1);
        if (bonus) {
          popped.fetch_add(1);
          bonus.reset();
        }
      }
    });
  }
  for (int i = 0; i < kItems; i += 8) {
    std::vector<WorkItem> batch;
    for (int j = i; j < i + 8; ++j) {
      WorkItem w;
      w.kernel = 0;
      w.age = j;
      w.coords = {nd::Coord{}};
      batch.push_back(std::move(w));
    }
    queue.push_batch(std::move(batch));
  }
  // Workers must drain everything even though each batch wakes at most one
  // of them (the hand-off chain in pop covers the rest).
  while (popped.load() < kItems) std::this_thread::yield();
  queue.close();
  for (std::thread& c : consumers) c.join();
  EXPECT_EQ(popped.load(), kItems);
}

TEST(InstrumentationTable, FormatsLikeThePaper) {
  InstrumentationReport report;
  KernelStats stats;
  stats.name = "yDCT";
  stats.dispatches = 80784;
  stats.instances = 80784;
  stats.dispatch_ns = 80784LL * 3070;
  stats.kernel_ns = 80784LL * 170300;
  report.kernels.push_back(stats);
  const std::string table = report.to_table();
  EXPECT_NE(table.find("Kernel"), std::string::npos);
  EXPECT_NE(table.find("Dispatch Time"), std::string::npos);
  EXPECT_NE(table.find("80,784"), std::string::npos);
  EXPECT_NE(table.find("3.07 us"), std::string::npos);
  EXPECT_NE(table.find("170.30 us"), std::string::npos);
  EXPECT_EQ(report.find("yDCT"), &report.kernels[0]);
  EXPECT_EQ(report.find("nope"), nullptr);
}

TEST(StoreEventCoalescing, ChunkedScalarStoresMergeIntoOneEvent) {
  // A chunked elementwise kernel writing consecutive cells should reach
  // the analyzer as O(1) merged events per chunk; indirectly observable
  // through correctness plus the absence of per-element analyzer work,
  // and directly through the field's written state after the run.
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("dst", nd::ElementType::kInt32, 1);
  pb.kernel("init")
      .run_once()
      .store("v", "src", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({64}));
        for (int i = 0; i < 64; ++i) v.data<int32_t>()[i] = i;
        ctx.store_array("v", std::move(v));
      });
  pb.kernel("stage")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out",
                                  ctx.fetch_scalar<int32_t>("in") + 1);
      });
  RunOptions opts;
  opts.max_age = 0;
  opts.kernel_schedules["stage"].chunk = 64;
  Runtime rt(pb.build(), opts);
  const RunReport report = rt.run();
  EXPECT_EQ(report.instrumentation.find("stage")->dispatches, 1);
  const nd::AnyBuffer out = rt.storage("dst").fetch_whole(0);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out.at<int32_t>(i), i + 1);
}

TEST(KernelContextTest, SlotLookupsAndErrors) {
  ProgramBuilder pb;
  pb.field("f", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .index("x")
      .fetch("in", "f", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "f", AgeExpr::relative(1), Slice().var("x"))
      .body([](KernelContext&) {});
  const Program program = pb.build();
  TimerSet timers;
  KernelContext ctx(program.kernel(0), 3, {7}, &timers);

  EXPECT_EQ(ctx.age(), 3);
  EXPECT_EQ(ctx.index(0), 7);
  EXPECT_EQ(ctx.index("x"), 7);
  EXPECT_THROW(ctx.index("y"), Error);
  EXPECT_THROW(ctx.fetch_array("nope"), Error);
  EXPECT_THROW(ctx.store_scalar<int32_t>("nope", 1), Error);

  // Double store to one slot in one instance is a write-once violation.
  ctx.store_scalar<int32_t>("out", 1);
  try {
    ctx.store_scalar<int32_t>("out", 2);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
  }
  EXPECT_EQ(ctx.pending_stores().size(), 1u);
  EXPECT_NE(ctx.pending_store(0), nullptr);
  EXPECT_EQ(ctx.pending_store(1), nullptr);

  EXPECT_FALSE(ctx.continue_requested());
  ctx.continue_next_age();
  EXPECT_TRUE(ctx.continue_requested());
}

TEST(KernelContextTest, OwnedFetchSlotViewsAliasTheBuffer) {
  ProgramBuilder pb;
  pb.field("f", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .index("x")
      .fetch("in", "f", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext&) {});
  const Program program = pb.build();
  KernelContext ctx(program.kernel(0), 0, {0}, nullptr);

  EXPECT_THROW(ctx.fetch_view("in"), Error) << "slot not prepared yet";

  nd::AnyBuffer data(nd::ElementType::kInt32, nd::Extents({3}));
  for (int i = 0; i < 3; ++i) data.data<int32_t>()[i] = 10 * i;
  ctx.set_fetch(0, std::move(data));

  const nd::ConstView& view = ctx.fetch_view("in");
  const nd::AnyBuffer& arr = ctx.fetch_array("in");
  EXPECT_EQ(view.raw(), arr.raw()) << "view must alias the owned copy";
  EXPECT_EQ(view.at_flat<int32_t>(0), 0);
  EXPECT_EQ(view.at_flat<int32_t>(2), 20);
}

TEST(KernelContextTest, StorageViewSlotMaterializesArrayOnce) {
  ProgramBuilder pb;
  pb.field("f", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .index("x")
      .fetch("in", "f", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext&) {});
  const Program program = pb.build();
  KernelContext ctx(program.kernel(0), 0, {0}, nullptr);

  // A zero-copy slot over caller-managed memory.
  const int32_t backing[4] = {1, 2, 3, 4};
  ctx.set_fetch(0, nd::ConstView(nd::ElementType::kInt32, nd::Extents({4}),
                                 reinterpret_cast<const std::byte*>(backing),
                                 nullptr));
  EXPECT_EQ(ctx.fetch_view("in").raw(),
            reinterpret_cast<const std::byte*>(backing));

  // fetch_array materializes lazily and caches: same object, one copy.
  const nd::AnyBuffer& first = ctx.fetch_array("in");
  const nd::AnyBuffer& second = ctx.fetch_array("in");
  EXPECT_EQ(&first, &second);
  EXPECT_NE(first.raw(), reinterpret_cast<const std::byte*>(backing));
  EXPECT_EQ(first.at<int32_t>(3), 4);
}

TEST(RunOptionsValidation, UnknownNamesAreRejected) {
  ProgramBuilder pb;
  pb.field("f", nd::ElementType::kInt32, 1);
  pb.kernel("k")
      .run_once()
      .store("v", "f", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext&) {});
  {
    RunOptions opts;
    opts.kernel_schedules["ghost"].chunk = 4;
    EXPECT_THROW(Runtime(pb.build(), opts), Error);
  }
  {
    RunOptions opts;
    opts.disabled_kernels.insert("ghost");
    EXPECT_THROW(Runtime(pb.build(), opts), Error);
  }
  {
    RunOptions opts;
    opts.fusions.push_back(FusionRule{"k", "ghost"});
    EXPECT_THROW(Runtime(pb.build(), opts), Error);
  }
}

}  // namespace
}  // namespace p2g
