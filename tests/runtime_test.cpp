// Integration tests for the execution node: the paper's mul2/plus5 cycle,
// sources, chunking, fusion, serial ordering and failure handling.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/runtime.h"

namespace p2g {
namespace {

/// Builds the paper's example program (Fig. 5): init seeds m_data(0) with
/// {10..14}; mul2 doubles into p_data(a); plus5 adds 5 into m_data(a+1);
/// print captures both fields per age.
struct Mul2Plus5 {
  std::shared_ptr<std::vector<std::vector<int32_t>>> printed =
      std::make_shared<std::vector<std::vector<int32_t>>>();

  Program build() {
    ProgramBuilder pb;
    pb.field("m_data", nd::ElementType::kInt32, 1);
    pb.field("p_data", nd::ElementType::kInt32, 1);

    pb.kernel("init")
        .run_once()
        .store("values", "m_data", AgeExpr::constant(0), Slice::whole())
        .body([](KernelContext& ctx) {
          nd::AnyBuffer values(nd::ElementType::kInt32, nd::Extents({5}));
          for (int i = 0; i < 5; ++i) {
            values.data<int32_t>()[i] = i + 10;
          }
          ctx.store_array("values", std::move(values));
        });

    pb.kernel("mul2")
        .index("x")
        .fetch("value", "m_data", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "p_data", AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out",
                                    ctx.fetch_scalar<int32_t>("value") * 2);
        });

    pb.kernel("plus5")
        .index("x")
        .fetch("value", "p_data", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "m_data", AgeExpr::relative(1), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out",
                                    ctx.fetch_scalar<int32_t>("value") + 5);
        });

    auto printed_ref = printed;
    pb.kernel("print")
        .serial()
        .fetch("m", "m_data", AgeExpr::relative(0), Slice::whole())
        .fetch("p", "p_data", AgeExpr::relative(0), Slice::whole())
        .body([printed_ref](KernelContext& ctx) {
          const nd::AnyBuffer& m = ctx.fetch_array("m");
          const nd::AnyBuffer& p = ctx.fetch_array("p");
          std::vector<int32_t> row;
          for (int64_t i = 0; i < m.element_count(); ++i) {
            row.push_back(m.at<int32_t>(i));
          }
          for (int64_t i = 0; i < p.element_count(); ++i) {
            row.push_back(p.at<int32_t>(i));
          }
          printed_ref->push_back(std::move(row));
        });

    return pb.build();
  }
};

TEST(RuntimeMul2Plus5, ReproducesThePaperSequence) {
  Mul2Plus5 workload;
  RunOptions opts;
  opts.workers = 2;
  opts.max_age = 2;
  Runtime rt(workload.build(), opts);
  RunReport report = rt.run();
  EXPECT_FALSE(report.timed_out);

  // Paper §V: first age prints {10..14} and {20,22,24,26,28}; second age
  // {25,27,29,31,33} and {50,54,58,62,66}.
  ASSERT_EQ(workload.printed->size(), 3u);
  EXPECT_EQ((*workload.printed)[0],
            (std::vector<int32_t>{10, 11, 12, 13, 14, 20, 22, 24, 26, 28}));
  EXPECT_EQ((*workload.printed)[1],
            (std::vector<int32_t>{25, 27, 29, 31, 33, 50, 54, 58, 62, 66}));
  EXPECT_EQ((*workload.printed)[2],
            (std::vector<int32_t>{55, 59, 63, 67, 71, 110, 118, 126, 134,
                                  142}));
}

TEST(RuntimeMul2Plus5, InstanceCountsMatchUnrolledDag) {
  Mul2Plus5 workload;
  RunOptions opts;
  opts.workers = 3;
  opts.max_age = 9;
  Runtime rt(workload.build(), opts);
  RunReport report = rt.run();

  const auto* init = report.instrumentation.find("init");
  const auto* mul2 = report.instrumentation.find("mul2");
  const auto* plus5 = report.instrumentation.find("plus5");
  const auto* print = report.instrumentation.find("print");
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->instances, 1);
  EXPECT_EQ(mul2->instances, 10 * 5);   // ages 0..9, 5 elements
  EXPECT_EQ(plus5->instances, 10 * 5);  // stores m_data(1..10)
  EXPECT_EQ(print->instances, 10);
}

TEST(RuntimeMul2Plus5, DeterministicAcrossWorkerCounts) {
  std::vector<std::vector<std::vector<int32_t>>> outputs;
  for (int workers : {1, 2, 4}) {
    Mul2Plus5 workload;
    RunOptions opts;
    opts.workers = workers;
    opts.max_age = 5;
    Runtime rt(workload.build(), opts);
    rt.run();
    outputs.push_back(*workload.printed);
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[1], outputs[2]);
}

TEST(RuntimeMul2Plus5, UnbatchedAnalyzerPreservesResults) {
  // The batched analyzer loop (pop_all + handle_batch) must be observably
  // identical to the one-event-per-lock ablation baseline.
  Mul2Plus5 batched;
  {
    RunOptions opts;
    opts.workers = 4;
    opts.max_age = 6;
    Runtime rt(batched.build(), opts);
    rt.run();
  }
  Mul2Plus5 unbatched;
  {
    RunOptions opts;
    opts.workers = 4;
    opts.max_age = 6;
    opts.analyzer_batch = false;
    Runtime rt(unbatched.build(), opts);
    rt.run();
  }
  EXPECT_EQ(*batched.printed, *unbatched.printed);
}

TEST(RuntimeMul2Plus5, ChunkingPreservesResults) {
  Mul2Plus5 baseline;
  {
    RunOptions opts;
    opts.workers = 2;
    opts.max_age = 4;
    Runtime rt(baseline.build(), opts);
    rt.run();
  }
  Mul2Plus5 chunked;
  {
    RunOptions opts;
    opts.workers = 2;
    opts.max_age = 4;
    opts.kernel_schedules["mul2"].chunk = 5;
    opts.kernel_schedules["plus5"].chunk = 3;
    Runtime rt(chunked.build(), opts);
    RunReport report = rt.run();
    // 5 bodies per age but fewer dispatches for mul2.
    const auto* mul2 = report.instrumentation.find("mul2");
    EXPECT_EQ(mul2->instances, 5 * 5);
    EXPECT_LT(mul2->dispatches, mul2->instances);
  }
  EXPECT_EQ(*baseline.printed, *chunked.printed);
}

TEST(RuntimeMul2Plus5, FusionPreservesResults) {
  Mul2Plus5 baseline;
  {
    RunOptions opts;
    opts.workers = 2;
    opts.max_age = 4;
    Runtime rt(baseline.build(), opts);
    rt.run();
  }
  Mul2Plus5 fused;
  {
    RunOptions opts;
    opts.workers = 2;
    opts.max_age = 4;
    opts.fusions.push_back(FusionRule{"mul2", "plus5"});
    Runtime rt(fused.build(), opts);
    RunReport report = rt.run();
    const auto* plus5 = report.instrumentation.find("plus5");
    EXPECT_EQ(plus5->instances, 5 * 5) << "fused bodies still instrumented";
  }
  EXPECT_EQ(*baseline.printed, *fused.printed);
}

TEST(Runtime, SourceKernelStopsWhenItStopsContinuing) {
  ProgramBuilder pb;
  pb.field("frames", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);

  pb.kernel("reader")
      .store("frame", "frames", AgeExpr::relative(0), Slice::whole())
      .body([](KernelContext& ctx) {
        if (ctx.age() < 5) {  // "end of file" after 5 frames
          nd::AnyBuffer frame(nd::ElementType::kInt32, nd::Extents({4}));
          for (int i = 0; i < 4; ++i) {
            frame.data<int32_t>()[i] = static_cast<int32_t>(ctx.age());
          }
          ctx.store_array("frame", std::move(frame));
          ctx.continue_next_age();
        }
      });

  pb.kernel("stage")
      .index("x")
      .fetch("v", "frames", AgeExpr::relative(0), Slice().var("x"))
      .store("o", "out", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("o", ctx.fetch_scalar<int32_t>("v") + 1);
      });

  Runtime rt(pb.build(), RunOptions{});
  RunReport report = rt.run();
  const auto* reader = report.instrumentation.find("reader");
  const auto* stage = report.instrumentation.find("stage");
  EXPECT_EQ(reader->instances, 6) << "5 frames + 1 EOF probe";
  EXPECT_EQ(stage->instances, 5 * 4);
  EXPECT_EQ(rt.storage("out").fetch_whole(4).at<int32_t>(0), 5);
}

TEST(Runtime, WriteOnceViolationSurfacesFromRun) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.kernel("init")
      .run_once()
      .store("v", "a", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({2}));
        ctx.store_array("v", std::move(v));
      });
  // Both consumers store to the same cells of b(0).
  for (const char* name : {"k1", "k2"}) {
    pb.kernel(name)
        .index("x")
        .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out", 1);
        });
  }
  RunOptions opts;
  opts.max_age = 0;
  Runtime rt(pb.build(), opts);
  try {
    rt.run();
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
  }
}

TEST(Runtime, CheckedModeNamesBothWriters) {
  // Same double-write as above, but with RunOptions::checked the error
  // must carry provenance: the current writer AND the previous one, each
  // with its kernel instance.
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.kernel("init")
      .run_once()
      .store("v", "a", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({2}));
        ctx.store_array("v", std::move(v));
      });
  for (const char* name : {"writer_a", "writer_b"}) {
    pb.kernel(name)
        .index("x")
        .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out", 1);
        });
  }
  RunOptions opts;
  opts.max_age = 0;
  opts.workers = 1;
  opts.checked = true;
  Runtime rt(pb.build(), opts);
  try {
    rt.run();
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
    const std::string what = e.what();
    EXPECT_NE(what.find("writer_a"), std::string::npos) << what;
    EXPECT_NE(what.find("writer_b"), std::string::npos) << what;
    EXPECT_NE(what.find("previously written by"), std::string::npos) << what;
  }
}

TEST(Runtime, BodyExceptionPropagates) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("boom")
      .run_once()
      .store("v", "a", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext&) { throw std::runtime_error("kaboom"); });
  Runtime rt(pb.build(), RunOptions{});
  EXPECT_THROW(rt.run(), std::runtime_error);
}

TEST(Runtime, WatchdogAbortsSlowRun) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("slow")
      .run_once()
      .store("v", "a", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({1}));
        ctx.store_array("v", std::move(v));
      });
  RunOptions opts;
  opts.watchdog = std::chrono::milliseconds(50);
  Runtime rt(pb.build(), opts);
  RunReport report = rt.run();
  EXPECT_TRUE(report.timed_out);
}

TEST(Runtime, RunOnceAggregatorWithConstFetch) {
  ProgramBuilder pb;
  pb.field("data", nd::ElementType::kInt32, 1);
  pb.field("sum", nd::ElementType::kInt32, 1);
  pb.kernel("init")
      .run_once()
      .store("v", "data", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({4}));
        for (int i = 0; i < 4; ++i) v.data<int32_t>()[i] = i + 1;
        ctx.store_array("v", std::move(v));
      });
  pb.kernel("agg")
      .run_once()
      .fetch("in", "data", AgeExpr::constant(0), Slice::whole())
      .store("out", "sum", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        const nd::AnyBuffer& in = ctx.fetch_array("in");
        int32_t total = 0;
        for (int64_t i = 0; i < in.element_count(); ++i) {
          total += in.at<int32_t>(i);
        }
        nd::AnyBuffer out(nd::ElementType::kInt32, nd::Extents({1}));
        out.data<int32_t>()[0] = total;
        ctx.store_array("out", std::move(out));
      });
  Runtime rt(pb.build(), RunOptions{});
  rt.run();
  EXPECT_EQ(rt.storage("sum").fetch_whole(0).at<int32_t>(0), 10);
}

TEST(Runtime, RunTwiceThrows) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.kernel("init")
      .run_once()
      .store("v", "a", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext& ctx) {
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({1}));
        ctx.store_array("v", std::move(v));
      });
  Runtime rt(pb.build(), RunOptions{});
  rt.run();
  EXPECT_THROW(rt.run(), Error);
}

TEST(Runtime, EmptyProgramReturnsImmediately) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  Program p = pb.build();
  Runtime rt(std::move(p), RunOptions{});
  RunReport report = rt.run();
  EXPECT_FALSE(report.timed_out);
}

TEST(TimerSetTest, ElapsedAndExpired) {
  TimerSet timers;
  timers.set_now("t1");
  EXPECT_FALSE(timers.expired("t1", std::chrono::milliseconds(10000)));
  EXPECT_TRUE(timers.expired("t1", std::chrono::milliseconds(0)));
  EXPECT_GE(timers.elapsed_ms("t1"), 0.0);
  EXPECT_GT(timers.remaining_ms("t1", std::chrono::milliseconds(10000)),
            0.0);
}

}  // namespace
}  // namespace p2g
