// Unit tests for the JPEG/MJPEG substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <numeric>

#include "media/bitstream.h"
#include "media/dct.h"
#include "media/huffman.h"
#include "media/jpeg.h"
#include "media/mjpeg.h"
#include "media/quant.h"
#include "media/yuv.h"

namespace p2g::media {
namespace {

TEST(BitStream, WriteReadRoundTrip) {
  BitWriter w(false);
  w.put_bits(0b101, 3);
  w.put_bits(0xABCD, 16);
  w.put_bits(0, 5);
  w.flush();
  const auto bytes = w.bytes();
  BitReader r(bytes.data(), bytes.size(), false);
  EXPECT_EQ(r.get_bits(3), 0b101u);
  EXPECT_EQ(r.get_bits(16), 0xABCDu);
  EXPECT_EQ(r.get_bits(5), 0u);
}

TEST(BitStream, ByteStuffing) {
  BitWriter w(true);
  w.put_bits(0xFF, 8);
  w.flush();
  ASSERT_EQ(w.bytes().size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0xFF);
  EXPECT_EQ(w.bytes()[1], 0x00);

  BitReader r(w.bytes().data(), w.bytes().size(), true);
  EXPECT_EQ(r.get_bits(8), 0xFFu);
}

TEST(BitStream, ExhaustionThrows) {
  BitWriter w(false);
  w.put_bits(1, 1);
  w.flush();
  BitReader r(w.bytes().data(), w.bytes().size(), false);
  r.get_bits(8);
  EXPECT_THROW(r.get_bits(8), Error);
}

TEST(Dct, FlatBlockHasOnlyDc) {
  uint8_t pixels[kBlockSize];
  for (auto& p : pixels) p = 200;
  double out[kBlockSize];
  forward_dct_naive(pixels, out);
  EXPECT_NEAR(out[0], (200.0 - 128.0) * 8.0, 1e-9);
  for (int i = 1; i < kBlockSize; ++i) EXPECT_NEAR(out[i], 0.0, 1e-9);
}

TEST(Dct, NaiveRoundTripIsLossless) {
  uint8_t pixels[kBlockSize];
  for (int i = 0; i < kBlockSize; ++i) {
    pixels[i] = static_cast<uint8_t>((i * 37 + 11) % 256);
  }
  double coeffs[kBlockSize];
  forward_dct_naive(pixels, coeffs);
  uint8_t back[kBlockSize];
  inverse_dct_naive(coeffs, back);
  for (int i = 0; i < kBlockSize; ++i) {
    EXPECT_NEAR(back[i], pixels[i], 1) << "pixel " << i;
  }
}

TEST(Dct, AanMatchesNaiveAfterUnscaling) {
  uint8_t pixels[kBlockSize];
  for (int i = 0; i < kBlockSize; ++i) {
    pixels[i] = static_cast<uint8_t>((i * 53 + 7) % 256);
  }
  double naive[kBlockSize];
  double aan[kBlockSize];
  forward_dct_naive(pixels, naive);
  forward_dct_aan(pixels, aan);
  for (int u = 0; u < kBlockDim; ++u) {
    for (int v = 0; v < kBlockDim; ++v) {
      const int i = u * kBlockDim + v;
      EXPECT_NEAR(aan[i] / aan_scale_factor(u, v), naive[i], 1e-6)
          << "coefficient (" << u << "," << v << ")";
    }
  }
}

TEST(Quant, ScaleTableQualityMonotonicity) {
  const QuantTable q50 = scale_table(standard_luma_table(), 50);
  const QuantTable q90 = scale_table(standard_luma_table(), 90);
  const QuantTable q10 = scale_table(standard_luma_table(), 10);
  EXPECT_EQ(q50, standard_luma_table()) << "quality 50 is the base table";
  for (int i = 0; i < kBlockSize; ++i) {
    EXPECT_LE(q90[static_cast<size_t>(i)], q50[static_cast<size_t>(i)]);
    EXPECT_GE(q10[static_cast<size_t>(i)], q50[static_cast<size_t>(i)]);
  }
  EXPECT_THROW(scale_table(standard_luma_table(), 0), Error);
  EXPECT_THROW(scale_table(standard_luma_table(), 101), Error);
}

TEST(Quant, ZigzagIsAPermutationWithKnownPrefix) {
  const auto& order = zigzag_order();
  std::array<int, kBlockSize> seen{};
  for (int k = 0; k < kBlockSize; ++k) {
    ++seen[static_cast<size_t>(order[static_cast<size_t>(k)])];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  // First few entries are the classic 0, 1, 8, 16, 9, 2.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 8);
  EXPECT_EQ(order[3], 16);
  // Inverse really is the inverse.
  const auto& inv = zigzag_inverse();
  for (int k = 0; k < kBlockSize; ++k) {
    EXPECT_EQ(inv[static_cast<size_t>(order[static_cast<size_t>(k)])], k);
  }
}

TEST(Quant, QuantizeDequantizeApproximates) {
  double dct[kBlockSize];
  for (int i = 0; i < kBlockSize; ++i) dct[i] = i * 7.3 - 200.0;
  int16_t q[kBlockSize];
  quantize(dct, standard_luma_table(), q);
  double back[kBlockSize];
  dequantize(q, standard_luma_table(), back);
  for (int i = 0; i < kBlockSize; ++i) {
    EXPECT_NEAR(back[i], dct[i],
                standard_luma_table()[static_cast<size_t>(i)] / 2.0 + 1e-9);
  }
}

TEST(Huffman, BitCategory) {
  EXPECT_EQ(bit_category(0), 0);
  EXPECT_EQ(bit_category(1), 1);
  EXPECT_EQ(bit_category(-1), 1);
  EXPECT_EQ(bit_category(2), 2);
  EXPECT_EQ(bit_category(-3), 2);
  EXPECT_EQ(bit_category(255), 8);
  EXPECT_EQ(bit_category(-1024), 11);
}

TEST(Huffman, SymbolRoundTripAllTables) {
  for (const HuffTable* table : {&std_dc_luma(), &std_dc_chroma()}) {
    for (int s = 0; s < 12; ++s) {
      BitWriter w(false);
      table->encode(w, static_cast<uint8_t>(s));
      w.flush();
      BitReader r(w.bytes().data(), w.bytes().size(), false);
      EXPECT_EQ(table->decode(r), s);
    }
  }
  // AC tables: every (run, size) symbol that has a code.
  for (const HuffTable* table : {&std_ac_luma(), &std_ac_chroma()}) {
    for (int run = 0; run < 16; ++run) {
      for (int size = (run == 0 || run == 15) ? 0 : 1; size <= 10; ++size) {
        if (run == 15 && size == 0) size = 0;  // ZRL
        if (run != 0 && run != 15 && size == 0) continue;
        const uint8_t symbol = static_cast<uint8_t>((run << 4) | size);
        if (run == 0 && size == 0) {
          // EOB exists.
        }
        BitWriter w(false);
        table->encode(w, symbol);
        w.flush();
        BitReader r(w.bytes().data(), w.bytes().size(), false);
        EXPECT_EQ(table->decode(r), symbol);
        if (run == 0 && size == 0) break;
      }
    }
  }
}

TEST(Huffman, BlockRoundTrip) {
  int16_t coeffs[kBlockSize] = {};
  coeffs[0] = -57;  // DC
  coeffs[1] = 45;
  coeffs[8] = -30;
  coeffs[16] = 4;
  coeffs[63] = 2;  // forces a long zero run + final coefficient
  int enc_dc = 0;
  BitWriter w(true);
  encode_block(coeffs, enc_dc, std_dc_luma(), std_ac_luma(), w);
  w.flush();

  int dec_dc = 0;
  BitReader r(w.bytes().data(), w.bytes().size(), true);
  int16_t out[kBlockSize];
  decode_block(r, dec_dc, std_dc_luma(), std_ac_luma(), out);
  for (int i = 0; i < kBlockSize; ++i) {
    EXPECT_EQ(out[i], coeffs[i]) << "coefficient " << i;
  }
}

TEST(Huffman, MultiBlockDcPrediction) {
  int16_t block_a[kBlockSize] = {};
  int16_t block_b[kBlockSize] = {};
  block_a[0] = 100;
  block_b[0] = 90;
  int enc_dc = 0;
  BitWriter w(true);
  encode_block(block_a, enc_dc, std_dc_luma(), std_ac_luma(), w);
  encode_block(block_b, enc_dc, std_dc_luma(), std_ac_luma(), w);
  w.flush();
  EXPECT_EQ(enc_dc, 90);

  int dec_dc = 0;
  BitReader r(w.bytes().data(), w.bytes().size(), true);
  int16_t out[kBlockSize];
  decode_block(r, dec_dc, std_dc_luma(), std_ac_luma(), out);
  EXPECT_EQ(out[0], 100);
  decode_block(r, dec_dc, std_dc_luma(), std_ac_luma(), out);
  EXPECT_EQ(out[0], 90);
}

TEST(Yuv, SyntheticVideoDeterministic) {
  const YuvVideo a = generate_synthetic_video(64, 48, 3, 7);
  const YuvVideo b = generate_synthetic_video(64, 48, 3, 7);
  ASSERT_EQ(a.frames.size(), 3u);
  EXPECT_EQ(a.frames[1].y, b.frames[1].y);
  EXPECT_EQ(a.frames[2].u, b.frames[2].u);
  // Frames differ over time (motion).
  EXPECT_NE(a.frames[0].y, a.frames[2].y);
}

TEST(Yuv, FileRoundTrip) {
  const YuvVideo video = generate_synthetic_video(32, 16, 2);
  const std::string path = std::string(::testing::TempDir()) + "rt.yuv";
  write_yuv_file(path, video);
  const YuvVideo back = read_yuv_file(path, 32, 16);
  ASSERT_EQ(back.frames.size(), 2u);
  EXPECT_EQ(back.frames[0].y, video.frames[0].y);
  EXPECT_EQ(back.frames[1].v, video.frames[1].v);
  std::remove(path.c_str());
}

TEST(Yuv, PsnrIdenticalIsInfinite) {
  std::vector<uint8_t> plane(100, 42);
  EXPECT_TRUE(std::isinf(psnr(plane, plane)));
  std::vector<uint8_t> other = plane;
  other[0] = 43;
  EXPECT_GT(psnr(plane, other), 40.0);
}

TEST(Jpeg, EncodeDecodeRoundTripPsnr) {
  const YuvVideo video = generate_synthetic_video(64, 48, 1);
  const YuvFrame& frame = video.frames[0];
  const std::vector<uint8_t> bytes = encode_jpeg(frame, {.quality = 75});
  ASSERT_GT(bytes.size(), 100u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0xD8);
  EXPECT_EQ(bytes[bytes.size() - 2], 0xFF);
  EXPECT_EQ(bytes.back(), 0xD9);

  const YuvFrame decoded = decode_jpeg(bytes);
  ASSERT_EQ(decoded.width, frame.width);
  ASSERT_EQ(decoded.height, frame.height);
  EXPECT_GT(psnr(frame.y, decoded.y), 30.0) << "luma PSNR too low";
  EXPECT_GT(psnr(frame.u, decoded.u), 30.0);
  EXPECT_GT(psnr(frame.v, decoded.v), 30.0);
}

TEST(Jpeg, FastDctMatchesNaiveQuality) {
  const YuvVideo video = generate_synthetic_video(64, 48, 1);
  const YuvFrame& frame = video.frames[0];
  const YuvFrame slow = decode_jpeg(encode_jpeg(frame, {.quality = 75,
                                                        .fast_dct = false}));
  const YuvFrame fast = decode_jpeg(encode_jpeg(frame, {.quality = 75,
                                                        .fast_dct = true}));
  // The two DCTs quantize almost identically; reconstructions agree.
  EXPECT_GT(psnr(slow.y, fast.y), 45.0);
}

TEST(Jpeg, HigherQualityMeansMoreBytesAndBetterPsnr) {
  const YuvVideo video = generate_synthetic_video(64, 48, 1);
  const YuvFrame& frame = video.frames[0];
  const auto lo = encode_jpeg(frame, {.quality = 20});
  const auto hi = encode_jpeg(frame, {.quality = 90});
  EXPECT_GT(hi.size(), lo.size());
  EXPECT_GT(psnr(frame.y, decode_jpeg(hi).y),
            psnr(frame.y, decode_jpeg(lo).y));
}

TEST(Jpeg, StageSplitMatchesMonolithicEncoder) {
  // Stage 1 + stage 2 (the P2G pipeline split) must produce the same bytes
  // as the all-in-one encoder.
  const YuvVideo video = generate_synthetic_video(48, 32, 1);
  const YuvFrame& frame = video.frames[0];
  const QuantTable luma = scale_table(standard_luma_table(), 50);
  const QuantTable chroma = scale_table(standard_chroma_table(), 50);
  const CoeffGrid y = dct_quantize_plane(frame.y.data(), frame.width,
                                         frame.height, luma, false);
  const CoeffGrid u = dct_quantize_plane(frame.u.data(), frame.chroma_width(),
                                         frame.chroma_height(), chroma,
                                         false);
  const CoeffGrid v = dct_quantize_plane(frame.v.data(), frame.chroma_width(),
                                         frame.chroma_height(), chroma,
                                         false);
  const auto split = encode_jpeg_from_coeffs(frame.width, frame.height, y, u,
                                             v, luma, chroma);
  const auto mono = encode_jpeg(frame, {.quality = 50});
  EXPECT_EQ(split, mono);
}

TEST(Mjpeg, WriterAndSplitRoundTrip) {
  const YuvVideo video = generate_synthetic_video(32, 32, 3);
  MjpegWriter writer;
  std::vector<size_t> sizes;
  for (const YuvFrame& frame : video.frames) {
    auto bytes = encode_jpeg(frame, {.quality = 50});
    sizes.push_back(bytes.size());
    writer.add_frame(std::move(bytes));
  }
  EXPECT_EQ(writer.frame_count(), 3u);
  EXPECT_EQ(writer.byte_count(), std::accumulate(sizes.begin(), sizes.end(),
                                                 size_t{0}));
  const auto frames = split_mjpeg(writer.stream());
  ASSERT_EQ(frames.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].size(), sizes[i]);
    const YuvFrame decoded = decode_jpeg(frames[i]);
    EXPECT_GT(psnr(video.frames[i].y, decoded.y), 28.0);
  }
}

TEST(Mjpeg, RejectsGarbageFrame) {
  MjpegWriter writer;
  EXPECT_THROW(writer.add_frame({0x00, 0x01}), Error);
}

TEST(Mjpeg, TruncatedStreamThrows) {
  const YuvVideo video = generate_synthetic_video(32, 32, 1);
  MjpegWriter writer;
  writer.add_frame(encode_jpeg(video.frames[0]));
  std::vector<uint8_t> truncated = writer.stream();
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW(split_mjpeg(truncated), Error);
}

}  // namespace
}  // namespace p2g::media
