// Tests for the execution-trace exporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/runtime.h"
#include "workloads/mul2plus5.h"

namespace p2g {
namespace {

TEST(TraceCollector, SpansSerializeAsChromeEvents) {
  TraceCollector trace;
  trace.record(TraceCollector::Span{"mul2", 1'000'000, 5'000, 0, 3, 2});
  trace.record(TraceCollector::Span{"analyze", 1'002'000, 500, -1, 0, 0});
  EXPECT_EQ(trace.span_count(), 2u);

  const std::string json = trace.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\": \"mul2\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": -1"), std::string::npos);
  EXPECT_NE(json.find("\"age\": 3"), std::string::npos);
  // Timestamps are normalized: the earliest span starts at ts 0.
  EXPECT_NE(json.find("\"ts\": 0"), std::string::npos);
}

// Regression (ISSUE 2): span names are escaped, so a kernel named with
// quotes or backslashes cannot corrupt the JSON document.
TEST(TraceCollector, SpanNamesAreJsonEscaped) {
  TraceCollector trace;
  trace.record(
      TraceCollector::Span{"evil\"name\\here", 1'000, 10, 0, 0, 0});
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"name\": \"evil\\\"name\\\\here\""),
            std::string::npos);
  EXPECT_EQ(json.find("\"evil\"name"), std::string::npos);
}

TEST(TraceCollector, CounterSamplesSerializeAsCounterEvents) {
  TraceCollector trace;
  trace.record_counter({"queue_depth", 1'000'000, 3});
  trace.record_counter({"queue_depth", 1'005'000, 7});
  EXPECT_EQ(trace.counter_sample_count(), 2u);
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  // Counter timestamps participate in epoch normalization.
  EXPECT_NE(json.find("\"ts\": 0"), std::string::npos);
}

TEST(TraceCollector, RuntimeWritesTraceFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "p2g_trace.json";
  workloads::Mul2Plus5 workload;
  RunOptions options;
  options.workers = 2;
  options.max_age = 2;
  options.trace_path = path;
  Runtime runtime(workload.build(), options);
  runtime.run();

  ASSERT_NE(runtime.trace(), nullptr);
  EXPECT_GT(runtime.trace()->span_count(), 10u)
      << "every work item and analyzer batch is a span";

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file written after the run";
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"mul2\""), std::string::npos);
  EXPECT_NE(content.find("\"plus5\""), std::string::npos);
  EXPECT_NE(content.find("\"print\""), std::string::npos);
  EXPECT_NE(content.find("\"analyze\""), std::string::npos);
  // Balanced JSON array.
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content[content.size() - 2], ']');
  std::remove(path.c_str());
}

TEST(TraceCollector, DisabledByDefault) {
  workloads::Mul2Plus5 workload;
  RunOptions options;
  options.max_age = 1;
  Runtime runtime(workload.build(), options);
  runtime.run();
  EXPECT_EQ(runtime.trace(), nullptr);
}

}  // namespace
}  // namespace p2g
