// Unit tests for field storage: write-once, aging, implicit resize, seal.
#include <gtest/gtest.h>

#include "core/field.h"

namespace p2g {
namespace {

FieldDecl decl1d(const std::string& name = "f") {
  FieldDecl d;
  d.id = 0;
  d.name = name;
  d.type = nd::ElementType::kInt32;
  d.rank = 1;
  return d;
}

nd::AnyBuffer ints(std::initializer_list<int32_t> values) {
  nd::AnyBuffer buf(nd::ElementType::kInt32,
                    nd::Extents({static_cast<int64_t>(values.size())}));
  int64_t i = 0;
  for (int32_t v : values) buf.data<int32_t>()[i++] = v;
  return buf;
}

TEST(FieldStorage, StoreWholeAndFetch) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({10, 11, 12, 13, 14}));
  EXPECT_EQ(fs.extents(0), nd::Extents({5}));
  EXPECT_EQ(fs.written_count(0), 5);
  const nd::AnyBuffer out = fs.fetch_whole(0);
  EXPECT_EQ(out.at<int32_t>(3), 13);
}

TEST(FieldStorage, WriteOnceViolationThrows) {
  FieldStorage fs(decl1d());
  const int32_t v = 7;
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v));
  try {
    fs.store(0, nd::Region::point({2}),
             reinterpret_cast<const std::byte*>(&v));
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
  }
}

TEST(FieldStorage, WriterProvenanceInViolationMessage) {
  FieldStorage fs(decl1d());
  fs.track_writers(true);
  const int32_t v = 7;
  const StoreOrigin first{"alpha", 0, {2}};
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v), &first);
  const StoreOrigin second{"beta", 0, {2}};
  try {
    fs.store(0, nd::Region::point({2}),
             reinterpret_cast<const std::byte*>(&v), &second);
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
    const std::string what = e.what();
    EXPECT_NE(what.find("kernel 'beta'"), std::string::npos) << what;
    EXPECT_NE(what.find("previously written by kernel 'alpha'"),
              std::string::npos)
        << what;
  }
}

TEST(FieldStorage, OriginWithoutTrackingStillNamesCurrentWriter) {
  FieldStorage fs(decl1d());
  const int32_t v = 7;
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v));
  const StoreOrigin second{"beta", 0, {2}};
  try {
    fs.store(0, nd::Region::point({2}),
             reinterpret_cast<const std::byte*>(&v), &second);
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kernel 'beta'"), std::string::npos) << what;
  }
}

TEST(FieldStorage, SameElementDifferentAgeIsFine) {
  FieldStorage fs(decl1d());
  const int32_t v = 7;
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v));
  EXPECT_NO_THROW(fs.store(1, nd::Region::point({2}),
                           reinterpret_cast<const std::byte*>(&v)));
  EXPECT_EQ(fs.live_ages(), (std::vector<Age>{0, 1}));
}

TEST(FieldStorage, ImplicitResizeGrowsExtents) {
  FieldStorage fs(decl1d());
  const int32_t a = 1;
  const int32_t b = 2;
  fs.store(0, nd::Region::point({0}),
           reinterpret_cast<const std::byte*>(&a));
  EXPECT_EQ(fs.extents(0), nd::Extents({1}));
  StoreResult r = fs.store(0, nd::Region::point({9}),
                           reinterpret_cast<const std::byte*>(&b));
  EXPECT_TRUE(r.resized);
  EXPECT_EQ(fs.extents(0), nd::Extents({10}));
  // Existing data survives the resize.
  const nd::AnyBuffer out = fs.fetch(0, nd::Region::point({0}));
  EXPECT_EQ(out.at<int32_t>(0), 1);
}

TEST(FieldStorage, Resize2DRemapsWrittenBits) {
  FieldDecl d;
  d.id = 0;
  d.name = "grid";
  d.type = nd::ElementType::kInt32;
  d.rank = 2;
  FieldStorage fs(d);
  const int32_t v1 = 11;
  fs.store(0, nd::Region::point({1, 1}),
           reinterpret_cast<const std::byte*>(&v1));
  const int32_t v2 = 22;
  fs.store(0, nd::Region::point({3, 5}),
           reinterpret_cast<const std::byte*>(&v2));
  EXPECT_EQ(fs.extents(0), nd::Extents({4, 6}));
  EXPECT_TRUE(fs.region_written(0, nd::Region::point({1, 1})));
  EXPECT_TRUE(fs.region_written(0, nd::Region::point({3, 5})));
  EXPECT_FALSE(fs.region_written(0, nd::Region::point({0, 0})));
  EXPECT_EQ(fs.fetch(0, nd::Region::point({1, 1})).at<int32_t>(0), 11);
  // Re-storing a remapped cell still violates write-once.
  EXPECT_THROW(fs.store(0, nd::Region::point({1, 1}),
                        reinterpret_cast<const std::byte*>(&v1)),
               Error);
}

TEST(FieldStorage, SealMakesExtentsFinal) {
  FieldStorage fs(decl1d());
  fs.seal(0, nd::Extents({3}));
  EXPECT_TRUE(fs.is_sealed(0));
  EXPECT_FALSE(fs.is_complete(0));
  const int32_t v = 1;
  fs.store(0, nd::Region::point({1}),
           reinterpret_cast<const std::byte*>(&v));
  try {
    fs.store(0, nd::Region::point({5}),
             reinterpret_cast<const std::byte*>(&v));
    FAIL() << "store beyond sealed extents must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kOutOfRange);
  }
}

TEST(FieldStorage, CompletenessRequiresSealAndAllWritten) {
  FieldStorage fs(decl1d());
  const int32_t v = 9;
  fs.store(0, nd::Region::point({0}),
           reinterpret_cast<const std::byte*>(&v));
  fs.store(0, nd::Region::point({1}),
           reinterpret_cast<const std::byte*>(&v));
  EXPECT_FALSE(fs.is_complete(0)) << "not sealed yet";
  fs.seal(0, nd::Extents({2}));
  EXPECT_TRUE(fs.is_complete(0));
  fs.seal(0, nd::Extents({2}));  // idempotent
  EXPECT_TRUE(fs.is_complete(0));
}

TEST(FieldStorage, SealAtUnionWhenDataExceedsProposal) {
  FieldStorage fs(decl1d());
  const int32_t v = 9;
  fs.store(0, nd::Region::point({7}),
           reinterpret_cast<const std::byte*>(&v));
  fs.seal(0, nd::Extents({3}));
  EXPECT_EQ(fs.extents(0), nd::Extents({8}));
}

TEST(FieldStorage, RegionWrittenPartial) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({1, 2, 3}));
  EXPECT_TRUE(fs.region_written(0, nd::Region({nd::Interval{0, 3}})));
  EXPECT_FALSE(fs.region_written(0, nd::Region({nd::Interval{0, 4}})))
      << "outside current extents";
  EXPECT_FALSE(fs.region_written(1, nd::Region::point({0})))
      << "untouched age";
}

TEST(FieldStorage, ReleaseAgeFreesMemory) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({1, 2, 3}));
  fs.store_whole(1, ints({4, 5, 6}));
  const size_t before = fs.memory_bytes();
  fs.release_age(0);
  EXPECT_LT(fs.memory_bytes(), before);
  EXPECT_EQ(fs.live_ages(), (std::vector<Age>{1}));
}

TEST(FieldStorage, NegativeAgeRejected) {
  FieldStorage fs(decl1d());
  const int32_t v = 1;
  EXPECT_THROW(fs.store(-1, nd::Region::point({0}),
                        reinterpret_cast<const std::byte*>(&v)),
               Error);
}

}  // namespace
}  // namespace p2g
