// Unit tests for field storage: write-once, aging, implicit resize, seal,
// and the zero-copy view path (aliasing, lifetime under release_age,
// concurrent readers).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/field.h"

namespace p2g {
namespace {

FieldDecl decl1d(const std::string& name = "f") {
  FieldDecl d;
  d.id = 0;
  d.name = name;
  d.type = nd::ElementType::kInt32;
  d.rank = 1;
  return d;
}

nd::AnyBuffer ints(std::initializer_list<int32_t> values) {
  nd::AnyBuffer buf(nd::ElementType::kInt32,
                    nd::Extents({static_cast<int64_t>(values.size())}));
  int64_t i = 0;
  for (int32_t v : values) buf.data<int32_t>()[i++] = v;
  return buf;
}

TEST(FieldStorage, StoreWholeAndFetch) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({10, 11, 12, 13, 14}));
  EXPECT_EQ(fs.extents(0), nd::Extents({5}));
  EXPECT_EQ(fs.written_count(0), 5);
  const nd::AnyBuffer out = fs.fetch_whole(0);
  EXPECT_EQ(out.at<int32_t>(3), 13);
}

TEST(FieldStorage, WriteOnceViolationThrows) {
  FieldStorage fs(decl1d());
  const int32_t v = 7;
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v));
  try {
    fs.store(0, nd::Region::point({2}),
             reinterpret_cast<const std::byte*>(&v));
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
  }
}

TEST(FieldStorage, WriterProvenanceInViolationMessage) {
  FieldStorage fs(decl1d());
  fs.track_writers(true);
  const int32_t v = 7;
  const StoreOrigin first{"alpha", 0, {2}};
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v), &first);
  const StoreOrigin second{"beta", 0, {2}};
  try {
    fs.store(0, nd::Region::point({2}),
             reinterpret_cast<const std::byte*>(&v), &second);
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
    const std::string what = e.what();
    EXPECT_NE(what.find("kernel 'beta'"), std::string::npos) << what;
    EXPECT_NE(what.find("previously written by kernel 'alpha'"),
              std::string::npos)
        << what;
  }
}

TEST(FieldStorage, OriginWithoutTrackingStillNamesCurrentWriter) {
  FieldStorage fs(decl1d());
  const int32_t v = 7;
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v));
  const StoreOrigin second{"beta", 0, {2}};
  try {
    fs.store(0, nd::Region::point({2}),
             reinterpret_cast<const std::byte*>(&v), &second);
    FAIL() << "expected write-once violation";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kernel 'beta'"), std::string::npos) << what;
  }
}

TEST(FieldStorage, SameElementDifferentAgeIsFine) {
  FieldStorage fs(decl1d());
  const int32_t v = 7;
  fs.store(0, nd::Region::point({2}),
           reinterpret_cast<const std::byte*>(&v));
  EXPECT_NO_THROW(fs.store(1, nd::Region::point({2}),
                           reinterpret_cast<const std::byte*>(&v)));
  EXPECT_EQ(fs.live_ages(), (std::vector<Age>{0, 1}));
}

TEST(FieldStorage, ImplicitResizeGrowsExtents) {
  FieldStorage fs(decl1d());
  const int32_t a = 1;
  const int32_t b = 2;
  fs.store(0, nd::Region::point({0}),
           reinterpret_cast<const std::byte*>(&a));
  EXPECT_EQ(fs.extents(0), nd::Extents({1}));
  StoreResult r = fs.store(0, nd::Region::point({9}),
                           reinterpret_cast<const std::byte*>(&b));
  EXPECT_TRUE(r.resized);
  EXPECT_EQ(fs.extents(0), nd::Extents({10}));
  // Existing data survives the resize.
  const nd::AnyBuffer out = fs.fetch(0, nd::Region::point({0}));
  EXPECT_EQ(out.at<int32_t>(0), 1);
}

TEST(FieldStorage, Resize2DRemapsWrittenBits) {
  FieldDecl d;
  d.id = 0;
  d.name = "grid";
  d.type = nd::ElementType::kInt32;
  d.rank = 2;
  FieldStorage fs(d);
  const int32_t v1 = 11;
  fs.store(0, nd::Region::point({1, 1}),
           reinterpret_cast<const std::byte*>(&v1));
  const int32_t v2 = 22;
  fs.store(0, nd::Region::point({3, 5}),
           reinterpret_cast<const std::byte*>(&v2));
  EXPECT_EQ(fs.extents(0), nd::Extents({4, 6}));
  EXPECT_TRUE(fs.region_written(0, nd::Region::point({1, 1})));
  EXPECT_TRUE(fs.region_written(0, nd::Region::point({3, 5})));
  EXPECT_FALSE(fs.region_written(0, nd::Region::point({0, 0})));
  EXPECT_EQ(fs.fetch(0, nd::Region::point({1, 1})).at<int32_t>(0), 11);
  // Re-storing a remapped cell still violates write-once.
  EXPECT_THROW(fs.store(0, nd::Region::point({1, 1}),
                        reinterpret_cast<const std::byte*>(&v1)),
               Error);
}

TEST(FieldStorage, SealMakesExtentsFinal) {
  FieldStorage fs(decl1d());
  fs.seal(0, nd::Extents({3}));
  EXPECT_TRUE(fs.is_sealed(0));
  EXPECT_FALSE(fs.is_complete(0));
  const int32_t v = 1;
  fs.store(0, nd::Region::point({1}),
           reinterpret_cast<const std::byte*>(&v));
  try {
    fs.store(0, nd::Region::point({5}),
             reinterpret_cast<const std::byte*>(&v));
    FAIL() << "store beyond sealed extents must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kOutOfRange);
  }
}

TEST(FieldStorage, CompletenessRequiresSealAndAllWritten) {
  FieldStorage fs(decl1d());
  const int32_t v = 9;
  fs.store(0, nd::Region::point({0}),
           reinterpret_cast<const std::byte*>(&v));
  fs.store(0, nd::Region::point({1}),
           reinterpret_cast<const std::byte*>(&v));
  EXPECT_FALSE(fs.is_complete(0)) << "not sealed yet";
  fs.seal(0, nd::Extents({2}));
  EXPECT_TRUE(fs.is_complete(0));
  fs.seal(0, nd::Extents({2}));  // idempotent
  EXPECT_TRUE(fs.is_complete(0));
}

TEST(FieldStorage, SealAtUnionWhenDataExceedsProposal) {
  FieldStorage fs(decl1d());
  const int32_t v = 9;
  fs.store(0, nd::Region::point({7}),
           reinterpret_cast<const std::byte*>(&v));
  fs.seal(0, nd::Extents({3}));
  EXPECT_EQ(fs.extents(0), nd::Extents({8}));
}

TEST(FieldStorage, RegionWrittenPartial) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({1, 2, 3}));
  EXPECT_TRUE(fs.region_written(0, nd::Region({nd::Interval{0, 3}})));
  EXPECT_FALSE(fs.region_written(0, nd::Region({nd::Interval{0, 4}})))
      << "outside current extents";
  EXPECT_FALSE(fs.region_written(1, nd::Region::point({0})))
      << "untouched age";
}

TEST(FieldStorage, ReleaseAgeFreesMemory) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({1, 2, 3}));
  fs.store_whole(1, ints({4, 5, 6}));
  const size_t before = fs.memory_bytes();
  fs.release_age(0);
  EXPECT_LT(fs.memory_bytes(), before);
  EXPECT_EQ(fs.live_ages(), (std::vector<Age>{1}));
}

TEST(FieldStorage, NegativeAgeRejected) {
  FieldStorage fs(decl1d());
  const int32_t v = 1;
  EXPECT_THROW(fs.store(-1, nd::Region::point({0}),
                        reinterpret_cast<const std::byte*>(&v)),
               Error);
}

// --- zero-copy views -------------------------------------------------------

TEST(FieldStorageView, WholeFetchOfSealedAgeDoesNotAllocate) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({10, 11, 12}));
  fs.seal(0, nd::Extents({3}));

  // The whole point of the view path: fetching a sealed age must not touch
  // the allocator or copy the payload. The buffer was stored at its final
  // extents, so even the first (publishing) fetch is alias-only.
  const int64_t before = nd::buffer_alloc_count();
  const auto view = fs.try_fetch_view_whole(0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(nd::buffer_alloc_count(), before) << "fetch allocated or copied";

  EXPECT_TRUE(view->is_contiguous());
  EXPECT_EQ(view->extents(), nd::Extents({3}));
  EXPECT_EQ(view->at_flat<int32_t>(2), 12);

  // Repeated fetches alias the same memory.
  const auto again = fs.try_fetch_view_whole(0);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(view->raw(), again->raw());
  EXPECT_EQ(nd::buffer_alloc_count(), before);
}

TEST(FieldStorageView, UnsealedAgeYieldsNoView) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({1, 2, 3}));
  EXPECT_FALSE(fs.try_fetch_view_whole(0).has_value())
      << "unsealed buffers may still be reallocated; views must refuse";
  EXPECT_FALSE(fs.try_fetch_view(0, nd::Region::point({0})).has_value());
  fs.seal(0, nd::Extents({3}));
  EXPECT_TRUE(fs.try_fetch_view_whole(0).has_value());
}

TEST(FieldStorageView, ContiguousSubRegionAliasesStorage) {
  FieldDecl d;
  d.id = 0;
  d.name = "grid";
  d.type = nd::ElementType::kInt32;
  d.rank = 2;
  FieldStorage fs(d);
  nd::AnyBuffer grid(nd::ElementType::kInt32, nd::Extents({3, 4}));
  for (int64_t i = 0; i < 12; ++i) grid.data<int32_t>()[i] = 100 + i;
  fs.store_whole(0, grid);
  fs.seal(0, nd::Extents({3, 4}));

  // Row 1 is one contiguous run: dense view, no copy.
  const int64_t before = nd::buffer_alloc_count();
  const auto row = fs.try_fetch_view(
      0, nd::Region({nd::Interval{1, 2}, nd::Interval{0, 4}}));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(nd::buffer_alloc_count(), before);
  EXPECT_TRUE(row->is_contiguous());
  EXPECT_EQ(row->at_flat<int32_t>(0), 104);
  EXPECT_EQ(row->at_flat<int32_t>(3), 107);
}

TEST(FieldStorageView, StridedColumnViewMatchesCopyFetch) {
  FieldDecl d;
  d.id = 0;
  d.name = "grid";
  d.type = nd::ElementType::kInt32;
  d.rank = 2;
  FieldStorage fs(d);
  nd::AnyBuffer grid(nd::ElementType::kInt32, nd::Extents({3, 4}));
  for (int64_t i = 0; i < 12; ++i) grid.data<int32_t>()[i] = 100 + i;
  fs.store_whole(0, grid);
  fs.seal(0, nd::Extents({3, 4}));

  // Column 2 is strided (stride 4 between elements) but still zero-copy.
  const nd::Region column({nd::Interval{0, 3}, nd::Interval{2, 3}});
  const int64_t before = nd::buffer_alloc_count();
  const auto view = fs.try_fetch_view(0, column);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(nd::buffer_alloc_count(), before) << "strided views still alias";
  EXPECT_FALSE(view->is_contiguous());
  EXPECT_EQ(view->extents(), nd::Extents({3, 1}));
  EXPECT_EQ(view->at_flat<int32_t>(0), 102);
  EXPECT_EQ(view->at_flat<int32_t>(1), 106);
  EXPECT_EQ(view->at<int32_t>({2, 0}), 110);
  EXPECT_THROW((void)view->raw(), Error) << "raw() is contiguous-only";

  // materialize() packs exactly what fetch() copies.
  const nd::AnyBuffer packed = view->materialize();
  const nd::AnyBuffer copied = fs.fetch(0, column);
  ASSERT_EQ(packed.element_count(), copied.element_count());
  for (int64_t i = 0; i < packed.element_count(); ++i) {
    EXPECT_EQ(packed.at<int32_t>(i), copied.at<int32_t>(i));
  }
}

TEST(FieldStorageView, ViewOutlivesReleaseAge) {
  FieldStorage fs(decl1d());
  fs.store_whole(0, ints({7, 8, 9}));
  fs.seal(0, nd::Extents({3}));
  const auto view = fs.try_fetch_view_whole(0);
  ASSERT_TRUE(view.has_value());

  fs.release_age(0);
  EXPECT_TRUE(fs.live_ages().empty());
  EXPECT_FALSE(fs.try_fetch_view_whole(0).has_value())
      << "released ages stop handing out new views";

  // The keepalive keeps the payload valid for the view already held.
  EXPECT_EQ(view->at_flat<int32_t>(0), 7);
  EXPECT_EQ(view->at_flat<int32_t>(2), 9);
}

TEST(FieldStorageView, LazySealedAgePublishesOnFirstFetch) {
  FieldStorage fs(decl1d());
  // Sealed but only partially stored: the buffer is smaller than the seal
  // until publish grows it (the elided-fusion-intermediate shape).
  const int32_t v = 5;
  fs.store(0, nd::Region::point({0}),
           reinterpret_cast<const std::byte*>(&v));
  fs.seal(0, nd::Extents({4}));
  const auto view = fs.try_fetch_view_whole(0);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->extents(), nd::Extents({4}));
  EXPECT_EQ(view->at_flat<int32_t>(0), 5);
}

// Concurrent readers hold views across release_age while a writer keeps
// producing new ages — the race the keepalive + lock-free seal index must
// survive. Run under P2G_SANITIZE=thread to let TSan check it.
TEST(FieldStorageStress, ConcurrentViewsAcrossRelease) {
  constexpr Age kAges = 96;
  constexpr int kReaders = 4;
  constexpr int64_t kElems = 64;

  FieldStorage fs(decl1d("stress"));
  for (Age a = 0; a < kAges; ++a) {
    nd::AnyBuffer buf(nd::ElementType::kInt32, nd::Extents({kElems}));
    for (int64_t i = 0; i < kElems; ++i) {
      buf.data<int32_t>()[i] = static_cast<int32_t>(a);
    }
    fs.store_whole(a, buf);
    fs.seal(a, nd::Extents({kElems}));
  }

  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> views_read{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&fs, &mismatches, &views_read, t] {
      for (int iter = 0; iter < 4000; ++iter) {
        const Age a = (iter * 13 + t * 7) % kAges;
        const auto view = fs.try_fetch_view_whole(a);
        if (!view) continue;  // already released: allowed
        // Hold the view and read it fully — release_age may run right now.
        for (int64_t i = 0; i < view->element_count(); ++i) {
          if (view->at_flat<int32_t>(i) != static_cast<int32_t>(a)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        views_read.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread releaser([&fs] {
    for (Age a = 0; a < kAges; ++a) fs.release_age(a);
  });
  for (std::thread& r : readers) r.join();
  releaser.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(views_read.load(), 0) << "test raced to nothing; weaken it";
  EXPECT_TRUE(fs.live_ages().empty());
}

}  // namespace
}  // namespace p2g
