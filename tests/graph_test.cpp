// Unit tests for the static dependency graphs, partitioners and topology.
#include <gtest/gtest.h>

#include "graph/partition.h"
#include "graph/static_graph.h"
#include "graph/tabu.h"
#include "graph/topology.h"
#include "workloads/kmeans.h"
#include "workloads/mul2plus5.h"

namespace p2g::graph {
namespace {

Program mul2plus5_program() {
  workloads::Mul2Plus5 workload;
  return workload.build();
}

TEST(IntermediateGraphTest, BipartiteStructureOfThePaperExample) {
  const Program program = mul2plus5_program();
  const IntermediateGraph g = IntermediateGraph::from_program(program);
  // 4 kernels + 2 fields.
  EXPECT_EQ(g.nodes.size(), 6u);
  // init:1 store, mul2:1+1, plus5:1+1, print:2 fetches => 7 edges.
  EXPECT_EQ(g.edges.size(), 7u);
  // Every edge connects a kernel to a field (bipartite).
  for (const auto& e : g.edges) {
    EXPECT_NE(g.nodes[e.from].kind, g.nodes[e.to].kind);
  }
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("mul2"), std::string::npos);
  EXPECT_NE(dot.find("m_data"), std::string::npos);
  EXPECT_NE(dot.find("age+1"), std::string::npos) << "aging edge labeled";
}

TEST(FinalGraphTest, MergesFieldVerticesAway) {
  const Program program = mul2plus5_program();
  const FinalGraph g = FinalGraph::from_program(program);
  EXPECT_EQ(g.kernel_count(), 4u);

  auto has_edge = [&](const char* from, const char* to) {
    const KernelId f = program.find_kernel(from);
    const KernelId t = program.find_kernel(to);
    for (const auto& e : g.edges) {
      if (e.from == f && e.to == t) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge("init", "mul2"));    // via m_data
  EXPECT_TRUE(has_edge("init", "print"));   // via m_data
  EXPECT_TRUE(has_edge("mul2", "plus5"));   // via p_data
  EXPECT_TRUE(has_edge("mul2", "print"));   // via p_data
  EXPECT_TRUE(has_edge("plus5", "mul2"));   // via m_data (cycle!)
  EXPECT_TRUE(has_edge("plus5", "print"));  // via m_data
  EXPECT_FALSE(has_edge("print", "mul2"));  // print stores nothing
}

TEST(FinalGraphTest, AgingCycleIsNotZeroOffset) {
  const Program program = mul2plus5_program();
  const FinalGraph g = FinalGraph::from_program(program);
  // mul2 -> plus5 -> mul2 is a cycle, but the plus5 -> mul2 edge carries
  // age offset +1, so it unrolls into a DAG at runtime.
  EXPECT_FALSE(g.has_zero_offset_cycle());
}

TEST(FinalGraphTest, DetectsZeroOffsetCycle) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  auto body = [](KernelContext&) {};
  pb.kernel("k1")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
      .body(body);
  pb.kernel("k2")
      .index("x")
      .fetch("in", "b", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "a", AgeExpr::relative(0), Slice().var("x"))
      .body(body);
  const FinalGraph g = FinalGraph::from_program(pb.build());
  EXPECT_TRUE(g.has_zero_offset_cycle());
}

TEST(FinalGraphTest, MinOffsetWinsWhenStatementPairsDisagree) {
  // k1 writes field b through two store statements: one aged (+1), one
  // not (0). Deduplicating the merged k1 -> k2 edge must keep the
  // *minimum* offset — keeping whichever statement pair is seen first
  // would let the aging store shadow the zero-offset one and hide the
  // zero-offset k1 <-> k2 cycle from the scheduler.
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  auto body = [](KernelContext&) {};
  pb.kernel("k1")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("aged", "b", AgeExpr::relative(1), Slice().at(0))
      .store("flat", "b", AgeExpr::relative(0), Slice().at(1))
      .body(body);
  pb.kernel("k2")
      .index("x")
      .fetch("in", "b", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "a", AgeExpr::relative(0), Slice().var("x"))
      .body(body);
  const FinalGraph g = FinalGraph::from_program(pb.build());
  bool found = false;
  for (const auto& e : g.edges) {
    if (g.kernel_names[static_cast<size_t>(e.from)] == "k1" &&
        g.kernel_names[static_cast<size_t>(e.to)] == "k2") {
      EXPECT_EQ(e.age_offset, 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(g.has_zero_offset_cycle());
}

TEST(FinalGraphTest, InstrumentationWeights) {
  const Program program = mul2plus5_program();
  FinalGraph g = FinalGraph::from_program(program);
  InstrumentationReport report;
  KernelStats mul2;
  mul2.name = "mul2";
  mul2.instances = 500;
  mul2.kernel_ns = 4'000'000;
  report.kernels.push_back(mul2);
  g.apply_instrumentation(report);

  const auto mul2_id = static_cast<size_t>(program.find_kernel("mul2"));
  EXPECT_DOUBLE_EQ(g.node_weights[mul2_id], 4000.0);  // us
  for (const auto& e : g.edges) {
    if (static_cast<size_t>(e.from) == mul2_id) {
      EXPECT_DOUBLE_EQ(e.weight, 500.0);
    }
  }
}

TEST(PartitionTest, SinglePartIsTrivial) {
  const FinalGraph g = FinalGraph::from_program(mul2plus5_program());
  const Partition p = partition_graph(g, 1);
  for (int part : p.assignment) EXPECT_EQ(part, 0);
  EXPECT_DOUBLE_EQ(p.cut_weight(g), 0.0);
}

/// A graph with two obvious clusters joined by one light edge.
FinalGraph two_cluster_graph() {
  FinalGraph g;
  for (int i = 0; i < 8; ++i) {
    g.kernel_names.push_back("k" + std::to_string(i));
    g.node_weights.push_back(1.0);
  }
  auto edge = [&](int a, int b, double w) {
    g.edges.push_back(FinalGraph::Edge{a, b, 0, 0, w});
  };
  // Cluster A: 0-3, cluster B: 4-7, heavy internal edges.
  for (int i = 0; i < 3; ++i) edge(i, i + 1, 10.0);
  for (int i = 4; i < 7; ++i) edge(i, i + 1, 10.0);
  edge(3, 4, 1.0);  // the bridge
  return g;
}

TEST(PartitionTest, GreedyPlusKlFindsTheBridgeCut) {
  const FinalGraph g = two_cluster_graph();
  const Partition p = partition_graph(g, 2);
  EXPECT_DOUBLE_EQ(p.cut_weight(g), 1.0) << "only the bridge is cut";
  EXPECT_LE(p.imbalance(g), 1.01);
  // All of cluster A in one part, all of B in the other.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(p.assignment[static_cast<size_t>(i)], p.assignment[0]);
  }
  for (int i = 5; i < 8; ++i) {
    EXPECT_EQ(p.assignment[static_cast<size_t>(i)], p.assignment[4]);
  }
  EXPECT_NE(p.assignment[0], p.assignment[4]);
}

TEST(PartitionTest, TabuMatchesOrBeatsGreedyKl) {
  const FinalGraph g = two_cluster_graph();
  const Partition kl = partition_graph(g, 2);
  const Partition tabu = tabu_partition(g, 2);
  EXPECT_LE(tabu.cut_weight(g), kl.cut_weight(g) + 1e-9);
}

TEST(PartitionTest, KlRespectsBalanceCap) {
  FinalGraph g;
  for (int i = 0; i < 6; ++i) {
    g.kernel_names.push_back("k" + std::to_string(i));
    g.node_weights.push_back(1.0);
  }
  // A clique: any cut is equally bad, so KL is tempted to collapse
  // everything into one part; the balance cap must prevent that.
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      g.edges.push_back(FinalGraph::Edge{a, b, 0, 0, 1.0});
    }
  }
  Partition p = greedy_partition(g, 2);
  kl_refine(g, p, 8, 1.5);
  EXPECT_LE(p.imbalance(g), 1.5 + 1e-9);
}

TEST(PartitionTest, KmeansGraphPartitions) {
  workloads::KmeansWorkload workload;
  const FinalGraph g = FinalGraph::from_program(workload.build());
  const Partition p = partition_graph(g, 2);
  EXPECT_EQ(p.assignment.size(), g.kernel_count());
  EXPECT_GE(p.cut_weight(g), 0.0);
}

TEST(TopologyTest, LocalMachineHasCores) {
  const NodeTopology node = NodeTopology::local_machine("host");
  EXPECT_GE(node.units.size(), 1u);
  EXPECT_GT(node.compute_capacity(), 0.0);
}

TEST(TopologyTest, AddRemoveAndMerge) {
  GlobalTopology topo;
  NodeTopology a;
  a.name = "a";
  a.units.assign(4, ProcessingUnit{});
  NodeTopology b;
  b.name = "b";
  b.units.assign(8, ProcessingUnit{});
  topo.add_node(a);
  topo.add_node(b);
  topo.connect(0, 1, 10000.0, 50.0);
  EXPECT_EQ(topo.nodes().size(), 2u);
  EXPECT_DOUBLE_EQ(topo.total_compute(), 12.0);
  EXPECT_EQ(topo.suggested_parts(), 2);

  // Replacing by name keeps the count.
  a.units.assign(2, ProcessingUnit{});
  topo.add_node(a);
  EXPECT_EQ(topo.nodes().size(), 2u);
  EXPECT_DOUBLE_EQ(topo.total_compute(), 10.0);

  EXPECT_TRUE(topo.remove_node("a"));
  EXPECT_FALSE(topo.remove_node("a"));
  EXPECT_EQ(topo.nodes().size(), 1u);
  EXPECT_TRUE(topo.interconnects().empty()) << "dangling link dropped";
}

TEST(TopologyTest, PlacementPrefersFastNodesAndBalances) {
  GlobalTopology topo;
  NodeTopology fast;
  fast.name = "fast";
  fast.units.assign(8, ProcessingUnit{});
  NodeTopology slow;
  slow.name = "slow";
  slow.units.assign(2, ProcessingUnit{});
  topo.add_node(fast);
  topo.add_node(slow);

  const std::vector<double> part_weights{100.0, 10.0};
  const std::vector<size_t> placement =
      topo.place_partitions(part_weights);
  EXPECT_EQ(placement[0], 0u) << "heaviest partition on the fastest node";
  EXPECT_EQ(placement[1], 1u);
}

TEST(TopologyTest, GpuUnitsRaiseCapacity) {
  NodeTopology node;
  node.name = "gpu-node";
  node.units.push_back(ProcessingUnit{ProcessingUnit::Type::kCpuCore, 1.0});
  node.units.push_back(ProcessingUnit{ProcessingUnit::Type::kGpu, 16.0});
  EXPECT_DOUBLE_EQ(node.compute_capacity(), 17.0);
}

}  // namespace
}  // namespace p2g::graph
