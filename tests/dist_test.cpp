// Tests for the simulated cluster: serialization, bus, execution nodes,
// master/HLS, distributed runs of the paper's workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>

#include "dist/bus.h"
#include "dist/master.h"
#include "dist/message.h"
#include "dist/serialize.h"
#include "net/wire.h"
#include "workloads/kmeans.h"
#include "workloads/mul2plus5.h"

namespace p2g::dist {
namespace {

TEST(Serialize, ScalarAndStringRoundTrip) {
  Writer w;
  w.u8(7);
  w.u32(123456);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");
  const std::vector<uint8_t> data{1, 2, 3};
  w.blob(data.data(), data.size());

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), data);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedMessageThrowsProtocolError) {
  Writer w;
  w.str("hello");
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(bytes.size() - 2);
  Reader r(bytes);
  try {
    r.str();
    FAIL() << "expected protocol error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(Messages, RemoteStoreRoundTrip) {
  RemoteStore store;
  store.field = 3;
  store.age = 17;
  store.region = nd::Region(std::vector<nd::Interval>{{2, 3}, {0, 64}});
  store.producer = 5;
  store.store_decl = 1;
  store.whole = false;
  store.payload = {10, 20, 30};

  const RemoteStore back = RemoteStore::decode(store.encode());
  EXPECT_EQ(back.field, 3);
  EXPECT_EQ(back.age, 17);
  EXPECT_EQ(back.region, store.region);
  EXPECT_EQ(back.producer, 5);
  EXPECT_EQ(back.store_decl, 1u);
  EXPECT_FALSE(back.whole);
  EXPECT_EQ(back.payload, store.payload);
}

TEST(Messages, TopologyReportRoundTrip) {
  TopologyReport report;
  report.topology.name = "node7";
  report.topology.memory_gb = 16.0;
  report.topology.units.push_back(
      graph::ProcessingUnit{graph::ProcessingUnit::Type::kGpu, 16.0});
  report.topology.buses.push_back(graph::Link{0, 0, 5000.0, 1.5});

  const TopologyReport back = TopologyReport::decode(report.encode());
  EXPECT_EQ(back.topology.name, "node7");
  EXPECT_DOUBLE_EQ(back.topology.memory_gb, 16.0);
  ASSERT_EQ(back.topology.units.size(), 1u);
  EXPECT_EQ(back.topology.units[0].type,
            graph::ProcessingUnit::Type::kGpu);
  ASSERT_EQ(back.topology.buses.size(), 1u);
  EXPECT_DOUBLE_EQ(back.topology.buses[0].bandwidth_mbps, 5000.0);
}

TEST(Messages, ProfileAndIdleReportRoundTrip) {
  ProfileReport profile;
  KernelStats stats;
  stats.name = "assign";
  stats.dispatches = 11;
  stats.instances = 12;
  stats.dispatch_ns = 13;
  stats.kernel_ns = 14;
  profile.report.kernels.push_back(stats);
  const ProfileReport back = ProfileReport::decode(profile.encode());
  ASSERT_EQ(back.report.kernels.size(), 1u);
  EXPECT_EQ(back.report.kernels[0].name, "assign");
  EXPECT_EQ(back.report.kernels[0].kernel_ns, 14);

  IdleReport idle{true, 100, 100};
  const IdleReport idle_back = IdleReport::decode(idle.encode());
  EXPECT_TRUE(idle_back.idle);
  EXPECT_EQ(idle_back.stores_sent, 100);
}

TEST(Messages, MetricsReportRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("events_total").add(9);
  registry.gauge("depth").set(-2);
  obs::Histogram& h = registry.histogram("lat_ns");
  h.record(5);
  h.record(900);

  MetricsReport report;
  report.node = "node3";
  report.snapshot = registry.snapshot();
  report.snapshot.series.push_back(
      obs::TimeSeries{"depth", {{100, 1}, {200, 4}}});

  const MetricsReport back = MetricsReport::decode(report.encode());
  EXPECT_EQ(back.node, "node3");
  ASSERT_NE(back.snapshot.find_counter("events_total"), nullptr);
  EXPECT_EQ(back.snapshot.find_counter("events_total")->value, 9);
  ASSERT_NE(back.snapshot.find_gauge("depth"), nullptr);
  EXPECT_EQ(back.snapshot.find_gauge("depth")->value, -2);
  const obs::HistogramSnapshot* lat = back.snapshot.find_histogram("lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2);
  EXPECT_EQ(lat->sum, 905);
  EXPECT_EQ(lat->min, 5);
  EXPECT_EQ(lat->max, 900);
  EXPECT_EQ(lat->buckets, report.snapshot.find_histogram("lat_ns")->buckets);
  const obs::TimeSeries* series = back.snapshot.find_series("depth");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->samples.size(), 2u);
  EXPECT_EQ(series->samples[1].t_ns, 200);
  EXPECT_EQ(series->samples[1].value, 4);
}

TEST(Bus, DirectedSendAndBroadcast) {
  MessageBus bus;
  auto a = bus.register_endpoint("a");
  auto b = bus.register_endpoint("b");
  auto c = bus.register_endpoint("c");

  Message m;
  m.type = MessageType::kShutdown;
  m.from = "a";
  bus.send("b", m);
  EXPECT_EQ(b->pop()->from, "a");
  EXPECT_TRUE(c->empty());

  bus.broadcast(m);  // from "a": delivered to b and c only
  EXPECT_TRUE(a->empty());
  EXPECT_FALSE(b->empty());
  EXPECT_FALSE(c->empty());
  EXPECT_EQ(bus.delivered(), 3);
}

TEST(Bus, TracksPerEndpointTraffic) {
  MessageBus bus;
  auto a = bus.register_endpoint("a");
  auto b = bus.register_endpoint("b");

  Message m;
  m.type = MessageType::kRemoteStore;
  m.from = "a";
  m.payload = {1, 2, 3, 4};
  bus.send("b", m);
  bus.send("b", m);

  const BusStats stats = bus.stats();
  EXPECT_EQ(stats.delivered, 2);
  EXPECT_EQ(stats.bytes, 8);
  ASSERT_EQ(stats.per_endpoint.count("b"), 1u);
  EXPECT_EQ(stats.per_endpoint.at("b").messages, 2);
  EXPECT_EQ(stats.per_endpoint.at("b").bytes, 8);
  EXPECT_EQ(stats.per_endpoint.count("a"), 0u);
}

TEST(Bus, UnknownEndpointThrows) {
  MessageBus bus;
  Message m;
  EXPECT_THROW(bus.send("nobody", m), Error);
}

TEST(Bus, DuplicateRegistrationThrows) {
  MessageBus bus;
  bus.register_endpoint("a");
  EXPECT_THROW(bus.register_endpoint("a"), Error);
}

TEST(Bus, ClosedBusReturnsStatusAndCountsDeadLetters) {
  MessageBus bus;
  bus.register_endpoint("a");
  bus.register_endpoint("b");

  Message m;
  m.type = MessageType::kRemoteStore;
  m.from = "a";
  EXPECT_EQ(bus.send("b", m), SendStatus::kDelivered);

  bus.close_all();
  EXPECT_EQ(bus.send("b", m), SendStatus::kClosed);
  EXPECT_EQ(bus.broadcast(m), 0);
  EXPECT_EQ(bus.stats().delivered, 1);
  EXPECT_EQ(bus.stats().dead_letters, 1);
}

TEST(Bus, DeadEndpointBlackholesTraffic) {
  MessageBus bus;
  bus.register_endpoint("a");
  auto b = bus.register_endpoint("b");
  auto c = bus.register_endpoint("c");

  bus.mark_dead("b");
  EXPECT_TRUE(bus.is_dead("b"));
  EXPECT_FALSE(bus.is_dead("c"));

  Message m;
  m.type = MessageType::kRemoteStore;
  m.from = "a";
  EXPECT_EQ(bus.send("b", m), SendStatus::kDead);
  EXPECT_EQ(bus.send("c", m), SendStatus::kDelivered);

  // Broadcast skips the dead endpoint but still reaches the live one.
  EXPECT_EQ(bus.broadcast(m), 1);
  EXPECT_FALSE(b->try_pop().has_value());
  EXPECT_EQ(bus.stats().dead_letters, 1);
}

// A shutdown racing concurrent senders must never throw or lose track of a
// message: every send resolves to kDelivered or kClosed, and the bus
// counters account for each attempt exactly once.
TEST(Bus, ShutdownRaceNeverThrowsAndConservesMessages) {
  MessageBus bus;
  bus.register_endpoint("a");
  bus.register_endpoint("b");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<int64_t> delivered{0};
  std::atomic<int64_t> rejected{0};
  std::vector<std::thread> senders;
  senders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&bus, &delivered, &rejected] {
      Message m;
      m.type = MessageType::kRemoteStore;
      m.from = "a";
      m.payload = {1};
      for (int i = 0; i < kPerThread; ++i) {
        switch (bus.send("b", m)) {
          case SendStatus::kDelivered:
            delivered.fetch_add(1);
            break;
          case SendStatus::kClosed:
            rejected.fetch_add(1);
            break;
          default:
            ADD_FAILURE() << "unexpected send status";
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  bus.close_all();
  for (std::thread& t : senders) t.join();

  EXPECT_EQ(delivered.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_EQ(bus.stats().delivered, delivered.load());
  EXPECT_EQ(bus.stats().dead_letters, rejected.load());
}

TEST(Messages, FaultToleranceMessagesRoundTrip) {
  DataEnvelope envelope;
  envelope.seq = 42;
  envelope.trace_id = 0xDEADBEEFCAFE0001ULL;
  envelope.parent_span = 0x1234567890ABCDEFULL;
  envelope.inner_type = MessageType::kRemoteStore;
  envelope.inner = {9, 8, 7, 6};
  const DataEnvelope envelope_back = DataEnvelope::decode(envelope.encode());
  EXPECT_EQ(envelope_back.seq, 42u);
  EXPECT_EQ(envelope_back.trace_id, envelope.trace_id);
  EXPECT_EQ(envelope_back.parent_span, envelope.parent_span);
  EXPECT_EQ(envelope_back.inner_type, MessageType::kRemoteStore);
  EXPECT_EQ(envelope_back.inner, envelope.inner);

  AckMsg ack{1234567890123ULL};
  EXPECT_EQ(AckMsg::decode(ack.encode()).cumulative, ack.cumulative);

  HeartbeatMsg beat{17, 987654321};
  const HeartbeatMsg beat_back = HeartbeatMsg::decode(beat.encode());
  EXPECT_EQ(beat_back.seq, 17);
  EXPECT_EQ(beat_back.sent_ns, 987654321);

  ReassignMsg reassign;
  reassign.dead = "node2";
  reassign.kernels = {{"stage1", "node0"}, {"stage3", "node1"}};
  const ReassignMsg reassign_back = ReassignMsg::decode(reassign.encode());
  EXPECT_EQ(reassign_back.dead, "node2");
  EXPECT_EQ(reassign_back.kernels, reassign.kernels);
}

// --- Codec truncation corpus ------------------------------------------
//
// Every wire codec must reject every strict prefix of a valid encoding
// (underflow mid-parse) and any trailing garbage (the decoders assert
// Reader::exhausted()) with ErrorKind::kProtocol — never crash, never
// silently accept.

struct CodecCase {
  std::string name;
  std::vector<uint8_t> bytes;
  std::function<void(const std::vector<uint8_t>&)> decode;
};

std::vector<CodecCase> codec_corpus() {
  std::vector<CodecCase> cases;

  RemoteStore store;
  store.field = 3;
  store.age = 17;
  store.region = nd::Region(std::vector<nd::Interval>{{2, 3}, {0, 4}});
  store.producer = 5;
  store.store_decl = 1;
  store.whole = true;
  store.payload = {10, 20, 30};
  cases.push_back({"RemoteStore", store.encode(),
                   [](const std::vector<uint8_t>& b) {
                     RemoteStore::decode(b);
                   }});

  TopologyReport topo;
  topo.topology.name = "node7";
  topo.topology.memory_gb = 16.0;
  topo.topology.units.push_back(
      graph::ProcessingUnit{graph::ProcessingUnit::Type::kGpu, 16.0});
  topo.topology.buses.push_back(graph::Link{0, 0, 5000.0, 1.5});
  cases.push_back({"TopologyReport", topo.encode(),
                   [](const std::vector<uint8_t>& b) {
                     TopologyReport::decode(b);
                   }});

  ProfileReport profile;
  KernelStats stats;
  stats.name = "assign";
  stats.dispatches = 11;
  stats.instances = 12;
  stats.dispatch_ns = 13;
  stats.kernel_ns = 14;
  profile.report.kernels.push_back(stats);
  cases.push_back({"ProfileReport", profile.encode(),
                   [](const std::vector<uint8_t>& b) {
                     ProfileReport::decode(b);
                   }});

  obs::MetricsRegistry registry;
  registry.counter("events_total").add(9);
  registry.gauge("depth").set(-2);
  registry.histogram("lat_ns").record(5);
  MetricsReport metrics;
  metrics.node = "node3";
  metrics.snapshot = registry.snapshot();
  metrics.snapshot.series.push_back(
      obs::TimeSeries{"depth", {{100, 1}, {200, 4}}});
  cases.push_back({"MetricsReport", metrics.encode(),
                   [](const std::vector<uint8_t>& b) {
                     MetricsReport::decode(b);
                   }});

  DataEnvelope envelope;
  envelope.seq = 9;
  envelope.trace_id = 0xABCDEF0102030405ULL;  // trace header (ISSUE 6)
  envelope.parent_span = 0x0504030201FEDCBAULL;
  envelope.inner_type = MessageType::kRemoteStore;
  envelope.inner = {1, 2, 3};
  cases.push_back({"DataEnvelope", envelope.encode(),
                   [](const std::vector<uint8_t>& b) {
                     DataEnvelope::decode(b);
                   }});

  AckMsg ack{77};
  cases.push_back(
      {"AckMsg", ack.encode(),
       [](const std::vector<uint8_t>& b) { AckMsg::decode(b); }});

  HeartbeatMsg beat{5, 123456789};
  cases.push_back(
      {"HeartbeatMsg", beat.encode(),
       [](const std::vector<uint8_t>& b) { HeartbeatMsg::decode(b); }});

  ReassignMsg reassign;
  reassign.dead = "node1";
  reassign.kernels = {{"stage1", "node0"}, {"stage2", "node2"}};
  cases.push_back({"ReassignMsg", reassign.encode(),
                   [](const std::vector<uint8_t>& b) {
                     ReassignMsg::decode(b);
                   }});

  IdleReport idle{true, 3, 4};
  cases.push_back(
      {"IdleReport", idle.encode(),
       [](const std::vector<uint8_t>& b) { IdleReport::decode(b); }});

  // Out-of-process wire format (src/net): a complete length-prefixed
  // frame, driven through decode_frame so every strict prefix — including
  // cuts inside the length word itself — throws kProtocol.
  net::NetEnvelope envelope_frame;
  envelope_frame.to = "node1";
  envelope_frame.msg.type = MessageType::kRemoteStore;
  envelope_frame.msg.from = "node0";
  envelope_frame.msg.payload = {9, 8, 7, 6};
  envelope_frame.msg.seq = 0xF1F2F3F4F5F6F7F8ULL;  // exercises u64<->i64
  envelope_frame.msg.attempt = 2;
  envelope_frame.msg.trace.trace_id = 0xABCDEF0102030405ULL;
  envelope_frame.msg.trace.span_id = 0x0504030201FEDCBAULL;
  cases.push_back({"NetFrame", net::encode_frame(envelope_frame),
                   [](const std::vector<uint8_t>& b) {
                     net::decode_frame(b);
                   }});

  net::HelloMsg hello;
  hello.name = "node2";
  hello.pid = 43210;
  cases.push_back({"HelloMsg", hello.encode(),
                   [](const std::vector<uint8_t>& b) {
                     net::HelloMsg::decode(b);
                   }});

  net::AssignMsg assign;
  assign.kernels = {{"src", "node0"}, {"xform", "node1"}, {"pump", "node2"}};
  assign.capture_fields = {"out"};
  cases.push_back({"AssignMsg", assign.encode(),
                   [](const std::vector<uint8_t>& b) {
                     net::AssignMsg::decode(b);
                   }});

  net::CaptureMsg capture;
  capture.field = "out";
  capture.age = 7;
  capture.payload = {1, 2, 3, 4, 5};
  cases.push_back({"CaptureMsg", capture.encode(),
                   [](const std::vector<uint8_t>& b) {
                     net::CaptureMsg::decode(b);
                   }});

  net::NodeDoneMsg done;
  done.ok = false;
  done.error = "kernel 'xform' threw";
  cases.push_back({"NodeDoneMsg", done.encode(),
                   [](const std::vector<uint8_t>& b) {
                     net::NodeDoneMsg::decode(b);
                   }});

  return cases;
}

TEST(Codecs, EveryStrictPrefixThrowsProtocolError) {
  for (const CodecCase& c : codec_corpus()) {
    ASSERT_FALSE(c.bytes.empty()) << c.name;
    EXPECT_NO_THROW(c.decode(c.bytes)) << c.name << " full encoding";
    for (size_t n = 0; n < c.bytes.size(); ++n) {
      const std::vector<uint8_t> prefix(c.bytes.begin(),
                                        c.bytes.begin() +
                                            static_cast<ptrdiff_t>(n));
      try {
        c.decode(prefix);
        ADD_FAILURE() << c.name << " accepted a strict prefix (" << n << "/"
                      << c.bytes.size() << " bytes)";
      } catch (const Error& e) {
        EXPECT_EQ(e.kind(), ErrorKind::kProtocol)
            << c.name << " prefix " << n;
      }
    }
  }
}

TEST(Codecs, TrailingGarbageThrowsProtocolError) {
  for (const CodecCase& c : codec_corpus()) {
    std::vector<uint8_t> extended = c.bytes;
    extended.push_back(0xEE);
    try {
      c.decode(extended);
      ADD_FAILURE() << c.name << " accepted trailing garbage";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kProtocol) << c.name;
    }
  }
}

TEST(Codecs, PreTraceDataEnvelopeRejectedCleanly) {
  // The pre-ISSUE-6 envelope layout was {seq, inner_type, blob}. Its
  // maximum-header form is strictly shorter than the new fixed header
  // (the trace words sit before the type byte), so decoding an
  // old-format envelope underflows mid-parse and throws kProtocol —
  // never a silent misread. Probe with several payload sizes, including
  // one whose *total* length exceeds the new minimum (the blob-length
  // word then lands inside the trace header and the final
  // require_exhausted/underflow check still rejects it).
  for (const size_t payload_bytes : {0u, 3u, 64u}) {
    Writer w;
    w.i64(42);  // seq
    w.u8(static_cast<uint8_t>(MessageType::kRemoteStore));
    const std::vector<uint8_t> payload(payload_bytes, 0x5A);
    w.blob(payload.data(), payload.size());
    try {
      DataEnvelope::decode(w.take());
      ADD_FAILURE() << "old-format envelope (payload " << payload_bytes
                    << "B) decoded without error";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kProtocol)
          << "payload " << payload_bytes;
    }
  }
}

TEST(DistributedRun, Mul2Plus5AcrossTwoNodes) {
  workloads::Mul2Plus5 workload;  // shared print sink across node programs

  MasterOptions options;
  options.nodes = 2;
  options.workers_per_node = 2;
  options.base_options.max_age = 3;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);

  // The paper's golden sequence survives distribution.
  ASSERT_EQ(workload.printed->size(), 4u);
  EXPECT_EQ((*workload.printed)[0],
            (std::vector<int32_t>{10, 11, 12, 13, 14, 20, 22, 24, 26, 28}));
  EXPECT_EQ((*workload.printed)[1],
            (std::vector<int32_t>{25, 27, 29, 31, 33, 50, 54, 58, 62, 66}));

  // Every kernel ran somewhere, exactly once per expected instance.
  const KernelStats* mul2 = report.combined.find("mul2");
  ASSERT_NE(mul2, nullptr);
  EXPECT_EQ(mul2->instances, 4 * 5);
  EXPECT_EQ(report.combined.find("print")->instances, 4);

  // If the partition actually split the graph, stores crossed the bus.
  const bool split =
      report.partition.cut_weight(master.final_graph()) > 0.0;
  if (split) {
    EXPECT_GT(report.messages_delivered, 0);
  }
  EXPECT_EQ(report.topology.nodes().size(), 2u);

  // Telemetry: every node shipped a snapshot, the master aggregated them,
  // and the bus accounted for the traffic per endpoint.
  ASSERT_EQ(report.node_metrics.size(), 2u);
  const obs::HistogramSnapshot* dispatch =
      report.combined_metrics.find_histogram("dispatch_latency_ns");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_GT(dispatch->count, 0);
  int64_t per_node_count = 0;
  for (const auto& [node, snapshot] : report.node_metrics) {
    if (const obs::HistogramSnapshot* h =
            snapshot.find_histogram("dispatch_latency_ns")) {
      per_node_count += h->count;
    }
  }
  EXPECT_EQ(dispatch->count, per_node_count)
      << "combined histogram is the bucket-wise sum of the node snapshots";
  EXPECT_EQ(report.bus.delivered, report.messages_delivered);
  ASSERT_EQ(report.bus.per_endpoint.count("master"), 1u);
  EXPECT_GT(report.bus.per_endpoint.at("master").bytes, 0)
      << "topology + metrics reports flow to the master";
}

TEST(DistributedRun, KmeansMatchesSequential) {
  workloads::KmeansWorkload workload;
  workload.config = workloads::KmeansConfig{.n = 40, .k = 4, .dim = 2,
                                            .iterations = 3, .seed = 5};

  MasterOptions options;
  options.nodes = 2;
  options.workers_per_node = 1;
  workload.apply_schedule(options.base_options);
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);

  ASSERT_FALSE(workload.snapshots->empty());
  EXPECT_EQ(workload.snapshots->back(),
            workloads::kmeans_sequential(workload.config))
      << "distribution must not change the result (determinism)";
}

TEST(DistributedRun, SingleNodeDegeneratesToLocalRun) {
  workloads::Mul2Plus5 workload;
  MasterOptions options;
  options.nodes = 1;
  options.base_options.max_age = 2;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(workload.printed->size(), 3u);
  EXPECT_DOUBLE_EQ(report.partition.cut_weight(master.final_graph()), 0.0);
}

TEST(DistributedRun, RepartitionUsesProfileWeights) {
  workloads::Mul2Plus5 workload;
  MasterOptions options;
  options.nodes = 2;
  options.base_options.max_age = 5;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  const graph::Partition refined = master.repartition(report);
  EXPECT_EQ(refined.assignment.size(),
            master.final_graph().kernel_count());
  // The reweighted partition is still sane.
  graph::FinalGraph weighted = master.final_graph();
  weighted.apply_instrumentation(report.combined);
  EXPECT_LE(refined.imbalance(weighted), 2.0);
}

TEST(DistributedRun, TabuPartitionerWorksEndToEnd) {
  workloads::Mul2Plus5 workload;
  MasterOptions options;
  options.nodes = 2;
  options.use_tabu = true;
  options.base_options.max_age = 2;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(workload.printed->size(), 3u);
}

}  // namespace
}  // namespace p2g::dist
