// Tests for the simulated cluster: serialization, bus, execution nodes,
// master/HLS, distributed runs of the paper's workloads.
#include <gtest/gtest.h>

#include "dist/bus.h"
#include "dist/master.h"
#include "dist/message.h"
#include "dist/serialize.h"
#include "workloads/kmeans.h"
#include "workloads/mul2plus5.h"

namespace p2g::dist {
namespace {

TEST(Serialize, ScalarAndStringRoundTrip) {
  Writer w;
  w.u8(7);
  w.u32(123456);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");
  const std::vector<uint8_t> data{1, 2, 3};
  w.blob(data.data(), data.size());

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), data);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedMessageThrowsProtocolError) {
  Writer w;
  w.str("hello");
  std::vector<uint8_t> bytes = w.take();
  bytes.resize(bytes.size() - 2);
  Reader r(bytes);
  try {
    r.str();
    FAIL() << "expected protocol error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(Messages, RemoteStoreRoundTrip) {
  RemoteStore store;
  store.field = 3;
  store.age = 17;
  store.region = nd::Region(std::vector<nd::Interval>{{2, 3}, {0, 64}});
  store.producer = 5;
  store.store_decl = 1;
  store.whole = false;
  store.payload = {10, 20, 30};

  const RemoteStore back = RemoteStore::decode(store.encode());
  EXPECT_EQ(back.field, 3);
  EXPECT_EQ(back.age, 17);
  EXPECT_EQ(back.region, store.region);
  EXPECT_EQ(back.producer, 5);
  EXPECT_EQ(back.store_decl, 1u);
  EXPECT_FALSE(back.whole);
  EXPECT_EQ(back.payload, store.payload);
}

TEST(Messages, TopologyReportRoundTrip) {
  TopologyReport report;
  report.topology.name = "node7";
  report.topology.memory_gb = 16.0;
  report.topology.units.push_back(
      graph::ProcessingUnit{graph::ProcessingUnit::Type::kGpu, 16.0});
  report.topology.buses.push_back(graph::Link{0, 0, 5000.0, 1.5});

  const TopologyReport back = TopologyReport::decode(report.encode());
  EXPECT_EQ(back.topology.name, "node7");
  EXPECT_DOUBLE_EQ(back.topology.memory_gb, 16.0);
  ASSERT_EQ(back.topology.units.size(), 1u);
  EXPECT_EQ(back.topology.units[0].type,
            graph::ProcessingUnit::Type::kGpu);
  ASSERT_EQ(back.topology.buses.size(), 1u);
  EXPECT_DOUBLE_EQ(back.topology.buses[0].bandwidth_mbps, 5000.0);
}

TEST(Messages, ProfileAndIdleReportRoundTrip) {
  ProfileReport profile;
  KernelStats stats;
  stats.name = "assign";
  stats.dispatches = 11;
  stats.instances = 12;
  stats.dispatch_ns = 13;
  stats.kernel_ns = 14;
  profile.report.kernels.push_back(stats);
  const ProfileReport back = ProfileReport::decode(profile.encode());
  ASSERT_EQ(back.report.kernels.size(), 1u);
  EXPECT_EQ(back.report.kernels[0].name, "assign");
  EXPECT_EQ(back.report.kernels[0].kernel_ns, 14);

  IdleReport idle{true, 100, 100};
  const IdleReport idle_back = IdleReport::decode(idle.encode());
  EXPECT_TRUE(idle_back.idle);
  EXPECT_EQ(idle_back.stores_sent, 100);
}

TEST(Messages, MetricsReportRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("events_total").add(9);
  registry.gauge("depth").set(-2);
  obs::Histogram& h = registry.histogram("lat_ns");
  h.record(5);
  h.record(900);

  MetricsReport report;
  report.node = "node3";
  report.snapshot = registry.snapshot();
  report.snapshot.series.push_back(
      obs::TimeSeries{"depth", {{100, 1}, {200, 4}}});

  const MetricsReport back = MetricsReport::decode(report.encode());
  EXPECT_EQ(back.node, "node3");
  ASSERT_NE(back.snapshot.find_counter("events_total"), nullptr);
  EXPECT_EQ(back.snapshot.find_counter("events_total")->value, 9);
  ASSERT_NE(back.snapshot.find_gauge("depth"), nullptr);
  EXPECT_EQ(back.snapshot.find_gauge("depth")->value, -2);
  const obs::HistogramSnapshot* lat = back.snapshot.find_histogram("lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2);
  EXPECT_EQ(lat->sum, 905);
  EXPECT_EQ(lat->min, 5);
  EXPECT_EQ(lat->max, 900);
  EXPECT_EQ(lat->buckets, report.snapshot.find_histogram("lat_ns")->buckets);
  const obs::TimeSeries* series = back.snapshot.find_series("depth");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->samples.size(), 2u);
  EXPECT_EQ(series->samples[1].t_ns, 200);
  EXPECT_EQ(series->samples[1].value, 4);
}

TEST(Bus, DirectedSendAndBroadcast) {
  MessageBus bus;
  auto a = bus.register_endpoint("a");
  auto b = bus.register_endpoint("b");
  auto c = bus.register_endpoint("c");

  Message m;
  m.type = MessageType::kShutdown;
  m.from = "a";
  bus.send("b", m);
  EXPECT_EQ(b->pop()->from, "a");
  EXPECT_TRUE(c->empty());

  bus.broadcast(m);  // from "a": delivered to b and c only
  EXPECT_TRUE(a->empty());
  EXPECT_FALSE(b->empty());
  EXPECT_FALSE(c->empty());
  EXPECT_EQ(bus.delivered(), 3);
}

TEST(Bus, TracksPerEndpointTraffic) {
  MessageBus bus;
  auto a = bus.register_endpoint("a");
  auto b = bus.register_endpoint("b");

  Message m;
  m.type = MessageType::kRemoteStore;
  m.from = "a";
  m.payload = {1, 2, 3, 4};
  bus.send("b", m);
  bus.send("b", m);

  const BusStats stats = bus.stats();
  EXPECT_EQ(stats.delivered, 2);
  EXPECT_EQ(stats.bytes, 8);
  ASSERT_EQ(stats.per_endpoint.count("b"), 1u);
  EXPECT_EQ(stats.per_endpoint.at("b").messages, 2);
  EXPECT_EQ(stats.per_endpoint.at("b").bytes, 8);
  EXPECT_EQ(stats.per_endpoint.count("a"), 0u);
}

TEST(Bus, UnknownEndpointThrows) {
  MessageBus bus;
  Message m;
  EXPECT_THROW(bus.send("nobody", m), Error);
}

TEST(Bus, DuplicateRegistrationThrows) {
  MessageBus bus;
  bus.register_endpoint("a");
  EXPECT_THROW(bus.register_endpoint("a"), Error);
}

TEST(DistributedRun, Mul2Plus5AcrossTwoNodes) {
  workloads::Mul2Plus5 workload;  // shared print sink across node programs

  MasterOptions options;
  options.nodes = 2;
  options.workers_per_node = 2;
  options.base_options.max_age = 3;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);

  // The paper's golden sequence survives distribution.
  ASSERT_EQ(workload.printed->size(), 4u);
  EXPECT_EQ((*workload.printed)[0],
            (std::vector<int32_t>{10, 11, 12, 13, 14, 20, 22, 24, 26, 28}));
  EXPECT_EQ((*workload.printed)[1],
            (std::vector<int32_t>{25, 27, 29, 31, 33, 50, 54, 58, 62, 66}));

  // Every kernel ran somewhere, exactly once per expected instance.
  const KernelStats* mul2 = report.combined.find("mul2");
  ASSERT_NE(mul2, nullptr);
  EXPECT_EQ(mul2->instances, 4 * 5);
  EXPECT_EQ(report.combined.find("print")->instances, 4);

  // If the partition actually split the graph, stores crossed the bus.
  const bool split =
      report.partition.cut_weight(master.final_graph()) > 0.0;
  if (split) {
    EXPECT_GT(report.messages_delivered, 0);
  }
  EXPECT_EQ(report.topology.nodes().size(), 2u);

  // Telemetry: every node shipped a snapshot, the master aggregated them,
  // and the bus accounted for the traffic per endpoint.
  ASSERT_EQ(report.node_metrics.size(), 2u);
  const obs::HistogramSnapshot* dispatch =
      report.combined_metrics.find_histogram("dispatch_latency_ns");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_GT(dispatch->count, 0);
  int64_t per_node_count = 0;
  for (const auto& [node, snapshot] : report.node_metrics) {
    if (const obs::HistogramSnapshot* h =
            snapshot.find_histogram("dispatch_latency_ns")) {
      per_node_count += h->count;
    }
  }
  EXPECT_EQ(dispatch->count, per_node_count)
      << "combined histogram is the bucket-wise sum of the node snapshots";
  EXPECT_EQ(report.bus.delivered, report.messages_delivered);
  ASSERT_EQ(report.bus.per_endpoint.count("master"), 1u);
  EXPECT_GT(report.bus.per_endpoint.at("master").bytes, 0)
      << "topology + metrics reports flow to the master";
}

TEST(DistributedRun, KmeansMatchesSequential) {
  workloads::KmeansWorkload workload;
  workload.config = workloads::KmeansConfig{.n = 40, .k = 4, .dim = 2,
                                            .iterations = 3, .seed = 5};

  MasterOptions options;
  options.nodes = 2;
  options.workers_per_node = 1;
  workload.apply_schedule(options.base_options);
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);

  ASSERT_FALSE(workload.snapshots->empty());
  EXPECT_EQ(workload.snapshots->back(),
            workloads::kmeans_sequential(workload.config))
      << "distribution must not change the result (determinism)";
}

TEST(DistributedRun, SingleNodeDegeneratesToLocalRun) {
  workloads::Mul2Plus5 workload;
  MasterOptions options;
  options.nodes = 1;
  options.base_options.max_age = 2;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(workload.printed->size(), 3u);
  EXPECT_DOUBLE_EQ(report.partition.cut_weight(master.final_graph()), 0.0);
}

TEST(DistributedRun, RepartitionUsesProfileWeights) {
  workloads::Mul2Plus5 workload;
  MasterOptions options;
  options.nodes = 2;
  options.base_options.max_age = 5;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  const graph::Partition refined = master.repartition(report);
  EXPECT_EQ(refined.assignment.size(),
            master.final_graph().kernel_count());
  // The reweighted partition is still sane.
  graph::FinalGraph weighted = master.final_graph();
  weighted.apply_instrumentation(report.combined);
  EXPECT_LE(refined.imbalance(weighted), 2.0);
}

TEST(DistributedRun, TabuPartitionerWorksEndToEnd) {
  workloads::Mul2Plus5 workload;
  MasterOptions options;
  options.nodes = 2;
  options.use_tabu = true;
  options.base_options.max_age = 2;
  options.program_factory = [&workload] { return workload.build(); };

  Master master(options);
  const DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(workload.printed->size(), 3u);
}

}  // namespace
}  // namespace p2g::dist
