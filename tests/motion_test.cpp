// Tests for the motion-estimation workload.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "workloads/motion.h"

namespace p2g::workloads {
namespace {

class MotionTest : public ::testing::Test {
 protected:
  static constexpr int kWidth = 64;
  static constexpr int kHeight = 48;
  static constexpr int kFrames = 4;

  std::shared_ptr<media::YuvVideo> make_video() {
    return std::make_shared<media::YuvVideo>(
        media::generate_synthetic_video(kWidth, kHeight, kFrames));
  }

  MotionConfig small_config() {
    MotionConfig config;
    config.block = 16;
    config.search = 4;
    return config;
  }
};

TEST_F(MotionTest, SequentialReferenceFindsKnownShift) {
  // prev = pattern, cur = pattern shifted right by 3 and down by 2.
  const int w = 64;
  const int h = 48;
  std::vector<uint8_t> prev(static_cast<size_t>(w) * h);
  std::vector<uint8_t> cur(prev.size());
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      prev[static_cast<size_t>(r) * w + c] =
          static_cast<uint8_t>((r * 31 + c * 17) & 0xFF);
    }
  }
  const int shift_x = 3;
  const int shift_y = 2;
  for (int r = 0; r < h; ++r) {
    for (int c = 0; c < w; ++c) {
      const int pr = r - shift_y;
      const int pc = c - shift_x;
      cur[static_cast<size_t>(r) * w + c] =
          (pr >= 0 && pr < h && pc >= 0 && pc < w)
              ? prev[static_cast<size_t>(pr) * w + pc]
              : 0;
    }
  }
  MotionConfig config;
  config.block = 16;
  config.search = 4;
  const std::vector<int> vectors =
      motion_estimate_frame(cur.data(), prev.data(), w, h, config);
  // Interior blocks must find exactly (-3, -2): the content moved from
  // (r - 2, c - 3) in the previous frame.
  const int bw = w / config.block;
  // Block (1,1) is fully interior.
  const size_t i = (1 * static_cast<size_t>(bw) + 1) * 2;
  EXPECT_EQ(vectors[i], -shift_x);
  EXPECT_EQ(vectors[i + 1], -shift_y);
}

TEST_F(MotionTest, P2gMatchesSequentialReference) {
  auto video = make_video();
  MotionWorkload workload;
  workload.video = video;
  workload.config = small_config();

  RunOptions opts;
  opts.workers = 2;
  Runtime rt(workload.build(), opts);
  const RunReport report = rt.run();
  EXPECT_FALSE(report.timed_out);

  const int bw = kWidth / workload.config.block;
  const int bh = kHeight / workload.config.block;
  for (int a = 1; a < kFrames; ++a) {
    const std::vector<int> expected = motion_estimate_frame(
        video->frames[static_cast<size_t>(a)].y.data(),
        video->frames[static_cast<size_t>(a - 1)].y.data(), kWidth,
        kHeight, workload.config);
    const nd::AnyBuffer actual = rt.storage("vectors").fetch_whole(a);
    ASSERT_EQ(actual.element_count(),
              static_cast<int64_t>(expected.size()));
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual.get_as_int(static_cast<int64_t>(i)), expected[i])
          << "frame " << a << " entry " << i;
    }
  }

  // Instance counts: motion runs for frames 1..3 only (a-1 fetch), one
  // instance per block.
  EXPECT_EQ(report.instrumentation.find("motion")->instances,
            static_cast<int64_t>(bw) * bh * (kFrames - 1));
  // trace starts at age 1 too (serial with a leading structural gap).
  EXPECT_EQ(report.instrumentation.find("trace")->instances, kFrames - 1);
  ASSERT_EQ(workload.activity->size(), static_cast<size_t>(kFrames - 1));
  for (double a : *workload.activity) EXPECT_GE(a, 0.0);
}

TEST_F(MotionTest, DeterministicAcrossWorkerCounts) {
  auto video = make_video();
  std::vector<double> reference;
  for (int workers : {1, 4}) {
    MotionWorkload workload;
    workload.video = video;
    workload.config = small_config();
    RunOptions opts;
    opts.workers = workers;
    Runtime rt(workload.build(), opts);
    rt.run();
    if (reference.empty()) {
      reference = *workload.activity;
    } else {
      EXPECT_EQ(*workload.activity, reference);
    }
  }
}

TEST_F(MotionTest, RejectsUnalignedDimensions) {
  MotionWorkload workload;
  workload.video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(50, 48, 2));
  workload.config.block = 16;
  EXPECT_THROW(workload.build(), Error);
}

}  // namespace
}  // namespace p2g::workloads
