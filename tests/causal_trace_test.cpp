// Distributed causal tracing (ISSUE 6): critical-path analysis over
// hand-built span DAGs, the flight recorder, the trace-JSON reader, and
// an end-to-end distributed run producing a merged trace with cross-node
// flow arrows and non-empty critical paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "core/flight_recorder.h"
#include "core/trace.h"
#include "dist/master.h"
#include "obs/causal.h"
#include "obs/trace_reader.h"
#include "workloads/mul2plus5.h"

namespace p2g {
namespace {

// The obs layer mirrors core's SpanKind by value (it sits below core in
// the library graph); the converting layers cast between them, so the
// enumerators must stay aligned.
TEST(SpanKindMirror, ObsEnumMatchesCoreEnum) {
  EXPECT_EQ(static_cast<int>(obs::SpanKind::kWorker),
            static_cast<int>(SpanKind::kWorker));
  EXPECT_EQ(static_cast<int>(obs::SpanKind::kAnalyzer),
            static_cast<int>(SpanKind::kAnalyzer));
  EXPECT_EQ(static_cast<int>(obs::SpanKind::kWire),
            static_cast<int>(SpanKind::kWire));
  EXPECT_EQ(static_cast<int>(obs::SpanKind::kRemoteStore),
            static_cast<int>(SpanKind::kRemoteStore));
  EXPECT_EQ(static_cast<int>(obs::SpanKind::kRecovery),
            static_cast<int>(SpanKind::kRecovery));
  EXPECT_EQ(static_cast<int>(obs::SpanKind::kOther),
            static_cast<int>(SpanKind::kOther));
}

TEST(FrameTraceId, DeterministicAndNeverZero) {
  const uint64_t id = frame_trace_id(3, 17);
  EXPECT_EQ(id, frame_trace_id(3, 17));  // nodes agree w/o coordination
  EXPECT_NE(id, 0u);
  EXPECT_NE(id, frame_trace_id(3, 18));
  EXPECT_NE(id, frame_trace_id(4, 17));
  EXPECT_NE(frame_trace_id(0, 0), 0u);
}

// ------------------------------------------------ critical-path analyzer

obs::SpanRecord make_span(const char* name, const char* node,
                          int64_t start_ns, int64_t duration_ns,
                          uint64_t trace, uint64_t span, uint64_t parent,
                          obs::SpanKind kind) {
  obs::SpanRecord rec;
  rec.name = name;
  rec.node = node;
  rec.start_ns = start_ns;
  rec.duration_ns = duration_ns;
  rec.trace_id = trace;
  rec.span_id = span;
  rec.parent_span = parent;
  rec.kind = kind;
  return rec;
}

int64_t bucket_ns(const obs::CriticalPath& path, obs::Bucket bucket) {
  return path.bucket_ns[static_cast<size_t>(bucket)];
}

// producer(A) -> wire(A) -> recv(B) -> consumer(B): durations land in
// exec/wire/store, same-node gaps in queue, the cross-node gap in wire.
std::vector<obs::SpanRecord> cross_node_chain() {
  std::vector<obs::SpanRecord> spans;
  spans.push_back(make_span("produce", "nodeA", 0, 100, 7, 1, 0,
                            obs::SpanKind::kWorker));
  spans.push_back(make_span("wire->nodeB", "nodeA", 200, 50, 7, 2, 1,
                            obs::SpanKind::kWire));
  spans.push_back(make_span("recv:field", "nodeB", 400, 20, 7, 3, 2,
                            obs::SpanKind::kRemoteStore));
  spans.push_back(make_span("consume", "nodeB", 500, 100, 7, 4, 3,
                            obs::SpanKind::kWorker));
  return spans;
}

TEST(CriticalPath, AttributesChainLatencyToBuckets) {
  const obs::CriticalPathReport report =
      obs::analyze_critical_paths(cross_node_chain());
  ASSERT_EQ(report.paths.size(), 1u);
  const obs::CriticalPath& path = report.paths[0];

  EXPECT_EQ(path.trace_id, 7u);
  EXPECT_EQ(path.root_name, "produce");
  EXPECT_EQ(path.terminal_name, "consume");
  ASSERT_EQ(path.chain.size(), 4u);
  EXPECT_EQ(path.total_ns, 600);  // root start 0 -> terminal end 600

  EXPECT_EQ(bucket_ns(path, obs::Bucket::kExec), 200);   // 100 + 100
  // wire span (50) + cross-node gap recv.start - wire.end (150).
  EXPECT_EQ(bucket_ns(path, obs::Bucket::kWire), 200);
  EXPECT_EQ(bucket_ns(path, obs::Bucket::kStore), 20);
  // same-node gaps: produce->wire (100) and recv->consume (80).
  EXPECT_EQ(bucket_ns(path, obs::Bucket::kQueue), 180);
  EXPECT_EQ(bucket_ns(path, obs::Bucket::kRecovery), 0);

  // Buckets + total are consistent.
  int64_t sum = 0;
  for (const int64_t b : path.bucket_ns) sum += b;
  EXPECT_EQ(sum, path.total_ns);

  // Distributions carry one observation per frame.
  EXPECT_EQ(report.total_latency.count, 1);
  ASSERT_EQ(report.bucket_latency.size(), obs::kBucketCount);
  EXPECT_EQ(report.bucket_latency[0].name, "critpath_queue_ns");
  EXPECT_EQ(report.total_latency.name, "critpath_total_ns");

  const std::string text =
      report.to_string(cross_node_chain(), /*top_k=*/5);
  EXPECT_NE(text.find("critical paths: 1 frame(s)"), std::string::npos);
  EXPECT_NE(text.find("produce@nodeA"), std::string::npos);
  EXPECT_NE(text.find("consume@nodeB"), std::string::npos);
}

TEST(CriticalPath, RecoveryOverlapReattributesGapTime) {
  std::vector<obs::SpanRecord> spans = cross_node_chain();
  // A recovery window on the consumer's node overlapping the recv ->
  // consume gap [420, 500) for 50ns.
  spans.push_back(make_span("reassign:nodeC", "nodeB", 430, 50, 0, 99, 0,
                            obs::SpanKind::kRecovery));
  const obs::CriticalPathReport report =
      obs::analyze_critical_paths(spans);
  ASSERT_EQ(report.paths.size(), 1u);
  const obs::CriticalPath& path = report.paths[0];
  EXPECT_EQ(bucket_ns(path, obs::Bucket::kRecovery), 50);
  EXPECT_EQ(bucket_ns(path, obs::Bucket::kQueue), 130);  // 180 - 50
  // A recovery window on the *other* node must not be attributed.
  spans.back().node = "nodeA";
  const obs::CriticalPathReport unaffected =
      obs::analyze_critical_paths(spans);
  EXPECT_EQ(bucket_ns(unaffected.paths[0], obs::Bucket::kRecovery), 0);
}

TEST(CriticalPath, SortsFramesLongestFirst) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back(
      make_span("short", "n", 0, 10, 1, 1, 0, obs::SpanKind::kWorker));
  spans.push_back(
      make_span("long", "n", 0, 500, 2, 2, 0, obs::SpanKind::kWorker));
  const obs::CriticalPathReport report =
      obs::analyze_critical_paths(spans);
  ASSERT_EQ(report.paths.size(), 2u);
  EXPECT_EQ(report.paths[0].trace_id, 2u);
  EXPECT_EQ(report.paths[1].trace_id, 1u);
  EXPECT_EQ(report.total_latency.count, 2);
}

TEST(CriticalPath, MissingParentAndCyclesTerminateTheWalk) {
  std::vector<obs::SpanRecord> spans;
  // Parent span 77 was never captured (e.g. it died with a crashed node).
  spans.push_back(make_span("orphan", "n", 100, 10, 5, 6, 77,
                            obs::SpanKind::kWorker));
  // A (accidental) parent cycle between two spans of another frame.
  spans.push_back(
      make_span("a", "n", 0, 10, 9, 10, 11, obs::SpanKind::kWorker));
  spans.push_back(
      make_span("b", "n", 20, 10, 9, 11, 10, obs::SpanKind::kWorker));
  const obs::CriticalPathReport report =
      obs::analyze_critical_paths(spans);
  ASSERT_EQ(report.paths.size(), 2u);  // frames 5 and 9, both terminate
  for (const obs::CriticalPath& path : report.paths) {
    EXPECT_LE(path.chain.size(), 3u);
  }
}

TEST(CriticalPath, EmptyInputYieldsEmptyReport) {
  const obs::CriticalPathReport report = obs::analyze_critical_paths({});
  EXPECT_TRUE(report.empty());
  EXPECT_NE(report.to_string({}).find("0 frame(s)"), std::string::npos);
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorder, RecordsEntriesWithTruncatedNames) {
  FlightRecorder recorder;
  recorder.record("short", SpanKind::kWorker, 100, 10, 0,
                  TraceContext{7, 8}, 9, 3);
  recorder.record("a-rather-long-span-name-that-will-truncate",
                  SpanKind::kWire, 200, 20, 0, TraceContext{}, 10);
  const std::vector<FlightRecorder::Entry> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_STREQ(entries[0].name, "short");
  EXPECT_EQ(entries[0].t_ns, 100);
  EXPECT_EQ(entries[0].trace_id, 7u);
  EXPECT_EQ(entries[0].parent_span, 8u);  // ctx.span_id = causal parent
  EXPECT_EQ(entries[0].span_id, 9u);
  EXPECT_EQ(entries[0].age, 3);
  EXPECT_EQ(entries[0].kind, SpanKind::kWorker);
  // Truncated into the inline buffer, still NUL-terminated.
  EXPECT_EQ(std::string(entries[1].name),
            std::string("a-rather-long-span-name-that-will-truncate")
                .substr(0, sizeof(entries[1].name) - 1));
}

TEST(FlightRecorder, RingWrapsKeepingTheMostRecentEntries) {
  FlightRecorder recorder;
  const int total = static_cast<int>(FlightRecorder::kRingSize) + 32;
  for (int i = 0; i < total; ++i) {
    recorder.record("e", SpanKind::kWorker, i, 1, 0, TraceContext{}, 1);
  }
  EXPECT_EQ(recorder.recorded(), static_cast<uint64_t>(total));
  const std::vector<FlightRecorder::Entry> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), FlightRecorder::kRingSize);
  // Oldest surviving entry is #32; order is oldest -> newest.
  EXPECT_EQ(entries.front().t_ns, 32);
  EXPECT_EQ(entries.back().t_ns, total - 1);
}

TEST(FlightRecorder, ThreadsRecordIntoIndependentRings) {
  FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record("t", SpanKind::kWorker, t * 1000 + i, 1, t,
                        TraceContext{}, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.snapshot().size(),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(FlightRecorder, DumpFileIsParseableFlightTrace) {
  FlightRecorder recorder;
  recorder.record("postmortem", SpanKind::kWorker, 1000, 50, 0,
                  TraceContext{3, 4}, 5, 1);
  const std::string path =
      std::string(::testing::TempDir()) + "p2g_flight_dump.json";
  ASSERT_TRUE(recorder.dump_file(path, "crashed-node"));
  const obs::TraceDocument doc = obs::read_trace_file(path);
  EXPECT_EQ(doc.malformed_lines, 0u);
  EXPECT_EQ(doc.flight_spans, 1u);
  ASSERT_EQ(doc.spans.size(), 1u);
  EXPECT_EQ(doc.spans[0].name, "postmortem");
  EXPECT_EQ(doc.spans[0].node, "crashed-node");
  EXPECT_EQ(doc.spans[0].trace_id, 3u);
  EXPECT_EQ(doc.spans[0].span_id, 5u);
  EXPECT_EQ(doc.spans[0].parent_span, 4u);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- trace reader

TEST(TraceReader, RoundTripsCollectorOutput) {
  TraceCollector collector;
  TraceCollector::Span span;
  span.name = "kernel:mul2";
  span.start_ns = 1000;
  span.duration_ns = 2000;
  span.thread_id = 0;
  span.age = 4;
  span.bodies = 1;
  span.kind = SpanKind::kWorker;
  span.trace_id = 0xAB;
  span.span_id = 0xCD;
  span.parent_span = 0xEF;
  collector.record(span);
  collector.record_flow_start(TraceContext{0xAB, 0xCD}, 3000, 0);
  collector.record_flow_finish(TraceContext{0xAB, 0xCD}, 3500, 1);

  const std::string path =
      std::string(::testing::TempDir()) + "p2g_reader_trace.json";
  collector.write_file(path);
  const obs::TraceDocument doc = obs::read_trace_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(doc.malformed_lines, 0u);
  ASSERT_EQ(doc.spans.size(), 1u);
  EXPECT_EQ(doc.spans[0].name, "kernel:mul2");
  EXPECT_EQ(doc.spans[0].trace_id, 0xABu);
  EXPECT_EQ(doc.spans[0].span_id, 0xCDu);
  EXPECT_EQ(doc.spans[0].parent_span, 0xEFu);
  EXPECT_EQ(doc.spans[0].kind, obs::SpanKind::kWorker);
  EXPECT_EQ(doc.spans[0].duration_ns, 2000);
  EXPECT_EQ(doc.flow_starts, 1u);
  EXPECT_EQ(doc.flow_finishes, 1u);
  EXPECT_EQ(doc.cross_node_flows(), 0u);  // single pid lane
  EXPECT_FALSE(doc.process_names.empty());
}

// ------------------------------------------------- end-to-end distributed

TEST(DistributedTrace, MergedTraceHasCrossNodeFlowsAndCriticalPaths) {
  workloads::Mul2Plus5 workload;
  const std::string path =
      std::string(::testing::TempDir()) + "p2g_merged_trace.json";

  dist::MasterOptions options;
  options.nodes = 2;
  options.workers_per_node = 2;
  options.base_options.max_age = 3;
  options.program_factory = [&workload] { return workload.build(); };
  options.trace_path = path;

  dist::Master master(options);
  const dist::DistributedRunReport report = master.run();
  ASSERT_FALSE(report.timed_out);
  ASSERT_TRUE(report.trace_file.has_value());

  // Well-formed JSON array document (one event per line).
  std::ifstream in(*report.trace_file, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content[content.size() - 2], ']');

  const obs::TraceDocument doc = obs::read_trace_json(content);
  std::remove(path.c_str());
  EXPECT_EQ(doc.malformed_lines, 0u);
  EXPECT_GT(doc.spans.size(), 0u);
  // Node lanes are labeled with their names.
  bool node0_lane = false;
  for (const auto& [pid, name] : doc.process_names) {
    node0_lane = node0_lane || name == "node0";
  }
  EXPECT_TRUE(node0_lane);
  // At least one dependency arrow crosses a node boundary (the wire
  // span's flow finishing at the receiving node's remote-store span).
  EXPECT_GE(doc.cross_node_flows(), 1u);

  // The report carries the same DAG plus its critical paths.
  EXPECT_GT(report.trace_spans.size(), 0u);
  ASSERT_FALSE(report.critical_paths.empty());
  // Every completed frame has a non-empty chain and a wire span exists
  // somewhere in the DAG (data crossed nodes).
  for (const auto& cp : report.critical_paths.paths) {
    EXPECT_FALSE(cp.chain.empty());
    EXPECT_GT(cp.total_ns, 0);
  }
  bool has_wire_span = false;
  for (const obs::SpanRecord& rec : report.trace_spans) {
    has_wire_span = has_wire_span || rec.kind == obs::SpanKind::kWire;
  }
  EXPECT_TRUE(has_wire_span);
  // Per-bucket latency distributions fold into the cluster metrics.
  EXPECT_NE(report.combined_metrics.find_histogram("critpath_total_ns"),
            nullptr);
  EXPECT_NE(report.combined_metrics.find_histogram("critpath_wire_ns"),
            nullptr);

  // The distributed run still computes the right answer while traced.
  ASSERT_EQ(workload.printed->size(), 4u);
  EXPECT_EQ((*workload.printed)[0],
            (std::vector<int32_t>{10, 11, 12, 13, 14, 20, 22, 24, 26,
                                  28}));
}

}  // namespace
}  // namespace p2g
