// End-to-end chaos tests: distributed runs under a seeded FaultPlan with
// drop/dup/reorder/delay and scripted crashes must terminate, produce
// bit-exact field contents versus a fault-free run, and report
// reproducible fault counters for the same seed.
//
// The ChaosSweep test is parameterized through the environment
// (P2G_CHAOS_SEED / P2G_CHAOS_DROP / P2G_CHAOS_CRASH_AT) and registered as
// `chaos`-labeled ctest entries plus scripts/chaos.sh sweeps; it is
// filtered out of the regular discovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/program.h"
#include "dist/master.h"
#include "ft/fault_plan.h"
#include "obs/trace_reader.h"

namespace p2g::dist {
namespace {

// A pure four-stage pipeline: gen drives `ages` iterations of an
// `elements`-wide int32 field through three arithmetic stages. No shared
// side-effect sinks — under at-least-once re-execution a side effect would
// duplicate, while field contents stay bit-exact by write-once semantics.
Program chaos_pipeline(int elements, int ages) {
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("mid", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  pb.field("fin", nd::ElementType::kInt32, 1);

  pb.kernel("gen")
      .store("v", "src", AgeExpr::relative(0), Slice::whole())
      .body([elements, ages](KernelContext& ctx) {
        const Age a = ctx.age();
        if (a >= ages) return;
        nd::AnyBuffer values(nd::ElementType::kInt32,
                             nd::Extents({elements}));
        for (int i = 0; i < elements; ++i) {
          values.data<int32_t>()[i] =
              static_cast<int32_t>((a + 1) * 1000 + i);
        }
        ctx.store_array("v", std::move(values));
        ctx.continue_next_age();
      });

  pb.kernel("stage1")
      .index("x")
      .fetch("v", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("o", "mid", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("o",
                                  ctx.fetch_scalar<int32_t>("v") * 3 + 1);
      });

  pb.kernel("stage2")
      .index("x")
      .fetch("v", "mid", AgeExpr::relative(0), Slice().var("x"))
      .store("o", "out", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("o",
                                  ctx.fetch_scalar<int32_t>("v") * 7 - 4);
      });

  pb.kernel("stage3")
      .index("x")
      .fetch("v", "out", AgeExpr::relative(0), Slice().var("x"))
      .store("o", "fin", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("o",
                                  ctx.fetch_scalar<int32_t>("v") + 11);
      });

  // Fetch-only sink: whole-slice fetches of the entire chain pull every
  // field onto the sink's node and let its analyzer seal each age (an
  // elementwise producer's extents derive from its input's sealed
  // extents, so seals only chain where all upstream fields are present).
  // That gives the capture probe a node with complete ages for every
  // captured field. No side effects, so at-least-once re-execution under
  // chaos is harmless.
  pb.kernel("sink")
      .serial()
      .fetch("s", "src", AgeExpr::relative(0), Slice::whole())
      .fetch("m", "mid", AgeExpr::relative(0), Slice::whole())
      .fetch("o", "out", AgeExpr::relative(0), Slice::whole())
      .fetch("f", "fin", AgeExpr::relative(0), Slice::whole())
      .body([](KernelContext&) {});

  return pb.build();
}

constexpr int kElements = 8;
constexpr int kAges = 5;

MasterOptions base_options() {
  MasterOptions options;
  options.nodes = 3;
  options.workers_per_node = 1;
  options.watchdog = std::chrono::milliseconds(20000);
  options.program_factory = [] { return chaos_pipeline(kElements, kAges); };
  options.capture_fields = {"mid", "out", "fin"};
  return options;
}

MasterOptions chaos_options(const ft::FaultPlan& plan) {
  MasterOptions options = base_options();
  options.ft.enabled = true;
  options.ft.plan = plan;
  options.ft.heartbeat_period_ms = 10;
  options.ft.checkpoint_every_beats = 3;
  options.ft.detector.phi_threshold = 5.0;
  options.ft.detector.min_silence_us = 120'000;
  return options;
}

// The fault-free reference: same program, same partitioning, no FT layer.
DistributedRunReport fault_free_run() {
  Master master(base_options());
  DistributedRunReport report = master.run();
  EXPECT_FALSE(report.timed_out);
  return report;
}

// Node that runs `kernel` under the (deterministic) partitioning.
std::string owner_of(const std::string& kernel) {
  Master master(base_options());
  const DistributedRunReport report = master.run();
  const auto& names = master.final_graph().kernel_names;
  for (size_t k = 0; k < names.size(); ++k) {
    if (names[k] != kernel) continue;
    const int part = report.partition.assignment[k];
    const size_t node = report.placement[static_cast<size_t>(part)];
    return "node" + std::to_string(node);
  }
  ADD_FAILURE() << "kernel not found: " << kernel;
  return "node0";
}

void expect_bit_exact(
    const std::map<std::string, std::map<Age, std::vector<uint8_t>>>& got,
    const std::map<std::string, std::map<Age, std::vector<uint8_t>>>&
        want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [field, ages] : want) {
    ASSERT_TRUE(got.count(field)) << field;
    ASSERT_EQ(got.at(field).size(), ages.size())
        << field << ": complete-age sets differ";
    for (const auto& [age, bytes] : ages) {
      ASSERT_TRUE(got.at(field).count(age)) << field << " age " << age;
      EXPECT_EQ(got.at(field).at(age), bytes)
          << field << " age " << age << " is not bit-exact";
    }
  }
}

TEST(ChaosSmoke, LossySeedTerminatesBitExactAndReproducibly) {
  const DistributedRunReport reference = fault_free_run();
  ASSERT_EQ(reference.captured.at("fin").size(), static_cast<size_t>(kAges));

  const ft::FaultPlan plan = ft::FaultPlan::uniform(1234, 0.15, 2000);
  Master first(chaos_options(plan));
  const DistributedRunReport a = first.run();
  Master second(chaos_options(plan));
  const DistributedRunReport b = second.run();

  ASSERT_FALSE(a.timed_out) << "chaos run must still terminate";
  ASSERT_FALSE(b.timed_out);

  // Faults actually happened, and the delivery layer recovered them.
  EXPECT_GT(a.ft.data_messages, 0);
  EXPECT_GT(a.ft.dropped, 0) << "seed produced no drops; pick another";
  EXPECT_GT(a.ft.duplicated, 0);
  EXPECT_GE(a.ft.retransmits, a.ft.dropped)
      << "every dropped first attempt needs at least one retransmission";
  EXPECT_GE(a.ft.duplicates_dropped, a.ft.duplicated)
      << "every chaos duplicate must be deduplicated at the receiver";
  EXPECT_EQ(a.ft.recoveries, 0);

  // Chaos-plane counters are a pure function of the seed.
  EXPECT_EQ(a.ft.data_messages, b.ft.data_messages);
  EXPECT_EQ(a.ft.dropped, b.ft.dropped);
  EXPECT_EQ(a.ft.duplicated, b.ft.duplicated);
  EXPECT_EQ(a.ft.delayed, b.ft.delayed);
  EXPECT_EQ(a.ft.reordered, b.ft.reordered);

  // The run's data is bit-exact despite the chaos.
  expect_bit_exact(a.captured, reference.captured);
  expect_bit_exact(b.captured, reference.captured);

  // The FT counters surfaced through the telemetry pipeline too.
  const obs::CounterValue* retransmits =
      a.combined_metrics.find_counter("ft_retransmits_total");
  ASSERT_NE(retransmits, nullptr);
  EXPECT_EQ(retransmits->value, a.ft.retransmits);
}

TEST(ChaosCrashRecovery, MidRunCrashRecoversBitExact) {
  const DistributedRunReport reference = fault_free_run();
  const std::string victim = owner_of("stage1");

  ft::FaultPlan plan = ft::FaultPlan::uniform(777, 0.06, 1500);
  plan.crashes.push_back(ft::CrashTrigger{victim, 40, -1});

  Master first(chaos_options(plan));
  const DistributedRunReport a = first.run();
  Master second(chaos_options(plan));
  const DistributedRunReport b = second.run();

  ASSERT_FALSE(a.timed_out) << "recovery must reach quiescence";
  ASSERT_FALSE(b.timed_out);

  // The scripted crash fired, was detected, and recovery ran.
  EXPECT_EQ(a.ft.crashes_fired, 1);
  EXPECT_EQ(a.ft.recoveries, 1);
  ASSERT_EQ(a.ft.dead_nodes, std::vector<std::string>{victim});
  EXPECT_GE(a.ft.kernels_reassigned, 1);
  EXPECT_GT(a.ft.retransmits, 0);
  ASSERT_EQ(a.ft.recovery_latency_ns.size(), 1u);
  EXPECT_GT(a.ft.recovery_latency_ns[0], 0);

  // Recovery decisions are reproducible for the same seed.
  EXPECT_EQ(b.ft.recoveries, a.ft.recoveries);
  EXPECT_EQ(b.ft.kernels_reassigned, a.ft.kernels_reassigned);
  EXPECT_EQ(b.ft.dead_nodes, a.ft.dead_nodes);

  // Survivors re-executed the dead node's kernels deterministically: the
  // final field contents are bit-exact versus the fault-free run.
  expect_bit_exact(a.captured, reference.captured);
  expect_bit_exact(b.captured, reference.captured);

  // Recovery latency reached the telemetry pipeline.
  const obs::HistogramSnapshot* latency =
      a.combined_metrics.find_histogram("ft_recovery_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 1);
}

// ISSUE 6: a scripted crash under tracing must leave a postmortem — the
// crashed node dumps its flight-recorder rings to an artifact, the master
// stitches that dump into the merged trace as a "<node>.flight" lane, and
// the victim's last periodic kMetricsReport snapshot survives in the
// merged report even though the node never reached its final join() ship.
TEST(ChaosFlightRecorder, CrashDumpIsStitchedIntoMergedTrace) {
  const std::string victim = owner_of("stage1");

  ft::FaultPlan plan = ft::FaultPlan::uniform(777, 0.06, 1500);
  // Crash mid-data-flow (the run carries ~160 data messages among ~750
  // total) but late enough that several heartbeat cycles precede it.
  plan.crashes.push_back(ft::CrashTrigger{victim, 150, -1});

  MasterOptions options = chaos_options(plan);
  // Ship telemetry on every heartbeat so the victim's periodic snapshot
  // lands on the master before the scripted crash fires.
  options.ft.heartbeat_period_ms = 2;
  options.ft.checkpoint_every_beats = 1;
  const std::string trace_path =
      std::string(::testing::TempDir()) + "p2g_chaos_merged_trace.json";
  options.trace_path = trace_path;
  options.flight_dir = std::string(::testing::TempDir());

  Master master(options);
  const DistributedRunReport report = master.run();
  ASSERT_FALSE(report.timed_out);
  ASSERT_EQ(report.ft.crashes_fired, 1);
  ASSERT_EQ(report.ft.dead_nodes, std::vector<std::string>{victim});

  // The crashed node wrote a flight-dump artifact, and it parses as a
  // flight trace.
  ASSERT_EQ(report.flight_dumps.size(), 1u);
  EXPECT_NE(report.flight_dumps[0].find("flight_" + victim),
            std::string::npos);
  const obs::TraceDocument dump =
      obs::read_trace_file(report.flight_dumps[0]);
  EXPECT_EQ(dump.malformed_lines, 0u);
  EXPECT_GT(dump.flight_spans, 0u);

  // The merged trace stitches the dump in as a "<node>.flight" lane and
  // still carries cross-node dependency arrows from before (and after)
  // the crash.
  ASSERT_TRUE(report.trace_file.has_value());
  const obs::TraceDocument merged = obs::read_trace_file(trace_path);
  EXPECT_EQ(merged.malformed_lines, 0u);
  EXPECT_GT(merged.flight_spans, 0u);
  EXPECT_GE(merged.cross_node_flows(), 1u);
  bool flight_lane = false;
  for (const auto& [pid, name] : merged.process_names) {
    flight_lane = flight_lane || name == victim + ".flight";
  }
  EXPECT_TRUE(flight_lane);

  // Critical paths still come out of a crashed run (recovery re-executes
  // the frames), with the recovery window visible to gap attribution.
  EXPECT_FALSE(report.critical_paths.empty());

  // The victim's last periodic metrics snapshot was retained: it appears
  // in node_metrics although the node was fenced before join().
  EXPECT_EQ(report.node_metrics.count(victim), 1u)
      << "crashed node's periodic telemetry snapshot was lost";

  std::remove(trace_path.c_str());
  std::remove(report.flight_dumps[0].c_str());
}

// Environment-driven sweep entry (scripts/chaos.sh, `ctest -L chaos`).
TEST(ChaosSweep, SeededRunTerminatesAndMatchesFaultFree) {
  const char* seed_env = std::getenv("P2G_CHAOS_SEED");
  const char* drop_env = std::getenv("P2G_CHAOS_DROP");
  const char* crash_env = std::getenv("P2G_CHAOS_CRASH_AT");
  const uint64_t seed =
      seed_env ? std::strtoull(seed_env, nullptr, 10) : 1;
  const double drop = drop_env ? std::atof(drop_env) : 0.1;
  const int64_t crash_at =
      crash_env ? std::strtoll(crash_env, nullptr, 10) : -1;

  const DistributedRunReport reference = fault_free_run();
  ft::FaultPlan plan = ft::FaultPlan::uniform(seed, drop, 2000);
  if (crash_at > 0) {
    plan.crashes.push_back(
        ft::CrashTrigger{owner_of("stage1"), crash_at, -1});
  }

  Master master(chaos_options(plan));
  const DistributedRunReport report = master.run();
  ASSERT_FALSE(report.timed_out)
      << "seed " << seed << " drop " << drop << " crash_at " << crash_at;
  expect_bit_exact(report.captured, reference.captured);
  if (crash_at > 0) {
    EXPECT_EQ(report.ft.recoveries, 1);
  }
}

}  // namespace
}  // namespace p2g::dist
