// Tests for the symbolic dependence pass (src/analysis/dependence.h) and
// the footprint algebra under it (src/analysis/footprint.h): strided
// interval normalization, the conservative may_overlap / contains
// predicates over symbolic extents, access-pattern classification,
// dependence edges, the W008/W009 lint checks, independence-certificate
// derivation, and the certified fast path in the runtime.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/dependence.h"
#include "analysis/footprint.h"
#include "analysis/lang_lint.h"
#include "core/program.h"
#include "core/runtime.h"
#include "workloads/mul2plus5.h"

namespace p2g::analysis {
namespace {

KernelBuilder& nop_kernel(ProgramBuilder& pb, const std::string& name) {
  return pb.kernel(name).body([](KernelContext&) {});
}

// ---------------------------------------------------------------- footprints

TEST(Footprint, NormalizeCanonicalizesNegativeStrides) {
  // Walking 10, 8, 6, 4, 2 downward is the set [2,11):2.
  const DimFootprint down = normalize(10, 0, -2);
  EXPECT_EQ(down.lo, 2);
  EXPECT_EQ(down.hi, SymBound::finite(11));
  EXPECT_EQ(down.step, 2);
  EXPECT_EQ(down, normalize(2, 11, 2));
  EXPECT_EQ(down.to_string(), "[2,11):2");
}

TEST(Footprint, NormalizeEmptyAndPointRanges) {
  EXPECT_TRUE(normalize(5, 5, 1).is_empty());
  EXPECT_TRUE(normalize(7, 3, 2).is_empty());
  // All provably empty sets canonicalize to the same value.
  EXPECT_EQ(normalize(5, 5, 1), DimFootprint::empty());
  EXPECT_TRUE(normalize(4, 5, 1).is_point());
  EXPECT_EQ(normalize(4, 5, 1), DimFootprint::point(4));
}

TEST(Footprint, StridedResiduesDoNotOverlap) {
  // Evens vs odds over the same interval share no element.
  const DimFootprint evens = normalize(0, 10, 2);
  const DimFootprint odds = normalize(1, 10, 2);
  EXPECT_FALSE(may_overlap(evens, odds));
  EXPECT_TRUE(may_overlap(evens, normalize(4, 5, 1)));
  EXPECT_FALSE(may_overlap(DimFootprint::point(3), DimFootprint::point(4)));
  EXPECT_FALSE(may_overlap(DimFootprint::empty(), DimFootprint::point(0)));
}

TEST(Footprint, SymbolicExtentsAreOpaqueButConsistent) {
  const FieldId f = 0;
  const FieldId g = 1;
  const DimFootprint all_f = DimFootprint::full(f, 0);
  const DimFootprint all_g = DimFootprint::full(g, 0);
  // A symbolic extent may be anything >= 0: overlap with any non-empty
  // finite set must be assumed.
  EXPECT_TRUE(may_overlap(all_f, DimFootprint::point(1000)));
  EXPECT_FALSE(may_overlap(all_f, DimFootprint::empty()));
  // The same symbol always denotes the same value...
  EXPECT_TRUE(contains(all_f, all_f));
  // ...but two different symbols are never assumed equal.
  EXPECT_FALSE(contains(all_f, all_g));
  // |f.0| may be 0 at runtime, so it cannot be *proven* to contain any
  // non-empty finite set, while the reverse containment fails too.
  EXPECT_FALSE(contains(all_f, DimFootprint::point(0)));
  EXPECT_FALSE(contains(DimFootprint::point(0), all_f));
  EXPECT_TRUE(contains(all_f, DimFootprint::empty()));
}

TEST(Footprint, FiniteContainment) {
  EXPECT_TRUE(contains(normalize(0, 8, 1), DimFootprint::point(7)));
  EXPECT_FALSE(contains(normalize(0, 8, 1), DimFootprint::point(8)));
  // Residue matters: [0,10):2 does not contain the odd point 3.
  EXPECT_FALSE(contains(normalize(0, 10, 2), DimFootprint::point(3)));
  EXPECT_TRUE(contains(normalize(0, 10, 2), normalize(2, 7, 2)));
}

TEST(Footprint, WholeFieldFootprints) {
  const Footprint whole = Footprint::whole_field(0);
  Footprint point;
  point.field = 0;
  point.dims = {DimFootprint::point(3)};
  EXPECT_TRUE(may_overlap(whole, point));
  EXPECT_TRUE(contains(whole, point));
  EXPECT_FALSE(contains(point, whole));
  EXPECT_EQ(whole.to_string(), "whole");
}

// ------------------------------------------------- patterns & certificates

// A miniature MJPEG-shaped pipeline: init seeds the clock; gen (no index
// variables) emits a whole frame per age and advances the clock; scale
// reads the frame elementwise; sink reduces whole frames.
Program pipeline_program() {
  ProgramBuilder pb;
  pb.field("clock", nd::ElementType::kInt32, 1);
  pb.field("frame", nd::ElementType::kInt32, 2);
  pb.field("out", nd::ElementType::kInt32, 2);
  nop_kernel(pb, "init").run_once().store("out", "clock",
                                          AgeExpr::constant(0), Slice());
  nop_kernel(pb, "gen")
      .fetch("tick", "clock", AgeExpr::relative(0), Slice())
      .store("img", "frame", AgeExpr::relative(0), Slice())
      .store("next", "clock", AgeExpr::relative(1), Slice());
  nop_kernel(pb, "scale")
      .index("x")
      .index("y")
      .fetch("px", "frame", AgeExpr::relative(0), Slice().var("x").var("y"))
      .store("res", "out", AgeExpr::relative(0), Slice().var("x").var("y"));
  nop_kernel(pb, "sink").serial().fetch("all", "frame", AgeExpr::relative(0),
                                        Slice());
  return pb.build();
}

const AccessInfo* find_access(const DependenceReport& report,
                              const std::string& kernel, bool is_fetch,
                              size_t statement) {
  for (const AccessInfo& a : report.accesses) {
    if (a.kernel_name == kernel && a.is_fetch == is_fetch &&
        a.statement == statement) {
      return &a;
    }
  }
  return nullptr;
}

TEST(Dependence, ClassifiesAccessPatterns) {
  const DependenceReport report = analyze_dependences(pipeline_program());
  ASSERT_FALSE(report.diagnostics.has_errors())
      << report.diagnostics.to_text();
  EXPECT_EQ(find_access(report, "init", false, 0)->pattern,
            AccessPattern::kBroadcast);  // whole-field store
  EXPECT_EQ(find_access(report, "gen", true, 0)->pattern,
            AccessPattern::kReduction);  // whole-field fetch, relative age
  EXPECT_EQ(find_access(report, "scale", true, 0)->pattern,
            AccessPattern::kPointwise);
  EXPECT_EQ(find_access(report, "sink", true, 0)->pattern,
            AccessPattern::kReduction);
}

TEST(Dependence, TemporalStencilUpgrade) {
  // blend reads sig at two adjacent age offsets elementwise: a temporal
  // stencil of radius 1.
  ProgramBuilder pb;
  pb.field("sig", nd::ElementType::kInt32, 1);
  pb.field("res", nd::ElementType::kInt32, 1);
  nop_kernel(pb, "seed").run_once().store("out", "sig", AgeExpr::constant(0),
                                          Slice());
  nop_kernel(pb, "tick")
      .index("x")
      .fetch("in", "sig", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "sig", AgeExpr::relative(1), Slice().var("x"));
  nop_kernel(pb, "blend")
      .index("x")
      .fetch("cur", "sig", AgeExpr::relative(0), Slice().var("x"))
      .fetch("next", "sig", AgeExpr::relative(1), Slice().var("x"))
      .store("out", "res", AgeExpr::relative(0), Slice().var("x"));
  const DependenceReport report = analyze_dependences(pb.build());
  ASSERT_FALSE(report.diagnostics.has_errors())
      << report.diagnostics.to_text();
  const AccessInfo* cur = find_access(report, "blend", true, 0);
  const AccessInfo* next = find_access(report, "blend", true, 1);
  ASSERT_NE(cur, nullptr);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(cur->pattern, AccessPattern::kStencil);
  EXPECT_EQ(next->pattern, AccessPattern::kStencil);
  EXPECT_EQ(cur->stencil_radius, 1);
  // A single elementwise fetch stays pointwise.
  EXPECT_EQ(find_access(report, "tick", true, 0)->pattern,
            AccessPattern::kPointwise);
}

TEST(Dependence, EdgesCarryAgeAndElementDistances) {
  const DependenceReport report = analyze_dependences(pipeline_program());
  bool found_loop = false;
  bool found_scale = false;
  for (const DependenceEdge& e : report.edges) {
    if (e.field_name == "clock" && e.producer_name == "gen") {
      found_loop = true;
      ASSERT_TRUE(e.age_distance.has_value());
      EXPECT_EQ(*e.age_distance, 1);  // store a+1, fetch a
      EXPECT_TRUE(e.elem_distance.empty());  // whole-field on both sides
    }
    if (e.field_name == "frame" && e.consumer_name == "scale") {
      found_scale = true;
      ASSERT_TRUE(e.age_distance.has_value());
      EXPECT_EQ(*e.age_distance, 0);
      EXPECT_FALSE(e.fusible);
    }
  }
  EXPECT_TRUE(found_loop);
  EXPECT_TRUE(found_scale);
  // init's constant-age store feeding gen's relative-age fetch has no
  // fixed distance.
  for (const DependenceEdge& e : report.edges) {
    if (e.field_name == "clock" && e.producer_name == "init") {
      EXPECT_FALSE(e.age_distance.has_value());
    }
  }
}

TEST(Dependence, DerivesPointwiseAndWholeCoverCertificates) {
  Program program = pipeline_program();
  EXPECT_EQ(program.certify(), 2u);
  const KernelId scale = program.find_kernel("scale");
  const KernelId sink = program.find_kernel("sink");
  bool pointwise = false;
  bool whole_cover = false;
  for (const IndependenceCertificate& c : program.certificates()) {
    if (c.consumer == scale) {
      pointwise = true;
      EXPECT_EQ(c.kind, IndependenceCertificate::Kind::kPointwise);
      EXPECT_EQ(c.fetch, 0u);
    }
    if (c.consumer == sink) {
      whole_cover = true;
      EXPECT_EQ(c.kind, IndependenceCertificate::Kind::kWholeCover);
    }
  }
  EXPECT_TRUE(pointwise);
  EXPECT_TRUE(whole_cover);
}

TEST(Dependence, NoCertificatesForProgramsWithLintErrors) {
  // Two kernels double-writing dst: W001 makes every static fact suspect,
  // so certification must yield nothing.
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 1);
  pb.field("dst", nd::ElementType::kInt32, 1);
  nop_kernel(pb, "seed").store("out", "src", AgeExpr::relative(0), Slice());
  nop_kernel(pb, "a")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x"));
  nop_kernel(pb, "b")
      .index("x")
      .fetch("in", "src", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "dst", AgeExpr::relative(0), Slice().var("x"));
  Program program = pb.build();
  EXPECT_EQ(program.certify(), 0u);
  EXPECT_TRUE(program.certificates().empty());
}

// ------------------------------------------------------------ W008 / W009

TEST(Dependence, OutOfBoundsSliceAgainstDeclaredExtents) {
  ProgramBuilder pb;
  pb.field("data", nd::ElementType::kInt32, 1, {8});
  nop_kernel(pb, "seed").run_once().store("out", "data", AgeExpr::constant(0),
                                          Slice());
  nop_kernel(pb, "probe").fetch("edge", "data", AgeExpr::relative(0),
                                Slice().at(9));
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kOutOfBoundsSlice), 1u) << report.to_text();
  const Diagnostic* d = report.find(kOutOfBoundsSlice);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->primary.name, "probe");
  EXPECT_EQ(d->secondary.name, "data");
  EXPECT_NE(d->message.find("declares extent 8"), std::string::npos)
      << d->message;
}

TEST(Dependence, InBoundsConstantIndexIsClean) {
  ProgramBuilder pb;
  pb.field("data", nd::ElementType::kInt32, 1, {8});
  nop_kernel(pb, "seed").run_once().store("out", "data", AgeExpr::constant(0),
                                          Slice());
  nop_kernel(pb, "probe").fetch("edge", "data", AgeExpr::relative(0),
                                Slice().at(7));
  EXPECT_EQ(lint(pb.build()).count(kOutOfBoundsSlice), 0u);
}

TEST(Dependence, DeadStoreWhenAgeSetsNeverMeet) {
  ProgramBuilder pb;
  pb.field("snap", nd::ElementType::kInt32, 1);
  nop_kernel(pb, "init").run_once().store("out", "snap", AgeExpr::constant(0),
                                          Slice());
  nop_kernel(pb, "stale").run_once().store("out", "snap",
                                           AgeExpr::constant(9), Slice());
  nop_kernel(pb, "probe").run_once().fetch("first", "snap",
                                           AgeExpr::constant(0), Slice());
  const LintReport report = lint(pb.build());
  ASSERT_EQ(report.count(kDeadStore), 1u) << report.to_text();
  const Diagnostic* d = report.find(kDeadStore);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->primary.name, "stale");
  EXPECT_EQ(d->secondary.name, "snap");
  EXPECT_FALSE(report.has_errors());
}

TEST(Dependence, ReadStoresAndTerminalFieldsAreNotDead) {
  // pipeline_program: every store is either read (clock, frame) or feeds
  // a terminal host-drained field (out) — zero W009.
  EXPECT_EQ(lint(pipeline_program()).count(kDeadStore), 0u);
}

// ------------------------------------------------- report renderings

TEST(Dependence, TextAndJsonRenderings) {
  const DependenceReport report = analyze_dependences(pipeline_program());
  const std::string text = report.to_text();
  EXPECT_NE(text.find("== accesses =="), std::string::npos);
  EXPECT_NE(text.find("== dependence edges =="), std::string::npos);
  EXPECT_NE(text.find("== independence certificates (2) =="),
            std::string::npos);
  EXPECT_NE(text.find("whole-cover"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"accesses\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"certificates\""), std::string::npos);
  EXPECT_NE(json.find("\"pattern\":\"pointwise\""), std::string::npos);
}

// Golden rendering: the JSON schema (code/severity/message plus primary &
// secondary anchors with kernel/field names, statement indices, and
// 1-based source lines) is a published interface — editor integrations
// parse it. Any change here is a breaking change and must be deliberate.
TEST(Dependence, GoldenDiagnosticJsonFromSource) {
  const std::string source =
      "int32[8] data age;\n"
      "\n"
      "init:\n"
      "  local int32[] values;\n"
      "  %{ put(values, 1, 0); %}\n"
      "  store data(0) = values;\n"
      "\n"
      "probe:\n"
      "  age a;\n"
      "  local int32 edge;\n"
      "  fetch edge = data(a)[9];\n"
      "  %{ print(\"edge: \", edge); %}\n";
  const LintReport report = lint_source(source);
  EXPECT_EQ(
      report.to_json(),
      "{\"diagnostics\":[{\"code\":\"P2G-W008\",\"severity\":\"error\","
      "\"message\":\"fetch data(a)[9] reads constant index 9 in dimension 0, "
      "but field 'data' declares extent 8\",\"primary\":{\"kind\":\"fetch\","
      "\"name\":\"probe\",\"statement\":0,\"line\":11},\"secondary\":{"
      "\"kind\":\"field\",\"name\":\"data\",\"line\":1}}],\"errors\":1,"
      "\"warnings\":0,\"infos\":0}");
}

// --------------------------------------------------- certified fast path

TEST(Certificates, CertifiedRunMatchesUncertifiedRun) {
  workloads::Mul2Plus5 certified;
  Program with = certified.build();
  EXPECT_GT(with.certify(), 0u);
  RunOptions on;
  on.max_age = 4;
  on.workers = 2;
  Runtime rt_on(std::move(with), on);
  EXPECT_FALSE(rt_on.run().timed_out);
  EXPECT_GT(rt_on.certified_skips(), 0);

  workloads::Mul2Plus5 plain;
  Program without = plain.build();
  EXPECT_GT(without.certify(), 0u);  // embedded but disabled below
  RunOptions off;
  off.max_age = 4;
  off.workers = 2;
  off.use_certificates = false;
  Runtime rt_off(std::move(without), off);
  EXPECT_FALSE(rt_off.run().timed_out);
  EXPECT_EQ(rt_off.certified_skips(), 0);

  // The fast path must not change a single produced value.
  EXPECT_EQ(*certified.printed, *plain.printed);
}

}  // namespace
}  // namespace p2g::analysis
