// Unit tests for the fault-tolerance subsystem (src/ft): fault plans,
// chaos bus, reliable delivery, failure detection, and the idempotent
// store primitive the recovery path builds on. End-to-end chaos runs live
// in chaos_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/field.h"
#include "dist/bus.h"
#include "dist/message.h"
#include "ft/chaos_bus.h"
#include "ft/failure_detector.h"
#include "ft/fault_plan.h"
#include "ft/reliable.h"

namespace p2g::ft {
namespace {

TEST(FaultPlan, VerdictIsAPureFunction) {
  const FaultPlan plan = FaultPlan::uniform(42, 0.2, 5000);
  for (uint64_t seq = 1; seq <= 64; ++seq) {
    const FaultVerdict a = plan.verdict("node0", "node1", seq);
    const FaultVerdict b = plan.verdict("node0", "node1", seq);
    EXPECT_EQ(a.drop, b.drop);
    EXPECT_EQ(a.duplicate, b.duplicate);
    EXPECT_EQ(a.reorder, b.reorder);
    EXPECT_EQ(a.delay_us, b.delay_us);
  }
}

TEST(FaultPlan, LinksAndSeedsGetIndependentStreams) {
  const FaultPlan a = FaultPlan::uniform(1, 0.5);
  const FaultPlan b = FaultPlan::uniform(2, 0.5);
  int diff_seed = 0;
  int diff_link = 0;
  for (uint64_t seq = 1; seq <= 256; ++seq) {
    if (a.verdict("x", "y", seq).drop != b.verdict("x", "y", seq).drop) {
      ++diff_seed;
    }
    if (a.verdict("x", "y", seq).drop != a.verdict("y", "x", seq).drop) {
      ++diff_link;
    }
  }
  EXPECT_GT(diff_seed, 0) << "seed must change the verdict stream";
  EXPECT_GT(diff_link, 0) << "direction must change the verdict stream";
}

TEST(FaultPlan, ZeroProbabilityPlanIsFaultFree) {
  const FaultPlan plan = FaultPlan::uniform(7, 0.0);
  for (uint64_t seq = 1; seq <= 128; ++seq) {
    const FaultVerdict v = plan.verdict("a", "b", seq);
    EXPECT_FALSE(v.drop);
    EXPECT_FALSE(v.duplicate);
    EXPECT_FALSE(v.reorder);
    EXPECT_EQ(v.delay_us, 0);
  }
}

TEST(FaultPlan, DropRateTracksProbability) {
  const FaultPlan plan = FaultPlan::uniform(3, 0.25);
  int drops = 0;
  const int n = 4000;
  for (uint64_t seq = 1; seq <= n; ++seq) {
    drops += plan.verdict("a", "b", seq).drop ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.25, 0.05);
}

TEST(FaultPlan, PerLinkOverrideWins) {
  FaultPlan plan;
  plan.default_link.drop_p = 0.0;
  plan.links[{"a", "b"}] = LinkFaults{1.0, 0.0, 0.0, 0, 0};
  EXPECT_TRUE(plan.verdict("a", "b", 1).drop);
  EXPECT_FALSE(plan.verdict("b", "a", 1).drop);
}

TEST(ChaosBus, DropsMatchTheVerdictStream) {
  FaultPlan plan;
  plan.seed = 11;
  plan.default_link.drop_p = 0.3;
  ChaosBus bus(plan);
  auto sink = bus.register_endpoint("y");

  const int n = 200;
  int expected_drops = 0;
  for (uint64_t seq = 1; seq <= n; ++seq) {
    expected_drops += plan.verdict("x", "y", seq).drop ? 1 : 0;
    Message m;
    m.type = dist::MessageType::kData;
    m.from = "x";
    m.seq = seq;
    m.attempt = 1;
    bus.send("y", m);
  }
  const ChaosBus::ChaosStats stats = bus.chaos_stats();
  EXPECT_EQ(stats.data_messages, n);
  EXPECT_EQ(stats.dropped, expected_drops);
  EXPECT_GT(stats.dropped, 0);

  int received = 0;
  while (sink->try_pop()) ++received;
  EXPECT_EQ(received, n - expected_drops);
}

TEST(ChaosBus, RetransmissionsAndControlPlaneAreExempt) {
  ChaosBus bus(FaultPlan::uniform(5, 1.0));  // drop everything eligible
  auto sink = bus.register_endpoint("y");

  Message retry;
  retry.type = dist::MessageType::kData;
  retry.from = "x";
  retry.seq = 1;
  retry.attempt = 2;  // retransmission
  EXPECT_EQ(bus.send("y", retry), dist::SendStatus::kDelivered);

  Message control;
  control.type = dist::MessageType::kHeartbeat;
  control.from = "x";
  EXPECT_EQ(bus.send("y", control), dist::SendStatus::kDelivered);

  int received = 0;
  while (sink->try_pop()) ++received;
  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus.chaos_stats().dropped, 0);
}

TEST(ChaosBus, MessageCountCrashTriggerFiresOnce) {
  FaultPlan plan;
  plan.crashes.push_back(CrashTrigger{"victim", 3, -1});
  ChaosBus bus(plan);
  bus.register_endpoint("y");
  std::atomic<int> fired{0};
  bus.set_crash_handler([&](const std::string& node) {
    EXPECT_EQ(node, "victim");
    fired.fetch_add(1);
  });
  Message m;
  m.type = dist::MessageType::kHeartbeat;
  m.from = "x";
  for (int i = 0; i < 6; ++i) bus.send("y", m);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(bus.chaos_stats().crashes_fired, 1);
}

TEST(ChaosBus, DelayedMessagesArriveAfterTheWire) {
  FaultPlan plan;
  plan.seed = 9;
  plan.default_link.delay_min_us = 1000;
  plan.default_link.delay_max_us = 5000;
  ChaosBus bus(plan);
  auto sink = bus.register_endpoint("y");
  Message m;
  m.type = dist::MessageType::kData;
  m.from = "x";
  m.seq = 1;
  m.attempt = 1;
  bus.send("y", m);
  // Either still on the wire or already delivered; it must show up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink->empty() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(sink->empty());
  // Wait until the wire thread has accounted for the delivery.
  while (bus.in_flight() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(bus.in_flight(), 0);
  EXPECT_EQ(bus.chaos_stats().delayed, 1);
}

// Pumps a mailbox: data goes through the receiving channel (dedup,
// ordering, ack-after-apply), acks feed the sending channel.
struct Pump {
  std::shared_ptr<dist::MessageBus::Mailbox> mailbox;
  ReliableChannel* channel;
  std::vector<std::vector<uint8_t>>* received = nullptr;
  std::thread thread;

  void start() {
    thread = std::thread([this] {
      while (auto message = mailbox->pop()) {
        if (message->type == dist::MessageType::kData) {
          for (const Message& inner : channel->on_data(*message)) {
            if (received) received->push_back(inner.payload);
          }
          channel->ack(message->from);
        } else if (message->type == dist::MessageType::kAck) {
          channel->on_ack(*message);
        }
      }
    });
  }
};

TEST(ReliableChannel, DeliversInOrderOverALossyBus) {
  ChaosBus bus(FaultPlan::uniform(21, 0.25));  // drop+dup+reorder
  auto a_box = bus.register_endpoint("a");
  auto b_box = bus.register_endpoint("b");

  ReliableChannel::Options fast;
  fast.rto_initial_us = 3000;
  fast.rto_max_us = 20000;
  ReliableChannel a(bus, "a", fast);
  ReliableChannel b(bus, "b", fast);

  std::vector<std::vector<uint8_t>> received;
  Pump pump_a{a_box, &a, nullptr, {}};
  Pump pump_b{b_box, &b, &received, {}};
  pump_a.start();
  pump_b.start();

  const int n = 60;
  for (uint8_t i = 0; i < n; ++i) {
    a.send("b", dist::MessageType::kRemoteStore, {i});
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (a.unacked() != 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(a.unacked(), 0) << "every message must eventually be acked";

  bus.close_all();
  pump_a.thread.join();
  pump_b.thread.join();
  a.stop();
  b.stop();

  ASSERT_EQ(received.size(), static_cast<size_t>(n))
      << "exactly-once application despite drops and duplicates";
  for (uint8_t i = 0; i < n; ++i) {
    EXPECT_EQ(received[i], std::vector<uint8_t>{i}) << "in-order delivery";
  }
  const ReliableChannel::Stats stats = a.stats();
  EXPECT_EQ(stats.data_sent, n);
  EXPECT_GT(stats.retransmits, 0) << "drops must trigger retransmissions";
}

TEST(ReliableChannel, AbandonPeerDrainsUnacked) {
  dist::MessageBus bus;
  bus.register_endpoint("a");
  bus.register_endpoint("dead");
  ReliableChannel a(bus, "a");
  a.send("dead", dist::MessageType::kRemoteStore, {1});
  a.send("dead", dist::MessageType::kRemoteStore, {2});
  EXPECT_EQ(a.unacked(), 2);
  a.abandon_peer("dead");
  EXPECT_EQ(a.unacked(), 0);
}

TEST(ReliableChannel, SendToDeadPeerDoesNotLeakPending) {
  dist::MessageBus bus;
  bus.register_endpoint("a");
  bus.register_endpoint("gone");
  bus.mark_dead("gone");
  ReliableChannel a(bus, "a");
  EXPECT_EQ(a.send("gone", dist::MessageType::kRemoteStore, {1}),
            dist::SendStatus::kDead);
  EXPECT_EQ(a.unacked(), 0);
}

TEST(FailureDetector, SuspectsSilentNodesAfterTheBound) {
  FailureDetector::Options options;
  options.phi_threshold = 3.0;
  options.min_silence_us = 10'000;  // 10ms floor
  FailureDetector detector(options);

  // Steady 1ms beats from both nodes (synthetic clock).
  int64_t t = 0;
  const int64_t ms = 1'000'000;
  for (int i = 0; i < 10; ++i) {
    t += ms;
    detector.heartbeat("alive", t);
    detector.heartbeat("quiet", t);
  }
  EXPECT_TRUE(detector.suspects(t + ms).empty());

  // "quiet" goes silent; "alive" keeps beating.
  int64_t t2 = t;
  for (int i = 0; i < 30; ++i) {
    t2 += ms;
    detector.heartbeat("alive", t2);
  }
  const std::vector<std::string> suspects = detector.suspects(t2);
  ASSERT_EQ(suspects.size(), 1u);
  EXPECT_EQ(suspects[0], "quiet");
  EXPECT_EQ(detector.last_beat_ns("quiet"), t);

  detector.remove("quiet");
  EXPECT_TRUE(detector.suspects(t2).empty());
}

TEST(FailureDetector, AbsoluteFloorPreventsStartupFalsePositives) {
  FailureDetector::Options options;
  options.min_silence_us = 250'000;
  FailureDetector detector(options);
  detector.heartbeat("n", 0);  // single beat: no interval history yet
  EXPECT_TRUE(detector.suspects(100'000'000).empty());  // 100ms < floor
  EXPECT_EQ(detector.suspects(300'000'000).size(), 1u);
}

TEST(StoreFill, WritesOnlyMissingElementsAndCountsThem) {
  FieldStorage storage(
      FieldDecl{0, "f", nd::ElementType::kInt32, 1});
  const std::vector<int32_t> lo{10, 11, 12};
  const std::vector<int32_t> hi{92, 93, 94};

  // Elements [0,3) stored normally; fill over [0,6) must write only [3,6).
  storage.store(0, nd::Region(std::vector<nd::Interval>{{0, 3}}),
                reinterpret_cast<const std::byte*>(lo.data()));
  const std::vector<int32_t> full{70, 71, 72, 73, 74, 75};
  EXPECT_EQ(storage.store_fill(
                0, nd::Region(std::vector<nd::Interval>{{0, 6}}),
                reinterpret_cast<const std::byte*>(full.data())),
            3);
  // A second identical fill is a pure duplicate.
  EXPECT_EQ(storage.store_fill(
                0, nd::Region(std::vector<nd::Interval>{{0, 6}}),
                reinterpret_cast<const std::byte*>(full.data())),
            0);
  // Overlap kept the first write; holes got the fill payload.
  const nd::AnyBuffer data =
      storage.fetch(0, nd::Region(std::vector<nd::Interval>{{0, 6}}));
  const int32_t* v = data.data<int32_t>();
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[2], 12);
  EXPECT_EQ(v[3], 73);
  EXPECT_EQ(v[5], 75);
  (void)hi;
}

TEST(Rng, MixIsStableAndSeedSensitive) {
  EXPECT_EQ(mix(1, 2, 3), mix(1, 2, 3));
  EXPECT_NE(mix(1, 2, 3), mix(2, 2, 3));
  EXPECT_NE(mix(1, 2, 3), mix(1, 3, 2));
  EXPECT_EQ(hash_str("node0"), hash_str("node0"));
  EXPECT_NE(hash_str("node0"), hash_str("node1"));
}

}  // namespace
}  // namespace p2g::ft
