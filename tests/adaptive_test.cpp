// Tests for the adaptive granularity controller (paper §V-A): the LLS
// coarsens dispatch-bound kernels at runtime without changing results.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "workloads/kmeans.h"

namespace p2g {
namespace {

TEST(AdaptiveChunking, CoarsensDispatchBoundKernel) {
  workloads::KmeansWorkload baseline;
  baseline.config = workloads::KmeansConfig{.n = 400, .k = 20, .dim = 2,
                                            .iterations = 6, .seed = 13};
  int64_t baseline_dispatches = 0;
  {
    RunOptions opts;
    opts.workers = 2;
    baseline.apply_schedule(opts);
    Runtime rt(baseline.build(), opts);
    const RunReport report = rt.run();
    baseline_dispatches =
        report.instrumentation.find("assign")->dispatches;
  }

  workloads::KmeansWorkload adaptive;
  adaptive.config = baseline.config;
  RunOptions opts;
  opts.workers = 2;
  opts.adaptive_chunking = true;
  adaptive.apply_schedule(opts);
  Runtime rt(adaptive.build(), opts);
  const RunReport report = rt.run();

  const auto* assign = report.instrumentation.find("assign");
  EXPECT_EQ(assign->instances, baseline_dispatches)
      << "baseline dispatches one instance per body";
  EXPECT_LT(assign->dispatches, baseline_dispatches)
      << "the controller must have coarsened the assign kernel";

  // Determinism survives the adaptation.
  EXPECT_EQ(adaptive.snapshots->back(),
            workloads::kmeans_sequential(adaptive.config));
  EXPECT_EQ(*adaptive.snapshots, *baseline.snapshots);
}

TEST(AdaptiveChunking, ExplicitScheduleWins) {
  workloads::KmeansWorkload workload;
  workload.config = workloads::KmeansConfig{.n = 300, .k = 10, .dim = 2,
                                            .iterations = 5, .seed = 2};
  RunOptions opts;
  opts.workers = 2;
  opts.adaptive_chunking = true;
  workload.apply_schedule(opts);
  opts.kernel_schedules["assign"].chunk = 3;  // explicit: must stay 3
  Runtime rt(workload.build(), opts);
  const RunReport report = rt.run();
  const auto* assign = report.instrumentation.find("assign");
  // With a fixed chunk of 3, dispatches ~ instances / 3 (never below).
  EXPECT_GE(assign->dispatches * 3 + 2, assign->instances);
  EXPECT_EQ(workload.snapshots->back(),
            workloads::kmeans_sequential(workload.config));
}

}  // namespace
}  // namespace p2g
