// Integration tests: the paper's workloads end-to-end on the runtime.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "media/jpeg.h"
#include "workloads/kmeans.h"
#include "workloads/mjpeg_workload.h"
#include "workloads/mul2plus5.h"
#include "workloads/standalone_mjpeg.h"

namespace p2g::workloads {
namespace {

TEST(Mul2Plus5Workload, GoldenFirstAges) {
  Mul2Plus5 workload;
  RunOptions opts;
  opts.workers = 2;
  opts.max_age = 1;
  Runtime rt(workload.build(), opts);
  rt.run();
  ASSERT_EQ(workload.printed->size(), 2u);
  EXPECT_EQ((*workload.printed)[0],
            (std::vector<int32_t>{10, 11, 12, 13, 14, 20, 22, 24, 26, 28}));
  EXPECT_EQ((*workload.printed)[1],
            (std::vector<int32_t>{25, 27, 29, 31, 33, 50, 54, 58, 62, 66}));
}

class MjpegWorkloadTest : public ::testing::Test {
 protected:
  static constexpr int kWidth = 64;
  static constexpr int kHeight = 48;
  static constexpr int kFrames = 5;

  std::shared_ptr<media::YuvVideo> make_video() {
    return std::make_shared<media::YuvVideo>(
        media::generate_synthetic_video(kWidth, kHeight, kFrames));
  }
};

TEST_F(MjpegWorkloadTest, EncodesAllFramesWithExpectedInstanceCounts) {
  MjpegWorkload workload;
  workload.video = make_video();
  RunOptions opts;
  opts.workers = 2;
  Runtime rt(workload.build(), opts);
  RunReport report = rt.run();
  EXPECT_FALSE(report.timed_out);

  EXPECT_EQ(workload.output->frame_count(), static_cast<size_t>(kFrames));

  // Geometry: 64x48 -> 8x6 = 48 luma blocks, 32x24 -> 4x3 = 12 chroma.
  const auto* read = report.instrumentation.find("read_splityuv");
  const auto* ydct = report.instrumentation.find("yDCT");
  const auto* udct = report.instrumentation.find("uDCT");
  const auto* vdct = report.instrumentation.find("vDCT");
  const auto* vlc = report.instrumentation.find("vlc_write");
  EXPECT_EQ(read->instances, kFrames + 1) << "frames + the EOF probe";
  EXPECT_EQ(ydct->instances, 48 * kFrames);
  EXPECT_EQ(udct->instances, 12 * kFrames);
  EXPECT_EQ(vdct->instances, 12 * kFrames);
  EXPECT_EQ(vlc->instances, kFrames);
}

TEST_F(MjpegWorkloadTest, BitExactWithStandaloneEncoder) {
  auto video = make_video();
  MjpegWorkload workload;
  workload.video = video;
  RunOptions opts;
  opts.workers = 4;
  Runtime rt(workload.build(), opts);
  rt.run();

  const media::MjpegWriter standalone = encode_mjpeg_standalone(*video);
  EXPECT_EQ(workload.output->stream(), standalone.stream())
      << "the P2G pipeline must be bit-exact with the single-threaded "
         "encoder it parallelizes";
}

TEST_F(MjpegWorkloadTest, DeterministicAcrossWorkerCounts) {
  auto video = make_video();
  std::vector<uint8_t> reference;
  for (int workers : {1, 3}) {
    MjpegWorkload workload;
    workload.video = video;
    RunOptions opts;
    opts.workers = workers;
    Runtime rt(workload.build(), opts);
    rt.run();
    if (reference.empty()) {
      reference = workload.output->stream();
    } else {
      EXPECT_EQ(workload.output->stream(), reference);
    }
  }
}

TEST_F(MjpegWorkloadTest, DecodedFramesAreFaithful) {
  auto video = make_video();
  MjpegWorkload workload;
  workload.video = video;
  workload.config.quality = 75;
  Runtime rt(workload.build(), RunOptions{});
  rt.run();
  const auto frames = media::split_mjpeg(workload.output->stream());
  ASSERT_EQ(frames.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    const media::YuvFrame decoded =
        media::decode_jpeg(frames[static_cast<size_t>(i)]);
    EXPECT_GT(media::psnr(video->frames[static_cast<size_t>(i)].y,
                          decoded.y),
              30.0)
        << "frame " << i;
  }
}

TEST_F(MjpegWorkloadTest, ChunkedDctMatchesUnchunked) {
  auto video = make_video();
  std::vector<uint8_t> reference;
  for (int chunk : {1, 16}) {
    MjpegWorkload workload;
    workload.video = video;
    RunOptions opts;
    opts.workers = 2;
    opts.kernel_schedules["yDCT"].chunk = chunk;
    opts.kernel_schedules["uDCT"].chunk = chunk;
    opts.kernel_schedules["vDCT"].chunk = chunk;
    Runtime rt(workload.build(), opts);
    RunReport report = rt.run();
    if (chunk > 1) {
      const auto* ydct = report.instrumentation.find("yDCT");
      EXPECT_LT(ydct->dispatches, ydct->instances);
    }
    if (reference.empty()) {
      reference = workload.output->stream();
    } else {
      EXPECT_EQ(workload.output->stream(), reference);
    }
  }
}

TEST(KmeansWorkload, MatchesSequentialReferenceExactly) {
  KmeansWorkload workload;
  workload.config = KmeansConfig{.n = 60, .k = 5, .dim = 2,
                                 .iterations = 4, .seed = 7};
  RunOptions opts;
  opts.workers = 2;
  workload.apply_schedule(opts);
  Runtime rt(workload.build(), opts);
  RunReport report = rt.run();
  EXPECT_FALSE(report.timed_out);

  ASSERT_EQ(workload.snapshots->size(),
            static_cast<size_t>(workload.config.iterations + 1));
  const std::vector<double> expected =
      kmeans_sequential(workload.config);
  EXPECT_EQ(workload.snapshots->back(), expected)
      << "P2G and sequential k-means must agree bit-for-bit";
}

TEST(KmeansWorkload, InstanceCountsFollowTheDecomposition) {
  KmeansWorkload workload;
  workload.config = KmeansConfig{.n = 40, .k = 4, .dim = 2,
                                 .iterations = 3, .seed = 1};
  RunOptions opts;
  opts.workers = 2;
  workload.apply_schedule(opts);
  Runtime rt(workload.build(), opts);
  RunReport report = rt.run();

  const auto& cfg = workload.config;
  EXPECT_EQ(report.instrumentation.find("init")->instances, 1);
  EXPECT_EQ(report.instrumentation.find("assign")->instances,
            int64_t{cfg.n} * cfg.k * cfg.iterations);
  EXPECT_EQ(report.instrumentation.find("refine")->instances,
            int64_t{cfg.k} * cfg.iterations);
  EXPECT_EQ(report.instrumentation.find("print")->instances,
            cfg.iterations + 1);
}

TEST(KmeansWorkload, DeterministicAcrossWorkerCounts) {
  std::vector<std::vector<double>> results;
  for (int workers : {1, 4}) {
    KmeansWorkload workload;
    workload.config = KmeansConfig{.n = 50, .k = 6, .dim = 3,
                                   .iterations = 3, .seed = 99};
    RunOptions opts;
    opts.workers = workers;
    workload.apply_schedule(opts);
    Runtime rt(workload.build(), opts);
    rt.run();
    results.push_back(workload.snapshots->back());
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(KmeansWorkload, CentroidsConvergeTowardLowerInertia) {
  KmeansWorkload workload;
  workload.config = KmeansConfig{.n = 200, .k = 8, .dim = 2,
                                 .iterations = 6, .seed = 3};
  RunOptions opts;
  workload.apply_schedule(opts);
  Runtime rt(workload.build(), opts);
  rt.run();

  const std::vector<double> points = generate_points(workload.config);
  auto inertia = [&](const std::vector<double>& centroids) {
    double total = 0.0;
    const int dim = workload.config.dim;
    for (int x = 0; x < workload.config.n; ++x) {
      double best = 1e300;
      for (int j = 0; j < workload.config.k; ++j) {
        double d2 = 0;
        for (int d = 0; d < dim; ++d) {
          const double delta =
              points[static_cast<size_t>(x * dim + d)] -
              centroids[static_cast<size_t>(j * dim + d)];
          d2 += delta * delta;
        }
        best = std::min(best, d2);
      }
      total += best;
    }
    return total;
  };
  const double first = inertia(workload.snapshots->front());
  const double last = inertia(workload.snapshots->back());
  EXPECT_LT(last, first) << "iterations must reduce within-cluster inertia";
}

}  // namespace
}  // namespace p2g::workloads
