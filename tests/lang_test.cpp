// Tests for the kernel language: lexer, parser, sema, interpreter backend
// (running the paper's Fig. 5 program end-to-end) and the C++ codegen.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/lang_lint.h"
#include "core/runtime.h"
#include "lang/codegen.h"
#include "lang/driver.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace p2g::lang {
namespace {

/// The paper's Fig. 5 example in kernel-language syntax.
const char* kMul2Plus5 = R"(
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{
    int32 i = 0;
    for (; i < 5; i++) {
      put(values, i + 10, i);
    }
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  local int32 value;
  fetch value = m_data(a)[x];
  %{ value *= 2; %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  local int32 value;
  fetch value = p_data(a)[x];
  %{ value += 5; %}
  store m_data(a+1)[x] = value;

print:
  age a;
  serial;
  local int32[] m;
  local int32[] p;
  fetch m = m_data(a);
  fetch p = p_data(a);
  %{
    print(m);
    print(p);
  %}
)";

TEST(Lexer, TokenizesRepresentativeInput) {
  const auto tokens = tokenize("fetch value = m_data(a+1)[x]; %{ x *= 2; %}");
  ASSERT_GE(tokens.size(), 17u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwFetch);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "value");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
  // %{ and %} lex as single tokens.
  int code_open = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kCodeOpen) ++code_open;
  }
  EXPECT_EQ(code_open, 1);
}

TEST(Lexer, CommentsAndLiterals) {
  const auto tokens = tokenize(
      "// line comment\n/* block */ 42 3.5 \"hi\\n\" true");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[2].text, "hi\n");
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwTrue);
}

TEST(Lexer, ErrorsCarryPosition) {
  try {
    tokenize("a\n  @");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kParse);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, ParsesTheFig5Module) {
  const ModuleAst module = parse_module(kMul2Plus5);
  ASSERT_EQ(module.fields.size(), 2u);
  EXPECT_EQ(module.fields[0].name, "m_data");
  EXPECT_EQ(module.fields[0].rank, 1);
  ASSERT_EQ(module.kernels.size(), 4u);

  const KernelDefAst& mul2 = module.kernels[1];
  EXPECT_EQ(mul2.name, "mul2");
  EXPECT_EQ(mul2.age_var, "a");
  ASSERT_EQ(mul2.index_vars.size(), 1u);
  EXPECT_EQ(mul2.index_vars[0], "x");
  EXPECT_FALSE(mul2.serial);

  const KernelDefAst& print = module.kernels[3];
  EXPECT_TRUE(print.serial);
  EXPECT_TRUE(module.kernels[0].age_var.empty()) << "init is run-once";
}

TEST(Parser, FieldAccessForms) {
  const ModuleAst module = parse_module(R"(
int32[][] grid age;
k:
  age t;
  index i, j;
  local int32 v;
  fetch v = grid(t - 1)[i][j];
  store grid(t)[i][j] = v;
)");
  const KernelDefAst& k = module.kernels[0];
  const Stmt& fetch = *k.body[1];
  ASSERT_EQ(fetch.kind, Stmt::Kind::kFetch);
  EXPECT_EQ(fetch.access.age.kind, AgeRef::Kind::kRelative);
  EXPECT_EQ(fetch.access.age.offset, -1);
  ASSERT_EQ(fetch.access.slices.size(), 2u);
  EXPECT_EQ(fetch.access.slices[0].name, "i");
}

TEST(Parser, SyntaxErrorsThrow) {
  EXPECT_THROW(parse_module("int32[] x"), Error);           // missing ;
  EXPECT_THROW(parse_module("k:\n  bogus;"), Error);        // bad clause
  EXPECT_THROW(parse_module("k:\n  %{ x = ; %}"), Error);   // bad expr
  EXPECT_THROW(parse_module("k:\n  %{ if (x) %}"), Error);  // cut block
}

TEST(Sema, RejectsUnknownFieldAndVariables) {
  EXPECT_THROW(compile_source(R"(
k:
  age a;
  local int32 v;
  fetch v = nothing(a)[0];
)"),
               Error);
  EXPECT_THROW(compile_source(R"(
int32[] f age;
k:
  age a;
  index x;
  local int32 v;
  fetch v = f(a)[y];
  store f(a+1)[x] = v;
)"),
               Error);
}

TEST(Sema, RejectsConditionalFetch) {
  try {
    compile_source(R"(
int32[] f age;
k:
  age a;
  index x;
  local int32 v;
  %{
    if (x > 0) {
      fetch v = f(a)[x];
    }
  %}
  store f(a+1)[x] = v;
)");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSema);
    EXPECT_NE(std::string(e.what()).find("unconditional"),
              std::string::npos);
  }
}

TEST(Sema, RejectsRankMismatch) {
  EXPECT_THROW(compile_source(R"(
int32[][] f age;
k:
  age a;
  index x;
  local int32 v;
  fetch v = f(a)[x];
  store f(a+1)[x] = v;
)"),
               Error);
}

TEST(Sema, RejectsWholeStoreOfScalar) {
  EXPECT_THROW(compile_source(R"(
int32[] f age;
init:
  local int32 v;
  store f(0) = v;
)"),
               Error);
}

TEST(Interp, Fig5ProgramReproducesThePaperSequence) {
  CompiledModule compiled = compile_source(kMul2Plus5);
  RunOptions options;
  options.max_age = 1;
  options.workers = 2;
  Runtime runtime(std::move(compiled.program), options);
  runtime.run();

  const std::vector<std::string> lines = compiled.printed->snapshot();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "{10, 11, 12, 13, 14}");
  EXPECT_EQ(lines[1], "{20, 22, 24, 26, 28}");
  EXPECT_EQ(lines[2], "{25, 27, 29, 31, 33}");
  EXPECT_EQ(lines[3], "{50, 54, 58, 62, 66}");
}

TEST(Interp, SourceKernelWithContinueAge) {
  CompiledModule compiled = compile_source(R"(
int32[] frames age;
int32[] out age;

reader:
  age a;
  local int32[] frame;
  %{
    if (a < 3) {
      put(frame, a * 100, 0);
      put(frame, a * 100 + 1, 1);
      store frames(a) = frame;
      continue_age();
    }
  %}

double_it:
  age a;
  index x;
  local int32 v;
  fetch v = frames(a)[x];
  %{ v *= 2; %}
  store out(a)[x] = v;
)");
  Runtime runtime(std::move(compiled.program), RunOptions{});
  const RunReport report = runtime.run();
  EXPECT_EQ(report.instrumentation.find("reader")->instances, 4);
  EXPECT_EQ(report.instrumentation.find("double_it")->instances, 6);
  EXPECT_EQ(runtime.storage("out").fetch_whole(2).at<int32_t>(1), 402);
}

TEST(Interp, FloatFieldsAndMathBuiltins) {
  CompiledModule compiled = compile_source(R"(
float64[] data age;
float64[] result age;

init:
  local float64[] values;
  %{
    put(values, 9.0, 0);
    put(values, 16.0, 1);
  %}
  store data(0) = values;

root:
  age a;
  index x;
  local float64 v;
  fetch v = data(a)[x];
  %{ v = sqrt(v); %}
  store result(a)[x] = v;
)");
  RunOptions options;
  options.max_age = 0;
  Runtime runtime(std::move(compiled.program), options);
  runtime.run();
  EXPECT_DOUBLE_EQ(runtime.storage("result").fetch_whole(0).at<double>(0),
                   3.0);
  EXPECT_DOUBLE_EQ(runtime.storage("result").fetch_whole(0).at<double>(1),
                   4.0);
}

TEST(Interp, WhileLoopAndExtent) {
  CompiledModule compiled = compile_source(R"(
int32[] data age;
int32[] sums age;

init:
  local int32[] values;
  %{
    int32 i = 0;
    while (i < 10) {
      put(values, i, i);
      i++;
    }
  %}
  store data(0) = values;

sum:
  age a;
  local int32[] d;
  local int32[] total;
  fetch d = data(a);
  %{
    int32 acc = 0;
    int32 i = 0;
    for (; i < extent(d, 0); i++) {
      acc += get(d, i);
    }
    put(total, acc, 0);
  %}
  store sums(a) = total;
)");
  RunOptions options;
  options.max_age = 0;
  Runtime runtime(std::move(compiled.program), options);
  runtime.run();
  EXPECT_EQ(runtime.storage("sums").fetch_whole(0).at<int32_t>(0), 45);
}

TEST(Interp, RuntimeDivisionByZeroSurfaces) {
  CompiledModule compiled = compile_source(R"(
int32[] f age;
init:
  local int32[] v;
  %{
    int32 zero = 0;
    put(v, 1 / zero, 0);
  %}
  store f(0) = v;
)");
  Runtime runtime(std::move(compiled.program), RunOptions{});
  EXPECT_THROW(runtime.run(), Error);
}

TEST(Codegen, EmitsBuilderCallsForFig5) {
  const std::string cpp = generate_cpp_from_source(kMul2Plus5);
  EXPECT_NE(cpp.find("pb.field(\"m_data\""), std::string::npos);
  EXPECT_NE(cpp.find("pb.kernel(\"mul2\")"), std::string::npos);
  EXPECT_NE(cpp.find(".fetch(\"value\", \"m_data\", "
                     "p2g::AgeExpr::relative(0), "
                     "p2g::Slice().var(\"x\"))"),
            std::string::npos);
  EXPECT_NE(cpp.find("p2g::AgeExpr::relative(1)"), std::string::npos)
      << "plus5 stores to age a+1";
  EXPECT_NE(cpp.find(".serial()"), std::string::npos);
  EXPECT_NE(cpp.find(".run_once()"), std::string::npos);
  EXPECT_EQ(cpp.find("with_main"), std::string::npos);
}

TEST(Codegen, GeneratedCodeTypeChecks) {
#ifndef P2G_SOURCE_DIR
  GTEST_SKIP() << "source dir not configured";
#else
  CodegenOptions options;
  options.with_main = true;
  options.source_name = "fig5.p2g";
  const std::string cpp = generate_cpp_from_source(kMul2Plus5, options);

  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/p2g_codegen_test.cpp";
  std::ofstream(path) << cpp;
  const std::string command = "g++ -std=c++20 -fsyntax-only -I " +
                              std::string(P2G_SOURCE_DIR) + "/src " + path +
                              " 2> " + dir + "/p2g_codegen_err.txt";
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    std::ifstream err(dir + "/p2g_codegen_err.txt");
    std::string details((std::istreambuf_iterator<char>(err)),
                        std::istreambuf_iterator<char>());
    FAIL() << "generated code does not compile:\n" << details << "\n"
           << cpp;
  }
  std::remove(path.c_str());
#endif
}

TEST(Driver, CompileFileRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/fig5_driver.p2g";
  std::ofstream(path) << kMul2Plus5;
  CompiledModule compiled = compile_file(path);
  RunOptions options;
  options.max_age = 0;
  Runtime runtime(std::move(compiled.program), options);
  runtime.run();
  EXPECT_EQ(compiled.printed->snapshot().size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(compile_file("/nonexistent/file.p2g"), Error);
}

TEST(Programs, KmeansInTheKernelLanguage) {
#ifndef P2G_SOURCE_DIR
  GTEST_SKIP() << "source dir not configured";
#else
  const std::string path =
      std::string(P2G_SOURCE_DIR) + "/examples/programs/kmeans.p2g";
  std::vector<std::string> reference;
  for (int workers : {1, 2}) {
    CompiledModule compiled = compile_file(path);
    RunOptions options;
    options.max_age = 6;
    options.workers = workers;
    options.kernel_schedules["assign"].max_age = 5;
    options.kernel_schedules["refine"].max_age = 5;
    Runtime runtime(std::move(compiled.program), options);
    const RunReport report = runtime.run();
    EXPECT_FALSE(report.timed_out);

    // 60 points x 5 centroids x 6 iterations of assign; 5 x 6 refine.
    EXPECT_EQ(report.instrumentation.find("assign")->instances,
              60 * 5 * 6);
    EXPECT_EQ(report.instrumentation.find("refine")->instances, 5 * 6);
    EXPECT_EQ(report.instrumentation.find("report")->instances, 7);

    const std::vector<std::string> lines = compiled.printed->snapshot();
    ASSERT_EQ(lines.size(), 7u);
    auto centroids_of = [](const std::string& line) {
      return line.substr(line.find('{'));
    };
    EXPECT_EQ(centroids_of(lines.back()),
              centroids_of(lines[lines.size() - 2]))
        << "k-means converged on this dataset";
    if (reference.empty()) {
      reference = lines;
    } else {
      EXPECT_EQ(lines, reference) << "language programs are deterministic";
    }
  }
#endif
}

TEST(Programs, SmoothingInTheKernelLanguage) {
#ifndef P2G_SOURCE_DIR
  GTEST_SKIP() << "source dir not configured";
#else
  const std::string path =
      std::string(P2G_SOURCE_DIR) + "/examples/programs/smoothing.p2g";
  CompiledModule compiled = compile_file(path);
  Runtime runtime(std::move(compiled.program), RunOptions{});
  const RunReport report = runtime.run();
  EXPECT_FALSE(report.timed_out);
  // 12 sensor samples, smoothing starts at age 1 -> 11 reports.
  const std::vector<std::string> lines = compiled.printed->snapshot();
  ASSERT_EQ(lines.size(), 11u);
  EXPECT_EQ(lines[0], "age mean: 9");
#endif
}

// --- p2g-lint negative cases -------------------------------------------------
// Each of the three static error classes must surface with its stable
// diagnostic code and the source line of the offending statement.

TEST(Lint, Fig5ProgramIsClean) {
  const analysis::LintReport report = analysis::lint_source(kMul2Plus5);
  EXPECT_TRUE(report.empty()) << report.to_text();
}

TEST(Lint, ConflictingStoresReportW001) {
  const analysis::LintReport report = analysis::lint_source(R"(
int32[] src age;
int32[] dst age;

init:
  local int32[] values;
  %{ put(values, 1, 0); %}
  store src(0) = values;

writer_a:
  age a;
  index x;
  local int32 value;
  fetch value = src(a)[x];
  store dst(a)[x] = value;

writer_b:
  age a;
  index x;
  local int32 value;
  fetch value = src(a)[x];
  store dst(a)[x] = value;
)");
  ASSERT_EQ(report.count(analysis::kWriteConflict), 1u) << report.to_text();
  const analysis::Diagnostic* d = report.find(analysis::kWriteConflict);
  EXPECT_EQ(d->severity, analysis::Severity::kError);
  EXPECT_EQ(d->primary.name, "writer_a");
  EXPECT_EQ(d->secondary.name, "writer_b");
  EXPECT_EQ(d->primary.line, 15);  // `store dst(a)[x] = value;` of writer_a
  EXPECT_EQ(d->secondary.line, 22);
  EXPECT_NE(d->message.find("dst"), std::string::npos);
}

TEST(Lint, UndefinedFetchReportsW002) {
  const analysis::LintReport report = analysis::lint_source(R"(
int32[] ghost age;
int32[] out age;

consumer:
  age a;
  index x;
  local int32 value;
  fetch value = ghost(a)[x];
  store out(a)[x] = value;
)");
  ASSERT_EQ(report.count(analysis::kUndefinedFetch), 1u) << report.to_text();
  const analysis::Diagnostic* d = report.find(analysis::kUndefinedFetch);
  EXPECT_EQ(d->severity, analysis::Severity::kError);
  EXPECT_EQ(d->primary.name, "consumer");
  EXPECT_EQ(d->primary.line, 9);  // the fetch statement
  EXPECT_EQ(d->secondary.name, "ghost");
}

TEST(Lint, ZeroAgingCycleReportsW003) {
  const analysis::LintReport report = analysis::lint_source(R"(
int32[] p age;
int32[] q age;

forward:
  age a;
  index x;
  local int32 value;
  fetch value = q(a)[x];
  store p(a)[x] = value;

backward:
  age a;
  index x;
  local int32 value;
  fetch value = p(a)[x];
  store q(a)[x] = value;
)");
  ASSERT_EQ(report.count(analysis::kZeroAgingCycle), 1u) << report.to_text();
  const analysis::Diagnostic* d = report.find(analysis::kZeroAgingCycle);
  EXPECT_EQ(d->severity, analysis::Severity::kError);
  EXPECT_NE(d->message.find("forward"), std::string::npos);
  EXPECT_NE(d->message.find("backward"), std::string::npos);
  EXPECT_NE(d->message.find("net aging 0"), std::string::npos);
}

TEST(Lint, AgingCycleWithPositiveNetIsClean) {
  // The Fig. 5 loop ages by +1 per turn — a legal, unrollable cycle.
  const analysis::LintReport report = analysis::lint_source(kMul2Plus5);
  EXPECT_EQ(report.count(analysis::kZeroAgingCycle), 0u) << report.to_text();
}

TEST(Lint, ExampleProgramsAreClean) {
#ifndef P2G_SOURCE_DIR
  GTEST_SKIP() << "source dir not configured";
#else
  for (const char* name : {"mul2plus5.p2g", "kmeans.p2g", "smoothing.p2g"}) {
    const std::string path =
        std::string(P2G_SOURCE_DIR) + "/examples/programs/" + name;
    const analysis::LintReport report = analysis::lint_file(path);
    EXPECT_TRUE(report.empty()) << name << ":\n" << report.to_text();
  }
#endif
}

}  // namespace
}  // namespace p2g::lang
