// Property-based tests (parameterized gtest sweeps): determinism across
// scheduler configurations, quiescence of randomized pipeline programs,
// write-once enforcement under parallel stress, and the static
// first-feasible-age analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"

#include "analysis/lint.h"
#include "core/context.h"
#include "core/dependency.h"
#include "core/runtime.h"
#include "workloads/kmeans.h"
#include "workloads/mul2plus5.h"

namespace p2g {
namespace {

// ---------------------------------------------------------------------------
// Determinism: the mul2/plus5 cycle produces identical output under every
// combination of worker count, chunking and queue order.

struct SchedulerConfig {
  int workers;
  int64_t chunk;
  bool age_priority;
  bool fuse;
};

class DeterminismSweep : public ::testing::TestWithParam<SchedulerConfig> {};

TEST_P(DeterminismSweep, Mul2Plus5OutputIsInvariant) {
  const SchedulerConfig& config = GetParam();

  workloads::Mul2Plus5 reference;
  {
    RunOptions opts;
    opts.workers = 1;
    opts.max_age = 6;
    Runtime rt(reference.build(), opts);
    rt.run();
  }

  workloads::Mul2Plus5 subject;
  RunOptions opts;
  opts.workers = config.workers;
  opts.max_age = 6;
  opts.age_priority = config.age_priority;
  opts.kernel_schedules["mul2"].chunk = config.chunk;
  opts.kernel_schedules["plus5"].chunk = config.chunk;
  if (config.fuse) opts.fusions.push_back(FusionRule{"mul2", "plus5"});
  Runtime rt(subject.build(), opts);
  rt.run();

  EXPECT_EQ(*subject.printed, *reference.printed);
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, DeterminismSweep,
    ::testing::Values(SchedulerConfig{1, 1, true, false},
                      SchedulerConfig{2, 1, true, false},
                      SchedulerConfig{4, 1, true, false},
                      SchedulerConfig{2, 3, true, false},
                      SchedulerConfig{4, 5, true, false},
                      SchedulerConfig{2, 1, false, false},
                      SchedulerConfig{4, 2, false, false},
                      SchedulerConfig{2, 1, true, true},
                      SchedulerConfig{4, 4, true, true}),
    [](const auto& info) {
      const SchedulerConfig& c = info.param;
      return "w" + std::to_string(c.workers) + "_c" +
             std::to_string(c.chunk) + (c.age_priority ? "_prio" : "_fifo") +
             (c.fuse ? "_fused" : "");
    });

// ---------------------------------------------------------------------------
// Random pipeline programs drain to quiescence and compute the same values
// regardless of the worker count.

struct PipelineSpec {
  uint32_t seed;
  int stages;
  int width;
  int ages;
};

class RandomPipeline : public ::testing::TestWithParam<PipelineSpec> {
 protected:
  /// Builds source -> stage_1 -> ... -> stage_n with per-stage arithmetic
  /// derived from the seed; returns the sink field's expected content.
  static Program build(const PipelineSpec& spec) {
    ProgramBuilder pb;
    pb.field("f0", nd::ElementType::kInt64, 1);
    for (int s = 1; s <= spec.stages; ++s) {
      pb.field("f" + std::to_string(s), nd::ElementType::kInt64, 1);
    }

    const int width = spec.width;
    const int ages = spec.ages;
    pb.kernel("source")
        .store("v", "f0", AgeExpr::relative(0), Slice::whole())
        .body([width, ages](KernelContext& ctx) {
          if (ctx.age() >= ages) return;
          nd::AnyBuffer v(nd::ElementType::kInt64, nd::Extents({width}));
          for (int i = 0; i < width; ++i) {
            v.data<int64_t>()[i] = ctx.age() * 1000 + i;
          }
          ctx.store_array("v", std::move(v));
          ctx.continue_next_age();
        });

    Rng rng(spec.seed);
    for (int s = 1; s <= spec.stages; ++s) {
      const int64_t mul = 1 + static_cast<int64_t>(rng() % 5);
      const int64_t add = static_cast<int64_t>(rng() % 100);
      pb.kernel("stage" + std::to_string(s))
          .index("x")
          .fetch("in", "f" + std::to_string(s - 1), AgeExpr::relative(0),
                 Slice().var("x"))
          .store("out", "f" + std::to_string(s), AgeExpr::relative(0),
                 Slice().var("x"))
          .body([mul, add](KernelContext& ctx) {
            ctx.store_scalar<int64_t>(
                "out", ctx.fetch_scalar<int64_t>("in") * mul + add);
          });
    }
    return pb.build();
  }
};

TEST_P(RandomPipeline, DrainsAndMatchesAcrossWorkerCounts) {
  const PipelineSpec& spec = GetParam();
  std::vector<int64_t> reference;
  for (int workers : {1, 3}) {
    RunOptions opts;
    opts.workers = workers;
    opts.watchdog = std::chrono::milliseconds(20000);
    Runtime rt(build(spec), opts);
    const RunReport report = rt.run();
    ASSERT_FALSE(report.timed_out) << "pipeline did not drain";

    std::vector<int64_t> sink;
    FieldStorage& last = rt.storage("f" + std::to_string(spec.stages));
    for (int a = 0; a < spec.ages; ++a) {
      const nd::AnyBuffer buf = last.fetch_whole(a);
      sink.insert(sink.end(), buf.data<int64_t>(),
                  buf.data<int64_t>() + buf.element_count());
    }
    if (reference.empty()) {
      reference = std::move(sink);
      ASSERT_EQ(reference.size(),
                static_cast<size_t>(spec.ages) *
                    static_cast<size_t>(spec.width));
    } else {
      EXPECT_EQ(sink, reference);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomPipeline,
    ::testing::Values(PipelineSpec{1, 2, 4, 5}, PipelineSpec{2, 4, 8, 7},
                      PipelineSpec{3, 1, 16, 3}, PipelineSpec{4, 6, 2, 11},
                      PipelineSpec{5, 3, 5, 20}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Write-once enforcement under parallel stress: many kernels race to store
// overlapping cells; exactly one wins, the rest trigger the violation.

TEST(WriteOnceStress, ParallelOverlappingStoresAlwaysThrow) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    ProgramBuilder pb;
    pb.field("seed", nd::ElementType::kInt32, 1);
    pb.field("target", nd::ElementType::kInt32, 1);
    pb.kernel("init")
        .run_once()
        .store("v", "seed", AgeExpr::constant(0), Slice::whole())
        .body([](KernelContext& ctx) {
          nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({8}));
          ctx.store_array("v", std::move(v));
        });
    for (int k = 0; k < 4; ++k) {
      pb.kernel("writer" + std::to_string(k))
          .index("x")
          .fetch("in", "seed", AgeExpr::relative(0), Slice().var("x"))
          .store("out", "target", AgeExpr::relative(0), Slice().var("x"))
          .body([](KernelContext& ctx) {
            ctx.store_scalar<int32_t>("out", 1);
          });
    }
    RunOptions opts;
    opts.workers = 4;
    opts.max_age = 0;
    Runtime rt(pb.build(), opts);
    try {
      rt.run();
      FAIL() << "overlapping stores must be detected";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
    }
  }
}

// ---------------------------------------------------------------------------
// First-feasible-age analysis.

TEST(FirstFeasible, OffsetsPropagateTransitively) {
  ProgramBuilder pb;
  pb.field("raw", nd::ElementType::kInt32, 1);
  pb.field("smooth", nd::ElementType::kInt32, 1);
  pb.field("out", nd::ElementType::kInt32, 1);
  auto body = [](KernelContext&) {};
  pb.kernel("src")
      .store("v", "raw", AgeExpr::relative(0), Slice::whole())
      .body(body);
  pb.kernel("smoother")
      .index("x")
      .fetch("cur", "raw", AgeExpr::relative(0), Slice().var("x"))
      .fetch("prev", "raw", AgeExpr::relative(-2), Slice().var("x"))
      .store("o", "smooth", AgeExpr::relative(0), Slice().var("x"))
      .body(body);
  pb.kernel("reporter")
      .serial()
      .fetch("s", "smooth", AgeExpr::relative(-1), Slice::whole())
      .body(body);
  const Program program = pb.build();
  const std::vector<Age> first =
      DependencyAnalyzer::first_feasible_ages(program);
  EXPECT_EQ(first[static_cast<size_t>(program.find_kernel("src"))], 0);
  EXPECT_EQ(first[static_cast<size_t>(program.find_kernel("smoother"))], 2);
  // reporter needs smooth(a-1), smooth starts at 2 -> a >= 3.
  EXPECT_EQ(first[static_cast<size_t>(program.find_kernel("reporter"))], 3);
}

TEST(FirstFeasible, UnproducedFieldIsInfeasible) {
  ProgramBuilder pb;
  pb.field("ghost", nd::ElementType::kInt32, 1);
  pb.kernel("consumer")
      .index("x")
      .fetch("in", "ghost", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext&) {});
  const Program program = pb.build();
  const std::vector<Age> first =
      DependencyAnalyzer::first_feasible_ages(program);
  EXPECT_GE(first[0], DependencyAnalyzer::kInfeasible);
}

TEST(FirstFeasible, SerialKernelWithLeadingGapDrains) {
  // The scenario that used to hang: a serial observer of a field whose
  // first age is 1 (structural a-1 offset upstream).
  ProgramBuilder pb;
  pb.field("raw", nd::ElementType::kInt32, 1);
  pb.field("delta", nd::ElementType::kInt32, 1);
  pb.kernel("src")
      .store("v", "raw", AgeExpr::relative(0), Slice::whole())
      .body([](KernelContext& ctx) {
        if (ctx.age() >= 4) return;
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({2}));
        v.data<int32_t>()[0] = static_cast<int32_t>(ctx.age());
        v.data<int32_t>()[1] = static_cast<int32_t>(ctx.age() * 2);
        ctx.store_array("v", std::move(v));
        ctx.continue_next_age();
      });
  pb.kernel("diff")
      .index("x")
      .fetch("cur", "raw", AgeExpr::relative(0), Slice().var("x"))
      .fetch("prev", "raw", AgeExpr::relative(-1), Slice().var("x"))
      .store("o", "delta", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("o",
                                  ctx.fetch_scalar<int32_t>("cur") -
                                      ctx.fetch_scalar<int32_t>("prev"));
      });
  auto seen = std::make_shared<std::vector<Age>>();
  pb.kernel("observe")
      .serial()
      .fetch("d", "delta", AgeExpr::relative(0), Slice::whole())
      .body([seen](KernelContext& ctx) { seen->push_back(ctx.age()); });

  RunOptions opts;
  opts.workers = 2;
  opts.watchdog = std::chrono::milliseconds(10000);
  Runtime rt(pb.build(), opts);
  const RunReport report = rt.run();
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(*seen, (std::vector<Age>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// K-means invariance across chunk sizes (granularity must not change the
// arithmetic).

class KmeansChunkSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(KmeansChunkSweep, ResultInvariantUnderChunking) {
  workloads::KmeansWorkload workload;
  workload.config = workloads::KmeansConfig{.n = 60, .k = 6, .dim = 2,
                                            .iterations = 3, .seed = 11};
  RunOptions opts;
  opts.workers = 2;
  workload.apply_schedule(opts);
  opts.kernel_schedules["assign"].chunk = GetParam();
  Runtime rt(workload.build(), opts);
  rt.run();
  EXPECT_EQ(workload.snapshots->back(),
            workloads::kmeans_sequential(workload.config));
}

// ---------------------------------------------------------------------------
// p2g-lint: randomized disjoint slice partitions must never produce a
// P2G-W001 false positive, and introducing a genuine overlap must always
// be caught.

namespace lintprop {

/// Builds a program where `writers` kernels write disjoint constant rows
/// of a rank-2 field. When `shared_row` is set, two kernels additionally
/// write that same row — the only genuine conflict.
Program partition_program(Rng& rng, int writers, int rows,
                          std::optional<int64_t> shared_row) {
  std::vector<int64_t> perm(static_cast<size_t>(rows));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);

  const auto nop = [](KernelContext&) {};
  ProgramBuilder pb;
  pb.field("src", nd::ElementType::kInt32, 2);
  pb.field("dst", nd::ElementType::kInt32, 2);
  pb.kernel("seed")
      .store("out", "src", AgeExpr::relative(0), Slice())
      .body(nop);
  std::vector<KernelBuilder*> kernels;
  for (int w = 0; w < writers; ++w) {
    kernels.push_back(
        &pb.kernel("writer" + std::to_string(w))
             .index("x")
             .fetch("in", "src", AgeExpr::relative(0),
                    Slice().at(0).var("x"))
             .body(nop));
  }
  for (size_t i = 0; i < perm.size(); ++i) {
    kernels[i % kernels.size()]->store(
        "s" + std::to_string(perm[i]), "dst", AgeExpr::relative(0),
        Slice().at(perm[i]).var("x"));
  }
  if (shared_row.has_value()) {
    kernels[0]->store("shared0", "dst", AgeExpr::relative(0),
                      Slice().at(*shared_row).var("x"));
    kernels[1]->store("shared1", "dst", AgeExpr::relative(0),
                      Slice().at(*shared_row).var("x"));
  }
  return pb.build();
}

}  // namespace lintprop

TEST(LintProperty, DisjointConstantPartitionsNeverReportW001) {
  Rng rng(20260806);
  for (int trial = 0; trial < 40; ++trial) {
    const int writers = 2 + static_cast<int>(rng() % 4);
    const int rows = writers + static_cast<int>(rng() % 8);
    const Program program =
        lintprop::partition_program(rng, writers, rows, std::nullopt);
    const analysis::LintReport report = analysis::lint(program);
    EXPECT_EQ(report.count(analysis::kWriteConflict), 0u)
        << "trial " << trial << " (" << writers << " writers, " << rows
        << " rows):\n"
        << report.to_text();
  }
}

TEST(LintProperty, SharedRowIsAlwaysReported) {
  Rng rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    const int writers = 2 + static_cast<int>(rng() % 4);
    const int rows = writers + static_cast<int>(rng() % 8);
    const auto shared = static_cast<int64_t>(rng() % rows + 100);  // fresh row
    const Program program =
        lintprop::partition_program(rng, writers, rows, shared);
    const analysis::LintReport report = analysis::lint(program);
    EXPECT_GE(report.count(analysis::kWriteConflict), 1u)
        << "trial " << trial;
    const analysis::Diagnostic* d = report.find(analysis::kWriteConflict);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, analysis::Severity::kError);
  }
}

TEST(LintProperty, WorkloadProgramsAreClean) {
  // The shipped workloads must stay free of findings — the zero-false-
  // positive guarantee on real programs.
  workloads::Mul2Plus5 m2p5;
  EXPECT_TRUE(analysis::lint(m2p5.build()).empty());
  workloads::KmeansWorkload kmeans;
  EXPECT_TRUE(analysis::lint(kmeans.build()).empty());
}

INSTANTIATE_TEST_SUITE_P(Chunks, KmeansChunkSweep,
                         ::testing::Values(1, 2, 7, 32, 1024));

}  // namespace
}  // namespace p2g
