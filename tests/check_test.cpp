// Tests for the p2gcheck concurrency subsystem: the vector-clock
// happens-before engine, the recording session, the seeded schedule
// explorer (determinism, replay, exhaustive enumeration), the built-in
// suites over the converted core/dist/ft subsystems, and the seeded-bug
// fixtures the checker must find.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <string>

#include "check/explore.h"
#include "check/hb_engine.h"
#include "check/registry.h"
#include "check/session.h"
#include "check/sync.h"
#include "check/vector_clock.h"
#include "core/flight_recorder.h"

namespace p2g::check {
namespace {

Site site(const char* label) { return Site{label, "test.cpp", 1}; }

int dummy_a = 0;
int dummy_b = 0;

// --- vector clocks -----------------------------------------------------------

TEST(VectorClock, CoversAndJoin) {
  VectorClock a;
  a.set(0, 3);
  a.set(1, 1);
  EXPECT_TRUE(a.covers(Epoch{0, 3}));
  EXPECT_FALSE(a.covers(Epoch{0, 4}));
  EXPECT_FALSE(a.covers(Epoch{2, 1}));

  VectorClock b;
  b.set(2, 5);
  b.join(a);
  EXPECT_TRUE(b.covers(Epoch{0, 3}));
  EXPECT_TRUE(b.covers(Epoch{2, 5}));
  EXPECT_TRUE(b.covers(a));
  EXPECT_FALSE(a.covers(b));
}

// --- happens-before engine ---------------------------------------------------

TEST(HbEngine, ReportsWriteWriteRaceWithBothSites) {
  HbEngine engine;
  engine.begin_thread(0, "alpha");
  engine.begin_thread(1, "beta");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.access(1, &dummy_a, sizeof(dummy_a), true, site("x"));
  ASSERT_EQ(engine.report().count(analysis::kDataRace), 1u);
  const analysis::Diagnostic& d = engine.report().diagnostics[0];
  EXPECT_NE(d.primary.name.find("beta"), std::string::npos) << d.to_string();
  EXPECT_NE(d.secondary.name.find("alpha"), std::string::npos)
      << d.to_string();
  EXPECT_NE(d.primary.name.find("'x'"), std::string::npos);
}

TEST(HbEngine, MutexHandoffOrdersAccesses) {
  HbEngine engine;
  engine.begin_thread(0, "a");
  engine.begin_thread(1, "b");
  engine.acquired(0, &dummy_b, LockMode::kExclusive, "m");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.released(0, &dummy_b, LockMode::kExclusive);
  engine.acquired(1, &dummy_b, LockMode::kExclusive, "m");
  engine.access(1, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.released(1, &dummy_b, LockMode::kExclusive);
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

TEST(HbEngine, SharedLockDoesNotOrderConcurrentWriters) {
  // Two threads touching the same cell under *shared* (reader) locks: the
  // reader release clock must not create an edge that masks the race.
  HbEngine engine;
  engine.begin_thread(0, "a");
  engine.begin_thread(1, "b");
  engine.acquired(0, &dummy_b, LockMode::kShared, "rw");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.released(0, &dummy_b, LockMode::kShared);
  engine.acquired(1, &dummy_b, LockMode::kShared, "rw");
  engine.access(1, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.released(1, &dummy_b, LockMode::kShared);
  EXPECT_EQ(engine.report().count(analysis::kDataRace), 1u)
      << engine.report().to_text();
}

TEST(HbEngine, SharedReadersThenExclusiveWriterIsOrdered) {
  HbEngine engine;
  engine.begin_thread(0, "r1");
  engine.begin_thread(1, "r2");
  engine.begin_thread(2, "w");
  for (int tid : {0, 1}) {
    engine.acquired(tid, &dummy_b, LockMode::kShared, "rw");
    engine.access(tid, &dummy_a, sizeof(dummy_a), false, site("x"));
    engine.released(tid, &dummy_b, LockMode::kShared);
  }
  engine.acquired(2, &dummy_b, LockMode::kExclusive, "rw");
  engine.access(2, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.released(2, &dummy_b, LockMode::kExclusive);
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

TEST(HbEngine, ForkAndJoinCreateEdges) {
  HbEngine engine;
  engine.begin_thread(0, "parent");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.begin_thread(1, "child");
  engine.fork(0, 1);
  engine.access(1, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.join(0, 1);
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

TEST(HbEngine, ReleaseAcquireTokenPublishes) {
  HbEngine engine;
  engine.begin_thread(0, "pub");
  engine.begin_thread(1, "sub");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("payload"));
  engine.hb_release(0, &dummy_b);
  engine.hb_acquire(1, &dummy_b);
  engine.access(1, &dummy_a, sizeof(dummy_a), false, site("payload"));
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

TEST(HbEngine, MissingAcquireIsARace) {
  HbEngine engine;
  engine.begin_thread(0, "pub");
  engine.begin_thread(1, "sub");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("payload"));
  engine.hb_release(0, &dummy_b);
  engine.access(1, &dummy_a, sizeof(dummy_a), false, site("payload"));
  EXPECT_EQ(engine.report().count(analysis::kDataRace), 1u);
}

TEST(HbEngine, FencesOrderEachOther) {
  HbEngine engine;
  engine.begin_thread(0, "a");
  engine.begin_thread(1, "b");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("x"));
  engine.fence(0);
  engine.fence(1);
  engine.access(1, &dummy_a, sizeof(dummy_a), false, site("x"));
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

TEST(HbEngine, ResetForgetsRecycledMemory) {
  HbEngine engine;
  engine.begin_thread(0, "a");
  engine.begin_thread(1, "b");
  engine.access(0, &dummy_a, sizeof(dummy_a), true, site("old tenant"));
  engine.reset(&dummy_a, sizeof(dummy_a));
  engine.access(1, &dummy_a, sizeof(dummy_a), true, site("new tenant"));
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

TEST(HbEngine, LockOrderCycleReported) {
  HbEngine engine;
  engine.begin_thread(0, "ab");
  engine.begin_thread(1, "ba");
  engine.acquired(0, &dummy_a, LockMode::kExclusive, "A");
  engine.acquired(0, &dummy_b, LockMode::kExclusive, "B");
  engine.released(0, &dummy_b, LockMode::kExclusive);
  engine.released(0, &dummy_a, LockMode::kExclusive);
  engine.acquired(1, &dummy_b, LockMode::kExclusive, "B");
  engine.acquired(1, &dummy_a, LockMode::kExclusive, "A");
  engine.released(1, &dummy_a, LockMode::kExclusive);
  engine.released(1, &dummy_b, LockMode::kExclusive);
  engine.finish();
  ASSERT_EQ(engine.report().count(analysis::kLockCycle), 1u)
      << engine.report().to_text();
  const analysis::Diagnostic* d = engine.report().find(analysis::kLockCycle);
  EXPECT_NE(d->message.find("'A'"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("'B'"), std::string::npos) << d->message;
}

TEST(HbEngine, ConsistentLockOrderIsClean) {
  HbEngine engine;
  engine.begin_thread(0, "t0");
  engine.begin_thread(1, "t1");
  for (int tid : {0, 1}) {
    engine.acquired(tid, &dummy_a, LockMode::kExclusive, "A");
    engine.acquired(tid, &dummy_b, LockMode::kExclusive, "B");
    engine.released(tid, &dummy_b, LockMode::kExclusive);
    engine.released(tid, &dummy_a, LockMode::kExclusive);
  }
  engine.finish();
  EXPECT_TRUE(engine.report().empty()) << engine.report().to_text();
}

// --- recording mode ----------------------------------------------------------

TEST(RecordSession, LockedCounterIsClean) {
  CheckSession::Options options;
  options.mode = CheckSession::Mode::kRecord;
  CheckSession session(options);
  {
    sync::Mutex m("test.m");
    int64_t counter = 0;
    const auto body = [&] {
      std::scoped_lock lock(m);
      check::write(counter, "test.counter");
      counter += 1;
    };
    sync::Thread t1("t1", body);
    sync::Thread t2("t2", body);
    t1.join();
    t2.join();
  }
  session.finish();
  EXPECT_TRUE(session.report().empty()) << session.report().to_text();
}

TEST(RecordSession, UnsyncCounterIsARaceUnderAnySchedule) {
  // No locks at all: whatever interleaving the OS produced, there is no
  // happens-before edge between the two writes, so recording mode flags
  // it deterministically.
  CheckSession::Options options;
  options.mode = CheckSession::Mode::kRecord;
  CheckSession session(options);
  {
    int64_t counter = 0;
    const auto body = [&] {
      check::write(counter, "test.counter");
      counter += 1;
    };
    sync::Thread t1("t1", body);
    sync::Thread t2("t2", body);
    t1.join();
    t2.join();
  }
  session.finish();
  EXPECT_EQ(session.report().count(analysis::kDataRace), 1u)
      << session.report().to_text();
}

// --- schedule explorer -------------------------------------------------------

/// Small two-thread body used by the determinism and enumeration tests.
void tiny_body(CheckSession& session) {
  auto m = std::make_shared<sync::Mutex>("tiny.m");
  auto counter = std::make_shared<int64_t>(0);
  const auto body = [m, counter] {
    std::scoped_lock lock(*m);
    check::write(*counter, "tiny.counter");
    *counter += 1;
  };
  session.spawn("t1", body);
  session.spawn("t2", body);
}

TEST(Explorer, SameSeedSameSchedule) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const RunResult first = run_once(tiny_body, seed);
    const RunResult second = run_once(tiny_body, seed);
    EXPECT_EQ(first.trace, second.trace) << "seed " << seed;
    EXPECT_FALSE(first.trace.empty());
    EXPECT_TRUE(first.report.empty()) << first.report.to_text();
  }
}

TEST(Explorer, ExhaustiveEnumerationCompletesOnSmallBody) {
  SweepOptions options;
  options.exhaustive = true;
  options.max_runs = 512;
  const SweepResult result = sweep(tiny_body, options);
  EXPECT_TRUE(result.complete);
  // At minimum both orders of the two lock acquisitions are explored.
  EXPECT_GT(result.runs, 1u);
  EXPECT_TRUE(result.clean());
}

TEST(Explorer, FindsSeededRaceWithBothSites) {
  register_builtin_suites();
  const CheckSuite* suite = find_suite("demo.known_race");
  ASSERT_NE(suite, nullptr);
  SweepOptions options;
  options.seeds = 50;
  const SweepResult result = sweep(suite->body, options);
  ASSERT_FALSE(result.clean());
  const RunResult& failure = result.failures[0];
  ASSERT_EQ(failure.report.count(analysis::kDataRace), 1u)
      << failure.report.to_text();
  const analysis::Diagnostic* d = failure.report.find(analysis::kDataRace);
  EXPECT_NE(d->primary.name.find("incr-"), std::string::npos);
  EXPECT_NE(d->secondary.name.find("incr-"), std::string::npos);

  // Replay: the reported seed reproduces the identical schedule and the
  // identical finding.
  const RunResult replay = run_once(suite->body, failure.seed);
  EXPECT_EQ(replay.trace, failure.trace);
  EXPECT_EQ(replay.report.count(analysis::kDataRace), 1u);
}

TEST(Explorer, FindsLostWakeup) {
  register_builtin_suites();
  const CheckSuite* suite = find_suite("demo.lost_wakeup");
  ASSERT_NE(suite, nullptr);
  SweepOptions options;
  options.seeds = 100;
  const SweepResult result = sweep(suite->body, options);
  ASSERT_FALSE(result.clean());
  EXPECT_GE(result.failures[0].report.count(analysis::kLostWakeup), 1u)
      << result.failures[0].report.to_text();
}

TEST(Explorer, FindsLockCycle) {
  register_builtin_suites();
  const CheckSuite* suite = find_suite("demo.lock_cycle");
  ASSERT_NE(suite, nullptr);
  SweepOptions options;
  options.seeds = 100;
  const SweepResult result = sweep(suite->body, options);
  ASSERT_FALSE(result.clean());
  EXPECT_GE(result.failures[0].report.count(analysis::kLockCycle), 1u)
      << result.failures[0].report.to_text();
}

TEST(Explorer, StepBudgetOverrunReportsLivelock) {
  CheckSession::Options options;
  options.max_steps = 200;
  CheckSession session(options);
  session.spawn("spinner", [] {
    for (;;) check::fence();
  });
  session.run();
  EXPECT_EQ(session.report().count(analysis::kLiveLock), 1u)
      << session.report().to_text();
}

TEST(Explorer, PublicationWithoutReleaseIsFlagged) {
  // The seal-index pattern with the release edge removed: the annotations
  // on FieldStorage are load-bearing, not decorative.
  const auto broken = [](CheckSession& session) {
    struct Shared {
      int64_t payload = 0;
      int64_t flag = 0;
    };
    auto s = std::make_shared<Shared>();
    session.spawn("publisher", [s] {
      check::write(s->payload, "pub.payload");
      s->payload = 7;
      // BUG: missing check::release(&s->flag).
    });
    session.spawn("subscriber", [s] {
      check::acquire(&s->flag);
      check::read(s->payload, "pub.payload");
    });
  };
  SweepOptions options;
  options.seeds = 50;
  const SweepResult result = sweep(broken, options);
  ASSERT_FALSE(result.clean());
  EXPECT_EQ(result.failures[0].report.count(analysis::kDataRace), 1u);
}

// --- converted-subsystem suites (the acceptance sweeps) ----------------------

class BuiltinSuiteSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BuiltinSuiteSweep, TwoHundredSeedsClean) {
  register_builtin_suites();
  const CheckSuite* suite = find_suite(GetParam());
  ASSERT_NE(suite, nullptr);
  ASSERT_FALSE(suite->expect_findings);
  SweepOptions options;
  options.seeds = 200;
  const SweepResult result = sweep(suite->body, options);
  EXPECT_EQ(result.runs, 200u);
  EXPECT_TRUE(result.clean())
      << result.failures[0].report.to_text() << "\nreplay seed "
      << result.failures[0].seed;
}

INSTANTIATE_TEST_SUITE_P(
    Converted, BuiltinSuiteSweep,
    ::testing::Values("blocking_queue.pop_all_shutdown",
                      "ready_queue.shutdown", "field.seal_publish",
                      "bus.shutdown", "reliable.stop",
                      "flight_recorder.ring"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// --- passthrough path --------------------------------------------------------

TEST(Passthrough, PrimitivesWorkWithoutASession) {
  sync::Mutex m("loose.m");
  sync::SharedMutex rw("loose.rw");
  sync::CondVar cv("loose.cv");
  int64_t counter = 0;
  {
    std::scoped_lock lock(m);
    check::write(counter, "loose.counter");
    counter = 1;
  }
  {
    std::shared_lock lock(rw);
    check::read(counter, "loose.counter");
  }
  sync::Thread t("loose.t", [&] {
    std::unique_lock lock(m);
    counter = 2;
    cv.notify_all();
  });
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return counter == 2; });
  }
  t.join();
  EXPECT_EQ(counter, 2);
}

// --- SIGABRT dump regression (async-signal-safe formatting) ------------------

TEST(FlightRecorderAbortDump, DumpsRingsFromSignalContext) {
  const std::string path =
      ::testing::TempDir() + "/p2g_check_abort_dump.jsonl";
  std::remove(path.c_str());
  FlightRecorder recorder;
  recorder.record("fatal-step", SpanKind::kOther, 1234, 56, 3,
                  TraceContext{}, 0xabcdef);
  FlightRecorder::install_abort_dump(path);
  // The death-test child inherits the handler, the registry, and the open
  // fd; abort() runs the handler in true signal context before dying.
  EXPECT_DEATH(std::abort(), "");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  const std::string dump = content.str();
  EXPECT_NE(dump.find("\"fatal-step\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"p2g.flight\""), std::string::npos);
  EXPECT_NE(dump.find("\"ts_ns\": 1234"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"dur_ns\": 56"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"span\": \"0xabcdef\""), std::string::npos) << dump;
}

}  // namespace
}  // namespace p2g::check
