// Tests for the AVI (RIFF/MJPG) container.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "media/avi.h"
#include "media/jpeg.h"
#include "media/yuv.h"

namespace p2g::media {
namespace {

std::vector<std::vector<uint8_t>> encode_frames(const YuvVideo& video) {
  std::vector<std::vector<uint8_t>> frames;
  for (const YuvFrame& frame : video.frames) {
    frames.push_back(encode_jpeg(frame, {.quality = 60}));
  }
  return frames;
}

TEST(Avi, RoundTripPreservesFramesAndInfo) {
  const YuvVideo video = generate_synthetic_video(64, 48, 4);
  const auto frames = encode_frames(video);
  AviInfo info;
  info.width = 64;
  info.height = 48;
  info.fps = 30;
  const std::vector<uint8_t> avi = write_avi(frames, info);

  // RIFF magic + declared size covers the file.
  ASSERT_GE(avi.size(), 12u);
  EXPECT_EQ(std::string(avi.begin(), avi.begin() + 4), "RIFF");
  EXPECT_EQ(std::string(avi.begin() + 8, avi.begin() + 12), "AVI ");

  AviInfo parsed;
  const auto back = read_avi(avi, &parsed);
  ASSERT_EQ(back.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(back[i], frames[i]) << "frame " << i;
  }
  EXPECT_EQ(parsed.width, 64);
  EXPECT_EQ(parsed.height, 48);
  EXPECT_EQ(parsed.fps, 30);
}

TEST(Avi, FramesAreDecodableAfterRoundTrip) {
  const YuvVideo video = generate_synthetic_video(48, 32, 2);
  const std::vector<uint8_t> avi =
      write_avi(encode_frames(video), AviInfo{48, 32, 25});
  const auto frames = read_avi(avi);
  ASSERT_EQ(frames.size(), 2u);
  const YuvFrame decoded = decode_jpeg(frames[1]);
  EXPECT_GT(psnr(video.frames[1].y, decoded.y), 28.0);
}

TEST(Avi, OddSizedFramesArePadded) {
  // Force odd frame sizes to exercise the RIFF even-padding rule.
  std::vector<std::vector<uint8_t>> frames;
  frames.push_back({0xFF, 0xD8, 0x01, 0xFF, 0xD9});        // 5 bytes (odd)
  frames.push_back({0xFF, 0xD8, 0x01, 0x02, 0xFF, 0xD9});  // 6 bytes
  const std::vector<uint8_t> avi = write_avi(frames, AviInfo{16, 16, 10});
  const auto back = read_avi(avi);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], frames[0]);
  EXPECT_EQ(back[1], frames[1]);
}

TEST(Avi, FileRoundTrip) {
  const YuvVideo video = generate_synthetic_video(32, 32, 3);
  const auto frames = encode_frames(video);
  const std::string path = std::string(::testing::TempDir()) + "rt.avi";
  write_avi_file(path, frames, AviInfo{32, 32, 15});
  AviInfo info;
  const auto back = read_avi_file(path, &info);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(info.width, 32);
  std::remove(path.c_str());
}

TEST(Avi, RejectsGarbage) {
  EXPECT_THROW(read_avi({1, 2, 3, 4}), Error);
  std::vector<uint8_t> not_avi(64, 0);
  std::memcpy(not_avi.data(), "RIFF", 4);
  std::memcpy(not_avi.data() + 8, "WAVE", 4);
  EXPECT_THROW(read_avi(not_avi), Error);
}

TEST(Avi, EmptyVideoIsValid) {
  const std::vector<uint8_t> avi = write_avi({}, AviInfo{16, 16, 25});
  EXPECT_TRUE(read_avi(avi).empty());
}

}  // namespace
}  // namespace p2g::media
