// Unit tests for src/common: errors, stats, bitsets, queues, strings.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include <cstdlib>

#include "common/blocking_queue.h"
#include "common/clock.h"
#include "common/dynamic_bitset.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace p2g {
namespace {

TEST(Error, CarriesKindAndMessage) {
  try {
    throw_error(ErrorKind::kWriteOnceViolation, "cell (1,2)");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kWriteOnceViolation);
    EXPECT_NE(std::string(e.what()).find("write-once-violation"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cell (1,2)"), std::string::npos);
  }
}

TEST(Error, CheckArgumentThrowsInvalidArgument) {
  EXPECT_NO_THROW(check_argument(true, "ok"));
  try {
    check_argument(false, "bad input");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInvalidArgument);
  }
}

TEST(RunningStat, MeanAndStddev) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);  // merging empty is a no-op
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);

  RunningStat into;
  into.merge(a);  // merging into empty copies
  EXPECT_EQ(into.count(), 2);
  EXPECT_DOUBLE_EQ(into.mean(), 2.0);
  EXPECT_DOUBLE_EQ(into.min(), 1.0);
  EXPECT_DOUBLE_EQ(into.max(), 3.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentile, NearestRankInterpolation) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
}

TEST(Percentile, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0) << "empty input is defined";
  std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile(one, 100), 42.0);
}

TEST(DynamicBitset, SetAndCount) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.set(0));
  EXPECT_TRUE(b.set(64));
  EXPECT_TRUE(b.set(129));
  EXPECT_FALSE(b.set(64)) << "second set reports already-set";
  EXPECT_EQ(b.count(), 3u);
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(128));
}

TEST(DynamicBitset, SetRangeCrossingWords) {
  DynamicBitset b(200);
  EXPECT_EQ(b.set_range(10, 150), 140u);
  EXPECT_EQ(b.count(), 140u);
  EXPECT_TRUE(b.all_in_range(10, 150));
  EXPECT_FALSE(b.all_in_range(9, 150));
  EXPECT_EQ(b.set_range(0, 200), 60u) << "only fresh bits counted";
  EXPECT_TRUE(b.all());
}

TEST(DynamicBitset, FindFirstUnset) {
  DynamicBitset b(70);
  b.set_range(0, 70);
  EXPECT_EQ(b.find_first_unset(), 70u);
  DynamicBitset c(70);
  c.set_range(0, 65);
  EXPECT_EQ(c.find_first_unset(), 65u);
}

TEST(DynamicBitset, ResizeGrowKeepsBits) {
  DynamicBitset b(10);
  b.set(3);
  b.resize(100);
  EXPECT_TRUE(b.test(3));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DynamicBitset, ResizeShrinkDropsBits) {
  DynamicBitset b(100);
  b.set(3);
  b.set(90);
  b.resize(10);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(b.test(3));
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, PopAllDrainsEverythingAtOnce) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  std::deque<int> batch;
  ASSERT_TRUE(q.pop_all(batch));
  EXPECT_EQ(batch, (std::deque<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
  // A stale out-parameter is cleared, not appended to.
  q.push(4);
  ASSERT_TRUE(q.pop_all(batch));
  EXPECT_EQ(batch, (std::deque<int>{4}));
}

TEST(BlockingQueue, PopAllReturnsFalseOnlyWhenClosedAndDrained) {
  BlockingQueue<int> q;
  q.push(9);
  q.close();
  std::deque<int> batch;
  EXPECT_TRUE(q.pop_all(batch));
  EXPECT_EQ(batch, (std::deque<int>{9}));
  EXPECT_FALSE(q.pop_all(batch));
  EXPECT_TRUE(batch.empty());
}

TEST(BlockingQueue, PopAllCrossThreadReceivesEverythingInOrder) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  std::deque<int> batch;
  while (q.pop_all(batch)) {
    for (int v : batch) EXPECT_EQ(v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, 1000);
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.push(i);
    q.close();
  });
  int received = 0;
  int last = -1;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, last + 1);
    last = *v;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, 1000);
}

TEST(StringUtil, SplitAndJoin) {
  const auto pieces = split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(join(pieces, "-"), "a-b--c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(StringUtil, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(2024251), "2,024,251");
  EXPECT_EQ(with_thousands(-1234567), "-1,234,567");
}

TEST(StringUtil, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("line\nfeed"), "line\\nfeed");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  EXPECT_EQ(json_escape(""), "");
}

TEST(Logging, ApplyLogEnvSetsThreshold) {
  const LogLevel before = log_level();
  ::setenv("P2G_LOG", "error", 1);
  apply_log_env();
  EXPECT_EQ(log_level(), LogLevel::kError);
  ::setenv("P2G_LOG", "not-a-level", 1);
  apply_log_env();
  EXPECT_EQ(log_level(), LogLevel::kError) << "unknown values ignored";
  ::setenv("P2G_LOG", "debug", 1);
  apply_log_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::unsetenv("P2G_LOG");
  set_log_level(before);
}

TEST(Clock, Monotonic) {
  const int64_t a = now_ns();
  const int64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Clock, ScopedTimerAccumulates) {
  int64_t acc = 0;
  {
    ScopedTimerNs t(acc);
  }
  EXPECT_GE(acc, 0);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng rng(7);
  const uint64_t first = rng.next();
  rng.next();
  rng.reseed(7);
  EXPECT_EQ(rng.next(), first);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  bool lo_hit = false;
  bool hi_hit = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    lo_hit |= v == -2;
    hi_hit |= v == 3;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, ChanceHonorsDegenerateProbabilities) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, MixIsAPureFunction) {
  EXPECT_EQ(mix(1, 2, 3, 4), mix(1, 2, 3, 4));
  EXPECT_NE(mix(1, 2, 3, 4), mix(1, 2, 3, 5));
  EXPECT_NE(mix(1), mix(2));
  EXPECT_EQ(hash_str("node0"), hash_str("node0"));
  EXPECT_NE(hash_str("node0"), hash_str("node1"));
}

}  // namespace
}  // namespace p2g
