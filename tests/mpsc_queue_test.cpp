// Unit tests for the lock-free MPSC event queue backing analyzer shards
// (common/mpsc_queue.h): FIFO order, batched drain, close semantics,
// consumer parking, and multi-producer delivery with per-producer order.
#include "common/mpsc_queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

namespace p2g {
namespace {

TEST(MpscQueue, FifoOrderSingleProducer) {
  MpscQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, PopAllDrainsEverythingAtOnce) {
  MpscQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  std::deque<int> batch;
  ASSERT_TRUE(q.pop_all(batch));
  EXPECT_EQ(batch, (std::deque<int>{0, 1, 2, 3, 4}));
  q.close();
  EXPECT_FALSE(q.pop_all(batch));
  EXPECT_TRUE(batch.empty());
}

TEST(MpscQueue, CloseDeliversItemsPushedBeforeClose) {
  MpscQueue<int> q;
  q.push(7);
  q.push(8);
  q.close();
  std::deque<int> batch;
  ASSERT_TRUE(q.pop_all(batch));
  EXPECT_EQ(batch, (std::deque<int>{7, 8}));
  EXPECT_FALSE(q.pop_all(batch));
}

TEST(MpscQueue, ApproximateSizeTracksBacklog) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  std::deque<int> batch;
  ASSERT_TRUE(q.pop_all(batch));
  EXPECT_TRUE(q.empty());
  q.close();
}

TEST(MpscQueue, ParkedConsumerIsWokenByPush) {
  MpscQueue<int> q;
  std::thread consumer([&q] {
    std::deque<int> batch;
    EXPECT_TRUE(q.pop_all(batch));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.front(), 42);
  });
  // Give the consumer time to park on the empty queue before pushing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.push(42);
  consumer.join();
  q.close();
}

TEST(MpscQueue, ParkedConsumerIsWokenByClose) {
  MpscQueue<int> q;
  std::thread consumer([&q] {
    std::deque<int> batch;
    EXPECT_FALSE(q.pop_all(batch));
    EXPECT_TRUE(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(MpscQueue, MultiProducerDeliversEverythingPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kItems = 2000;
  MpscQueue<int64_t> q;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kItems; ++i) {
        q.push((static_cast<int64_t>(p) << 32) | static_cast<int64_t>(i));
      }
    });
  }
  std::vector<int64_t> got;
  got.reserve(static_cast<size_t>(kProducers) * kItems);
  std::deque<int64_t> batch;
  while (got.size() < static_cast<size_t>(kProducers) * kItems) {
    ASSERT_TRUE(q.pop_all(batch));
    got.insert(got.end(), batch.begin(), batch.end());
  }
  for (std::thread& t : producers) t.join();

  ASSERT_EQ(got.size(), static_cast<size_t>(kProducers) * kItems);
  // Global order is unspecified across producers, but each producer's own
  // items must arrive in push order.
  std::vector<int64_t> next(kProducers, 0);
  for (const int64_t v : got) {
    const auto p = static_cast<size_t>(v >> 32);
    const int64_t seq = v & 0xFFFFFFFF;
    ASSERT_LT(p, static_cast<size_t>(kProducers));
    EXPECT_EQ(seq, next[p]);
    ++next[p];
  }
  q.close();
}

TEST(MpscQueue, MovesNonCopyablePayloads) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  q.close();
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

}  // namespace
}  // namespace p2g
