// Unit tests for the multi-dimensional array substrate (src/nd).
#include <gtest/gtest.h>

#include "nd/buffer.h"
#include "nd/extents.h"
#include "nd/region.h"
#include "nd/slice.h"

namespace p2g::nd {
namespace {

TEST(Extents, ElementCountAndStrides) {
  Extents e({3, 4, 5});
  EXPECT_EQ(e.rank(), 3u);
  EXPECT_EQ(e.element_count(), 60);
  const auto s = e.strides();
  EXPECT_EQ(s, (std::vector<int64_t>{20, 5, 1}));
}

TEST(Extents, FlattenUnflattenRoundTrip) {
  Extents e({3, 4, 5});
  for (int64_t flat = 0; flat < e.element_count(); ++flat) {
    EXPECT_EQ(e.flatten(e.unflatten(flat)), flat);
  }
}

TEST(Extents, FlattenOutOfRangeThrows) {
  Extents e({3, 4});
  EXPECT_THROW(e.flatten({3, 0}), Error);
  EXPECT_THROW(e.flatten({0, -1}), Error);
  EXPECT_THROW(e.flatten({0}), Error);  // rank mismatch
}

TEST(Extents, MaxWithAndFitsIn) {
  Extents a({3, 4});
  Extents b({5, 2});
  EXPECT_EQ(a.max_with(b), Extents({5, 4}));
  EXPECT_TRUE(a.fits_in(Extents({3, 4})));
  EXPECT_TRUE(a.fits_in(Extents({4, 4})));
  EXPECT_FALSE(a.fits_in(Extents({2, 4})));
}

TEST(Extents, ZeroDimensionIsEmpty) {
  Extents e({0, 5});
  EXPECT_EQ(e.element_count(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(Region, WholeAndPoint) {
  Extents e({2, 3});
  Region w = Region::whole(e);
  EXPECT_EQ(w.element_count(), 6);
  EXPECT_TRUE(w.within(e));
  Region p = Region::point({1, 2});
  EXPECT_EQ(p.element_count(), 1);
  EXPECT_TRUE(p.contains({1, 2}));
  EXPECT_FALSE(p.contains({1, 1}));
}

TEST(Region, IntersectAndUnion) {
  Region a(std::vector<Interval>{Interval{0, 4}, Interval{0, 4}});
  Region b(std::vector<Interval>{Interval{2, 6}, Interval{3, 5}});
  Region i = a.intersect(b);
  EXPECT_EQ(i.interval(0), (Interval{2, 4}));
  EXPECT_EQ(i.interval(1), (Interval{3, 4}));
  Region u = a.bounding_union(b);
  EXPECT_EQ(u.interval(0), (Interval{0, 6}));
  EXPECT_EQ(u.interval(1), (Interval{0, 5}));
}

TEST(Region, EmptyIntersection) {
  Region a(std::vector<Interval>{Interval{0, 2}});
  Region b(std::vector<Interval>{Interval{5, 9}});
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Region, ForEachRowMajorOrder) {
  Region r(std::vector<Interval>{Interval{1, 3}, Interval{4, 6}});
  std::vector<Coord> seen;
  r.for_each([&](const Coord& c) { seen.push_back(c); });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (Coord{1, 4}));
  EXPECT_EQ(seen[1], (Coord{1, 5}));
  EXPECT_EQ(seen[2], (Coord{2, 4}));
  EXPECT_EQ(seen[3], (Coord{2, 5}));
}

TEST(Region, RequiredExtents) {
  Region r(std::vector<Interval>{Interval{1, 3}, Interval{0, 7}});
  EXPECT_EQ(r.required_extents(), Extents({3, 7}));
}

TEST(ElementTypes, SizesAndNames) {
  EXPECT_EQ(element_size(ElementType::kInt8), 1u);
  EXPECT_EQ(element_size(ElementType::kInt32), 4u);
  EXPECT_EQ(element_size(ElementType::kFloat64), 8u);
  EXPECT_EQ(to_string(ElementType::kInt32), "int32");
  EXPECT_EQ(parse_element_type("float64"), ElementType::kFloat64);
  EXPECT_EQ(parse_element_type("uint8"), ElementType::kUInt8);
  EXPECT_THROW(parse_element_type("bogus"), Error);
}

TEST(AnyBuffer, TypedAccess) {
  AnyBuffer buf(ElementType::kInt32, Extents({2, 3}));
  EXPECT_EQ(buf.element_count(), 6);
  for (int i = 0; i < 6; ++i) buf.data<int32_t>()[i] = i * 10;
  EXPECT_EQ(buf.at<int32_t>(4), 40);
  EXPECT_THROW(buf.data<float>(), Error);
}

TEST(AnyBuffer, GenericScalarAccess) {
  AnyBuffer buf(ElementType::kFloat32, Extents({2}));
  buf.set_from_double(0, 1.5);
  buf.set_from_int(1, 7);
  EXPECT_DOUBLE_EQ(buf.get_as_double(0), 1.5);
  EXPECT_EQ(buf.get_as_int(1), 7);
}

TEST(AnyBuffer, ResizePreservesCoordinates) {
  AnyBuffer buf(ElementType::kInt32, Extents({2, 3}));
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      buf.data<int32_t>()[buf.extents().flatten({r, c})] =
          static_cast<int32_t>(r * 100 + c);
    }
  }
  buf.resize(Extents({4, 5}));
  EXPECT_EQ(buf.extents(), Extents({4, 5}));
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(buf.at<int32_t>(buf.extents().flatten({r, c})),
                r * 100 + c);
    }
  }
}

TEST(AnyBuffer, ResizeShrinkThrows) {
  AnyBuffer buf(ElementType::kInt32, Extents({4}));
  EXPECT_THROW(buf.resize(Extents({2})), Error);
}

TEST(AnyBuffer, ScatterGatherRoundTrip) {
  AnyBuffer buf(ElementType::kInt32, Extents({4, 4}));
  Region region(std::vector<Interval>{Interval{1, 3}, Interval{2, 4}});
  AnyBuffer payload(ElementType::kInt32, Extents({2, 2}));
  for (int i = 0; i < 4; ++i) payload.data<int32_t>()[i] = 100 + i;
  buf.scatter(region, payload.raw());
  EXPECT_EQ(buf.at<int32_t>(buf.extents().flatten({1, 2})), 100);
  EXPECT_EQ(buf.at<int32_t>(buf.extents().flatten({2, 3})), 103);

  AnyBuffer out(ElementType::kInt32, Extents({4}));
  buf.gather(region, out.raw());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out.at<int32_t>(i), 100 + i);
}

TEST(SliceSpec, WholeResolvesToFullExtents) {
  SliceSpec s = SliceSpec::whole();
  EXPECT_TRUE(s.is_whole());
  Region r = s.resolve({}, Extents({3, 4}));
  EXPECT_EQ(r.element_count(), 12);
}

TEST(SliceSpec, VarConstAllResolve) {
  SliceSpec s({SliceDim::variable(0), SliceDim::constant(2),
               SliceDim::all()});
  Bindings b{5};
  Region r = s.resolve(b, Extents({10, 10, 7}));
  EXPECT_EQ(r.interval(0), (Interval{5, 6}));
  EXPECT_EQ(r.interval(1), (Interval{2, 3}));
  EXPECT_EQ(r.interval(2), (Interval{0, 7}));
  EXPECT_FALSE(s.is_elementwise());
  SliceSpec ew({SliceDim::variable(0), SliceDim::constant(1)});
  EXPECT_TRUE(ew.is_elementwise());
}

TEST(SliceSpec, VarsAndDimOfVar) {
  SliceSpec s({SliceDim::variable(1), SliceDim::variable(0),
               SliceDim::variable(1)});
  EXPECT_EQ(s.vars(), (std::vector<int>{1, 0}));
  EXPECT_EQ(s.dim_of_var(1).value(), 0u);
  EXPECT_EQ(s.dim_of_var(0).value(), 1u);
  EXPECT_FALSE(s.dim_of_var(7).has_value());
}

TEST(SliceSpec, ConstrainNarrowsVarRanges) {
  SliceSpec s({SliceDim::variable(0), SliceDim::variable(1)});
  std::vector<Interval> ranges{{0, 100}, {0, 100}};
  Region written(std::vector<Interval>{Interval{3, 5}, Interval{7, 8}});
  ASSERT_TRUE(s.constrain(written, ranges).has_value());
  EXPECT_EQ(ranges[0], (Interval{3, 5}));
  EXPECT_EQ(ranges[1], (Interval{7, 8}));
}

TEST(SliceSpec, ConstrainConstMissReturnsNull) {
  SliceSpec s({SliceDim::constant(9)});
  std::vector<Interval> ranges;
  Region written(std::vector<Interval>{Interval{0, 5}});
  EXPECT_FALSE(s.constrain(written, ranges).has_value());
}

TEST(SliceSpec, ConstrainDisjointVarReturnsNull) {
  SliceSpec s({SliceDim::variable(0)});
  std::vector<Interval> ranges{{10, 20}};
  Region written(std::vector<Interval>{Interval{0, 5}});
  EXPECT_FALSE(s.constrain(written, ranges).has_value());
}

}  // namespace
}  // namespace p2g::nd
