// Tests for the telemetry subsystem (src/obs) and its runtime wiring:
// sharded counters/histograms, percentile math, exports, the sampler, and
// the metrics/trace artifacts a Runtime run produces.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/context.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "workloads/mul2plus5.h"

namespace p2g {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(Histogram, BucketBoundaries) {
  // Bucket 0: values < 1 (incl. negatives); bucket b>=1: [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_index(-5), 0u);
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(INT64_MAX), 63u);

  EXPECT_EQ(Histogram::bucket_lower(0), 0);
  EXPECT_EQ(Histogram::bucket_upper(0), 1);
  EXPECT_EQ(Histogram::bucket_lower(1), 1);
  EXPECT_EQ(Histogram::bucket_upper(1), 2);
  EXPECT_EQ(Histogram::bucket_lower(11), 1024);
  EXPECT_EQ(Histogram::bucket_upper(10), 1024);
  EXPECT_EQ(Histogram::bucket_upper(63), INT64_MAX);

  // Every value lands in the bucket whose bounds contain it.
  for (int64_t v : {0, 1, 2, 7, 63, 64, 65, 4095, 4096}) {
    const size_t b = Histogram::bucket_index(v);
    EXPECT_GE(v, Histogram::bucket_lower(b)) << v;
    EXPECT_LT(v, Histogram::bucket_upper(b)) << v;
  }
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.percentile(50), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(Histogram, SingleSamplePercentilesClampToValue) {
  Histogram h;
  h.record(1000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.min, 1000);
  EXPECT_EQ(snap.max, 1000);
  // min/max clamping pins every percentile of n=1 to the sample itself.
  EXPECT_DOUBLE_EQ(snap.percentile(0), 1000.0);
  EXPECT_DOUBLE_EQ(snap.percentile(50), 1000.0);
  EXPECT_DOUBLE_EQ(snap.percentile(100), 1000.0);
}

TEST(Histogram, PercentilesOrderAndBounds) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 1000);
  const double p50 = snap.percentile(50);
  const double p90 = snap.percentile(90);
  const double p99 = snap.percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log buckets bound the error by 2x of the true percentile.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 500.5);
}

TEST(Histogram, ConcurrentRecordsAllCounted) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(i % 512);
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 511);
}

TEST(HistogramSnapshot, MergeCombines) {
  Histogram a, b;
  a.record(10);
  a.record(20);
  b.record(100000);
  HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.count, 3);
  EXPECT_EQ(sa.sum, 100030);
  EXPECT_EQ(sa.min, 10);
  EXPECT_EQ(sa.max, 100000);

  // Merging an empty snapshot is a no-op; merging into empty copies.
  HistogramSnapshot empty;
  sa.merge(empty);
  EXPECT_EQ(sa.count, 3);
  empty.merge(sa);
  EXPECT_EQ(empty.count, 3);
  EXPECT_EQ(empty.min, 10);
}

TEST(Counter, ConcurrentShardedAdds) {
  obs::Counter c;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(2);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * 10000 * 2);
}

TEST(MetricsRegistry, StableNamedInstances) {
  MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("x");
  obs::Counter& c2 = registry.counter("x");
  EXPECT_EQ(&c1, &c2);
  c1.add(5);
  registry.gauge("g").set(-3);
  registry.histogram("h").record(42);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_NE(snap.find_counter("x"), nullptr);
  EXPECT_EQ(snap.find_counter("x")->value, 5);
  ASSERT_NE(snap.find_gauge("g"), nullptr);
  EXPECT_EQ(snap.find_gauge("g")->value, -3);
  ASSERT_NE(snap.find_histogram("h"), nullptr);
  EXPECT_EQ(snap.find_histogram("h")->count, 1);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
}

TEST(MetricsSnapshot, MergeSumsByName) {
  MetricsRegistry a, b;
  a.counter("shared").add(1);
  a.counter("only_a").add(2);
  b.counter("shared").add(10);
  b.counter("only_b").add(20);
  a.histogram("lat").record(8);
  b.histogram("lat").record(32);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.find_counter("shared")->value, 11);
  EXPECT_EQ(merged.find_counter("only_a")->value, 2);
  EXPECT_EQ(merged.find_counter("only_b")->value, 20);
  EXPECT_EQ(merged.find_histogram("lat")->count, 2);
  EXPECT_EQ(merged.find_histogram("lat")->sum, 40);
}

TEST(MetricsSnapshot, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("events_total").add(7);
  registry.gauge("queue_depth").set(3);
  obs::Histogram& h = registry.histogram("latency_ns");
  h.record(1);
  h.record(3);
  h.record(700);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE p2g_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("p2g_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE p2g_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE p2g_latency_ns histogram"), std::string::npos);
  // Cumulative le buckets: [1,2) -> le="2" holds 1, le="4" holds 2.
  EXPECT_NE(text.find("p2g_latency_ns_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("p2g_latency_ns_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("p2g_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("p2g_latency_ns_sum 704"), std::string::npos);
  EXPECT_NE(text.find("p2g_latency_ns_count 3"), std::string::npos);
}

TEST(MetricsSnapshot, JsonEscapesNames) {
  MetricsRegistry registry;
  registry.counter("weird\"name\\with\njunk").add(1);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\njunk"), std::string::npos);
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
  // Percentile keys present for histogram-free snapshots too.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Sampler, CollectsMonotonicSeries) {
  obs::Sampler sampler(std::chrono::milliseconds(1));
  int64_t tick = 0;
  sampler.add_source("ticks", [&tick] { return tick++; });
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  std::vector<obs::TimeSeries> series = sampler.take_series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].name, "ticks");
  ASSERT_GE(series[0].samples.size(), 2u);
  for (size_t i = 1; i < series[0].samples.size(); ++i) {
    EXPECT_GE(series[0].samples[i].t_ns, series[0].samples[i - 1].t_ns);
    EXPECT_EQ(series[0].samples[i].value,
              series[0].samples[i - 1].value + 1);
  }
}

TEST(Sampler, SamplesEverySourceEachCycleAndAtStop) {
  obs::Sampler sampler(std::chrono::milliseconds(1));
  sampler.add_source("a", [] { return 1; });
  sampler.add_source("b", [] { return 2; });
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.stop();
  std::vector<obs::TimeSeries> series = sampler.take_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "a");
  EXPECT_EQ(series[1].name, "b");
  // Sources are polled together: each cycle (plus the closing sample at
  // stop) contributes one point per source.
  EXPECT_EQ(series[0].samples.size(), series[1].samples.size());
  ASSERT_GE(series[0].samples.size(), 2u);
  EXPECT_EQ(series[0].samples.back().value, 1);
  EXPECT_EQ(series[1].samples.back().value, 2);
}

TEST(Sampler, StopIsIdempotentAndSafeWithoutStart) {
  obs::Sampler sampler(std::chrono::milliseconds(1));
  sampler.add_source("gauge", [] { return 7; });
  // Never started: stop() must not hang or sample.
  sampler.stop();
  sampler.stop();
  std::vector<obs::TimeSeries> series = sampler.take_series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_TRUE(series[0].samples.empty());
  // take_series moves the series out; a second take is empty.
  EXPECT_TRUE(sampler.take_series().empty());
}

TEST(Sampler, StartWithoutSourcesIsANoOp) {
  obs::Sampler sampler(std::chrono::milliseconds(1));
  sampler.start();  // no sources: no thread spun up
  sampler.stop();
  EXPECT_TRUE(sampler.take_series().empty());
}

// ---------------------------------------------------------- runtime wiring

TEST(RuntimeMetrics, RunProducesSnapshotAndSeries) {
  workloads::Mul2Plus5 workload;
  RunOptions options;
  options.workers = 2;
  options.max_age = 20;
  options.metrics.enabled = true;
  options.metrics.sample_period_ms = 1;
  Runtime runtime(workload.build(), options);
  const RunReport report = runtime.run();

  ASSERT_NE(runtime.metrics(), nullptr);
  const MetricsSnapshot& snap = report.metrics;
  const HistogramSnapshot* dispatch =
      snap.find_histogram("dispatch_latency_ns");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_GT(dispatch->count, 0);
  EXPECT_GT(dispatch->percentile(99), 0.0);
  ASSERT_NE(snap.find_histogram("kernel_body_ns"), nullptr);
  ASSERT_NE(snap.find_histogram("analyzer_handle_ns"), nullptr);
  EXPECT_GT(snap.find_counter("analyzer_events_total")->value, 0);
  EXPECT_GT(snap.find_counter("store_commit_bytes_total")->value, 0);
  EXPECT_GT(snap.find_counter("worker_busy_ns_total")->value, 0);

  // Sampler series embedded in the snapshot.
  ASSERT_NE(snap.find_series("ready_queue_depth"), nullptr);
  ASSERT_NE(snap.find_series("worker_utilization_pct"), nullptr);
  const obs::TimeSeries* memory = snap.find_series("field_memory_bytes");
  ASSERT_NE(memory, nullptr);
  EXPECT_GE(memory->samples.size(), 2u);

  // Exports contain the dispatch histogram.
  EXPECT_NE(snap.to_prometheus().find("p2g_dispatch_latency_ns_count"),
            std::string::npos);
  EXPECT_NE(snap.to_json().find("\"dispatch_latency_ns\""),
            std::string::npos);
}

TEST(RuntimeMetrics, DisabledByDefault) {
  workloads::Mul2Plus5 workload;
  RunOptions options;
  options.max_age = 2;
  Runtime runtime(workload.build(), options);
  const RunReport report = runtime.run();
  EXPECT_EQ(runtime.metrics(), nullptr);
  EXPECT_TRUE(report.metrics.empty());
}

TEST(RuntimeMetrics, TraceGainsCounterTracks) {
  const std::string path =
      std::string(::testing::TempDir()) + "p2g_counter_trace.json";
  workloads::Mul2Plus5 workload;
  RunOptions options;
  options.workers = 2;
  options.max_age = 10;
  options.trace_path = path;
  options.metrics.enabled = true;
  options.metrics.sample_period_ms = 1;
  Runtime runtime(workload.build(), options);
  runtime.run();

  ASSERT_NE(runtime.trace(), nullptr);
  EXPECT_GT(runtime.trace()->counter_sample_count(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(content.find("\"ready_queue_depth\""), std::string::npos);
  EXPECT_NE(content.find("\"worker_utilization_pct\""), std::string::npos);
  EXPECT_EQ(content.front(), '[');
  EXPECT_EQ(content[content.size() - 2], ']');
  std::remove(path.c_str());
}

// Regression (ISSUE 1): a worker error must not lose the trace/metrics —
// the runtime flushes telemetry before rethrowing.
TEST(RuntimeMetrics, FailedRunStillWritesTraceAndMetrics) {
  const std::string path =
      std::string(::testing::TempDir()) + "p2g_failed_trace.json";
  std::remove(path.c_str());

  ProgramBuilder pb;
  pb.field("out", nd::ElementType::kInt32, 1);
  pb.kernel("boom")
      .run_once()
      .store("v", "out", AgeExpr::constant(0), Slice::whole())
      .body([](KernelContext&) {
        throw std::runtime_error("kernel exploded");
      });

  RunOptions options;
  options.workers = 2;
  options.trace_path = path;
  options.metrics.enabled = true;
  Runtime runtime(pb.build(), options);
  EXPECT_THROW(runtime.run(), std::runtime_error);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file must exist after a failed run";
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content.front(), '[');
  // The metrics registry survives too (instances before the failure).
  EXPECT_FALSE(runtime.metrics_snapshot().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace p2g
