// Table III: micro-benchmark of K-means in P2G.
//
// Same columns as the paper: instances, average dispatch time, average
// kernel time per kernel definition. At full scale the assign kernel
// dispatches n*K*iterations = 2,000,000 instances (the paper reports
// 2,024,251 — the extra ~24k were partial next-iteration stragglers at
// their termination point; our per-kernel age caps cut deterministically).
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "workloads/kmeans.h"

using namespace p2g;

int main() {
  const bool full = bench::full_scale();
  workloads::KmeansConfig config;
  config.n = bench::env_int("P2G_N", full ? 2000 : 600);
  config.k = bench::env_int("P2G_K", full ? 100 : 40);
  config.iterations = bench::env_int("P2G_ITER", 10);

  std::printf("=== Table III: micro-benchmark of K-means in P2G ===\n");
  std::printf("n=%d, K=%d, %d iterations\n\n", config.n, config.k,
              config.iterations);

  workloads::KmeansWorkload workload;
  workload.config = config;
  RunOptions opts;
  workload.apply_schedule(opts);
  Runtime rt(workload.build(), opts);
  const RunReport report = rt.run();

  std::printf("%s\n", report.instrumentation.to_table().c_str());
  std::printf("total wall time: %.3f s\n\n", report.wall_s);
  std::printf("Paper (n=2000, K=100, 10 iters): init 1, assign 2,024,251, "
              "refine 1000,\nprint 11; assign dispatch 4.07 us vs kernel "
              "6.95 us (dispatch-bound).\n");
  return 0;
}
