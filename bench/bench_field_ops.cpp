// Micro-benchmarks of field storage primitives (google-benchmark): the
// write-once store path, region fetches, sealing and implicit resizing.
// These are the per-operation costs underneath every dispatch-time figure
// in Tables II/III.
#include <benchmark/benchmark.h>

#include "core/field.h"

namespace p2g {
namespace {

FieldDecl make_decl(size_t rank) {
  FieldDecl d;
  d.id = 0;
  d.name = "bench";
  d.type = nd::ElementType::kInt32;
  d.rank = rank;
  return d;
}

void BM_StoreScalarWriteOnce(benchmark::State& state) {
  const int32_t value = 42;
  int64_t age = 0;
  FieldStorage fs(make_decl(1));
  fs.seal(age, nd::Extents({1 << 20}));
  int64_t index = 0;
  for (auto _ : state) {
    fs.store(age, nd::Region::point({index}),
             reinterpret_cast<const std::byte*>(&value));
    if (++index == (1 << 20)) {  // fresh age when the bitmap is full
      index = 0;
      ++age;
      fs.seal(age, nd::Extents({1 << 20}));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreScalarWriteOnce);

void BM_StoreWholeField(benchmark::State& state) {
  const int64_t elements = state.range(0);
  nd::AnyBuffer payload(nd::ElementType::kInt32, nd::Extents({elements}));
  FieldStorage fs(make_decl(1));
  int64_t age = 0;
  for (auto _ : state) {
    fs.store_whole(age++, payload);
  }
  state.SetBytesProcessed(state.iterations() * elements * 4);
}
BENCHMARK(BM_StoreWholeField)->Arg(64)->Arg(4096)->Arg(262144);

void BM_FetchBlock(benchmark::State& state) {
  FieldStorage fs(make_decl(3));
  nd::AnyBuffer frame(nd::ElementType::kInt32, nd::Extents({36, 44, 64}));
  fs.store_whole(0, frame);
  const nd::Region block(std::vector<nd::Interval>{
      {10, 11}, {20, 21}, {0, 64}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.fetch(0, block));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchBlock);

// --- copy-vs-view fetch pairs (Issue 4) -----------------------------------
//
// Each pair measures the same logical read through the pre-PR deep-copy
// path (`fetch_whole` / `fetch`) and the zero-copy view path
// (`try_fetch_view_whole` / `try_fetch_view`). The age is sealed so the
// view path can alias the storage buffer; the copy path still allocates
// and memcpys a fresh payload per call.

void BM_FetchWholeCopy(benchmark::State& state) {
  const int64_t elements = state.range(0);
  FieldStorage fs(make_decl(1));
  nd::AnyBuffer frame(nd::ElementType::kInt32, nd::Extents({elements}));
  fs.store_whole(0, frame);
  fs.seal(0, nd::Extents({elements}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.fetch_whole(0));
  }
  state.SetBytesProcessed(state.iterations() * elements * 4);
}
BENCHMARK(BM_FetchWholeCopy)->Arg(64)->Arg(4096)->Arg(262144);

void BM_FetchWholeView(benchmark::State& state) {
  const int64_t elements = state.range(0);
  FieldStorage fs(make_decl(1));
  nd::AnyBuffer frame(nd::ElementType::kInt32, nd::Extents({elements}));
  fs.store_whole(0, frame);
  fs.seal(0, nd::Extents({elements}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.try_fetch_view_whole(0));
  }
  state.SetBytesProcessed(state.iterations() * elements * 4);
}
BENCHMARK(BM_FetchWholeView)->Arg(64)->Arg(4096)->Arg(262144);

void BM_FetchRowCopy(benchmark::State& state) {
  FieldStorage fs(make_decl(2));
  nd::AnyBuffer grid(nd::ElementType::kInt32, nd::Extents({512, 512}));
  fs.store_whole(0, grid);
  fs.seal(0, nd::Extents({512, 512}));
  const nd::Region row(std::vector<nd::Interval>{{100, 101}, {0, 512}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.fetch(0, row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchRowCopy);

void BM_FetchRowView(benchmark::State& state) {
  FieldStorage fs(make_decl(2));
  nd::AnyBuffer grid(nd::ElementType::kInt32, nd::Extents({512, 512}));
  fs.store_whole(0, grid);
  fs.seal(0, nd::Extents({512, 512}));
  const nd::Region row(std::vector<nd::Interval>{{100, 101}, {0, 512}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.try_fetch_view(0, row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchRowView);

void BM_FetchColumnStridedView(benchmark::State& state) {
  // Non-contiguous slice: the view carries storage strides instead of
  // copying, so even this stays allocation-free.
  FieldStorage fs(make_decl(2));
  nd::AnyBuffer grid(nd::ElementType::kInt32, nd::Extents({512, 512}));
  fs.store_whole(0, grid);
  fs.seal(0, nd::Extents({512, 512}));
  const nd::Region col(std::vector<nd::Interval>{{0, 512}, {100, 101}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.try_fetch_view(0, col));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchColumnStridedView);

void BM_RegionWrittenCheck(benchmark::State& state) {
  FieldStorage fs(make_decl(2));
  nd::AnyBuffer data(nd::ElementType::kInt32, nd::Extents({512, 512}));
  fs.store_whole(0, data);
  const nd::Region row(std::vector<nd::Interval>{{100, 101}, {0, 512}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.region_written(0, row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegionWrittenCheck);

void BM_ImplicitResizeDoubling(benchmark::State& state) {
  const int32_t value = 7;
  for (auto _ : state) {
    state.PauseTiming();
    FieldStorage fs(make_decl(1));
    state.ResumeTiming();
    // Repeatedly store just past the end: each store grows the extents.
    for (int64_t i = 0; i < 64; ++i) {
      fs.store(0, nd::Region::point({i * 17}),
               reinterpret_cast<const std::byte*>(&value));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ImplicitResizeDoubling);

void BM_SealAndComplete(benchmark::State& state) {
  FieldStorage fs(make_decl(1));
  nd::AnyBuffer data(nd::ElementType::kInt32, nd::Extents({4096}));
  fs.store_whole(0, data);
  fs.seal(0, nd::Extents({4096}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.is_complete(0));
  }
}
BENCHMARK(BM_SealAndComplete);

}  // namespace
}  // namespace p2g

BENCHMARK_MAIN();
