// Ablation: oldest-first dispatch (paper §VI-B).
//
// Age priority matters when runnable instances of *different* ages coexist
// in the ready queue, which happens as soon as per-age work is uneven: a
// fast source runs ahead, and stages of many ages become runnable while
// heavy ages are still in flight. Oldest-first dispatch then drains low
// ages first; FIFO executes in completion order of the upstream, letting
// new ages overtake old ones.
//
// Workload: source -> stage (wide, cost varies 25x with age) -> collect.
// We measure per-age result latency (frame read until its collect body
// ran). Under FIFO a ready old-age collect waits behind all the newer
// stage instances queued before it; age priority lets it jump ahead —
// exactly what a live multimedia pipeline needs for its oldest (most
// urgent) frame.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/context.h"
#include "core/runtime.h"

using namespace p2g;

namespace {

constexpr int kWorkers = 2;

struct OrderLog {
  std::shared_ptr<std::mutex> mutex = std::make_shared<std::mutex>();
  std::shared_ptr<std::vector<std::pair<int64_t, int64_t>>> stamps =
      std::make_shared<std::vector<std::pair<int64_t, int64_t>>>();

  Program build(int width, int ages) const {
    ProgramBuilder pb;
    pb.field("frames", nd::ElementType::kInt32, 1);
    pb.field("stage_out", nd::ElementType::kInt32, 1);
    pb.field("result", nd::ElementType::kInt32, 1);

    auto mu0 = mutex;
    auto st0 = stamps;
    pb.kernel("source")
        .store("v", "frames", AgeExpr::relative(0), Slice::whole())
        .body([width, ages, mu0, st0](KernelContext& ctx) {
          if (ctx.age() >= ages) return;
          {
            std::scoped_lock lock(*mu0);
            if (st0->size() <= static_cast<size_t>(ctx.age())) {
              st0->resize(static_cast<size_t>(ctx.age()) + 1, {0, 0});
            }
            (*st0)[static_cast<size_t>(ctx.age())].first = now_ns();
          }
          nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({width}));
          for (int i = 0; i < width; ++i) {
            v.data<int32_t>()[i] = static_cast<int32_t>(ctx.age());
          }
          ctx.store_array("v", std::move(v));
          ctx.continue_next_age();
        });

    pb.kernel("stage")
        .index("x")
        .fetch("in", "frames", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "stage_out", AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          // Heavy every 4th age: per-age cost varies 25x, so completion
          // order diverges from age order.
          const int64_t budget_us = ctx.age() % 4 == 0 ? 250 : 10;
          const int64_t start = now_ns();
          while (now_ns() - start < budget_us * 1000) {
          }
          ctx.store_scalar<int32_t>("out",
                                    ctx.fetch_scalar<int32_t>("in") + 1);
        });

    auto mu = mutex;
    auto st = stamps;
    pb.kernel("collect")
        .fetch("all", "stage_out", AgeExpr::relative(0), Slice::whole())
        .body([mu, st](KernelContext& ctx) {
          std::scoped_lock lock(*mu);
          (*st)[static_cast<size_t>(ctx.age())].second = now_ns();
        });
    return pb.build();
  }

  /// Mean and max per-age latency (frame read -> per-age result), ms.
  std::pair<double, double> latency_ms() const {
    double total = 0.0;
    double worst = 0.0;
    int64_t count = 0;
    for (const auto& [produced, collected] : *stamps) {
      if (produced == 0 || collected == 0) continue;
      const double ms = ns_to_ms(collected - produced);
      total += ms;
      worst = std::max(worst, ms);
      ++count;
    }
    return {count > 0 ? total / static_cast<double>(count) : 0.0, worst};
  }
};

}  // namespace

int main() {
  const int ages = bench::env_int("P2G_AGES", 300);
  const int width = bench::env_int("P2G_ELEMENTS", 8);

  std::printf("=== Ablation: age-priority vs FIFO dispatch ===\n");
  std::printf("source -> uneven-cost stage (width %d) -> collect, %d ages, "
              "%d workers\n\n", width, ages, kWorkers);
  std::printf("%-14s  %10s  %14s  %14s\n", "queue order", "wall_s",
              "mean_lat_ms", "max_lat_ms");

  for (const bool age_priority : {true, false}) {
    OrderLog log;
    RunOptions opts;
    opts.workers = kWorkers;
    opts.age_priority = age_priority;
    Runtime rt(log.build(width, ages), opts);
    const RunReport report = rt.run();
    const auto [mean_ms, max_ms] = log.latency_ms();
    std::printf("%-14s  %10.3f  %14.3f  %14.3f\n",
                age_priority ? "age-priority" : "fifo", report.wall_s,
                mean_ms, max_ms);
  }
  std::printf("\n(Latency = frame read until its per-age result; "
              "oldest-first dispatch\nlets old results jump the queue "
              "ahead of newer stage work — the\nproperty a live pipeline "
              "needs.)\n");
  return 0;
}
