// Figure 9: MJPEG workload execution time vs. worker threads.
//
// Reproduces the paper's sweep: the MJPEG workload (synthetic CIF clip,
// naive DCT) run with 1..8 worker threads, several runs per count, mean
// and standard deviation reported, plus the single-threaded standalone
// encoder as the reference line (paper: 19 s Core i7 / 30 s Opteron).
//
// Defaults are scaled for small machines (10 frames, 3 runs);
// P2G_BENCH_FULL=1 restores the paper's 50 frames and 10 runs.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "core/runtime.h"
#include "media/yuv.h"
#include "workloads/mjpeg_workload.h"
#include "workloads/standalone_mjpeg.h"

using namespace p2g;

int main() {
  const bool full = bench::full_scale();
  const int frames = bench::env_int("P2G_FRAMES", full ? 50 : 10);
  const int runs = bench::env_int("P2G_RUNS", full ? 10 : 3);
  const int max_threads = bench::env_int("P2G_MAX_THREADS", 8);

  std::printf("=== Figure 9: MJPEG workload execution time ===\n");
  std::printf("synthetic CIF 352x288, %d frames, naive DCT, %d runs per "
              "thread count\n\n", frames, runs);

  auto video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(352, 288, frames));

  // Reference: the standalone single-threaded encoder.
  RunningStat standalone;
  for (int r = 0; r < runs; ++r) {
    Stopwatch sw;
    const media::MjpegWriter out = workloads::encode_mjpeg_standalone(*video);
    standalone.add(sw.elapsed_s());
  }
  std::printf("standalone single-threaded encoder: %.3f s (± %.3f)\n\n",
              standalone.mean(), standalone.stddev());

  bench::print_series_header("P2G execution node:");
  for (int threads = 1; threads <= max_threads; ++threads) {
    RunningStat stat;
    for (int r = 0; r < runs; ++r) {
      workloads::MjpegWorkload workload;
      workload.video = video;
      RunOptions opts;
      opts.workers = threads;
      Runtime rt(workload.build(), opts);
      const RunReport report = rt.run();
      stat.add(report.wall_s);
    }
    bench::print_series_row(threads, stat);
  }
  std::printf("\n(The paper scales near-linearly to the core count, with a "
              "dip when a\nworker shares a core with the dedicated "
              "dependency analyzer.)\n");
  return 0;
}
