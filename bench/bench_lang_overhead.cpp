// Ablation: kernel-language interpreter vs. native C++ kernel bodies.
//
// The paper's compiler emits C++ precisely to avoid interpretive overhead
// ("we gain the flexibility and sophisticated optimization of the native
// compilers"). We run the same mul2/plus5-style program — its mul2 body
// carries a 256-iteration inner loop so body cost is visible — (a) with
// C++ lambda bodies (what the codegen backend emits) and (b) through the
// AST interpreter, and report the per-body cost of each front end.
#include <cstdio>

#include "bench_util.h"
#include "core/context.h"
#include "core/runtime.h"
#include "lang/driver.h"

using namespace p2g;

namespace {

const char* kSource = R"(
int32[] m_data age;
int32[] p_data age;

init:
  local int32[] values;
  %{
    int32 i = 0;
    for (; i < 64; i++) {
      put(values, i + 10, i);
    }
  %}
  store m_data(0) = values;

mul2:
  age a;
  index x;
  local int32 value;
  fetch value = m_data(a)[x];
  %{
    int32 s = 0;
    int32 i = 0;
    for (; i < 256; i++) {
      s += (value + i) % 17;
    }
    value = value * 2 + s - s;
  %}
  store p_data(a)[x] = value;

plus5:
  age a;
  index x;
  local int32 value;
  fetch value = p_data(a)[x];
  %{ value += 5; %}
  store m_data(a+1)[x] = value;
)";

}  // namespace

int main() {
  const Age ages = bench::env_int("P2G_AGES", 400);

  std::printf("=== Ablation: interpreter vs native kernel bodies ===\n");
  std::printf("mul2/plus5 cycle, 64 elements, %lld ages, 2 workers\n\n",
              static_cast<long long>(ages));
  std::printf("%-22s  %10s  %14s\n", "front end", "wall_s", "us_per_body");

  double native_wall = 0.0;
  {
    // The same three kernels with C++ lambda bodies (what codegen emits).
    ProgramBuilder pb;
    pb.field("m_data", nd::ElementType::kInt32, 1);
    pb.field("p_data", nd::ElementType::kInt32, 1);
    pb.kernel("init")
        .run_once()
        .store("values", "m_data", AgeExpr::constant(0), Slice::whole())
        .body([](KernelContext& ctx) {
          nd::AnyBuffer values(nd::ElementType::kInt32, nd::Extents({64}));
          for (int i = 0; i < 64; ++i) values.data<int32_t>()[i] = i + 10;
          ctx.store_array("values", std::move(values));
        });
    pb.kernel("mul2")
        .index("x")
        .fetch("value", "m_data", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "p_data", AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          const int32_t value = ctx.fetch_scalar<int32_t>("value");
          int32_t s = 0;
          for (int32_t i = 0; i < 256; ++i) {
            s += (value + i) % 17;
          }
          ctx.store_scalar<int32_t>("out", value * 2 + s - s);
        });
    pb.kernel("plus5")
        .index("x")
        .fetch("value", "p_data", AgeExpr::relative(0), Slice().var("x"))
        .store("out", "m_data", AgeExpr::relative(1), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out",
                                    ctx.fetch_scalar<int32_t>("value") + 5);
        });
    RunOptions opts;
    opts.workers = 2;
    opts.max_age = ages;
    Runtime rt(pb.build(), opts);
    const RunReport report = rt.run();
    native_wall = report.wall_s;
    int64_t bodies = 0;
    for (const auto& k : report.instrumentation.kernels) {
      bodies += k.instances;
    }
    std::printf("%-22s  %10.3f  %14.2f\n", "native C++ bodies",
                report.wall_s,
                report.wall_s * 1e6 / static_cast<double>(bodies));
  }
  {
    lang::CompiledModule compiled = lang::compile_source(kSource);
    RunOptions opts;
    opts.workers = 2;
    opts.max_age = ages;
    Runtime rt(std::move(compiled.program), opts);
    const RunReport report = rt.run();
    int64_t bodies = 0;
    for (const auto& k : report.instrumentation.kernels) {
      bodies += k.instances;
    }
    std::printf("%-22s  %10.3f  %14.2f\n", "AST interpreter",
                report.wall_s,
                report.wall_s * 1e6 / static_cast<double>(bodies));
    std::printf("\ninterpreter / native wall-time ratio: %.2fx\n",
                report.wall_s / native_wall);
  }
  std::printf("(The p2gc codegen backend emits the native form; `p2gc "
              "build` links it\ninto a complete binary, the paper's "
              "compile-to-C++ pipeline.)\n");
  return 0;
}
