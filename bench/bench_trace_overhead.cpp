// Tracing-overhead micro-benchmark (ISSUE 6, google-benchmark).
//
// Measures what causal tracing costs on the dispatch hot path and on a
// real workload (MJPEG encode): collect_trace on vs off, plus the
// flight-recorder-only mode chaos runs use. Acceptance: tracing enabled
// stays within ~5% of baseline; disabled is indistinguishable (the hot
// path is a single null check). No file I/O in any variant — collection
// only, like the distributed master's stitching mode.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/context.h"
#include "core/runtime.h"
#include "media/yuv.h"
#include "workloads/mjpeg_workload.h"

namespace p2g {
namespace {

/// source -> stage(x) -> sink over `elements`-wide fields for `ages` ages
/// (the bench_dispatch_overhead pipeline, for comparable numbers).
Program dispatch_program(int elements, int ages) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.kernel("source")
      .store("v", "a", AgeExpr::relative(0), Slice::whole())
      .body([elements, ages](KernelContext& ctx) {
        if (ctx.age() >= ages) return;
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({elements}));
        ctx.store_array("v", std::move(v));
        ctx.continue_next_age();
      });
  pb.kernel("stage")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
      });
  return pb.build();
}

enum class Mode { kOff, kTrace, kFlight };

void run_dispatch(benchmark::State& state, Mode mode) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.collect_trace = mode == Mode::kTrace;
    opts.flight_recorder = mode == Mode::kFlight;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_DispatchTraceOff(benchmark::State& state) {
  run_dispatch(state, Mode::kOff);
}
BENCHMARK(BM_DispatchTraceOff)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_DispatchTraceOn(benchmark::State& state) {
  run_dispatch(state, Mode::kTrace);
}
BENCHMARK(BM_DispatchTraceOn)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_DispatchFlightOnly(benchmark::State& state) {
  run_dispatch(state, Mode::kFlight);
}
BENCHMARK(BM_DispatchFlightOnly)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void run_mjpeg(benchmark::State& state, Mode mode) {
  // QCIF x 2 frames with the paper's naive DCT: ~600 blocks x ~100us of
  // kernel work per frame, so the measured delta is tracing cost relative
  // to a real workload (the dispatch benches above bound the worst case).
  const auto video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(176, 144, 2));
  int64_t frames = 0;
  for (auto _ : state) {
    workloads::MjpegWorkload workload;
    workload.video = video;
    RunOptions opts;
    opts.workers = 2;
    opts.collect_trace = mode == Mode::kTrace;
    opts.flight_recorder = mode == Mode::kFlight;
    Runtime rt(workload.build(), opts);
    const RunReport report = rt.run();
    frames += report.instrumentation.find("vlc_write")->instances - 1;
  }
  state.SetItemsProcessed(frames);
}

void BM_MjpegTraceOff(benchmark::State& state) {
  run_mjpeg(state, Mode::kOff);
}
BENCHMARK(BM_MjpegTraceOff)->Unit(benchmark::kMillisecond);

void BM_MjpegTraceOn(benchmark::State& state) {
  run_mjpeg(state, Mode::kTrace);
}
BENCHMARK(BM_MjpegTraceOn)->Unit(benchmark::kMillisecond);

void BM_MjpegFlightOnly(benchmark::State& state) {
  run_mjpeg(state, Mode::kFlight);
}
BENCHMARK(BM_MjpegFlightOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace p2g

BENCHMARK_MAIN();
