// Ablation: data-granularity control (paper §V-A / Fig. 4 Age=2, and the
// §VIII-B discussion of the K-means bottleneck).
//
// The paper argues that decreasing data parallelism — making each
// dispatched unit cover a larger slice — raises the ratio of kernel time
// to dispatch time and relieves the serial dependency analyzer. We sweep
// the chunk size of the K-means assign kernel and report wall time plus
// the dispatch counts that drop with coarser granularity.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "workloads/kmeans.h"

using namespace p2g;

int main() {
  workloads::KmeansConfig config;
  config.n = bench::env_int("P2G_N", bench::full_scale() ? 2000 : 600);
  config.k = bench::env_int("P2G_K", bench::full_scale() ? 100 : 40);
  config.iterations = bench::env_int("P2G_ITER", 10);

  std::printf("=== Ablation: assign-kernel chunk size (K-means, n=%d, "
              "K=%d, %d iters) ===\n\n",
              config.n, config.k, config.iterations);
  std::printf("%7s  %10s  %12s  %12s  %14s\n", "chunk", "wall_s",
              "dispatches", "instances", "avg_disp_us");

  for (int64_t chunk : {int64_t{1}, int64_t{8}, int64_t{64}, int64_t{256}}) {
    workloads::KmeansWorkload workload;
    workload.config = config;
    RunOptions opts;
    workload.apply_schedule(opts);
    opts.kernel_schedules["assign"].chunk = chunk;
    Runtime rt(workload.build(), opts);
    const RunReport report = rt.run();
    const auto* assign = report.instrumentation.find("assign");
    std::printf("%7lld  %10.3f  %12lld  %12lld  %14.2f\n",
                static_cast<long long>(chunk), report.wall_s,
                static_cast<long long>(assign->dispatches),
                static_cast<long long>(assign->instances),
                assign->avg_dispatch_us());
  }
  std::printf("\n(Coarser chunks amortize dispatch overhead across more "
              "kernel bodies,\nthe fix the paper proposes for the Fig. 10 "
              "degradation.)\n");
  return 0;
}
