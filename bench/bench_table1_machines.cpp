// Table I: overview of test machines.
//
// The paper lists its two testbeds (4-way Core i7 860, 8-way Opteron
// 8218). We obviously run on whatever host executes this reproduction, so
// this bench prints the host's description in the same format, which
// EXPERIMENTS.md pairs with the paper's table.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

namespace {

std::string cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

int physical_cores() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  std::set<std::pair<std::string, std::string>> cores;
  std::string physical_id = "0";
  while (std::getline(in, line)) {
    if (line.rfind("physical id", 0) == 0) {
      physical_id = line.substr(line.find(':') + 1);
    } else if (line.rfind("core id", 0) == 0) {
      cores.emplace(physical_id, line.substr(line.find(':') + 1));
    }
  }
  return cores.empty()
             ? static_cast<int>(std::thread::hardware_concurrency())
             : static_cast<int>(cores.size());
}

}  // namespace

int main() {
  std::printf("=== Table I: overview of test machines ===\n\n");
  std::printf("Paper:\n");
  std::printf("  4-way Intel Core i7 860 2.8 GHz (Nehalem), 4 cores / 8 "
              "threads\n");
  std::printf("  8-way AMD Opteron 8218 2.6 GHz (Santa Rosa), 8 cores / 8 "
              "threads\n\n");
  std::printf("This host:\n");
  std::printf("  %-18s %s\n", "CPU-name", cpu_model().c_str());
  std::printf("  %-18s %d\n", "Physical cores", physical_cores());
  std::printf("  %-18s %u\n", "Logical threads",
              std::thread::hardware_concurrency());
  return 0;
}
