// Overhead guard for the instrumented sync primitives (google-benchmark).
//
// The p2gcheck conversion swapped std::mutex/condition_variable for
// p2g::sync wrappers across the runtime hot paths. With no CheckSession
// installed the wrappers must compile down to the plain primitive plus one
// relaxed thread-local generation compare — this bench puts the
// instrumented and plain variants side by side so a regression in the
// passthrough fast path shows up as a ratio, not an absolute guess.
#include <benchmark/benchmark.h>

#include <mutex>
#include <shared_mutex>

#include "check/sync.h"
#include "common/blocking_queue.h"

namespace p2g {
namespace {

void BM_StdMutexLockUnlock(benchmark::State& state) {
  std::mutex m;
  for (auto _ : state) {
    std::scoped_lock lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

void BM_SyncMutexLockUnlock(benchmark::State& state) {
  sync::Mutex m("bench.m");
  for (auto _ : state) {
    std::scoped_lock lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_SyncMutexLockUnlock);

void BM_StdSharedMutexReadLock(benchmark::State& state) {
  std::shared_mutex m;
  for (auto _ : state) {
    std::shared_lock lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_StdSharedMutexReadLock);

void BM_SyncSharedMutexReadLock(benchmark::State& state) {
  sync::SharedMutex m("bench.rw");
  for (auto _ : state) {
    std::shared_lock lock(m);
    benchmark::DoNotOptimize(&m);
  }
}
BENCHMARK(BM_SyncSharedMutexReadLock);

void BM_AnnotationPassthrough(benchmark::State& state) {
  int64_t value = 0;
  for (auto _ : state) {
    check::write(value, "bench.value");
    value += 1;
    check::read(value, "bench.value");
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_AnnotationPassthrough);

void BM_BlockingQueuePushPop(benchmark::State& state) {
  BlockingQueue<int> queue;
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_BlockingQueuePushPop);

}  // namespace
}  // namespace p2g

BENCHMARK_MAIN();
