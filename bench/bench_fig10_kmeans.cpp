// Figure 10: K-means workload execution time vs. worker threads.
//
// The paper's key observation: the fine-grained assign kernel (one
// instance per datapoint-centroid pair) floods the serial dependency
// analyzer, so the workload scales only to a few workers and then
// *degrades* as more workers contend with the analyzer thread.
//
// Defaults are scaled down (n=600, K=40); P2G_BENCH_FULL=1 restores the
// paper's n=2000, K=100, 10 iterations, 10 runs.
#include <cstdio>

#include "bench_util.h"
#include "core/runtime.h"
#include "workloads/kmeans.h"

using namespace p2g;

int main() {
  const bool full = bench::full_scale();
  workloads::KmeansConfig config;
  config.n = bench::env_int("P2G_N", full ? 2000 : 600);
  config.k = bench::env_int("P2G_K", full ? 100 : 40);
  config.iterations = bench::env_int("P2G_ITER", 10);
  const int runs = bench::env_int("P2G_RUNS", full ? 10 : 3);
  const int max_threads = bench::env_int("P2G_MAX_THREADS", 8);

  std::printf("=== Figure 10: K-means workload execution time ===\n");
  std::printf("n=%d datapoints, K=%d, %d iterations, %d runs per thread "
              "count\n\n", config.n, config.k, config.iterations, runs);

  bench::print_series_header("P2G execution node:");
  for (int threads = 1; threads <= max_threads; ++threads) {
    RunningStat stat;
    for (int r = 0; r < runs; ++r) {
      workloads::KmeansWorkload workload;
      workload.config = config;
      RunOptions opts;
      opts.workers = threads;
      workload.apply_schedule(opts);
      Runtime rt(workload.build(), opts);
      const RunReport report = rt.run();
      stat.add(report.wall_s);
    }
    bench::print_series_row(threads, stat);
  }
  std::printf("\n(The paper sees scaling up to ~4 workers, then the serial "
              "dependency\nanalyzer saturates and adding workers increases "
              "the running time.)\n");
  return 0;
}
