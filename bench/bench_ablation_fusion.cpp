// Ablation: task fusion (paper §V-A / Fig. 4 Age=3).
//
// Fusing plus5 into mul2 runs the downstream body immediately on the
// upstream's stored value, skipping one full dispatch round-trip per
// element. When the intermediate field has no other consumer, the store is
// elided entirely ("storing to m_data could be circumvented in its
// entirety") — we measure both variants against the unfused baseline.
#include <cstdio>

#include "bench_util.h"
#include "core/context.h"
#include "core/runtime.h"
#include "workloads/mul2plus5.h"

using namespace p2g;

namespace {

/// A two-stage pipeline whose intermediate field has a single consumer, so
/// fusion can elide the intermediate store (unlike mul2plus5, where print
/// also reads it).
Program elidable_pipeline(int elements) {
  ProgramBuilder pb;
  pb.field("input", nd::ElementType::kInt32, 1);
  pb.field("mid", nd::ElementType::kInt32, 1);
  pb.field("output", nd::ElementType::kInt32, 1);

  pb.kernel("source")
      .store("v", "input", AgeExpr::relative(0), Slice::whole())
      .body([elements](KernelContext& ctx) {
        if (ctx.age() >= 200) return;
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({elements}));
        for (int i = 0; i < elements; ++i) {
          v.data<int32_t>()[i] = static_cast<int32_t>(ctx.age()) + i;
        }
        ctx.store_array("v", std::move(v));
        ctx.continue_next_age();
      });
  pb.kernel("stage_a")
      .index("x")
      .fetch("in", "input", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "mid", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out",
                                  ctx.fetch_scalar<int32_t>("in") * 3);
      });
  pb.kernel("stage_b")
      .index("x")
      .fetch("in", "mid", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "output", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out",
                                  ctx.fetch_scalar<int32_t>("in") - 7);
      });
  return pb.build();
}

}  // namespace

int main() {
  const Age max_age = bench::env_int("P2G_AGES", 400);
  const int elements = bench::env_int("P2G_ELEMENTS", 64);

  std::printf("=== Ablation: task fusion (mul2/plus5 cycle, %lld ages, %d "
              "elements) ===\n\n",
              static_cast<long long>(max_age), elements);
  std::printf("%-28s  %10s  %14s\n", "configuration", "wall_s",
              "dispatches");

  for (const bool fused : {false, true}) {
    workloads::Mul2Plus5 workload;
    workload.elements = elements;
    RunOptions opts;
    opts.max_age = max_age;
    if (fused) opts.fusions.push_back(FusionRule{"mul2", "plus5"});
    Runtime rt(workload.build(), opts);
    const RunReport report = rt.run();
    int64_t dispatches = 0;
    for (const auto& k : report.instrumentation.kernels) {
      dispatches += k.dispatches;
    }
    std::printf("%-28s  %10.3f  %14lld\n",
                fused ? "mul2+plus5 fused" : "unfused baseline",
                report.wall_s, static_cast<long long>(dispatches));
  }

  std::printf("\npipeline with elidable intermediate (stage_a -> mid -> "
              "stage_b):\n");
  for (const bool fused : {false, true}) {
    Program prog = elidable_pipeline(elements);
    RunOptions opts;
    opts.max_age = 300;
    if (fused) opts.fusions.push_back(FusionRule{"stage_a", "stage_b"});
    Runtime rt(std::move(prog), opts);
    const RunReport report = rt.run();
    // With fusion the mid field receives no stores at all.
    const size_t mid_bytes = rt.storage("mid").memory_bytes();
    int64_t dispatches = 0;
    for (const auto& k : report.instrumentation.kernels) {
      dispatches += k.dispatches;
    }
    std::printf("%-28s  %10.3f  %14lld  (mid field: %zu bytes)\n",
                fused ? "fused, store elided" : "unfused baseline",
                report.wall_s, static_cast<long long>(dispatches),
                mid_bytes);
  }
  return 0;
}
