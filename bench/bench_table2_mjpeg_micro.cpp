// Table II: micro-benchmark of MJPEG encoding in P2G.
//
// One instrumented run of the MJPEG workload; reports per kernel
// definition the number of dispatched instances, the average dispatch time
// (fetch resolution + store commit, i.e. field allocation/copy work) and
// the average time inside kernel code — the same columns as the paper.
//
// At full scale (P2G_BENCH_FULL=1: CIF, 50 frames) the instance counts
// reproduce the paper exactly for the DCT kernels: 1584 luma + 2x396
// chroma blocks per frame.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/runtime.h"
#include "media/yuv.h"
#include "workloads/mjpeg_workload.h"

using namespace p2g;

int main() {
  const bool full = bench::full_scale();
  const int frames = bench::env_int("P2G_FRAMES", full ? 50 : 10);

  std::printf("=== Table II: micro-benchmark of MJPEG encoding in P2G ===\n");
  std::printf("synthetic CIF 352x288, %d frames, naive DCT\n\n", frames);

  workloads::MjpegWorkload workload;
  workload.video = std::make_shared<media::YuvVideo>(
      media::generate_synthetic_video(352, 288, frames));
  RunOptions opts;
  Runtime rt(workload.build(), opts);
  const RunReport report = rt.run();

  std::printf("%s\n", report.instrumentation.to_table().c_str());
  std::printf("total wall time: %.3f s\n\n", report.wall_s);
  std::printf("Paper (50 frames): init 1, read/splityuv 51, yDCT 80784, "
              "uDCT 20196,\nvDCT 20196, VLC/write 51; dispatch ~3 us for "
              "DCT kernels, kernel time\n~170 us per DCT block.\n");
  return 0;
}
