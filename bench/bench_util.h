// Shared helpers for the reproduction benches.
//
// Every figure/table binary runs with sensible defaults sized for a small
// CI machine; set P2G_BENCH_FULL=1 to run at the paper's exact scale
// (50-frame CIF MJPEG, n=2000/K=100 k-means, 10 runs per thread count).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.h"

namespace p2g::bench {

inline bool full_scale() {
  const char* env = std::getenv("P2G_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : fallback;
}

/// "threads  mean_s  stddev_s" row (the data behind Figs. 9/10 error bars).
inline void print_series_row(int threads, const RunningStat& stat) {
  std::printf("%7d  %10.3f  %9.3f\n", threads, stat.mean(), stat.stddev());
}

inline void print_series_header(const char* label) {
  std::printf("%s\n%7s  %10s  %9s\n", label, "threads", "mean_s",
              "stddev_s");
}

}  // namespace p2g::bench
