// Micro-benchmark of per-instance dispatch overhead (google-benchmark).
//
// Runs a pipeline of empty-body kernels through the full runtime and
// reports the time per kernel instance — the framework cost the paper's
// dispatch-time columns capture, isolated from any real kernel work.
#include <benchmark/benchmark.h>

#include "core/context.h"
#include "core/runtime.h"

namespace p2g {
namespace {

/// source -> stage(x) -> sink over `elements`-wide fields for `ages` ages.
Program dispatch_program(int elements, int ages) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.kernel("source")
      .store("v", "a", AgeExpr::relative(0), Slice::whole())
      .body([elements, ages](KernelContext& ctx) {
        if (ctx.age() >= ages) return;
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({elements}));
        ctx.store_array("v", std::move(v));
        ctx.continue_next_age();
      });
  pb.kernel("stage")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
      });
  return pb.build();
}

void BM_DispatchPerInstance(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchPerInstance)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Same pipeline with telemetry enabled: the delta against
/// BM_DispatchPerInstance is the metrics hot-path cost (sharded atomics +
/// two clock reads per instance) — the acceptance target is within ~5%.
void BM_DispatchPerInstanceMetrics(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.metrics.enabled = true;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchPerInstanceMetrics)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Pre-PR dispatch ablation: one-event-per-lock analyzer loop instead of
/// the batched pop_all/handle_batch path. The delta against
/// BM_DispatchPerInstance is the contention saved by batching (Issue 4).
void BM_DispatchPerInstanceUnbatched(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.analyzer_batch = false;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchPerInstanceUnbatched)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_DispatchChunked(benchmark::State& state) {
  const int64_t chunk = state.range(0);
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.kernel_schedules["stage"].chunk = chunk;
    Runtime rt(dispatch_program(1024, 20), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
}
BENCHMARK(BM_DispatchChunked)->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace p2g

BENCHMARK_MAIN();
