// Micro-benchmark of per-instance dispatch overhead (google-benchmark).
//
// Runs a pipeline of empty-body kernels through the full runtime and
// reports the time per kernel instance — the framework cost the paper's
// dispatch-time columns capture, isolated from any real kernel work.
#include <benchmark/benchmark.h>

#include <ctime>

#include <string>

#include "core/context.h"
#include "core/runtime.h"

namespace p2g {
namespace {

/// source -> stage(x) -> sink over `elements`-wide fields for `ages` ages.
Program dispatch_program(int elements, int ages) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.kernel("source")
      .store("v", "a", AgeExpr::relative(0), Slice::whole())
      .body([elements, ages](KernelContext& ctx) {
        if (ctx.age() >= ages) return;
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({elements}));
        ctx.store_array("v", std::move(v));
        ctx.continue_next_age();
      });
  pb.kernel("stage")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
      });
  return pb.build();
}

void BM_DispatchPerInstance(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchPerInstance)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Same pipeline with telemetry enabled: the delta against
/// BM_DispatchPerInstance is the metrics hot-path cost (sharded atomics +
/// two clock reads per instance) — the acceptance target is within ~5%.
void BM_DispatchPerInstanceMetrics(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.metrics.enabled = true;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchPerInstanceMetrics)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Pre-PR dispatch ablation: one-event-per-lock analyzer loop instead of
/// the batched pop_all/handle_batch path. The delta against
/// BM_DispatchPerInstance is the contention saved by batching (Issue 4).
void BM_DispatchPerInstanceUnbatched(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.analyzer_batch = false;
    Runtime rt(dispatch_program(elements, ages), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["sec_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchPerInstanceUnbatched)->Arg(16)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// source -> stage(x) -> relay(x): relay consumes stage's *per-element*
/// stores, so each of relay's candidates is scanned through a constrained
/// store event and pays the fine-grained region check (resolve + interval
/// lookup) per candidate. That is the check independence certificates
/// eliminate — a whole-field producer like `a` seals on its single store
/// event and enumerates consumers unconstrained, so `stage` itself never
/// exercises the certified path (see DependencyAnalyzer::handle_store).
Program chained_program(int elements, int ages) {
  ProgramBuilder pb;
  pb.field("a", nd::ElementType::kInt32, 1);
  pb.field("b", nd::ElementType::kInt32, 1);
  pb.field("c", nd::ElementType::kInt32, 1);
  pb.kernel("source")
      .store("v", "a", AgeExpr::relative(0), Slice::whole())
      .body([elements, ages](KernelContext& ctx) {
        if (ctx.age() >= ages) return;
        nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({elements}));
        ctx.store_array("v", std::move(v));
        ctx.continue_next_age();
      });
  pb.kernel("stage")
      .index("x")
      .fetch("in", "a", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "b", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
      });
  pb.kernel("relay")
      .index("x")
      .fetch("in", "b", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "c", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
      });
  return pb.build();
}

/// Whole-process CPU seconds (all threads). The certificate delta lives in
/// the analyzer thread, which overlaps with the workers; on small or
/// oversubscribed VMs wall time is scheduler noise, while total CPU spent
/// per run is stable and sums exactly the work the fast path removes.
double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Issue 8 baseline: the chained pipeline without certificates — every
/// relay candidate pays the per-candidate region check. Manual timing
/// reports process CPU, and excludes program construction.
void BM_DispatchChainedPerInstance(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  for (auto _ : state) {
    Program program = chained_program(elements, ages);
    RunOptions opts;
    opts.workers = 2;
    const double cpu0 = process_cpu_seconds();
    Runtime rt(std::move(program), opts);
    const RunReport report = rt.run();
    state.SetIterationTime(process_cpu_seconds() - cpu0);
    instances += report.instrumentation.find("relay")->instances;
  }
  state.SetItemsProcessed(instances);
  state.counters["cpu_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DispatchChainedPerInstance)->Arg(16)->Arg(256)->Arg(1024)
    ->UseManualTime()->Unit(benchmark::kMillisecond);

/// Same pipeline with independence certificates embedded (Issue 8): the
/// dependence pass proves relay's elementwise fetch pointwise, so the
/// analyzer skips its region check on every constrained candidate scan.
/// certify() is a one-shot compile-time pass (it renders full diagnostic
/// reports) amortized over a whole deployment, so it stays outside the
/// timed interval along with program construction.
void BM_DispatchChainedPerInstanceCertified(benchmark::State& state) {
  const int elements = static_cast<int>(state.range(0));
  const int ages = 50;
  int64_t instances = 0;
  int64_t skips = 0;
  for (auto _ : state) {
    Program program = chained_program(elements, ages);
    program.certify();
    RunOptions opts;
    opts.workers = 2;
    const double cpu0 = process_cpu_seconds();
    Runtime rt(std::move(program), opts);
    const RunReport report = rt.run();
    state.SetIterationTime(process_cpu_seconds() - cpu0);
    instances += report.instrumentation.find("relay")->instances;
    skips += rt.certified_skips();
  }
  state.SetItemsProcessed(instances);
  state.counters["cpu_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  // Deterministic proof the fast path engaged: fine-grained region checks
  // eliminated, per executed relay instance (~1.0 for this pipeline).
  state.counters["skips_per_instance"] =
      static_cast<double>(skips) / static_cast<double>(instances);
}
BENCHMARK(BM_DispatchChainedPerInstanceCertified)->Arg(16)->Arg(256)
    ->Arg(1024)->UseManualTime()->Unit(benchmark::kMillisecond);

/// `width` independent certified source -> stage -> relay chains, fields
/// grouped by role (all a's, then b's, then c's). With width a multiple of
/// the shard count the chains partition evenly across shards and stay
/// shard-local, so the benchmark measures how analyzer work divides, not
/// message overhead.
Program chained_wide_program(int width, int elements, int ages) {
  ProgramBuilder pb;
  for (const char* role : {"a", "b", "c"}) {
    for (int w = 0; w < width; ++w) {
      pb.field(role + std::to_string(w), nd::ElementType::kInt32, 1);
    }
  }
  for (int w = 0; w < width; ++w) {
    const std::string suffix = std::to_string(w);
    pb.kernel("source" + suffix)
        .store("v", "a" + suffix, AgeExpr::relative(0), Slice::whole())
        .body([elements, ages](KernelContext& ctx) {
          if (ctx.age() >= ages) return;
          nd::AnyBuffer v(nd::ElementType::kInt32, nd::Extents({elements}));
          ctx.store_array("v", std::move(v));
          ctx.continue_next_age();
        });
    pb.kernel("stage" + suffix)
        .index("x")
        .fetch("in", "a" + suffix, AgeExpr::relative(0), Slice().var("x"))
        .store("out", "b" + suffix, AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
        });
    pb.kernel("relay" + suffix)
        .index("x")
        .fetch("in", "b" + suffix, AgeExpr::relative(0), Slice().var("x"))
        .store("out", "c" + suffix, AgeExpr::relative(0), Slice().var("x"))
        .body([](KernelContext& ctx) {
          ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("in"));
        });
  }
  return pb.build();
}

/// Sharded-analyzer scaling (Issue 9): the same certified chained pipeline,
/// `width` chains wide, analyzed by range(1) shards. Manual time is the
/// *maximum per-shard analyzer CPU* — the sharded analyzer's critical path.
/// On a single-vCPU host the shard threads interleave rather than overlap,
/// so wall time and process CPU cannot show the split; the per-thread CPU
/// maximum is exactly the quantity that becomes wall time once each shard
/// has its own core, and it is what must drop monotonically 1 -> 2 -> 4.
void BM_DispatchShardedPerInstance(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int elements = 256;
  const int ages = 30;
  int64_t instances = 0;
  int64_t skips = 0;
  for (auto _ : state) {
    Program program = chained_wide_program(width, elements, ages);
    program.certify();
    RunOptions opts;
    opts.workers = 2;
    opts.analyzer_shards = shards;
    Runtime rt(std::move(program), opts);
    const RunReport report = rt.run();
    state.SetIterationTime(static_cast<double>(rt.max_analyzer_cpu_ns()) *
                           1e-9);
    for (int w = 0; w < width; ++w) {
      instances +=
          report.instrumentation.find("relay" + std::to_string(w))->instances;
    }
    skips += rt.certified_skips();
  }
  state.SetItemsProcessed(instances);
  state.counters["cpu_per_instance"] = benchmark::Counter(
      static_cast<double>(instances),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  // The certified fast path must survive sharding unchanged (~1.0 skipped
  // region check per executed relay instance for this pipeline).
  state.counters["skips_per_instance"] =
      static_cast<double>(skips) / static_cast<double>(instances);
}
BENCHMARK(BM_DispatchShardedPerInstance)
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})
    ->Args({8, 1})->Args({8, 2})->Args({8, 4})
    ->UseManualTime()->Unit(benchmark::kMillisecond);

void BM_DispatchChunked(benchmark::State& state) {
  const int64_t chunk = state.range(0);
  int64_t instances = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.workers = 2;
    opts.kernel_schedules["stage"].chunk = chunk;
    Runtime rt(dispatch_program(1024, 20), opts);
    const RunReport report = rt.run();
    instances += report.instrumentation.find("stage")->instances;
  }
  state.SetItemsProcessed(instances);
}
BENCHMARK(BM_DispatchChunked)->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace p2g

BENCHMARK_MAIN();
