// Ablation: HLS partitioners (paper §IV — graph partitioning [17] vs.
// search based [14]).
//
// Compares greedy growth, greedy+Kernighan-Lin and tabu search on the
// final dependency graphs of the paper's workloads (instrumentation-
// weighted) and on synthetic clustered graphs, reporting cut weight,
// imbalance and solve time.
#include <cstdio>

#include "bench_util.h"
#include "common/clock.h"
#include "graph/partition.h"
#include "graph/tabu.h"
#include "workloads/kmeans.h"
#include "workloads/mjpeg_workload.h"
#include "workloads/mul2plus5.h"

using namespace p2g;

namespace {

graph::FinalGraph synthetic_clusters(int clusters, int per_cluster,
                                     uint32_t seed) {
  graph::FinalGraph g;
  const int n = clusters * per_cluster;
  for (int i = 0; i < n; ++i) {
    g.kernel_names.push_back("k" + std::to_string(i));
    g.node_weights.push_back(1.0 + (i * seed) % 5);
  }
  // Dense heavy edges inside clusters, light ring between them.
  for (int c = 0; c < clusters; ++c) {
    const int base = c * per_cluster;
    for (int i = 0; i < per_cluster; ++i) {
      for (int j = i + 1; j < per_cluster; ++j) {
        g.edges.push_back(
            graph::FinalGraph::Edge{base + i, base + j, 0, 0, 8.0});
      }
    }
    const int next = ((c + 1) % clusters) * per_cluster;
    g.edges.push_back(graph::FinalGraph::Edge{base, next, 0, 0, 1.0});
  }
  return g;
}

void evaluate(const char* label, const graph::FinalGraph& g, int parts) {
  std::printf("%s (%zu kernels, %zu edges, %d parts)\n", label,
              g.kernel_count(), g.edges.size(), parts);
  std::printf("  %-12s %10s %10s %10s\n", "method", "cut", "imbalance",
              "ms");

  {
    Stopwatch sw;
    const graph::Partition p = graph::greedy_partition(g, parts);
    std::printf("  %-12s %10.1f %10.3f %10.3f\n", "greedy",
                p.cut_weight(g), p.imbalance(g), sw.elapsed_ms());
  }
  {
    Stopwatch sw;
    const graph::Partition p = graph::partition_graph(g, parts);
    std::printf("  %-12s %10.1f %10.3f %10.3f\n", "greedy+KL",
                p.cut_weight(g), p.imbalance(g), sw.elapsed_ms());
  }
  {
    Stopwatch sw;
    const graph::Partition p = graph::tabu_partition(g, parts);
    std::printf("  %-12s %10.1f %10.3f %10.3f\n", "tabu",
                p.cut_weight(g), p.imbalance(g), sw.elapsed_ms());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation: HLS partitioners ===\n\n");

  {
    workloads::Mul2Plus5 workload;
    graph::FinalGraph g =
        graph::FinalGraph::from_program(workload.build());
    evaluate("mul2/plus5 final graph", g, 2);
  }
  {
    workloads::KmeansWorkload workload;
    graph::FinalGraph g =
        graph::FinalGraph::from_program(workload.build());
    // Weight like a profiled run: assign dominates.
    InstrumentationReport profile;
    for (const char* name : {"init", "assign", "refine", "print"}) {
      KernelStats stats;
      stats.name = name;
      stats.instances = std::string(name) == "assign" ? 2'000'000 : 1'000;
      stats.kernel_ns = stats.instances * 7'000;
      profile.kernels.push_back(stats);
    }
    g.apply_instrumentation(profile);
    evaluate("k-means final graph (profile weighted)", g, 2);
  }
  evaluate("synthetic 4x8 clusters", synthetic_clusters(4, 8, 3), 4);
  evaluate("synthetic 8x12 clusters", synthetic_clusters(8, 12, 7), 8);
  return 0;
}
