#include "nd/slice.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace p2g::nd {

std::vector<int> SliceSpec::vars() const {
  std::vector<int> out;
  for (const SliceDim& d : dims_) {
    if (d.kind == SliceDim::Kind::kVar &&
        std::find(out.begin(), out.end(), d.var) == out.end()) {
      out.push_back(d.var);
    }
  }
  return out;
}

std::optional<size_t> SliceSpec::dim_of_var(int var_id) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].kind == SliceDim::Kind::kVar && dims_[i].var == var_id) {
      return i;
    }
  }
  return std::nullopt;
}

bool SliceSpec::is_elementwise() const {
  if (whole_) return false;
  for (const SliceDim& d : dims_) {
    if (d.kind == SliceDim::Kind::kAll) return false;
  }
  return true;
}

Region SliceSpec::resolve(const Bindings& bindings,
                          const Extents& extents) const {
  if (whole_) return Region::whole(extents);
  check_argument(dims_.size() == extents.rank(),
                 "slice rank " + std::to_string(dims_.size()) +
                     " does not match field rank " +
                     std::to_string(extents.rank()));
  std::vector<Interval> out(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    switch (dims_[i].kind) {
      case SliceDim::Kind::kAll:
        out[i] = Interval{0, extents.dim(i)};
        break;
      case SliceDim::Kind::kConst:
        out[i] = Interval{dims_[i].value, dims_[i].value + 1};
        break;
      case SliceDim::Kind::kVar: {
        check_internal(dims_[i].var >= 0 &&
                           static_cast<size_t>(dims_[i].var) < bindings.size(),
                       "slice variable id out of range");
        const int64_t v = bindings[static_cast<size_t>(dims_[i].var)];
        check_internal(v != kUnbound, "unbound index variable in slice");
        out[i] = Interval{v, v + 1};
        break;
      }
    }
  }
  return Region(std::move(out));
}

std::optional<bool> SliceSpec::constrain(
    const Region& written, std::vector<Interval>& var_ranges) const {
  if (whole_) return true;  // whole-field slices constrain no variables
  if (written.rank() != dims_.size()) return std::nullopt;
  for (size_t i = 0; i < dims_.size(); ++i) {
    const Interval& w = written.interval(i);
    switch (dims_[i].kind) {
      case SliceDim::Kind::kAll:
        break;
      case SliceDim::Kind::kConst:
        if (!w.contains(dims_[i].value)) return std::nullopt;
        break;
      case SliceDim::Kind::kVar: {
        const auto var = static_cast<size_t>(dims_[i].var);
        check_internal(var < var_ranges.size(),
                       "constrain: variable id out of range");
        Interval& r = var_ranges[var];
        r = Interval{std::max(r.begin, w.begin), std::min(r.end, w.end)};
        if (r.empty()) return std::nullopt;
        break;
      }
    }
  }
  return true;
}

std::string SliceSpec::to_string() const {
  if (whole_) return "[*all*]";
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ",";
    switch (dims_[i].kind) {
      case SliceDim::Kind::kAll: os << ":"; break;
      case SliceDim::Kind::kConst: os << dims_[i].value; break;
      case SliceDim::Kind::kVar: os << "$" << dims_[i].var; break;
    }
  }
  os << "]";
  return os.str();
}

}  // namespace p2g::nd
