#include "nd/view.h"

#include <cstring>

#include "common/error.h"

namespace p2g::nd {

ConstView::ConstView(ElementType type, Extents extents, const std::byte* base,
                     std::shared_ptr<const void> keepalive)
    : type_(type),
      extents_(std::move(extents)),
      strides_(extents_.strides()),
      contiguous_(true),
      base_(base),
      keepalive_(std::move(keepalive)) {}

ConstView::ConstView(ElementType type, Extents extents,
                     std::vector<int64_t> strides, const std::byte* base,
                     std::shared_ptr<const void> keepalive)
    : type_(type),
      extents_(std::move(extents)),
      strides_(std::move(strides)),
      base_(base),
      keepalive_(std::move(keepalive)) {
  check_argument(strides_.size() == extents_.rank(),
                 "ConstView stride rank mismatch");
  contiguous_ = strides_ == extents_.strides() || element_count() <= 1;
}

const std::byte* ConstView::raw() const {
  check_internal(contiguous_,
                 "ConstView::raw() on a strided view; materialize() first");
  return base_;
}

const std::byte* ConstView::element_ptr(int64_t flat) const {
  if (contiguous_) {
    return base_ + static_cast<size_t>(flat) * element_size(type_);
  }
  const Coord coord = extents_.unflatten(flat);
  int64_t off = 0;
  for (size_t i = 0; i < coord.size(); ++i) off += coord[i] * strides_[i];
  return base_ + static_cast<size_t>(off) * element_size(type_);
}

double ConstView::get_as_double(int64_t flat) const {
  return load_as_double(type_, element_ptr(check_flat(flat)));
}

int64_t ConstView::get_as_int(int64_t flat) const {
  return load_as_int(type_, element_ptr(check_flat(flat)));
}

AnyBuffer ConstView::materialize() const {
  AnyBuffer out(type_, extents_);
  const size_t esz = element_size(type_);
  if (element_count() == 0) return out;
  if (contiguous_) {
    std::memcpy(out.raw(), base_,
                static_cast<size_t>(element_count()) * esz);
    return out;
  }
  // Strided copy, one innermost row at a time when the last dimension is
  // unit-strided; element by element otherwise.
  const size_t rank = extents_.rank();
  const int64_t row_len = rank > 0 ? extents_.dim(rank - 1) : 1;
  const bool dense_rows = rank > 0 && strides_[rank - 1] == 1;
  const int64_t rows = element_count() / (row_len > 0 ? row_len : 1);
  std::byte* dst = out.raw();
  for (int64_t row = 0; row < rows; ++row) {
    const int64_t flat = row * row_len;
    if (dense_rows) {
      std::memcpy(dst + static_cast<size_t>(flat) * esz, element_ptr(flat),
                  static_cast<size_t>(row_len) * esz);
    } else {
      for (int64_t i = 0; i < row_len; ++i) {
        std::memcpy(dst + static_cast<size_t>(flat + i) * esz,
                    element_ptr(flat + i), esz);
      }
    }
  }
  return out;
}

void ConstView::require_type(ElementType expected) const {
  if (type_ != expected) {
    throw_error(ErrorKind::kTypeMismatch,
                "view holds " + std::string(to_string(type_)) +
                    " but was accessed as " +
                    std::string(to_string(expected)));
  }
}

int64_t ConstView::check_flat(int64_t flat) const {
  if (flat < 0 || flat >= element_count()) {
    throw_error(ErrorKind::kOutOfRange,
                "flat index " + std::to_string(flat) + " outside " +
                    extents_.to_string());
  }
  return flat;
}

}  // namespace p2g::nd
