// Non-owning, read-only views of shaped element data.
//
// A ConstView is the zero-copy counterpart of AnyBuffer: element type,
// extents and per-dimension strides over memory owned by someone else. Field
// storage hands out views that alias sealed age buffers directly — safe
// because write-once semantics make a sealed allocation immutable — with a
// shared_ptr keepalive so the payload outlives release_age() as long as any
// view is held.
#pragma once

#include <memory>
#include <vector>

#include "nd/buffer.h"
#include "nd/extents.h"

namespace p2g::nd {

class ConstView {
 public:
  ConstView() = default;

  /// Dense row-major view over `base` (stride of the last dimension is 1).
  ConstView(ElementType type, Extents extents, const std::byte* base,
            std::shared_ptr<const void> keepalive);

  /// Strided view: `strides` are in elements of the underlying layout;
  /// `base` points at the view's (0, ..., 0) element.
  ConstView(ElementType type, Extents extents, std::vector<int64_t> strides,
            const std::byte* base, std::shared_ptr<const void> keepalive);

  ElementType type() const { return type_; }
  const Extents& extents() const { return extents_; }
  int64_t element_count() const { return extents_.element_count(); }
  const std::vector<int64_t>& strides() const { return strides_; }

  /// True when the elements form one dense row-major run from raw().
  bool is_contiguous() const { return contiguous_; }

  /// Base pointer of a contiguous view; throws kInternal on strided views
  /// (use materialize() or the element accessors there).
  const std::byte* raw() const;

  /// Typed pointer to a contiguous view; throws kTypeMismatch on wrong T.
  template <typename T>
  const T* data() const {
    require_type(element_type_of<T>());
    return reinterpret_cast<const T*>(raw());
  }

  /// Element at a coordinate (stride-aware).
  template <typename T>
  T at(const Coord& coord) const {
    require_type(element_type_of<T>());
    return *reinterpret_cast<const T*>(element_ptr(extents_.flatten(coord)));
  }

  /// Element at a logical row-major position (stride-aware).
  template <typename T>
  T at_flat(int64_t flat) const {
    require_type(element_type_of<T>());
    return *reinterpret_cast<const T*>(element_ptr(check_flat(flat)));
  }

  /// Generic scalar accessors (used by the language interpreter and
  /// generated code); `flat` is the logical row-major position.
  double get_as_double(int64_t flat) const;
  int64_t get_as_int(int64_t flat) const;

  /// Packed copy of the viewed elements (row-major of the view's extents).
  AnyBuffer materialize() const;

  /// The ownership token keeping the underlying memory alive (may be null
  /// for views over caller-managed storage).
  const std::shared_ptr<const void>& keepalive() const { return keepalive_; }

 private:
  void require_type(ElementType expected) const;
  int64_t check_flat(int64_t flat) const;
  /// Byte address of the element at logical row-major position `flat`.
  const std::byte* element_ptr(int64_t flat) const;

  ElementType type_ = ElementType::kInt32;
  Extents extents_;
  std::vector<int64_t> strides_;
  bool contiguous_ = true;
  const std::byte* base_ = nullptr;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace p2g::nd
