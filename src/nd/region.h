// Rectangular sub-regions of a multi-dimensional array.
//
// A Region is a half-open box: per dimension an interval [begin, end).
// Fetch and store statements resolve to regions; the dependency analyzer
// intersects store regions with fetch regions to find newly runnable kernel
// instances.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "nd/extents.h"

namespace p2g::nd {

/// Half-open interval of indices along one dimension.
struct Interval {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive

  int64_t length() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool contains(int64_t x) const { return x >= begin && x < end; }
  bool operator==(const Interval&) const = default;
};

/// Axis-aligned box of element coordinates.
class Region {
 public:
  Region() = default;
  explicit Region(std::vector<Interval> intervals);

  /// Region covering all of `extents`.
  static Region whole(const Extents& extents);

  /// Region containing exactly one coordinate.
  static Region point(const Coord& coord);

  size_t rank() const { return intervals_.size(); }
  const Interval& interval(size_t i) const;
  const std::vector<Interval>& intervals() const { return intervals_; }

  int64_t element_count() const;
  bool empty() const;

  bool contains(const Coord& coord) const;

  /// Box intersection; empty result has at least one empty interval.
  Region intersect(const Region& other) const;

  /// Smallest box covering both regions.
  Region bounding_union(const Region& other) const;

  /// True when this region fits inside `extents`.
  bool within(const Extents& extents) const;

  /// Minimal extents that can hold this region (per-dim `end`).
  Extents required_extents() const;

  /// Invokes `fn` for every coordinate in row-major order.
  void for_each(const std::function<void(const Coord&)>& fn) const;

  /// First coordinate (lowest in every dimension). Region must be non-empty.
  Coord first() const;

  /// When the region maps to one contiguous run of row-major flat indices
  /// within `extents`, returns {first flat offset, element count}. This is
  /// the case when every dimension after the first non-singleton one
  /// covers its full extent (whole fields, rows, 8x8 blocks stored as a
  /// trailing dimension, single elements).
  struct Span {
    int64_t offset;
    int64_t length;
  };
  std::optional<Span> contiguous_span(const Extents& extents) const;

  bool operator==(const Region&) const = default;

  std::string to_string() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace p2g::nd
