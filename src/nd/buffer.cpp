#include "nd/buffer.h"

#include <atomic>
#include <cstring>
#include <string>

namespace p2g::nd {

namespace {
std::atomic<int64_t> g_payload_allocs{0};

void count_alloc(size_t bytes) {
  if (bytes > 0) g_payload_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

int64_t buffer_alloc_count() {
  return g_payload_allocs.load(std::memory_order_relaxed);
}

size_t element_size(ElementType type) {
  switch (type) {
    case ElementType::kInt8:
    case ElementType::kUInt8: return 1;
    case ElementType::kInt16: return 2;
    case ElementType::kInt32:
    case ElementType::kFloat32: return 4;
    case ElementType::kInt64:
    case ElementType::kFloat64: return 8;
  }
  return 0;
}

std::string_view to_string(ElementType type) {
  switch (type) {
    case ElementType::kInt8: return "int8";
    case ElementType::kUInt8: return "uint8";
    case ElementType::kInt16: return "int16";
    case ElementType::kInt32: return "int32";
    case ElementType::kInt64: return "int64";
    case ElementType::kFloat32: return "float32";
    case ElementType::kFloat64: return "float64";
  }
  return "?";
}

ElementType parse_element_type(std::string_view name) {
  if (name == "int8") return ElementType::kInt8;
  if (name == "uint8") return ElementType::kUInt8;
  if (name == "int16") return ElementType::kInt16;
  if (name == "int32") return ElementType::kInt32;
  if (name == "int64") return ElementType::kInt64;
  if (name == "float32" || name == "float") return ElementType::kFloat32;
  if (name == "float64" || name == "double") return ElementType::kFloat64;
  throw_error(ErrorKind::kParse,
              "unknown element type '" + std::string(name) + "'");
}

AnyBuffer::AnyBuffer(ElementType type, Extents extents)
    : type_(type), extents_(std::move(extents)) {
  bytes_.resize(static_cast<size_t>(extents_.element_count()) *
                element_size(type_));
  count_alloc(bytes_.size());
}

AnyBuffer::AnyBuffer(const AnyBuffer& other)
    : type_(other.type_), extents_(other.extents_), bytes_(other.bytes_) {
  count_alloc(bytes_.size());
}

AnyBuffer& AnyBuffer::operator=(const AnyBuffer& other) {
  if (this != &other) {
    type_ = other.type_;
    extents_ = other.extents_;
    bytes_ = other.bytes_;
    count_alloc(bytes_.size());
  }
  return *this;
}

void AnyBuffer::resize(const Extents& new_extents) {
  check_argument(new_extents.rank() == extents_.rank(),
                 "AnyBuffer::resize cannot change rank");
  check_argument(extents_.fits_in(new_extents),
                 "AnyBuffer::resize dimensions may only grow (" +
                     extents_.to_string() + " -> " + new_extents.to_string() +
                     ")");
  if (new_extents == extents_) return;

  const size_t esz = element_size(type_);
  std::vector<std::byte> fresh(
      static_cast<size_t>(new_extents.element_count()) * esz);
  count_alloc(fresh.size());

  if (extents_.element_count() > 0) {
    // Copy row by row: iterate over all coordinates of the old extents with
    // the innermost dimension handled as one contiguous run.
    const size_t rank = extents_.rank();
    if (rank == 0) {
      std::memcpy(fresh.data(), bytes_.data(), esz);
    } else {
      const int64_t row_len = extents_.dim(rank - 1);
      const auto old_strides = extents_.strides();
      const auto new_strides = new_extents.strides();
      Coord coord(rank, 0);
      bool done = extents_.element_count() == 0;
      while (!done) {
        int64_t old_off = 0;
        int64_t new_off = 0;
        for (size_t i = 0; i < rank; ++i) {
          old_off += coord[i] * old_strides[i];
          new_off += coord[i] * new_strides[i];
        }
        std::memcpy(fresh.data() + static_cast<size_t>(new_off) * esz,
                    bytes_.data() + static_cast<size_t>(old_off) * esz,
                    static_cast<size_t>(row_len) * esz);
        // Advance all dimensions except the innermost (whole rows copied).
        if (rank == 1) break;
        size_t dim = rank - 1;
        while (dim-- > 0) {
          if (++coord[dim] < extents_.dim(dim)) break;
          coord[dim] = 0;
          if (dim == 0) {
            done = true;
            break;
          }
        }
      }
    }
  }
  bytes_ = std::move(fresh);
  extents_ = new_extents;
}

double load_as_double(ElementType type, const std::byte* p) {
  switch (type) {
    case ElementType::kInt8: return *reinterpret_cast<const int8_t*>(p);
    case ElementType::kUInt8: return *reinterpret_cast<const uint8_t*>(p);
    case ElementType::kInt16: return *reinterpret_cast<const int16_t*>(p);
    case ElementType::kInt32: return *reinterpret_cast<const int32_t*>(p);
    case ElementType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(p));
    case ElementType::kFloat32: return *reinterpret_cast<const float*>(p);
    case ElementType::kFloat64: return *reinterpret_cast<const double*>(p);
  }
  return 0.0;
}

int64_t load_as_int(ElementType type, const std::byte* p) {
  switch (type) {
    case ElementType::kInt8: return *reinterpret_cast<const int8_t*>(p);
    case ElementType::kUInt8: return *reinterpret_cast<const uint8_t*>(p);
    case ElementType::kInt16: return *reinterpret_cast<const int16_t*>(p);
    case ElementType::kInt32: return *reinterpret_cast<const int32_t*>(p);
    case ElementType::kInt64: return *reinterpret_cast<const int64_t*>(p);
    case ElementType::kFloat32:
      return static_cast<int64_t>(*reinterpret_cast<const float*>(p));
    case ElementType::kFloat64:
      return static_cast<int64_t>(*reinterpret_cast<const double*>(p));
  }
  return 0;
}

double AnyBuffer::get_as_double(int64_t flat) const {
  const int64_t i = check_flat(flat);
  return load_as_double(type_,
                        bytes_.data() + static_cast<size_t>(i) *
                                            element_size(type_));
}

int64_t AnyBuffer::get_as_int(int64_t flat) const {
  const int64_t i = check_flat(flat);
  return load_as_int(type_, bytes_.data() + static_cast<size_t>(i) *
                                                element_size(type_));
}

void AnyBuffer::set_from_double(int64_t flat, double value) {
  const int64_t i = check_flat(flat);
  switch (type_) {
    case ElementType::kInt8: reinterpret_cast<int8_t*>(bytes_.data())[i] = static_cast<int8_t>(value); break;
    case ElementType::kUInt8: reinterpret_cast<uint8_t*>(bytes_.data())[i] = static_cast<uint8_t>(value); break;
    case ElementType::kInt16: reinterpret_cast<int16_t*>(bytes_.data())[i] = static_cast<int16_t>(value); break;
    case ElementType::kInt32: reinterpret_cast<int32_t*>(bytes_.data())[i] = static_cast<int32_t>(value); break;
    case ElementType::kInt64: reinterpret_cast<int64_t*>(bytes_.data())[i] = static_cast<int64_t>(value); break;
    case ElementType::kFloat32: reinterpret_cast<float*>(bytes_.data())[i] = static_cast<float>(value); break;
    case ElementType::kFloat64: reinterpret_cast<double*>(bytes_.data())[i] = value; break;
  }
}

void AnyBuffer::set_from_int(int64_t flat, int64_t value) {
  const int64_t i = check_flat(flat);
  switch (type_) {
    case ElementType::kInt8: reinterpret_cast<int8_t*>(bytes_.data())[i] = static_cast<int8_t>(value); break;
    case ElementType::kUInt8: reinterpret_cast<uint8_t*>(bytes_.data())[i] = static_cast<uint8_t>(value); break;
    case ElementType::kInt16: reinterpret_cast<int16_t*>(bytes_.data())[i] = static_cast<int16_t>(value); break;
    case ElementType::kInt32: reinterpret_cast<int32_t*>(bytes_.data())[i] = static_cast<int32_t>(value); break;
    case ElementType::kInt64: reinterpret_cast<int64_t*>(bytes_.data())[i] = value; break;
    case ElementType::kFloat32: reinterpret_cast<float*>(bytes_.data())[i] = static_cast<float>(value); break;
    case ElementType::kFloat64: reinterpret_cast<double*>(bytes_.data())[i] = static_cast<double>(value); break;
  }
}

void AnyBuffer::scatter(const Region& region, const std::byte* src) {
  check_argument(region.within(extents_),
                 "scatter region " + region.to_string() +
                     " outside extents " + extents_.to_string());
  const size_t esz = element_size(type_);
  if (const auto span = region.contiguous_span(extents_)) {
    std::memcpy(bytes_.data() + static_cast<size_t>(span->offset) * esz, src,
                static_cast<size_t>(span->length) * esz);
    return;
  }
  size_t src_index = 0;
  region.for_each([&](const Coord& coord) {
    const int64_t off = extents_.flatten(coord);
    std::memcpy(bytes_.data() + static_cast<size_t>(off) * esz,
                src + src_index * esz, esz);
    ++src_index;
  });
}

void AnyBuffer::gather(const Region& region, std::byte* dst) const {
  check_argument(region.within(extents_),
                 "gather region " + region.to_string() + " outside extents " +
                     extents_.to_string());
  const size_t esz = element_size(type_);
  if (const auto span = region.contiguous_span(extents_)) {
    std::memcpy(dst, bytes_.data() + static_cast<size_t>(span->offset) * esz,
                static_cast<size_t>(span->length) * esz);
    return;
  }
  size_t dst_index = 0;
  region.for_each([&](const Coord& coord) {
    const int64_t off = extents_.flatten(coord);
    std::memcpy(dst + dst_index * esz,
                bytes_.data() + static_cast<size_t>(off) * esz, esz);
    ++dst_index;
  });
}

void AnyBuffer::require_type(ElementType expected) const {
  if (type_ != expected) {
    throw_error(ErrorKind::kTypeMismatch,
                "buffer holds " + std::string(to_string(type_)) +
                    " but was accessed as " + std::string(to_string(expected)));
  }
}

int64_t AnyBuffer::check_flat(int64_t flat) const {
  if (flat < 0 || flat >= extents_.element_count()) {
    throw_error(ErrorKind::kOutOfRange,
                "flat index " + std::to_string(flat) + " outside " +
                    extents_.to_string());
  }
  return flat;
}

}  // namespace p2g::nd
