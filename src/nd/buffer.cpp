#include "nd/buffer.h"

#include <atomic>
#include <cstring>
#include <string>

namespace p2g::nd {

namespace {
std::atomic<int64_t> g_payload_allocs{0};

void count_alloc(size_t bytes) {
  if (bytes > 0) g_payload_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

int64_t buffer_alloc_count() {
  return g_payload_allocs.load(std::memory_order_relaxed);
}

size_t element_size(ElementType type) {
  switch (type) {
    case ElementType::kInt8:
    case ElementType::kUInt8: return 1;
    case ElementType::kInt16: return 2;
    case ElementType::kInt32:
    case ElementType::kFloat32: return 4;
    case ElementType::kInt64:
    case ElementType::kFloat64: return 8;
  }
  return 0;
}

std::string_view to_string(ElementType type) {
  switch (type) {
    case ElementType::kInt8: return "int8";
    case ElementType::kUInt8: return "uint8";
    case ElementType::kInt16: return "int16";
    case ElementType::kInt32: return "int32";
    case ElementType::kInt64: return "int64";
    case ElementType::kFloat32: return "float32";
    case ElementType::kFloat64: return "float64";
  }
  return "?";
}

ElementType parse_element_type(std::string_view name) {
  if (name == "int8") return ElementType::kInt8;
  if (name == "uint8") return ElementType::kUInt8;
  if (name == "int16") return ElementType::kInt16;
  if (name == "int32") return ElementType::kInt32;
  if (name == "int64") return ElementType::kInt64;
  if (name == "float32" || name == "float") return ElementType::kFloat32;
  if (name == "float64" || name == "double") return ElementType::kFloat64;
  throw_error(ErrorKind::kParse,
              "unknown element type '" + std::string(name) + "'");
}

AnyBuffer::AnyBuffer(ElementType type, Extents extents)
    : type_(type), extents_(std::move(extents)) {
  bytes_.resize(static_cast<size_t>(extents_.element_count()) *
                element_size(type_));
  count_alloc(bytes_.size());
}

AnyBuffer AnyBuffer::with_allocator(ElementType type, Extents extents,
                                    Alloc alloc) {
  AnyBuffer buffer;
  buffer.type_ = type;
  buffer.extents_ = std::move(extents);
  buffer.alloc_ = std::move(alloc);
  const size_t nbytes =
      static_cast<size_t>(buffer.extents_.element_count()) *
      element_size(type);
  if (nbytes > 0 && buffer.alloc_) {
    if (std::byte* block = buffer.alloc_(nbytes)) {
      std::memset(block, 0, nbytes);
      buffer.ext_ = block;
      buffer.ext_writable_ = true;
      count_alloc(nbytes);
      return buffer;
    }
  }
  // Arena exhausted (or empty shape): plain owned storage.
  buffer.bytes_.resize(nbytes);
  count_alloc(nbytes);
  return buffer;
}

AnyBuffer AnyBuffer::alias(ElementType type, Extents extents,
                           const std::byte* base,
                           std::shared_ptr<const void> keepalive) {
  AnyBuffer buffer;
  buffer.type_ = type;
  buffer.extents_ = std::move(extents);
  // The alias is read-only: ext_writable_ stays false, and mutable_base()
  // copies on first write. The const_cast is never written through.
  buffer.ext_ = const_cast<std::byte*>(base);
  buffer.keepalive_ = std::move(keepalive);
  return buffer;
}

AnyBuffer::AnyBuffer(const AnyBuffer& other)
    : type_(other.type_), extents_(other.extents_) {
  const size_t nbytes = static_cast<size_t>(extents_.element_count()) *
                        element_size(type_);
  bytes_.assign(other.base(), other.base() + nbytes);
  count_alloc(nbytes);
}

AnyBuffer& AnyBuffer::operator=(const AnyBuffer& other) {
  if (this != &other) {
    type_ = other.type_;
    extents_ = other.extents_;
    const size_t nbytes = static_cast<size_t>(extents_.element_count()) *
                          element_size(type_);
    bytes_.assign(other.base(), other.base() + nbytes);
    ext_ = nullptr;
    ext_writable_ = false;
    keepalive_.reset();
    alloc_ = nullptr;
    count_alloc(nbytes);
  }
  return *this;
}

std::byte* AnyBuffer::mutable_base() {
  if (ext_ != nullptr && !ext_writable_) materialize_owned();
  return ext_ != nullptr ? ext_ : bytes_.data();
}

void AnyBuffer::materialize_owned() {
  const size_t nbytes = static_cast<size_t>(extents_.element_count()) *
                        element_size(type_);
  bytes_.assign(ext_, ext_ + nbytes);
  ext_ = nullptr;
  ext_writable_ = false;
  keepalive_.reset();
  count_alloc(nbytes);
}

void AnyBuffer::resize(const Extents& new_extents) {
  check_argument(new_extents.rank() == extents_.rank(),
                 "AnyBuffer::resize cannot change rank");
  check_argument(extents_.fits_in(new_extents),
                 "AnyBuffer::resize dimensions may only grow (" +
                     extents_.to_string() + " -> " + new_extents.to_string() +
                     ")");
  if (new_extents == extents_) return;

  const size_t esz = element_size(type_);
  const size_t new_bytes =
      static_cast<size_t>(new_extents.element_count()) * esz;

  // Destination storage: a fresh arena block when this buffer carries an
  // allocator that still has room, owned heap memory otherwise. Old arena
  // blocks are never reclaimed (bump semantics) — descriptors already
  // shipped to a peer keep reading stable bytes.
  std::vector<std::byte> fresh_vec;
  std::byte* dst = nullptr;
  bool dst_external = false;
  if (alloc_) {
    if (std::byte* block = alloc_(new_bytes)) {
      std::memset(block, 0, new_bytes);
      dst = block;
      dst_external = true;
    }
  }
  if (dst == nullptr) {
    fresh_vec.resize(new_bytes);
    dst = fresh_vec.data();
  }
  count_alloc(new_bytes);

  if (extents_.element_count() > 0) {
    // Copy row by row: iterate over all coordinates of the old extents with
    // the innermost dimension handled as one contiguous run.
    const std::byte* src = base();
    const size_t rank = extents_.rank();
    if (rank == 0) {
      std::memcpy(dst, src, esz);
    } else {
      const int64_t row_len = extents_.dim(rank - 1);
      const auto old_strides = extents_.strides();
      const auto new_strides = new_extents.strides();
      Coord coord(rank, 0);
      bool done = extents_.element_count() == 0;
      while (!done) {
        int64_t old_off = 0;
        int64_t new_off = 0;
        for (size_t i = 0; i < rank; ++i) {
          old_off += coord[i] * old_strides[i];
          new_off += coord[i] * new_strides[i];
        }
        std::memcpy(dst + static_cast<size_t>(new_off) * esz,
                    src + static_cast<size_t>(old_off) * esz,
                    static_cast<size_t>(row_len) * esz);
        // Advance all dimensions except the innermost (whole rows copied).
        if (rank == 1) break;
        size_t dim = rank - 1;
        while (dim-- > 0) {
          if (++coord[dim] < extents_.dim(dim)) break;
          coord[dim] = 0;
          if (dim == 0) {
            done = true;
            break;
          }
        }
      }
    }
  }
  if (dst_external) {
    ext_ = dst;
    ext_writable_ = true;
    bytes_.clear();
  } else {
    bytes_ = std::move(fresh_vec);
    ext_ = nullptr;
    ext_writable_ = false;
  }
  keepalive_.reset();
  extents_ = new_extents;
}

double load_as_double(ElementType type, const std::byte* p) {
  switch (type) {
    case ElementType::kInt8: return *reinterpret_cast<const int8_t*>(p);
    case ElementType::kUInt8: return *reinterpret_cast<const uint8_t*>(p);
    case ElementType::kInt16: return *reinterpret_cast<const int16_t*>(p);
    case ElementType::kInt32: return *reinterpret_cast<const int32_t*>(p);
    case ElementType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(p));
    case ElementType::kFloat32: return *reinterpret_cast<const float*>(p);
    case ElementType::kFloat64: return *reinterpret_cast<const double*>(p);
  }
  return 0.0;
}

int64_t load_as_int(ElementType type, const std::byte* p) {
  switch (type) {
    case ElementType::kInt8: return *reinterpret_cast<const int8_t*>(p);
    case ElementType::kUInt8: return *reinterpret_cast<const uint8_t*>(p);
    case ElementType::kInt16: return *reinterpret_cast<const int16_t*>(p);
    case ElementType::kInt32: return *reinterpret_cast<const int32_t*>(p);
    case ElementType::kInt64: return *reinterpret_cast<const int64_t*>(p);
    case ElementType::kFloat32:
      return static_cast<int64_t>(*reinterpret_cast<const float*>(p));
    case ElementType::kFloat64:
      return static_cast<int64_t>(*reinterpret_cast<const double*>(p));
  }
  return 0;
}

double AnyBuffer::get_as_double(int64_t flat) const {
  const int64_t i = check_flat(flat);
  return load_as_double(type_,
                        base() + static_cast<size_t>(i) *
                                            element_size(type_));
}

int64_t AnyBuffer::get_as_int(int64_t flat) const {
  const int64_t i = check_flat(flat);
  return load_as_int(type_, base() + static_cast<size_t>(i) *
                                                element_size(type_));
}

void AnyBuffer::set_from_double(int64_t flat, double value) {
  const int64_t i = check_flat(flat);
  std::byte* const mb = mutable_base();
  switch (type_) {
    case ElementType::kInt8: reinterpret_cast<int8_t*>(mb)[i] = static_cast<int8_t>(value); break;
    case ElementType::kUInt8: reinterpret_cast<uint8_t*>(mb)[i] = static_cast<uint8_t>(value); break;
    case ElementType::kInt16: reinterpret_cast<int16_t*>(mb)[i] = static_cast<int16_t>(value); break;
    case ElementType::kInt32: reinterpret_cast<int32_t*>(mb)[i] = static_cast<int32_t>(value); break;
    case ElementType::kInt64: reinterpret_cast<int64_t*>(mb)[i] = static_cast<int64_t>(value); break;
    case ElementType::kFloat32: reinterpret_cast<float*>(mb)[i] = static_cast<float>(value); break;
    case ElementType::kFloat64: reinterpret_cast<double*>(mb)[i] = value; break;
  }
}

void AnyBuffer::set_from_int(int64_t flat, int64_t value) {
  const int64_t i = check_flat(flat);
  std::byte* const mb = mutable_base();
  switch (type_) {
    case ElementType::kInt8: reinterpret_cast<int8_t*>(mb)[i] = static_cast<int8_t>(value); break;
    case ElementType::kUInt8: reinterpret_cast<uint8_t*>(mb)[i] = static_cast<uint8_t>(value); break;
    case ElementType::kInt16: reinterpret_cast<int16_t*>(mb)[i] = static_cast<int16_t>(value); break;
    case ElementType::kInt32: reinterpret_cast<int32_t*>(mb)[i] = static_cast<int32_t>(value); break;
    case ElementType::kInt64: reinterpret_cast<int64_t*>(mb)[i] = value; break;
    case ElementType::kFloat32: reinterpret_cast<float*>(mb)[i] = static_cast<float>(value); break;
    case ElementType::kFloat64: reinterpret_cast<double*>(mb)[i] = static_cast<double>(value); break;
  }
}

void AnyBuffer::scatter(const Region& region, const std::byte* src) {
  check_argument(region.within(extents_),
                 "scatter region " + region.to_string() +
                     " outside extents " + extents_.to_string());
  const size_t esz = element_size(type_);
  std::byte* const mb = mutable_base();
  if (const auto span = region.contiguous_span(extents_)) {
    std::memcpy(mb + static_cast<size_t>(span->offset) * esz, src,
                static_cast<size_t>(span->length) * esz);
    return;
  }
  size_t src_index = 0;
  region.for_each([&](const Coord& coord) {
    const int64_t off = extents_.flatten(coord);
    std::memcpy(mb + static_cast<size_t>(off) * esz,
                src + src_index * esz, esz);
    ++src_index;
  });
}

void AnyBuffer::gather(const Region& region, std::byte* dst) const {
  check_argument(region.within(extents_),
                 "gather region " + region.to_string() + " outside extents " +
                     extents_.to_string());
  const size_t esz = element_size(type_);
  if (const auto span = region.contiguous_span(extents_)) {
    std::memcpy(dst, base() + static_cast<size_t>(span->offset) * esz,
                static_cast<size_t>(span->length) * esz);
    return;
  }
  size_t dst_index = 0;
  region.for_each([&](const Coord& coord) {
    const int64_t off = extents_.flatten(coord);
    std::memcpy(dst + dst_index * esz,
                base() + static_cast<size_t>(off) * esz, esz);
    ++dst_index;
  });
}

void AnyBuffer::require_type(ElementType expected) const {
  if (type_ != expected) {
    throw_error(ErrorKind::kTypeMismatch,
                "buffer holds " + std::string(to_string(type_)) +
                    " but was accessed as " + std::string(to_string(expected)));
  }
}

int64_t AnyBuffer::check_flat(int64_t flat) const {
  if (flat < 0 || flat >= extents_.element_count()) {
    throw_error(ErrorKind::kOutOfRange,
                "flat index " + std::to_string(flat) + " outside " +
                    extents_.to_string());
  }
  return flat;
}

}  // namespace p2g::nd
