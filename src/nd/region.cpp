#include "nd/region.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace p2g::nd {

Region::Region(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {}

Region Region::whole(const Extents& extents) {
  std::vector<Interval> out(extents.rank());
  for (size_t i = 0; i < extents.rank(); ++i) {
    out[i] = Interval{0, extents.dim(i)};
  }
  return Region(std::move(out));
}

Region Region::point(const Coord& coord) {
  std::vector<Interval> out(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) {
    out[i] = Interval{coord[i], coord[i] + 1};
  }
  return Region(std::move(out));
}

const Interval& Region::interval(size_t i) const {
  check_internal(i < intervals_.size(), "Region::interval out of range");
  return intervals_[i];
}

int64_t Region::element_count() const {
  int64_t count = 1;
  for (const Interval& iv : intervals_) {
    count *= std::max<int64_t>(0, iv.length());
  }
  return count;
}

bool Region::empty() const { return element_count() == 0; }

bool Region::contains(const Coord& coord) const {
  if (coord.size() != intervals_.size()) return false;
  for (size_t i = 0; i < coord.size(); ++i) {
    if (!intervals_[i].contains(coord[i])) return false;
  }
  return true;
}

Region Region::intersect(const Region& other) const {
  check_argument(rank() == other.rank(), "Region::intersect rank mismatch");
  std::vector<Interval> out(rank());
  for (size_t i = 0; i < rank(); ++i) {
    out[i] = Interval{std::max(intervals_[i].begin, other.intervals_[i].begin),
                      std::min(intervals_[i].end, other.intervals_[i].end)};
  }
  return Region(std::move(out));
}

Region Region::bounding_union(const Region& other) const {
  check_argument(rank() == other.rank(),
                 "Region::bounding_union rank mismatch");
  if (empty()) return other;
  if (other.empty()) return *this;
  std::vector<Interval> out(rank());
  for (size_t i = 0; i < rank(); ++i) {
    out[i] = Interval{std::min(intervals_[i].begin, other.intervals_[i].begin),
                      std::max(intervals_[i].end, other.intervals_[i].end)};
  }
  return Region(std::move(out));
}

bool Region::within(const Extents& extents) const {
  if (rank() != extents.rank()) return false;
  for (size_t i = 0; i < rank(); ++i) {
    if (intervals_[i].begin < 0 || intervals_[i].end > extents.dim(i)) {
      return false;
    }
  }
  return true;
}

Extents Region::required_extents() const {
  std::vector<int64_t> dims(rank());
  for (size_t i = 0; i < rank(); ++i) {
    dims[i] = std::max<int64_t>(0, intervals_[i].end);
  }
  return Extents(std::move(dims));
}

void Region::for_each(const std::function<void(const Coord&)>& fn) const {
  if (empty()) return;
  Coord coord(rank());
  for (size_t i = 0; i < rank(); ++i) coord[i] = intervals_[i].begin;
  while (true) {
    fn(coord);
    // Row-major increment: bump the last dimension, carry leftwards.
    size_t dim = rank();
    while (dim-- > 0) {
      if (++coord[dim] < intervals_[dim].end) break;
      coord[dim] = intervals_[dim].begin;
      if (dim == 0) return;
    }
    if (rank() == 0) return;  // rank-0 region has exactly one (empty) coord
  }
}

std::optional<Region::Span> Region::contiguous_span(
    const Extents& extents) const {
  if (!within(extents) || empty()) return std::nullopt;
  // Find the first dimension with more than one index; all later
  // dimensions must cover their full extent.
  size_t split = rank();
  for (size_t d = 0; d < rank(); ++d) {
    if (intervals_[d].length() > 1) {
      split = d;
      break;
    }
  }
  for (size_t d = split + 1; d < rank(); ++d) {
    if (intervals_[d].begin != 0 || intervals_[d].end != extents.dim(d)) {
      return std::nullopt;
    }
  }
  return Span{extents.flatten(first()), element_count()};
}

Coord Region::first() const {
  check_internal(!empty(), "Region::first on empty region");
  Coord coord(rank());
  for (size_t i = 0; i < rank(); ++i) coord[i] = intervals_[i].begin;
  return coord;
}

std::string Region::to_string() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "[" << intervals_[i].begin << "," << intervals_[i].end << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace p2g::nd
