#include "nd/extents.h"

#include <sstream>

#include "common/error.h"

namespace p2g::nd {

Extents::Extents(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) {
    check_argument(d >= 0, "extent dimensions must be non-negative");
  }
}

Extents::Extents(std::initializer_list<int64_t> dims)
    : Extents(std::vector<int64_t>(dims)) {}

int64_t Extents::dim(size_t i) const {
  check_internal(i < dims_.size(), "Extents::dim index out of range");
  return dims_[i];
}

int64_t Extents::element_count() const {
  int64_t count = 1;
  for (int64_t d : dims_) count *= d;
  return count;
}

std::vector<int64_t> Extents::strides() const {
  std::vector<int64_t> out(dims_.size(), 1);
  for (size_t i = dims_.size(); i-- > 1;) {
    out[i - 1] = out[i] * dims_[i];
  }
  return out;
}

int64_t Extents::flatten(const Coord& coord) const {
  if (!contains(coord)) {
    throw_error(ErrorKind::kOutOfRange,
                "coordinate " + nd::to_string(coord) +
                    " outside extents " + to_string());
  }
  int64_t offset = 0;
  int64_t stride = 1;
  for (size_t i = dims_.size(); i-- > 0;) {
    offset += coord[i] * stride;
    stride *= dims_[i];
  }
  return offset;
}

Coord Extents::unflatten(int64_t offset) const {
  check_argument(offset >= 0 && offset < element_count(),
                 "flat offset outside extents");
  Coord coord(dims_.size(), 0);
  for (size_t i = dims_.size(); i-- > 0;) {
    coord[i] = offset % dims_[i];
    offset /= dims_[i];
  }
  return coord;
}

bool Extents::contains(const Coord& coord) const {
  if (coord.size() != dims_.size()) return false;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (coord[i] < 0 || coord[i] >= dims_[i]) return false;
  }
  return true;
}

Extents Extents::max_with(const Extents& other) const {
  check_argument(rank() == other.rank(),
                 "Extents::max_with rank mismatch: " + to_string() + " vs " +
                     other.to_string());
  std::vector<int64_t> dims(rank());
  for (size_t i = 0; i < rank(); ++i) {
    dims[i] = std::max(dims_[i], other.dims_[i]);
  }
  return Extents(std::move(dims));
}

bool Extents::fits_in(const Extents& other) const {
  if (rank() != other.rank()) return false;
  for (size_t i = 0; i < rank(); ++i) {
    if (dims_[i] > other.dims_[i]) return false;
  }
  return true;
}

std::string Extents::to_string() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << "x";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

std::string to_string(const Coord& coord) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < coord.size(); ++i) {
    if (i > 0) os << ",";
    os << coord[i];
  }
  os << ")";
  return os.str();
}

}  // namespace p2g::nd
