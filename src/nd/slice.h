// Slice specifications: how a fetch/store statement addresses a field.
//
// In the kernel language, `fetch value = m_data(a)[x]` fetches the slice
// `[x]` of field m_data at age `a`. A SliceSpec captures the `[...]` part:
// per dimension either an index variable, a constant, or "all". A whole-
// field access (`fetch m = m_data(a)`) is a whole slice.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nd/extents.h"
#include "nd/region.h"

namespace p2g::nd {

/// Addressing of one dimension in a slice.
struct SliceDim {
  enum class Kind { kAll, kVar, kConst };

  Kind kind = Kind::kAll;
  int var = -1;       ///< index-variable id for kVar
  int64_t value = 0;  ///< constant index for kConst

  static SliceDim all() { return SliceDim{Kind::kAll, -1, 0}; }
  static SliceDim variable(int var_id) {
    return SliceDim{Kind::kVar, var_id, 0};
  }
  static SliceDim constant(int64_t v) {
    return SliceDim{Kind::kConst, -1, v};
  }

  bool operator==(const SliceDim&) const = default;
};

/// Variable bindings: var id -> bound index value (-1 = unbound).
using Bindings = std::vector<int64_t>;
constexpr int64_t kUnbound = -1;

/// The `[...]` part of a fetch/store statement.
///
/// A whole-slice (is_whole() == true) addresses the entire field regardless
/// of rank; otherwise the spec has exactly one SliceDim per field dimension.
class SliceSpec {
 public:
  /// Whole-field slice.
  SliceSpec() = default;

  explicit SliceSpec(std::vector<SliceDim> dims)
      : dims_(std::move(dims)), whole_(false) {}

  static SliceSpec whole() { return SliceSpec(); }

  bool is_whole() const { return whole_; }
  size_t rank() const { return dims_.size(); }
  const std::vector<SliceDim>& dims() const { return dims_; }

  /// All index-variable ids referenced by this slice (no duplicates).
  std::vector<int> vars() const;

  /// Dimension at which `var_id` appears first, or nullopt.
  std::optional<size_t> dim_of_var(int var_id) const;

  /// True when every dimension is a variable or constant (element slice).
  bool is_elementwise() const;

  /// Resolves to a concrete region given variable bindings and the field's
  /// extents (used for kAll dimensions). All kVar dims must be bound.
  Region resolve(const Bindings& bindings, const Extents& extents) const;

  /// Given a region of the field that was just written, computes for each
  /// index variable the interval of values consistent with the write.
  /// Returns nullopt when the write cannot satisfy this slice at all (a
  /// constant dimension misses the region). Variables not used by this
  /// slice are left untouched in `var_ranges`.
  std::optional<bool> constrain(const Region& written,
                                std::vector<Interval>& var_ranges) const;

  std::string to_string() const;

  bool operator==(const SliceSpec&) const = default;

 private:
  std::vector<SliceDim> dims_;
  bool whole_ = true;
};

}  // namespace p2g::nd
