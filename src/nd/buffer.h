// Type-erased, shaped element storage for fields.
//
// Field payloads live in AnyBuffer: a contiguous row-major allocation with a
// runtime element type. Kernels obtain typed views; the kernel-language
// interpreter uses the generic scalar accessors.
//
// Storage normally lives in an owned heap vector, but a buffer can also be
// backed by external memory (ISSUE 10's shared-memory data plane):
//  - with_allocator(): bytes come from a caller-supplied bump allocator
//    (an mmap'd arena). Growing resizes allocate a fresh block and fall
//    back to owned heap storage when the allocator is exhausted.
//  - alias(): a read-only view over memory owned elsewhere (mapped pages
//    from a peer process), pinned by a keepalive. Any mutating access
//    first materializes the bytes into owned storage — writes never touch
//    the aliased pages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "nd/extents.h"
#include "nd/region.h"

namespace p2g::nd {

/// Runtime element types supported by P2G fields.
enum class ElementType : uint8_t {
  kInt8,
  kUInt8,
  kInt16,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
};

/// Size in bytes of one element.
size_t element_size(ElementType type);

/// Stable lowercase name ("int32", "float64", ...), as used by the kernel
/// language's field definitions.
std::string_view to_string(ElementType type);

/// Parses a kernel-language type name; throws kParse on unknown names.
ElementType parse_element_type(std::string_view name);

/// Reads one element at a raw location, converting to double/int64. These
/// are the type-erased scalar loads shared by AnyBuffer and ConstView.
double load_as_double(ElementType type, const std::byte* p);
int64_t load_as_int(ElementType type, const std::byte* p);

/// Process-wide count of payload allocations and copies made by AnyBuffer
/// (constructions, copies and growing resizes of non-empty buffers). Used
/// by tests asserting that the zero-copy fetch path really is zero-copy.
int64_t buffer_alloc_count();

/// Maps C++ arithmetic types to ElementType at compile time.
template <typename T>
constexpr ElementType element_type_of();

template <> constexpr ElementType element_type_of<int8_t>() { return ElementType::kInt8; }
template <> constexpr ElementType element_type_of<uint8_t>() { return ElementType::kUInt8; }
template <> constexpr ElementType element_type_of<int16_t>() { return ElementType::kInt16; }
template <> constexpr ElementType element_type_of<int32_t>() { return ElementType::kInt32; }
template <> constexpr ElementType element_type_of<int64_t>() { return ElementType::kInt64; }
template <> constexpr ElementType element_type_of<float>() { return ElementType::kFloat32; }
template <> constexpr ElementType element_type_of<double>() { return ElementType::kFloat64; }

/// Shaped, type-erased, resizable element storage (row-major).
class AnyBuffer {
 public:
  /// External byte allocator (a shared-memory arena): returns a block of
  /// the requested size, or nullptr when exhausted (the buffer then falls
  /// back to owned heap storage).
  using Alloc = std::function<std::byte*(size_t)>;

  AnyBuffer() : type_(ElementType::kInt32) {}
  AnyBuffer(ElementType type, Extents extents);

  /// A buffer whose bytes come from `alloc` (writable external storage).
  /// Growing resizes allocate fresh blocks from the same allocator; old
  /// blocks are never returned (bump-arena semantics).
  static AnyBuffer with_allocator(ElementType type, Extents extents,
                                  Alloc alloc);

  /// A read-only alias over `base` (element_count * element_size bytes,
  /// densely packed row-major), pinned by `keepalive`. Mutating accessors
  /// copy-on-write into owned storage.
  static AnyBuffer alias(ElementType type, Extents extents,
                         const std::byte* base,
                         std::shared_ptr<const void> keepalive);

  // Copies count toward buffer_alloc_count() and always materialize into
  // owned storage; moves are free.
  AnyBuffer(const AnyBuffer& other);
  AnyBuffer& operator=(const AnyBuffer& other);
  AnyBuffer(AnyBuffer&&) noexcept = default;
  AnyBuffer& operator=(AnyBuffer&&) noexcept = default;

  ElementType type() const { return type_; }
  const Extents& extents() const { return extents_; }
  int64_t element_count() const { return extents_.element_count(); }

  /// True when the bytes live in external storage (arena block or alias).
  bool external() const { return ext_ != nullptr; }

  /// Grows the buffer to `new_extents`, relocating existing elements so each
  /// coordinate keeps its value (implicit-resize support). Dimensions may
  /// only grow.
  void resize(const Extents& new_extents);

  /// Raw storage (row-major). Size is element_count() * element_size(type()).
  /// The non-const form materializes an alias into owned storage first.
  std::byte* raw() { return mutable_base(); }
  const std::byte* raw() const { return base(); }

  /// Typed pointer to the full buffer; throws kTypeMismatch on wrong T.
  template <typename T>
  T* data() {
    require_type(element_type_of<T>());
    return reinterpret_cast<T*>(mutable_base());
  }
  template <typename T>
  const T* data() const {
    require_type(element_type_of<T>());
    return reinterpret_cast<const T*>(base());
  }

  template <typename T>
  T at(int64_t flat) const {
    return data<T>()[check_flat(flat)];
  }
  template <typename T>
  void set(int64_t flat, T value) {
    data<T>()[check_flat(flat)] = value;
  }

  /// Generic scalar accessors (used by the language interpreter).
  double get_as_double(int64_t flat) const;
  int64_t get_as_int(int64_t flat) const;
  void set_from_double(int64_t flat, double value);
  void set_from_int(int64_t flat, int64_t value);

  /// Copies a densely packed region payload into this buffer. `src` holds
  /// region.element_count() elements of this buffer's type in row-major
  /// order of the region. The region must lie within the current extents.
  void scatter(const Region& region, const std::byte* src);

  /// Extracts a region into a densely packed payload (inverse of scatter).
  void gather(const Region& region, std::byte* dst) const;

 private:
  void require_type(ElementType expected) const;
  int64_t check_flat(int64_t flat) const;

  const std::byte* base() const { return ext_ != nullptr ? ext_ : bytes_.data(); }
  /// Writable base; copies an alias into owned storage first.
  std::byte* mutable_base();
  /// Copies external bytes into the owned vector and drops the external
  /// reference (and its keepalive/allocator).
  void materialize_owned();

  ElementType type_;
  Extents extents_;
  std::vector<std::byte> bytes_;

  // External-storage state (empty for plain owned buffers).
  std::byte* ext_ = nullptr;  ///< external base; read-only unless writable
  bool ext_writable_ = false;
  std::shared_ptr<const void> keepalive_;  ///< pins an alias's pages
  Alloc alloc_;                            ///< arena allocator, if any
};

}  // namespace p2g::nd
