// Shapes and row-major index arithmetic for multi-dimensional fields.
//
// P2G fields are shaped, resizable arrays (the paper used blitz++; this is
// our replacement). An Extents describes the size of each dimension; Coord
// addresses one element.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace p2g::nd {

/// One element position, e.g. {row, col}. Rank equals the field's rank.
using Coord = std::vector<int64_t>;

/// Dimension sizes of a multi-dimensional array, row-major layout.
class Extents {
 public:
  Extents() = default;
  explicit Extents(std::vector<int64_t> dims);
  Extents(std::initializer_list<int64_t> dims);

  size_t rank() const { return dims_.size(); }
  int64_t dim(size_t i) const;
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Product of all dimensions (0 when any dimension is 0; 1 when rank 0).
  int64_t element_count() const;

  bool empty() const { return element_count() == 0; }

  /// Row-major strides in elements; stride(rank-1) == 1.
  std::vector<int64_t> strides() const;

  /// Row-major flat offset of a coordinate. Throws kOutOfRange if outside.
  int64_t flatten(const Coord& coord) const;

  /// Inverse of flatten().
  Coord unflatten(int64_t offset) const;

  /// True when `coord` has matching rank and each index is in [0, dim).
  bool contains(const Coord& coord) const;

  /// Elementwise maximum (grows to cover both); ranks must match.
  Extents max_with(const Extents& other) const;

  /// True when every dimension of this fits inside `other`.
  bool fits_in(const Extents& other) const;

  bool operator==(const Extents& other) const = default;

  std::string to_string() const;

 private:
  std::vector<int64_t> dims_;
};

std::string to_string(const Coord& coord);

}  // namespace p2g::nd
