#include "check/hb_engine.h"

#include <algorithm>
#include <utility>

namespace p2g::check {

namespace {

constexpr size_t kCellShift = 3;  // 8-byte tracking granularity
constexpr size_t kMaxCellsPerAccess = 4096;

std::string describe_site(const std::string& thread, bool write,
                          const Site& site) {
  std::string out = "thread '" + thread + "' ";
  out += write ? "write" : "read";
  out += " of '";
  out += site.label != nullptr ? site.label : "?";
  out += "'";
  if (site.file != nullptr && site.file[0] != '\0') {
    std::string path = site.file;
    const size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) path = path.substr(slash + 1);
    out += " [" + path + ":" + std::to_string(site.line) + "]";
  }
  return out;
}

std::string race_key(const std::string& a, const std::string& b) {
  // Order-independent so A-vs-B and B-vs-A dedupe to one finding.
  return a <= b ? "race|" + a + "|" + b : "race|" + b + "|" + a;
}

}  // namespace

HbEngine::ThreadState& HbEngine::thread(int tid) {
  const auto index = static_cast<size_t>(tid);
  if (index >= threads_.size()) threads_.resize(index + 1);
  ThreadState& t = threads_[index];
  if (t.vc.get(tid) == 0) t.vc.tick(tid);  // clocks start at 1
  return t;
}

void HbEngine::begin_thread(int tid, std::string name) {
  thread(tid).name = std::move(name);
}

const std::string& HbEngine::thread_name(int tid) const {
  static const std::string unknown = "?";
  const auto index = static_cast<size_t>(tid);
  if (tid < 0 || index >= threads_.size() || threads_[index].name.empty()) {
    return unknown;
  }
  return threads_[index].name;
}

void HbEngine::fork(int parent, int child) {
  ThreadState& p = thread(parent);
  ThreadState& c = thread(child);
  c.vc.join(p.vc);
  c.vc.tick(child);
  p.vc.tick(parent);
}

void HbEngine::join(int parent, int child) {
  // Take the child's clock by value: thread() may resize threads_.
  VectorClock child_vc = thread(child).vc;
  thread(parent).vc.join(child_vc);
}

void HbEngine::acquired(int tid, const void* lock, LockMode mode,
                        const char* name) {
  ThreadState& t = thread(tid);
  LockState& l = locks_[lock];
  if (name != nullptr) l.name = name;
  t.vc.join(l.release_write);
  if (mode == LockMode::kExclusive) t.vc.join(l.release_read);

  // Lock-order edges: held -> newly acquired.
  for (const void* h : t.held) {
    if (h == lock) continue;
    const auto key = std::make_pair(h, lock);
    if (lock_edges_.find(key) == lock_edges_.end()) {
      lock_edges_[key] = Edge{lock_name(h), l.name, tid};
    }
  }
  t.held.push_back(lock);
}

void HbEngine::released(int tid, const void* lock, LockMode mode) {
  ThreadState& t = thread(tid);
  LockState& l = locks_[lock];
  if (mode == LockMode::kExclusive) {
    l.release_write = t.vc;
    l.release_read.clear();
  } else {
    l.release_read.join(t.vc);
  }
  t.vc.tick(tid);
  auto it = std::find(t.held.rbegin(), t.held.rend(), lock);
  if (it != t.held.rend()) t.held.erase(std::next(it).base());
}

void HbEngine::cv_notify(int tid, const void* cv) {
  ThreadState& t = thread(tid);
  tokens_[cv].join(t.vc);
  t.vc.tick(tid);
}

void HbEngine::cv_wake(int tid, const void* cv) {
  thread(tid).vc.join(tokens_[cv]);
}

void HbEngine::hb_release(int tid, const void* token) {
  ThreadState& t = thread(tid);
  tokens_[token].join(t.vc);
  t.vc.tick(tid);
}

void HbEngine::hb_acquire(int tid, const void* token) {
  thread(tid).vc.join(tokens_[token]);
}

void HbEngine::fence(int tid) {
  ThreadState& t = thread(tid);
  t.vc.join(fence_clock_);
  fence_clock_.join(t.vc);
  t.vc.tick(tid);
}

void HbEngine::report_race(int tid, const Site& site, bool write,
                           int other_tid, const Site& other_site,
                           bool other_write, const char* what) {
  const std::string here = describe_site(thread_name(tid), write, site);
  const std::string there =
      describe_site(thread_name(other_tid), other_write, other_site);
  if (!reported_.insert(race_key(here, there)).second) return;

  analysis::Diagnostic d;
  d.code = analysis::kDataRace;
  d.severity = analysis::Severity::kError;
  d.message = std::string("data race (") + what + "): '" +
              (site.label != nullptr ? site.label : "?") +
              "' accessed concurrently without a happens-before edge";
  d.primary = analysis::Anchor::site(here, site.line);
  d.secondary = analysis::Anchor::site(there, other_site.line);
  report_.diagnostics.push_back(std::move(d));
}

void HbEngine::access(int tid, const void* addr, size_t size, bool write,
                      const Site& site) {
  if (size == 0) return;
  ThreadState& t = thread(tid);
  const uintptr_t base = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t first = base >> kCellShift;
  uintptr_t last = (base + size - 1) >> kCellShift;
  if (last - first >= kMaxCellsPerAccess) {
    last = first + kMaxCellsPerAccess - 1;  // cap huge ranges
  }
  const Epoch now{tid, t.vc.get(tid)};
  for (uintptr_t cell = first; cell <= last; ++cell) {
    CellState& x = cells_[cell];
    if (write) {
      if (x.write.valid() && x.write.tid != tid && !t.vc.covers(x.write)) {
        report_race(tid, site, true, x.write.tid, x.write_site, true,
                    "write vs write");
      }
      if (x.read_shared) {
        if (!t.vc.covers(x.read_vc)) {
          for (const auto& [rtid, rsite] : x.read_sites) {
            if (rtid != tid && x.read_vc.get(rtid) > t.vc.get(rtid)) {
              report_race(tid, site, true, rtid, rsite, false,
                          "read vs write");
            }
          }
        }
      } else if (x.read.valid() && x.read.tid != tid &&
                 !t.vc.covers(x.read)) {
        report_race(tid, site, true, x.read.tid, x.read_site, false,
                    "read vs write");
      }
      x.write = now;
      x.write_site = site;
      x.read = Epoch{};
      x.read_shared = false;
      x.read_vc.clear();
      x.read_sites.clear();
    } else {
      if (x.write.valid() && x.write.tid != tid && !t.vc.covers(x.write)) {
        report_race(tid, site, false, x.write.tid, x.write_site, true,
                    "write vs read");
      }
      if (x.read_shared) {
        x.read_vc.set(tid, now.clock);
        x.read_sites[tid] = site;
      } else if (x.read.valid() && x.read.tid != tid &&
                 !t.vc.covers(x.read)) {
        // Concurrent readers: inflate the epoch to a full clock.
        x.read_shared = true;
        x.read_vc.set(x.read.tid, x.read.clock);
        x.read_vc.set(tid, now.clock);
        x.read_sites[x.read.tid] = x.read_site;
        x.read_sites[tid] = site;
        x.read = Epoch{};
      } else {
        x.read = now;
        x.read_site = site;
      }
    }
  }
}

void HbEngine::reset(const void* addr, size_t size) {
  if (size == 0) return;
  const uintptr_t base = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t first = base >> kCellShift;
  const uintptr_t last = (base + size - 1) >> kCellShift;
  cells_.erase(cells_.lower_bound(first), cells_.upper_bound(last));
}

const std::vector<const void*>& HbEngine::held(int tid) const {
  static const std::vector<const void*> none;
  const auto index = static_cast<size_t>(tid);
  if (tid < 0 || index >= threads_.size()) return none;
  return threads_[index].held;
}

const char* HbEngine::lock_name(const void* lock) const {
  auto it = locks_.find(lock);
  return it != locks_.end() ? it->second.name : "lock";
}

void HbEngine::finish() {
  // Lock-order cycle detection: iterative DFS over the acquired-while-held
  // graph. Each cycle is canonicalized by its sorted node set for dedup.
  std::map<const void*, std::vector<const void*>> adj;
  for (const auto& [key, edge] : lock_edges_) {
    adj[key.first].push_back(key.second);
  }

  std::set<const void*> done;
  for (const auto& [start, unused] : adj) {
    if (done.count(start) != 0) continue;
    // Path-based DFS from `start`; a back edge into the current path is a
    // cycle. Bounded: each node expands once per start.
    std::vector<const void*> path;
    std::set<const void*> on_path;
    std::set<const void*> visited;

    struct Frame {
      const void* node;
      size_t next = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({start});
    path.push_back(start);
    on_path.insert(start);
    visited.insert(start);

    while (!stack.empty()) {
      Frame& f = stack.back();
      auto it = adj.find(f.node);
      if (it == adj.end() || f.next >= it->second.size()) {
        on_path.erase(f.node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const void* next = it->second[f.next++];
      if (on_path.count(next) != 0) {
        // Found a cycle: path suffix from `next` back to here.
        auto cycle_begin = std::find(path.begin(), path.end(), next);
        std::vector<const void*> cycle(cycle_begin, path.end());

        std::vector<const void*> sorted = cycle;
        std::sort(sorted.begin(), sorted.end());
        std::string key = "cycle";
        for (const void* n : sorted) {
          key += "|" + std::to_string(reinterpret_cast<uintptr_t>(n));
        }
        if (reported_.insert(key).second) {
          std::string order;
          std::string witnesses;
          for (size_t i = 0; i < cycle.size(); ++i) {
            const void* a = cycle[i];
            const void* b = cycle[(i + 1) % cycle.size()];
            if (i > 0) order += " -> ";
            order += std::string("'") + lock_name(a) + "'";
            const auto eit = lock_edges_.find(std::make_pair(a, b));
            if (eit != lock_edges_.end()) {
              if (!witnesses.empty()) witnesses += ", ";
              witnesses += "'" + std::string(lock_name(a)) + "' -> '" +
                           lock_name(b) + "' by thread '" +
                           thread_name(eit->second.tid) + "'";
            }
          }
          order += " -> '" + std::string(lock_name(cycle.front())) + "'";

          analysis::Diagnostic d;
          d.code = analysis::kLockCycle;
          d.severity = analysis::Severity::kError;
          d.message = "lock-order cycle (potential deadlock): " + order +
                      (witnesses.empty() ? "" : "; acquired " + witnesses);
          d.primary = analysis::Anchor::site("lock '" +
                                             std::string(lock_name(
                                                 cycle.front())) +
                                             "'");
          report_.diagnostics.push_back(std::move(d));
        }
        continue;
      }
      if (visited.count(next) != 0) continue;
      visited.insert(next);
      on_path.insert(next);
      path.push_back(next);
      stack.push_back({next});
    }
    done.insert(visited.begin(), visited.end());
  }
}

}  // namespace p2g::check
