// Instrumented synchronization primitives and annotation hooks (p2gcheck).
//
// p2g::sync::Mutex / SharedMutex / CondVar / Thread are drop-in stand-ins
// for their std counterparts. In a normal build they compile to direct
// passthroughs: the only added cost per operation is one thread-local load
// and a predictable branch (bench_check_overhead guards that this stays
// unmeasurable). When a check::CheckSession is active they report every
// operation to the session's EventSink, which
//
//   - feeds a FastTrack-style vector-clock happens-before engine that
//     detects data races (P2G-C001) and lock-order cycles (P2G-C002), and
//   - in schedule-exploration mode *virtualizes* the primitives entirely:
//     the session's seeded scheduler serializes the participant threads and
//     decides every interleaving, so no real lock is ever taken and any
//     failing schedule replays bit-exactly from its seed.
//
// The annotation API (check::read / write / acquire / release / fence /
// racy_read) lets lock-free code describe its intended happens-before
// edges: FieldStorage's seal index and the FlightRecorder rings use it so
// the checker can verify their publication protocols instead of flagging
// them as races.
//
// Participation model: a thread reports events only when it is registered
// with the active session (explorer-spawned threads, sync::Thread children,
// or lazily captured threads in recording mode). Everything else — and
// everything when no session exists — takes the passthrough path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <source_location>
#include <thread>
#include <utility>

namespace p2g::check {

/// Source anchor of an instrumented memory access (annotation call site).
struct Site {
  const char* label = "";
  const char* file = "";
  uint32_t line = 0;

  bool valid() const { return line != 0 || label[0] != '\0'; }
};

enum class LockMode : uint8_t { kExclusive, kShared };

/// Session-side receiver of instrumented operations. Implemented by
/// check::CheckSession (src/check/session.h); the primitives below only
/// ever talk to this interface, so the header stays dependency-free and
/// linkable from every layer.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// True in schedule-exploration mode: primitives are fully virtualized
  /// and the caller must not touch the real lock/cv at all.
  virtual bool virtualized() const = 0;

  // --- native-schedule recording (virtualized() == false) -----------------
  virtual void rec_acquired(void* lock, LockMode mode, const char* name) = 0;
  virtual void rec_released(void* lock, LockMode mode) = 0;
  virtual void rec_notify(void* cv, bool all) = 0;

  // --- virtualized operations (virtualized() == true) ---------------------
  virtual void v_lock(void* lock, LockMode mode, const char* name) = 0;
  virtual bool v_try_lock(void* lock, LockMode mode, const char* name) = 0;
  virtual void v_unlock(void* lock, LockMode mode) = 0;
  /// Blocks until notified (or, with `timed`, until the scheduler decides
  /// the timeout fires). Returns false only on timeout. Re-acquires `lock`
  /// before returning, exactly like a real condition variable.
  virtual bool v_wait(void* cv, void* lock, const char* cv_name,
                      const char* lock_name, bool timed) = 0;
  virtual void v_notify(void* cv, bool all) = 0;

  // --- thread lifecycle (sync::Thread) ------------------------------------
  /// Called in the parent; returns the child's logical id (or -1 to leave
  /// the child uninstrumented).
  virtual int thread_created(const char* name) = 0;
  virtual void thread_started(int id) = 0;  ///< in the child, before body
  virtual void thread_exited(int id) = 0;   ///< in the child, after body
  virtual void thread_joined(int id) = 0;   ///< in the parent, before join

  // --- annotations (both modes) -------------------------------------------
  virtual void mem_access(const void* addr, size_t size, bool write,
                          const Site& site) = 0;
  /// Forget all access history overlapping [addr, addr+size): call when
  /// memory is freed or recycled so stale epochs cannot produce false
  /// races (the moral equivalent of TSan's annotate-new-memory).
  virtual void mem_reset(const void* addr, size_t size) = 0;
  virtual void hb_acquire(const void* token) = 0;
  virtual void hb_release(const void* token) = 0;
  virtual void hb_fence() = 0;
  /// Pure scheduling point: no happens-before effect (racy reads, yields).
  virtual void yield_point() = 0;

  /// Recording-mode lazy capture of a previously unseen thread; returns
  /// its logical id (or -1 to keep it uninstrumented).
  virtual int register_thread() = 0;
};

// Process-wide session state. `g_generation` is 0 until the first session
// ever installs, so the inactive fast path is one relaxed load plus a
// predictable branch. A thread's registration (t_tid) is valid only for
// the generation it registered under, which keeps logical ids from leaking
// across sessions.
inline std::atomic<EventSink*> g_sink{nullptr};
inline std::atomic<uint32_t> g_generation{0};
/// Recording-mode sessions set this to capture every thread that touches
/// an instrumented primitive (virtualized sessions leave it off: only
/// explicitly spawned participants may be scheduled).
inline std::atomic<bool> g_capture_all{false};

inline thread_local uint32_t t_gen = 0;
inline thread_local int t_tid = -1;
inline thread_local int t_suppress = 0;

/// Registers the calling thread under the installed sink (used by session
/// internals and sync::Thread); -1 id marks "seen but not participating".
inline void bind_thread(uint32_t gen, int tid) {
  t_gen = gen;
  t_tid = tid;
}

/// The sink the calling thread must report to, or nullptr on the fast
/// (inactive / non-participant) path.
inline EventSink* active() {
  const uint32_t gen = g_generation.load(std::memory_order_relaxed);
  if (gen == 0) return nullptr;  // no session ever existed
  if (t_suppress != 0) return nullptr;
  if (t_gen == gen) {
    if (t_tid < 0) return nullptr;  // seen before, not a participant
    return g_sink.load(std::memory_order_acquire);
  }
  // First event under this generation: lazily capture the thread when a
  // recording session asked for it, otherwise mark it a bystander.
  EventSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return nullptr;
  if (!g_capture_all.load(std::memory_order_relaxed)) {
    bind_thread(gen, -1);
    return nullptr;
  }
  bind_thread(gen, sink->register_thread());
  return t_tid >= 0 ? sink : nullptr;
}

/// RAII reentrancy guard: session internals run user-visible code (report
/// rendering, callbacks) without re-entering the sink.
class SuppressGuard {
 public:
  SuppressGuard() { ++t_suppress; }
  ~SuppressGuard() { --t_suppress; }
  SuppressGuard(const SuppressGuard&) = delete;
  SuppressGuard& operator=(const SuppressGuard&) = delete;
};

inline Site make_site(const char* label, const std::source_location& loc) {
  return Site{label, loc.file_name(), loc.line()};
}

// --- annotation API ---------------------------------------------------------

/// Declares a plain (unsynchronized) read of [addr, addr+size). The checker
/// reports a P2G-C001 race when it is concurrent with a write.
inline void read_range(
    const void* addr, size_t size, const char* label = "",
    const std::source_location loc = std::source_location::current()) {
  if (EventSink* sink = active()) {
    sink->mem_access(addr, size, false, make_site(label, loc));
  }
}

/// Declares a plain write of [addr, addr+size).
inline void write_range(
    const void* addr, size_t size, const char* label = "",
    const std::source_location loc = std::source_location::current()) {
  if (EventSink* sink = active()) {
    sink->mem_access(addr, size, true, make_site(label, loc));
  }
}

/// Typed convenience wrappers.
template <typename T>
void read(const T& object, const char* label = "",
          const std::source_location loc = std::source_location::current()) {
  read_range(&object, sizeof(T), label, loc);
}

template <typename T>
void write(const T& object, const char* label = "",
           const std::source_location loc = std::source_location::current()) {
  write_range(&object, sizeof(T), label, loc);
}

/// Acquire edge from the last release() on the same token (model for
/// acquire-loads of published pointers/indices).
inline void acquire(const void* token) {
  if (EventSink* sink = active()) sink->hb_acquire(token);
}

/// Release edge: publishes everything the calling thread did so far to
/// subsequent acquire()s of the same token (model for release-stores).
inline void release(const void* token) {
  if (EventSink* sink = active()) sink->hb_release(token);
}

/// Full fence: orders against every other fence() (seq-cst model).
inline void fence() {
  if (EventSink* sink = active()) sink->hb_fence();
}

/// Declares an *intentionally* racy read: a scheduling point with no
/// happens-before or race-checking effect (postmortem snapshots and other
/// read-torn-data-on-purpose paths).
inline void racy_read(const void* addr, size_t size) {
  (void)addr;
  (void)size;
  if (EventSink* sink = active()) sink->yield_point();
}

/// Forgets access history of recycled memory (buffer reallocation, age
/// release): stale epochs must not race against the next tenant.
inline void reset_range(const void* addr, size_t size) {
  if (EventSink* sink = active()) sink->mem_reset(addr, size);
}

}  // namespace p2g::check

namespace p2g::sync {

using check::EventSink;
using check::LockMode;

/// std::mutex stand-in. The optional name labels the lock in lock-order
/// cycle reports ("BlockingQueue.mutex -> ReadyQueue.mutex -> ...").
class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_lock(this, LockMode::kExclusive, name_);
        return;
      }
      impl_.lock();
      sink->rec_acquired(this, LockMode::kExclusive, name_);
      return;
    }
    impl_.lock();
  }

  bool try_lock() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        return sink->v_try_lock(this, LockMode::kExclusive, name_);
      }
      const bool ok = impl_.try_lock();
      if (ok) sink->rec_acquired(this, LockMode::kExclusive, name_);
      return ok;
    }
    return impl_.try_lock();
  }

  void unlock() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_unlock(this, LockMode::kExclusive);
        return;
      }
      sink->rec_released(this, LockMode::kExclusive);
      impl_.unlock();
      return;
    }
    impl_.unlock();
  }

  std::mutex& native() { return impl_; }
  const char* name() const { return name_; }

 private:
  std::mutex impl_;
  const char* name_ = "mutex";
};

/// std::shared_mutex stand-in (works with std::shared_lock/unique_lock).
class SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_lock(this, LockMode::kExclusive, name_);
        return;
      }
      impl_.lock();
      sink->rec_acquired(this, LockMode::kExclusive, name_);
      return;
    }
    impl_.lock();
  }

  bool try_lock() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        return sink->v_try_lock(this, LockMode::kExclusive, name_);
      }
      const bool ok = impl_.try_lock();
      if (ok) sink->rec_acquired(this, LockMode::kExclusive, name_);
      return ok;
    }
    return impl_.try_lock();
  }

  void unlock() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_unlock(this, LockMode::kExclusive);
        return;
      }
      sink->rec_released(this, LockMode::kExclusive);
      impl_.unlock();
      return;
    }
    impl_.unlock();
  }

  void lock_shared() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_lock(this, LockMode::kShared, name_);
        return;
      }
      impl_.lock_shared();
      sink->rec_acquired(this, LockMode::kShared, name_);
      return;
    }
    impl_.lock_shared();
  }

  bool try_lock_shared() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        return sink->v_try_lock(this, LockMode::kShared, name_);
      }
      const bool ok = impl_.try_lock_shared();
      if (ok) sink->rec_acquired(this, LockMode::kShared, name_);
      return ok;
    }
    return impl_.try_lock_shared();
  }

  void unlock_shared() {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_unlock(this, LockMode::kShared);
        return;
      }
      sink->rec_released(this, LockMode::kShared);
      impl_.unlock_shared();
      return;
    }
    impl_.unlock_shared();
  }

  const char* name() const { return name_; }

 private:
  std::shared_mutex impl_;
  const char* name_ = "shared_mutex";
};

/// std::condition_variable stand-in, bound to sync::Mutex. In a normal
/// build wait() adopts the Mutex's native std::mutex, so there is no
/// condition_variable_any-style extra lock on the passthrough path.
class CondVar {
 public:
  CondVar() = default;
  explicit CondVar(const char* name) : name_(name) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { notify(false); }
  void notify_all() { notify(true); }

  void wait(std::unique_lock<Mutex>& lock) {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_wait(this, lock.mutex(), name_, lock.mutex()->name(), false);
        return;
      }
      sink->rec_released(lock.mutex(), LockMode::kExclusive);
      native_wait(lock);
      sink->rec_acquired(lock.mutex(), LockMode::kExclusive,
                         lock.mutex()->name());
      return;
    }
    native_wait(lock);
  }

  template <typename Pred>
  void wait(std::unique_lock<Mutex>& lock, Pred pred) {
    while (!pred()) wait(lock);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      std::unique_lock<Mutex>& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        // Virtual time: the scheduler fires the timeout when no untimed
        // thread can run (see CheckSession), so the deadline value itself
        // is irrelevant to the model.
        return sink->v_wait(this, lock.mutex(), name_, lock.mutex()->name(),
                            true)
                   ? std::cv_status::no_timeout
                   : std::cv_status::timeout;
      }
      sink->rec_released(lock.mutex(), LockMode::kExclusive);
      const std::cv_status status = native_wait_until(lock, deadline);
      sink->rec_acquired(lock.mutex(), LockMode::kExclusive,
                         lock.mutex()->name());
      return status;
    }
    return native_wait_until(lock, deadline);
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(std::unique_lock<Mutex>& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) {
    while (!pred()) {
      if (wait_until(lock, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(std::unique_lock<Mutex>& lock,
                          const std::chrono::duration<Rep, Period>& rel) {
    return wait_until(lock, std::chrono::steady_clock::now() + rel);
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(std::unique_lock<Mutex>& lock,
                const std::chrono::duration<Rep, Period>& rel, Pred pred) {
    return wait_until(lock, std::chrono::steady_clock::now() + rel,
                      std::move(pred));
  }

  const char* name() const { return name_; }

 private:
  void notify(bool all) {
    if (EventSink* sink = check::active()) {
      if (sink->virtualized()) {
        sink->v_notify(this, all);
        return;
      }
      sink->rec_notify(this, all);
    }
    if (all) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  void native_wait(std::unique_lock<Mutex>& lock) {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status native_wait_until(
      std::unique_lock<Mutex>& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  std::condition_variable cv_;
  const char* name_ = "condvar";
};

/// std::thread stand-in whose children join the active session: a library
/// that owns an internal service thread (ReliableChannel's retransmitter)
/// stays explorable because its thread participates in the schedule
/// instead of free-running outside it. Passthrough when no session is
/// active or the creator is not a participant.
class Thread {
 public:
  Thread() = default;

  template <typename Fn>
  Thread(const char* name, Fn&& fn) {
    EventSink* sink = check::active();
    const int child = sink != nullptr ? sink->thread_created(name) : -1;
    if (child < 0) {
      impl_ = std::thread(std::forward<Fn>(fn));
      return;
    }
    sink_ = sink;
    child_ = child;
    const uint32_t gen = check::g_generation.load(std::memory_order_acquire);
    impl_ = std::thread(
        [gen, child, sink, fn = std::forward<Fn>(fn)]() mutable {
          check::bind_thread(gen, child);
          if (sink->virtualized()) {
            // A virtualized run that aborts (deadlock, step budget) unwinds
            // its participants with an internal exception; swallow it here
            // so the OS thread exits cleanly and stays joinable.
            try {
              sink->thread_started(child);
              fn();
            } catch (...) {
            }
          } else {
            sink->thread_started(child);
            fn();
          }
          sink->thread_exited(child);
        });
  }

  Thread(Thread&&) = default;
  Thread& operator=(Thread&&) = default;

  bool joinable() const { return impl_.joinable(); }

  void join() {
    EventSink* sink = check::active();
    const bool participates = child_ >= 0 && sink == sink_;
    // Virtualized: tell the session first, so the child gets scheduled to
    // completion instead of deadlocking the token against a real join.
    // Recording: tell it after, so the join happens-before edge covers
    // everything the child did.
    if (participates && sink_->virtualized()) sink_->thread_joined(child_);
    impl_.join();
    if (participates && !sink_->virtualized()) sink_->thread_joined(child_);
  }

 private:
  std::thread impl_;
  EventSink* sink_ = nullptr;
  int child_ = -1;
};

}  // namespace p2g::sync
