// Built-in check suites: concurrency scenarios over the converted
// core/dist/ft subsystems, plus seeded-bug fixture suites that prove the
// checker actually finds races (C001), lock cycles (C002), and lost
// wakeups (C003).
//
// Suite bodies run once per explored schedule (hundreds of times in a
// sweep), so every scenario is deliberately small: a handful of threads, a
// handful of operations. Shared state is heap-allocated and captured by
// shared_ptr — spawn() only registers the threads; the body callback's
// stack is gone by the time run() schedules them.
#include "check/registry.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "check/sync.h"
#include "common/blocking_queue.h"
#include "common/mpsc_queue.h"
#include "core/field.h"
#include "core/flight_recorder.h"
#include "core/ready_queue.h"
#include "dist/bus.h"
#include "ft/reliable.h"
#include "net/shm.h"

namespace p2g::check {

namespace {

void suite_blocking_queue(CheckSession& session) {
  auto queue = std::make_shared<BlockingQueue<int>>();
  session.spawn("producer", [queue] {
    queue->push(1);
    queue->push(2);
    queue->push(3);
  });
  session.spawn("consumer", [queue] {
    std::deque<int> batch;
    while (queue->pop_all(batch)) {
    }
  });
  session.spawn("closer", [queue] { queue->close(); });
}

void suite_ready_queue(CheckSession& session) {
  auto queue = std::make_shared<ReadyQueue>();
  session.spawn("analyzer", [queue] {
    std::vector<WorkItem> batch(2);
    batch[0].age = 2;
    batch[1].age = 1;
    queue->push_batch(std::move(batch));
    WorkItem extra;
    extra.age = 0;
    queue->push(std::move(extra));
  });
  session.spawn("worker-a", [queue] {
    while (queue->pop().has_value()) {
    }
  });
  session.spawn("worker-b", [queue] {
    std::optional<WorkItem> bonus;
    while (queue->pop(bonus).has_value()) {
      bonus.reset();
    }
  });
  session.spawn("closer", [queue] { queue->close(); });
}

void suite_mpsc_queue(CheckSession& session) {
  // The analyzer shards' event queue: lock-free multi-producer push racing
  // a parked pop_all consumer and shutdown. Verifies the Vyukov publish
  // protocol (release before exchange, acquire before reading payloads)
  // and the seq_cst sleeping_ Dekker against lost wakeups.
  auto queue = std::make_shared<MpscQueue<int>>();
  session.spawn("producer-a", [queue] {
    queue->push(1);
    queue->push(2);
  });
  session.spawn("producer-b", [queue] { queue->push(3); });
  session.spawn("consumer", [queue] {
    std::deque<int> batch;
    while (queue->pop_all(batch)) {
    }
  });
  session.spawn("closer", [queue] { queue->close(); });
}

void suite_shard_cross_handoff(CheckSession& session) {
  // The N=2 analyzer-shard topology: each shard consumes its own queue and
  // produces into the peer's. Shard 0 announces a seal (ScanConsumersEvent
  // analogue); shard 1 reacts with a request back to shard 0
  // (SealCheckEvent analogue) — the exact message pattern the sharded
  // dependency analyzer uses instead of shared locks.
  struct Shared {
    MpscQueue<int> q0;
    MpscQueue<int> q1;
  };
  auto shared = std::make_shared<Shared>();
  session.spawn("shard-0", [shared] {
    shared->q1.push(7);  // cross-shard notify
    std::deque<int> batch;
    while (shared->q0.pop_all(batch)) {
    }
  });
  session.spawn("shard-1", [shared] {
    std::deque<int> batch;
    if (shared->q1.pop_all(batch)) {
      shared->q0.push(batch.front() + 1);  // cross-shard reply
    }
    while (shared->q1.pop_all(batch)) {
    }
  });
  session.spawn("closer", [shared] {
    shared->q0.close();
    shared->q1.close();
  });
}

void suite_field_seal_publish(CheckSession& session) {
  FieldDecl decl;
  decl.id = 0;
  decl.name = "f";
  decl.type = nd::ElementType::kInt32;
  decl.rank = 1;
  auto field = std::make_shared<FieldStorage>(decl);
  session.spawn("writer", [field] {
    const int32_t v = 7;
    field->store(0, nd::Region::point({0}),
                 reinterpret_cast<const std::byte*>(&v));
    field->seal(0, nd::Extents({1}));
  });
  session.spawn("reader", [field] {
    // The lock-free fast path: spins on the published seal index. Bounded
    // so schedules where the writer never gets ahead still terminate.
    for (int i = 0; i < 32; ++i) {
      if (field->try_fetch_view_whole(0).has_value()) break;
    }
  });
}

void suite_bus_shutdown(CheckSession& session) {
  auto bus = std::make_shared<dist::MessageBus>();
  auto inbox = bus->register_endpoint("b");
  bus->register_endpoint("a");
  session.spawn("sender", [bus] {
    for (int i = 0; i < 3; ++i) {
      dist::Message msg;
      msg.type = dist::MessageType::kData;
      msg.from = "a";
      bus->send("b", std::move(msg));
    }
  });
  session.spawn("receiver", [inbox] {
    while (inbox->pop().has_value()) {
    }
  });
  session.spawn("closer", [bus] { bus->close_all(); });
}

void suite_reliable_stop(CheckSession& session) {
  auto bus = std::make_shared<dist::MessageBus>();
  bus->register_endpoint("peer");
  bus->register_endpoint("self");
  // The channel lives inside one participant: its constructor spawns the
  // retransmit thread as a schedulable participant, and stop() races the
  // retransmitter's timed-wait loop (virtual time) against shutdown.
  session.spawn("owner", [bus] {
    ft::ReliableChannel channel(*bus, "self");
    channel.send("peer", dist::MessageType::kData, {1, 2, 3});
    channel.stop();
  });
}

void suite_flight_recorder(CheckSession& session) {
  auto recorder = std::make_shared<FlightRecorder>();
  session.spawn("writer", [recorder] {
    for (int i = 0; i < 4; ++i) {
      recorder->record("event", SpanKind::kOther, i, 1, 0, TraceContext{},
                       static_cast<uint64_t>(i + 1));
    }
  });
  session.spawn("reader", [recorder] {
    (void)recorder->snapshot();
    (void)recorder->recorded();
  });
}

void suite_shm_ring(CheckSession& session) {
  // The shared-memory data plane's SPSC ring (net::ShmRing) exactly as the
  // two processes use it: both sides construct their own wrapper over the
  // same (here: heap-backed) zero-initialized pages, the producer pushes
  // through wrap-around and a full window, then closes; the consumer
  // drains until kClosed. The ring is annotated internally
  // (acquire/release on head/tail, write_range/read_range on the slot), so
  // the sweep proves the publish protocol: slot payload written before the
  // tail release, never reread after the head release. Loops are bounded —
  // the ring is non-blocking and the explorer guarantees no fairness.
  struct Shared {
    std::vector<uint8_t> mem;
    Shared() : mem(net::ShmRing::bytes_required(2), 0) {}
  };
  auto shared = std::make_shared<Shared>();
  session.spawn("producer", [shared] {
    net::ShmRing tx(shared->mem.data(), 2);
    net::ShmSlot slot{};
    for (int i = 0; i < 3; ++i) {  // 3 slots through a 2-slot ring: wraps
      slot.age = i;
      for (int spin = 0; spin < 16 && !tx.push(slot); ++spin) {
      }
    }
    tx.close();
  });
  session.spawn("consumer", [shared] {
    net::ShmRing rx(shared->mem.data(), 2);
    net::ShmSlot slot{};
    for (int spin = 0; spin < 64; ++spin) {
      const net::ShmRing::Pop got = rx.pop(&slot);
      if (got == net::ShmRing::Pop::kClosed) break;
      if (got == net::ShmRing::Pop::kGot) (void)slot.age;
    }
  });
}

// --- fixture suites: seeded bugs the checker must find -----------------------

void suite_known_race(CheckSession& session) {
  struct Shared {
    int64_t counter = 0;
  };
  auto shared = std::make_shared<Shared>();
  const auto bump = [shared] {
    check::write(shared->counter, "demo.counter");
    shared->counter += 1;
  };
  session.spawn("incr-a", bump);
  session.spawn("incr-b", bump);
}

void suite_broken_mpsc(CheckSession& session) {
  // Bug under test: a deliberately broken cross-shard handoff that
  // publishes the out-of-band payload *after* the queue push, so the
  // consumer can read it before (or concurrently with) the write — the
  // mistake the real protocol avoids by completing every payload write
  // before the publishing exchange.
  struct Shared {
    MpscQueue<int> queue;
    int64_t payload = 0;
  };
  auto shared = std::make_shared<Shared>();
  session.spawn("producer", [shared] {
    shared->queue.push(1);
    check::write(shared->payload, "demo.broken_mpsc.payload");
    shared->payload = 42;
  });
  session.spawn("consumer", [shared] {
    std::deque<int> batch;
    if (shared->queue.pop_all(batch)) {
      check::read(shared->payload, "demo.broken_mpsc.payload");
      (void)shared->payload;
    }
  });
  session.spawn("closer", [shared] { shared->queue.close(); });
}

void suite_broken_ring(CheckSession& session) {
  // Bug under test: an SPSC ring whose producer publishes the new tail
  // BEFORE writing the slot payload — the inverse of ShmRing::push's
  // protocol. The consumer acquires the tail, sees the ring non-empty, and
  // reads a slot the producer is still writing.
  struct Shared {
    std::atomic<uint32_t> tail{0};
    std::atomic<uint32_t> head{0};
    int64_t slot = 0;
  };
  auto shared = std::make_shared<Shared>();
  session.spawn("producer", [shared] {
    check::release(&shared->tail);
    shared->tail.store(1, std::memory_order_release);  // published too early
    check::write(shared->slot, "demo.broken_ring.slot");
    shared->slot = 42;
  });
  session.spawn("consumer", [shared] {
    if (shared->tail.load(std::memory_order_acquire) !=
        shared->head.load(std::memory_order_relaxed)) {
      check::acquire(&shared->tail);
      check::read(shared->slot, "demo.broken_ring.slot");
      (void)shared->slot;
    }
  });
}

void suite_lock_cycle(CheckSession& session) {
  struct Shared {
    sync::Mutex a{"demo.lock_cycle.A"};
    sync::Mutex b{"demo.lock_cycle.B"};
  };
  auto shared = std::make_shared<Shared>();
  session.spawn("ab", [shared] {
    std::scoped_lock first(shared->a);
    std::scoped_lock second(shared->b);
  });
  session.spawn("ba", [shared] {
    std::scoped_lock first(shared->b);
    std::scoped_lock second(shared->a);
  });
}

void suite_lost_wakeup(CheckSession& session) {
  struct Shared {
    sync::Mutex m{"demo.lost_wakeup.m"};
    sync::CondVar cv{"demo.lost_wakeup.cv"};
  };
  auto shared = std::make_shared<Shared>();
  // Bug under test: the waiter waits unconditionally instead of guarding
  // with a predicate, so a notify that fires first is lost forever.
  session.spawn("waiter", [shared] {
    std::unique_lock lock(shared->m);
    shared->cv.wait(lock);
  });
  session.spawn("notifier", [shared] { shared->cv.notify_one(); });
}

}  // namespace

void register_builtin_suites() {
  static const bool once = [] {
    const auto add = [](const char* name, const char* description,
                        void (*body)(CheckSession&),
                        const char* expected_code = nullptr) {
      CheckSuite suite;
      suite.name = name;
      suite.description = description;
      suite.body = body;
      if (expected_code != nullptr) {
        suite.expect_findings = true;
        suite.expected_code = expected_code;
      }
      register_suite(std::move(suite));
    };
    add("blocking_queue.pop_all_shutdown",
        "BlockingQueue push / pop_all drain / close shutdown",
        suite_blocking_queue);
    add("ready_queue.shutdown",
        "ReadyQueue batch push, two workers (bonus pop), close",
        suite_ready_queue);
    add("mpsc.pop_all_shutdown",
        "MpscQueue lock-free multi-producer push / parked pop_all / close",
        suite_mpsc_queue);
    add("shard.cross_handoff",
        "analyzer-shard cross-shard seal/scan message ping over two "
        "MpscQueues",
        suite_shard_cross_handoff);
    add("field.seal_publish",
        "FieldStorage seal-index publication vs lock-free fetch",
        suite_field_seal_publish);
    add("bus.shutdown", "MessageBus send / mailbox drain vs close_all",
        suite_bus_shutdown);
    add("reliable.stop", "ReliableChannel retransmit loop vs stop()",
        suite_reliable_stop);
    add("flight_recorder.ring",
        "FlightRecorder single-writer ring vs racy snapshot",
        suite_flight_recorder);
    add("shm.ring_spsc",
        "shared-memory SPSC ring: wrap-around push/full window vs drain "
        "until closed",
        suite_shm_ring);
    add("demo.known_race",
        "fixture: unsynchronized counter (must find P2G-C001)",
        suite_known_race, "P2G-C001");
    add("demo.broken_mpsc",
        "fixture: queue payload published after the push (must find "
        "P2G-C001)",
        suite_broken_mpsc, "P2G-C001");
    add("demo.broken_ring",
        "fixture: ring tail published before the slot write (must find "
        "P2G-C001)",
        suite_broken_ring, "P2G-C001");
    add("demo.lock_cycle", "fixture: AB/BA lock order (must find P2G-C002)",
        suite_lock_cycle, "P2G-C002");
    add("demo.lost_wakeup",
        "fixture: unconditional cv wait (must find P2G-C003)",
        suite_lost_wakeup, "P2G-C003");
    return true;
  }();
  (void)once;
}

}  // namespace p2g::check
