#include "check/registry.h"

#include <utility>

namespace p2g::check {

std::vector<CheckSuite>& suites() {
  static std::vector<CheckSuite> registry;
  return registry;
}

void register_suite(CheckSuite suite) {
  for (CheckSuite& existing : suites()) {
    if (existing.name == suite.name) {
      existing = std::move(suite);
      return;
    }
  }
  suites().push_back(std::move(suite));
}

const CheckSuite* find_suite(std::string_view name) {
  for (const CheckSuite& suite : suites()) {
    if (suite.name == name) return &suite;
  }
  return nullptr;
}

}  // namespace p2g::check
