#include "check/session.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace p2g::check {

namespace {

/// Monotone session generations: a thread's cached registration (t_gen /
/// t_tid) is valid only for the generation it bound under.
std::atomic<uint32_t> s_generation_counter{0};

/// PCT change points are sampled from this window of scheduling steps.
constexpr uint64_t kChangeWindow = 4096;

}  // namespace

CheckSession::CheckSession(Options options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.mode == Mode::kExplore && !options_.enumerate) {
    for (int i = 0; i < options_.priority_changes; ++i) {
      change_points_.push_back(
          static_cast<uint64_t>(rng_.uniform_int(1, kChangeWindow)));
    }
    std::sort(change_points_.begin(), change_points_.end());
  }
  install();
}

CheckSession::~CheckSession() {
  {
    std::unique_lock<std::mutex> g(mutex_);
    if (!all_done_ && !participants_.empty() &&
        options_.mode == Mode::kExplore) {
      abort_ = true;
      cv_.notify_all();
    }
  }
  for (auto& p : participants_) {
    if (p->thread.joinable()) p->thread.join();
  }
  finish();
}

void CheckSession::install() {
  generation_ =
      s_generation_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  g_sink.store(this, std::memory_order_release);
  g_capture_all.store(options_.mode == Mode::kRecord && options_.capture_all,
                      std::memory_order_relaxed);
  g_generation.store(generation_, std::memory_order_release);
  installed_ = true;
  if (options_.mode == Mode::kRecord) {
    // The installing thread participates as tid 0.
    std::unique_lock<std::mutex> g(mutex_);
    auto p = std::make_unique<Participant>();
    p->name = "main";
    p->state = State::kRunning;
    participants_.push_back(std::move(p));
    engine_.begin_thread(0, "main");
    bind_thread(generation_, 0);
  } else {
    // The driving thread only spawns/joins; it never participates.
    bind_thread(generation_, -1);
  }
}

void CheckSession::uninstall() {
  if (!installed_) return;
  g_capture_all.store(false, std::memory_order_relaxed);
  g_sink.store(nullptr, std::memory_order_release);
  installed_ = false;
}

void CheckSession::finish() {
  uninstall();
  if (!finished_analyses_) {
    finished_analyses_ = true;
    engine_.finish();
  }
}

void CheckSession::spawn(std::string name, std::function<void()> body) {
  std::unique_lock<std::mutex> g(mutex_);
  const int tid = static_cast<int>(participants_.size());
  auto owned = std::make_unique<Participant>();
  owned->name = std::move(name);
  owned->priority = 1000 + (rng_.next() >> 44);  // distinct-ish high band
  owned->body = std::move(body);
  engine_.begin_thread(tid, owned->name);
  participants_.push_back(std::move(owned));
  Participant* part = participants_.back().get();
  const uint32_t gen = generation_;
  part->thread = std::thread([this, part, tid, gen] {
    bind_thread(gen, tid);
    try {
      {
        std::unique_lock<std::mutex> g2(mutex_);
        park(g2, tid);
        part->state = State::kRunning;
      }
      part->body();
    } catch (const AbortRun&) {
      // Scheduled abort (deadlock / budget): unwind quietly.
    } catch (const std::exception& e) {
      std::unique_lock<std::mutex> g2(mutex_);
      add_schedule_diag(
          analysis::kLiveLock,
          "exception escaped checked thread '" + part->name + "': " + e.what(),
          analysis::Anchor::site("thread '" + part->name + "'"));
      abort_run(g2);
    } catch (...) {
      std::unique_lock<std::mutex> g2(mutex_);
      add_schedule_diag(
          analysis::kLiveLock,
          "exception escaped checked thread '" + part->name + "'",
          analysis::Anchor::site("thread '" + part->name + "'"));
      abort_run(g2);
    }
    thread_exited(tid);
  });
}

void CheckSession::run() {
  if (options_.mode == Mode::kRecord) {
    finish();
    return;
  }
  {
    std::unique_lock<std::mutex> g(mutex_);
    run_started_ = true;
    if (participants_.empty()) {
      all_done_ = true;
    } else {
      pick_next(g);
      cv_.notify_all();
      cv_.wait(g, [&] { return all_done_ || abort_; });
    }
  }
  for (auto& p : participants_) {
    if (p->thread.joinable()) p->thread.join();
  }
  finish();
}

std::string CheckSession::decision_trace() const {
  std::string out;
  for (const Decision& d : decisions_) {
    if (!out.empty()) out += ' ';
    out += std::to_string(d.chosen) + "/" + std::to_string(d.options);
  }
  return out;
}

// --- scheduler core ---------------------------------------------------------

int CheckSession::self_tid() const { return t_tid; }

CheckSession::Participant& CheckSession::participant(int tid) {
  return *participants_[static_cast<size_t>(tid)];
}

bool CheckSession::lock_available(const VLock& lock, LockMode mode,
                                  int tid) const {
  (void)tid;  // non-recursive: a self-deadlock shows up as a wait cycle
  if (mode == LockMode::kExclusive) {
    return lock.exclusive_owner < 0 && lock.shared_owners.empty();
  }
  return lock.exclusive_owner < 0;
}

void CheckSession::do_acquire(VLock& lock, LockMode mode, int tid) {
  if (mode == LockMode::kExclusive) {
    lock.exclusive_owner = tid;
  } else {
    lock.shared_owners.push_back(tid);
  }
}

void CheckSession::do_release(VLock& lock, LockMode mode, int tid) {
  if (mode == LockMode::kExclusive) {
    if (lock.exclusive_owner == tid) lock.exclusive_owner = -1;
  } else {
    auto it =
        std::find(lock.shared_owners.begin(), lock.shared_owners.end(), tid);
    if (it != lock.shared_owners.end()) lock.shared_owners.erase(it);
  }
}

bool CheckSession::eligible(int tid) const {
  const Participant& p = *participants_[static_cast<size_t>(tid)];
  switch (p.state) {
    case State::kRunnable:
      return true;
    case State::kBlockedLock: {
      auto it = vlocks_.find(p.wait_lock);
      return it == vlocks_.end() ||
             lock_available(it->second, p.wait_mode, tid);
    }
    case State::kBlockedCv: {
      if (!p.woken && !p.timed_fired) return false;
      auto it = vlocks_.find(p.wait_lock);
      return it == vlocks_.end() ||
             lock_available(it->second, p.wait_mode, tid);
    }
    case State::kBlockedJoin:
      return p.join_target >= 0 &&
             participants_[static_cast<size_t>(p.join_target)]->state ==
                 State::kFinished;
    case State::kRunning:
    case State::kFinished:
      return false;
  }
  return false;
}

bool CheckSession::timeout_eligible(int tid) const {
  const Participant& p = *participants_[static_cast<size_t>(tid)];
  if (p.state != State::kBlockedCv || !p.cv_timed || p.woken ||
      p.timed_fired) {
    return false;
  }
  auto it = vlocks_.find(p.wait_lock);
  return it == vlocks_.end() || lock_available(it->second, p.wait_mode, tid);
}

bool CheckSession::abort_check() {
  if (!abort_) return false;
  if (std::uncaught_exceptions() == 0) throw AbortRun{};
  return true;  // unwinding: degrade to a no-op
}

uint32_t CheckSession::forced_choice(uint32_t options) {
  const size_t index = decisions_.size();
  const uint32_t want =
      index < options_.forced.size() ? options_.forced[index] : 0;
  return std::min(want, options - 1);
}

uint32_t CheckSession::choose_thread(const std::vector<int>& pool) {
  const auto options = static_cast<uint32_t>(pool.size());
  uint32_t chosen = 0;
  if (options_.enumerate) {
    chosen = forced_choice(options);
  } else {
    for (uint32_t i = 1; i < options; ++i) {
      if (participants_[static_cast<size_t>(pool[i])]->priority >
          participants_[static_cast<size_t>(pool[chosen])]->priority) {
        chosen = i;
      }
    }
  }
  decisions_.push_back(Decision{chosen, options});
  return chosen;
}

uint32_t CheckSession::choose_uniform(uint32_t options) {
  uint32_t chosen = 0;
  if (options_.enumerate) {
    chosen = forced_choice(options);
  } else if (options > 1) {
    chosen = static_cast<uint32_t>(
        rng_.uniform_int(0, static_cast<int64_t>(options) - 1));
  }
  decisions_.push_back(Decision{chosen, options});
  return chosen;
}

void CheckSession::step(std::unique_lock<std::mutex>& g, int self) {
  ++step_;
  if (step_ > options_.max_steps) {
    add_schedule_diag(
        analysis::kLiveLock,
        "schedule exceeded " + std::to_string(options_.max_steps) +
            " steps without completing (possible livelock under virtual "
            "time)",
        analysis::Anchor::site("scheduler"));
    abort_run(g);
    throw AbortRun{};
  }
  if (next_change_ < change_points_.size() &&
      step_ >= change_points_[next_change_]) {
    ++next_change_;
    // PCT change point: demote the running thread below every base
    // priority (later change points land above earlier ones).
    participant(self).priority = low_priority_next_++;
  }
  participant(self).state = State::kRunnable;
  reschedule_and_park(g, self);
  participant(self).state = State::kRunning;
}

void CheckSession::reschedule_and_park(std::unique_lock<std::mutex>& g,
                                       int self) {
  pick_next(g);
  cv_.notify_all();
  park(g, self);
}

void CheckSession::park(std::unique_lock<std::mutex>& g, int self) {
  Participant& p = participant(self);
  cv_.wait(g, [&] { return p.go || abort_; });
  if (abort_) throw AbortRun{};
  p.go = false;
}

void CheckSession::pick_next(std::unique_lock<std::mutex>& g) {
  if (abort_ || all_done_) return;
  std::vector<int> pool;
  for (int i = 0; i < static_cast<int>(participants_.size()); ++i) {
    if (eligible(i)) pool.push_back(i);
  }
  bool timed_fallback = false;
  if (pool.empty()) {
    // Virtual time: only when nothing can run otherwise may a timed wait
    // fire its timeout (time jumps to the earliest deadline).
    for (int i = 0; i < static_cast<int>(participants_.size()); ++i) {
      if (timeout_eligible(i)) pool.push_back(i);
    }
    timed_fallback = true;
  }
  if (pool.empty()) {
    bool any_unfinished = false;
    for (const auto& p : participants_) {
      if (p->state != State::kFinished) {
        any_unfinished = true;
        break;
      }
    }
    if (!any_unfinished) {
      all_done_ = true;
      cv_.notify_all();
      return;
    }
    handle_deadlock(g);
    return;
  }
  const uint32_t chosen = choose_thread(pool);
  Participant& next = participant(pool[chosen]);
  if (timed_fallback) {
    next.timed_fired = true;
    next.woken = false;
  }
  next.go = true;
}

void CheckSession::add_schedule_diag(const char* code, std::string message,
                                     analysis::Anchor primary,
                                     analysis::Anchor secondary) {
  analysis::Diagnostic d;
  d.code = code;
  d.severity = analysis::Severity::kError;
  d.message = std::move(message);
  d.primary = std::move(primary);
  d.secondary = std::move(secondary);
  engine_.report().diagnostics.push_back(std::move(d));
}

void CheckSession::abort_run(std::unique_lock<std::mutex>&) {
  abort_ = true;
  cv_.notify_all();
}

void CheckSession::handle_deadlock(std::unique_lock<std::mutex>& g) {
  // Wait-for edges: blocked thread -> holders of the lock it needs (a
  // woken condvar waiter is blocked on reacquiring its mutex).
  std::map<int, std::vector<int>> wait_for;
  auto lock_waiter = [](const Participant& p) {
    return p.state == State::kBlockedLock ||
           (p.state == State::kBlockedCv && (p.woken || p.timed_fired));
  };
  for (int i = 0; i < static_cast<int>(participants_.size()); ++i) {
    const Participant& p = *participants_[static_cast<size_t>(i)];
    if (!lock_waiter(p)) continue;
    auto it = vlocks_.find(p.wait_lock);
    if (it == vlocks_.end()) continue;
    if (it->second.exclusive_owner >= 0) {
      wait_for[i].push_back(it->second.exclusive_owner);
    }
    for (int owner : it->second.shared_owners) wait_for[i].push_back(owner);
  }

  // Find one wait-for cycle (threads are few: simple DFS with a path).
  std::vector<int> cycle;
  {
    std::vector<int> path;
    std::set<int> on_path;
    std::set<int> visited;
    std::function<bool(int)> dfs = [&](int t) -> bool {
      if (on_path.count(t) != 0) {
        auto begin = std::find(path.begin(), path.end(), t);
        cycle.assign(begin, path.end());
        return true;
      }
      if (visited.count(t) != 0) return false;
      visited.insert(t);
      on_path.insert(t);
      path.push_back(t);
      auto it = wait_for.find(t);
      if (it != wait_for.end()) {
        for (int next : it->second) {
          if (dfs(next)) return true;
        }
      }
      on_path.erase(t);
      path.pop_back();
      return false;
    };
    for (const auto& [t, unused] : wait_for) {
      if (dfs(t)) break;
    }
  }

  bool classified = false;
  if (!cycle.empty()) {
    std::string message = "deadlock: ";
    for (size_t i = 0; i < cycle.size(); ++i) {
      const Participant& p = *participants_[static_cast<size_t>(cycle[i])];
      if (i > 0) message += "; ";
      message += "thread '" + p.name + "' waits for '" +
                 (p.wait_lock_name != nullptr ? p.wait_lock_name : "lock") +
                 "' held by thread '" +
                 participants_[static_cast<size_t>(
                                   cycle[(i + 1) % cycle.size()])]
                     ->name +
                 "'";
    }
    const Participant& first = *participants_[static_cast<size_t>(cycle[0])];
    add_schedule_diag(analysis::kLockCycle, std::move(message),
                      analysis::Anchor::site("thread '" + first.name + "'"));
    classified = true;
  }

  // Lost wakeups: a thread parked in an untimed condvar wait whose condvar
  // was only ever notified before the wait began.
  for (const auto& p : participants_) {
    if (p->state != State::kBlockedCv || p->cv_timed || p->woken ||
        p->timed_fired) {
      continue;
    }
    auto it = vcvs_.find(p->wait_cv);
    const char* cv_name =
        it != vcvs_.end() ? it->second.name : "condvar";
    if (it != vcvs_.end() && it->second.notify_count > 0) {
      add_schedule_diag(
          analysis::kLostWakeup,
          "lost wakeup: thread '" + p->name + "' is blocked in wait on '" +
              cv_name + "' but the condvar was notified " +
              std::to_string(it->second.notify_count) +
              " time(s), all before the wait began (notify raced ahead of "
              "the waiter)",
          analysis::Anchor::site("thread '" + p->name + "' wait on '" +
                                 std::string(cv_name) + "'"));
      classified = true;
    }
  }

  if (!classified) {
    std::string message = "deadlock: no runnable thread";
    for (const auto& p : participants_) {
      if (p->state == State::kFinished || p->state == State::kRunnable) {
        continue;
      }
      message += "; thread '" + p->name + "' blocked";
      if (p->state == State::kBlockedCv) {
        auto it = vcvs_.find(p->wait_cv);
        message += " on '" +
                   std::string(it != vcvs_.end() ? it->second.name
                                                 : "condvar") +
                   "'";
      } else if (p->state == State::kBlockedLock) {
        message +=
            " on '" +
            std::string(p->wait_lock_name != nullptr ? p->wait_lock_name
                                                     : "lock") +
            "'";
      } else if (p->state == State::kBlockedJoin && p->join_target >= 0) {
        message +=
            " joining thread '" +
            participants_[static_cast<size_t>(p->join_target)]->name + "'";
      }
    }
    add_schedule_diag(analysis::kLockCycle, std::move(message),
                      analysis::Anchor::site("scheduler"));
  }
  abort_run(g);
}

// --- EventSink: recording mode ----------------------------------------------

void CheckSession::rec_acquired(void* lock, LockMode mode, const char* name) {
  std::unique_lock<std::mutex> g(mutex_);
  engine_.acquired(t_tid, lock, mode, name);
}

void CheckSession::rec_released(void* lock, LockMode mode) {
  std::unique_lock<std::mutex> g(mutex_);
  engine_.released(t_tid, lock, mode);
}

void CheckSession::rec_notify(void* cv, bool all) {
  (void)all;
  std::unique_lock<std::mutex> g(mutex_);
  engine_.cv_notify(t_tid, cv);
}

// --- EventSink: virtualized mode --------------------------------------------

void CheckSession::v_lock(void* lock, LockMode mode, const char* name) {
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_check()) return;
  const int self = self_tid();
  step(g, self);
  VLock& l = vlocks_[lock];
  if (name != nullptr) l.name = name;
  Participant& p = participant(self);
  if (!lock_available(l, mode, self)) {
    p.state = State::kBlockedLock;
    p.wait_lock = lock;
    p.wait_mode = mode;
    p.wait_lock_name = l.name;
    reschedule_and_park(g, self);
    p.state = State::kRunning;
    p.wait_lock = nullptr;
  }
  do_acquire(l, mode, self);
  engine_.acquired(self, lock, mode, l.name);
}

bool CheckSession::v_try_lock(void* lock, LockMode mode, const char* name) {
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_check()) return false;
  const int self = self_tid();
  step(g, self);
  VLock& l = vlocks_[lock];
  if (name != nullptr) l.name = name;
  if (!lock_available(l, mode, self)) return false;
  do_acquire(l, mode, self);
  engine_.acquired(self, lock, mode, l.name);
  return true;
}

void CheckSession::v_unlock(void* lock, LockMode mode) {
  // Never throws: unlock runs inside lock-guard destructors. The release
  // itself is not a preemption point — the next instrumented operation of
  // this thread is, which observes the same interleavings.
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_) return;
  const int self = self_tid();
  do_release(vlocks_[lock], mode, self);
  engine_.released(self, lock, mode);
}

bool CheckSession::v_wait(void* cv, void* lock, const char* cv_name,
                          const char* lock_name, bool timed) {
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_check()) return true;
  const int self = self_tid();
  step(g, self);
  VCv& c = vcvs_[cv];
  if (cv_name != nullptr) c.name = cv_name;
  Participant& p = participant(self);
  do_release(vlocks_[lock], LockMode::kExclusive, self);
  engine_.released(self, lock, LockMode::kExclusive);
  p.state = State::kBlockedCv;
  p.wait_cv = cv;
  p.wait_lock = lock;
  p.wait_mode = LockMode::kExclusive;
  p.wait_lock_name = lock_name != nullptr ? lock_name : "lock";
  p.cv_timed = timed;
  p.woken = false;
  p.timed_fired = false;
  reschedule_and_park(g, self);
  // Scheduled again ⇒ notified (or virtual timeout) and the mutex is free.
  p.state = State::kRunning;
  do_acquire(vlocks_[lock], LockMode::kExclusive, self);
  engine_.acquired(self, lock, LockMode::kExclusive, p.wait_lock_name);
  const bool notified = p.woken;
  if (notified) engine_.cv_wake(self, cv);
  p.wait_cv = nullptr;
  p.wait_lock = nullptr;
  p.woken = false;
  p.timed_fired = false;
  p.cv_timed = false;
  return notified;
}

void CheckSession::v_notify(void* cv, bool all) {
  // Never throws (notify runs in close()/shutdown paths and destructors);
  // not a preemption point for the same reason as v_unlock.
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_) return;
  const int self = self_tid();
  VCv& c = vcvs_[cv];
  c.notify_count++;
  engine_.cv_notify(self, cv);
  std::vector<int> waiters;
  for (int i = 0; i < static_cast<int>(participants_.size()); ++i) {
    const Participant& p = *participants_[static_cast<size_t>(i)];
    if (p.state == State::kBlockedCv && p.wait_cv == cv && !p.woken &&
        !p.timed_fired) {
      waiters.push_back(i);
    }
  }
  if (waiters.empty()) return;
  if (all) {
    for (int w : waiters) participant(w).woken = true;
  } else {
    const uint32_t k =
        choose_uniform(static_cast<uint32_t>(waiters.size()));
    participant(waiters[k]).woken = true;
  }
}

// --- EventSink: thread lifecycle --------------------------------------------

int CheckSession::thread_created(const char* name) {
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_) return -1;
  const int self = self_tid();
  const int tid = static_cast<int>(participants_.size());
  auto p = std::make_unique<Participant>();
  p->name = name != nullptr ? name : ("thread-" + std::to_string(tid));
  p->priority = 1000 + (rng_.next() >> 44);
  p->state = State::kRunnable;
  participants_.push_back(std::move(p));
  engine_.begin_thread(tid, participants_.back()->name);
  engine_.fork(self, tid);
  return tid;
}

void CheckSession::thread_started(int id) {
  if (options_.mode == Mode::kRecord) return;
  std::unique_lock<std::mutex> g(mutex_);
  park(g, id);  // AbortRun is caught by the sync::Thread wrapper
  participant(id).state = State::kRunning;
}

void CheckSession::thread_exited(int id) {
  std::unique_lock<std::mutex> g(mutex_);
  Participant& p = participant(id);
  p.state = State::kFinished;
  if (options_.mode == Mode::kRecord) return;
  if (abort_) {
    cv_.notify_all();
    return;
  }
  pick_next(g);
  cv_.notify_all();
}

void CheckSession::thread_joined(int id) {
  std::unique_lock<std::mutex> g(mutex_);
  const int self = self_tid();
  if (options_.mode == Mode::kRecord) {
    // Called after the real join: the child's clock is final.
    engine_.join(self, id);
    return;
  }
  if (abort_check()) return;
  step(g, self);
  Participant& p = participant(self);
  if (participant(id).state != State::kFinished) {
    p.state = State::kBlockedJoin;
    p.join_target = id;
    reschedule_and_park(g, self);
    p.state = State::kRunning;
    p.join_target = -1;
  }
  engine_.join(self, id);
}

// --- EventSink: annotations -------------------------------------------------

void CheckSession::mem_access(const void* addr, size_t size, bool write,
                              const Site& site) {
  std::unique_lock<std::mutex> g(mutex_);
  if (options_.mode == Mode::kExplore) {
    if (abort_check()) return;
    step(g, self_tid());
  }
  engine_.access(self_tid(), addr, size, write, site);
}

void CheckSession::mem_reset(const void* addr, size_t size) {
  // Never throws / never yields: reset runs in recycle paths that may sit
  // inside destructors.
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_) return;
  engine_.reset(addr, size);
}

void CheckSession::hb_acquire(const void* token) {
  std::unique_lock<std::mutex> g(mutex_);
  if (options_.mode == Mode::kExplore) {
    if (abort_check()) return;
    step(g, self_tid());
  }
  engine_.hb_acquire(self_tid(), token);
}

void CheckSession::hb_release(const void* token) {
  std::unique_lock<std::mutex> g(mutex_);
  if (options_.mode == Mode::kExplore) {
    if (abort_check()) return;
    step(g, self_tid());
  }
  engine_.hb_release(self_tid(), token);
}

void CheckSession::hb_fence() {
  std::unique_lock<std::mutex> g(mutex_);
  if (options_.mode == Mode::kExplore) {
    if (abort_check()) return;
    step(g, self_tid());
  }
  engine_.fence(self_tid());
}

void CheckSession::yield_point() {
  if (options_.mode != Mode::kExplore) return;
  std::unique_lock<std::mutex> g(mutex_);
  if (abort_check()) return;
  step(g, self_tid());
}

int CheckSession::register_thread() {
  if (options_.mode != Mode::kRecord) return -1;
  std::unique_lock<std::mutex> g(mutex_);
  const int tid = static_cast<int>(participants_.size());
  auto p = std::make_unique<Participant>();
  p->name = "thread-" + std::to_string(tid);
  p->state = State::kRunning;
  participants_.push_back(std::move(p));
  engine_.begin_thread(tid, participants_.back()->name);
  return tid;
}

}  // namespace p2g::check
