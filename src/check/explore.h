// Schedule exploration driver (p2gcheck).
//
// A check suite is a callback that spawns participant threads on a fresh
// CheckSession; the explorer runs it many times:
//
//   - seed sweep: N independent PCT schedules (seeds s, s+1, ...); any
//     finding names the seed that produced it, and re-running that single
//     seed replays the identical schedule (decisions are a pure function
//     of seed and event sequence).
//   - exhaustive: systematic enumeration of every scheduling decision via
//     forced-prefix DFS — feasible for small bodies, bounded by max_runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/session.h"

namespace p2g::check {

/// Spawns the suite's threads on the session (must not call run()).
using SuiteBody = std::function<void(CheckSession&)>;

struct RunResult {
  uint64_t seed = 0;
  analysis::LintReport report;
  std::string trace;  ///< decision trace ("1/3 0/1 ...") for replay checks
};

struct SweepOptions {
  uint64_t first_seed = 1;
  uint32_t seeds = 100;
  bool stop_on_finding = true;
  bool exhaustive = false;
  uint32_t max_runs = 1024;  ///< exhaustive budget
};

struct SweepResult {
  uint32_t runs = 0;
  /// Exhaustive mode only: every schedule was enumerated within budget.
  bool complete = false;
  /// Runs that produced diagnostics (just the first when stop_on_finding).
  std::vector<RunResult> failures;

  bool clean() const { return failures.empty(); }
};

/// One PCT run from a seed.
RunResult run_once(const SuiteBody& body, uint64_t seed);

/// One enumerate-mode run with a forced decision prefix.
RunResult run_forced(const SuiteBody& body, std::vector<uint32_t> forced,
                     uint64_t seed = 1);

SweepResult sweep(const SuiteBody& body, const SweepOptions& options);

}  // namespace p2g::check
