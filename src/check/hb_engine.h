// FastTrack-style happens-before engine + lock-order graph (p2gcheck).
//
// Consumes the event stream of one CheckSession (lock acquire/release,
// condvar notify/wake, thread fork/join, annotated memory accesses and
// acquire/release/fence edges) and reports:
//
//   P2G-C001  data race: two accesses to overlapping memory, at least one
//             a write, unordered by happens-before. Both racing sites are
//             named (thread, operation, label, file:line).
//   P2G-C002  lock-order cycle: the transitive "acquired while holding"
//             graph contains a cycle — a potential deadlock even when no
//             schedule in this run manifested it. (Manifest deadlocks are
//             reported by the scheduler with the same code.)
//
// Happens-before model: per-thread vector clocks; mutexes release into a
// write clock that acquirers join; shared mutexes keep a separate reader
// release clock that only exclusive acquirers join (so reader/reader
// sections stay concurrent and cannot mask writer races). Annotated
// acquire/release tokens model atomics; fence() models seq-cst fences via
// one global clock. Memory is tracked at 8-byte cell granularity —
// FastTrack epochs per cell, inflating to full read vector clocks only for
// read-shared cells.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "check/sync.h"
#include "check/vector_clock.h"

namespace p2g::check {

class HbEngine {
 public:
  /// Logical threads are dense small ints assigned by the session.
  void begin_thread(int tid, std::string name);
  const std::string& thread_name(int tid) const;

  /// Child starts with everything the parent has done (fork edge).
  void fork(int parent, int child);
  /// Parent observes everything the child did (join edge).
  void join(int parent, int child);

  void acquired(int tid, const void* lock, LockMode mode, const char* name);
  void released(int tid, const void* lock, LockMode mode);

  /// Condvar edges: notify releases into the cv token, a woken waiter
  /// acquires from it (the mutex provides the usual edge as well; the
  /// token covers naked notifies).
  void cv_notify(int tid, const void* cv);
  void cv_wake(int tid, const void* cv);

  void access(int tid, const void* addr, size_t size, bool write,
              const Site& site);
  void reset(const void* addr, size_t size);
  void hb_acquire(int tid, const void* token);
  void hb_release(int tid, const void* token);
  void fence(int tid);

  /// Runs end-of-session analyses (lock-order cycle detection) and appends
  /// their findings. Idempotent per cycle thanks to dedup keys.
  void finish();

  /// Findings accumulate here (the session also appends scheduler-level
  /// findings: manifest deadlocks, lost wakeups).
  analysis::LintReport& report() { return report_; }
  const analysis::LintReport& report() const { return report_; }

  /// Locks currently held by a thread (lock-order bookkeeping; the
  /// scheduler reuses it to describe manifest deadlocks).
  const std::vector<const void*>& held(int tid) const;
  const char* lock_name(const void* lock) const;

 private:
  struct ThreadState {
    VectorClock vc;
    std::string name;
    std::vector<const void*> held;
  };

  struct LockState {
    VectorClock release_write;  ///< last exclusive release
    VectorClock release_read;   ///< joined shared releases since
    const char* name = "lock";
  };

  struct CellState {
    Epoch write;
    Site write_site;
    Epoch read;  ///< exclusive read epoch (read_shared == false)
    Site read_site;
    bool read_shared = false;
    VectorClock read_vc;
    std::map<int, Site> read_sites;  ///< per reader tid when shared
  };

  struct Edge {
    const char* from_name;
    const char* to_name;
    int tid;  ///< witness thread
  };

  ThreadState& thread(int tid);
  void report_race(int tid, const Site& site, bool write, int other_tid,
                   const Site& other_site, bool other_write,
                   const char* what);

  std::vector<ThreadState> threads_;
  std::map<const void*, LockState> locks_;
  std::map<const void*, VectorClock> tokens_;  ///< annotations + cv tokens
  VectorClock fence_clock_;
  std::map<uintptr_t, CellState> cells_;
  std::map<std::pair<const void*, const void*>, Edge> lock_edges_;
  std::set<std::string> reported_;  ///< dedup keys (races and cycles)
  analysis::LintReport report_;
};

}  // namespace p2g::check
