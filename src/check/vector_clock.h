// Vector clocks and epochs for the happens-before engine (FastTrack).
//
// A vector clock maps logical thread ids to event counters; an epoch is
// one (thread, counter) pair — FastTrack's insight is that most variables
// only ever need the epoch of their last write/read, inflating to a full
// clock only for read-shared data.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace p2g::check {

/// One (thread, counter) pair. tid < 0 means "never accessed".
struct Epoch {
  int tid = -1;
  uint64_t clock = 0;

  bool valid() const { return tid >= 0; }
};

class VectorClock {
 public:
  uint64_t get(int tid) const {
    const auto index = static_cast<size_t>(tid);
    return index < counters_.size() ? counters_[index] : 0;
  }

  void set(int tid, uint64_t value) {
    const auto index = static_cast<size_t>(tid);
    if (index >= counters_.size()) counters_.resize(index + 1, 0);
    counters_[index] = value;
  }

  void tick(int tid) { set(tid, get(tid) + 1); }

  /// Pointwise maximum (join).
  void join(const VectorClock& other) {
    if (other.counters_.size() > counters_.size()) {
      counters_.resize(other.counters_.size(), 0);
    }
    for (size_t i = 0; i < other.counters_.size(); ++i) {
      counters_[i] = std::max(counters_[i], other.counters_[i]);
    }
  }

  /// epoch happens-before (or equals) this clock.
  bool covers(const Epoch& epoch) const {
    return epoch.clock <= get(epoch.tid);
  }

  /// Every entry of `other` is <= the matching entry here.
  bool covers(const VectorClock& other) const {
    for (size_t i = 0; i < other.counters_.size(); ++i) {
      if (other.counters_[i] > get(static_cast<int>(i))) return false;
    }
    return true;
  }

  void clear() { counters_.clear(); }
  bool empty() const { return counters_.empty(); }
  size_t size() const { return counters_.size(); }

 private:
  std::vector<uint64_t> counters_;
};

}  // namespace p2g::check
