// Named check-suite registry (p2gcheck CLI and tests).
//
// A suite pairs a name with a SuiteBody plus the expectation contract the
// CLI enforces: ordinary suites must sweep clean, fixture suites
// (expect_findings) exist to prove the checker finds a seeded bug and fail
// the run when it does NOT.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "check/explore.h"

namespace p2g::check {

struct CheckSuite {
  std::string name;
  std::string description;
  SuiteBody body;
  /// Fixture suites: the sweep MUST produce diagnostics (seeded bugs that
  /// prove the checker works); the expected code is listed for reporting.
  bool expect_findings = false;
  std::string expected_code;
};

/// Registry, in registration order.
std::vector<CheckSuite>& suites();

/// Registers (replacing any suite with the same name).
void register_suite(CheckSuite suite);

const CheckSuite* find_suite(std::string_view name);

/// Registers the built-in suites over the converted core/dist/ft
/// subsystems (idempotent). Explicit call — no static initializers to be
/// dropped by the linker.
void register_builtin_suites();

}  // namespace p2g::check
