#include "check/explore.h"

#include <utility>

namespace p2g::check {

RunResult run_once(const SuiteBody& body, uint64_t seed) {
  CheckSession::Options options;
  options.mode = CheckSession::Mode::kExplore;
  options.seed = seed;
  CheckSession session(options);
  body(session);
  session.run();
  return RunResult{seed, session.report(), session.decision_trace()};
}

RunResult run_forced(const SuiteBody& body, std::vector<uint32_t> forced,
                     uint64_t seed) {
  CheckSession::Options options;
  options.mode = CheckSession::Mode::kExplore;
  options.seed = seed;
  options.enumerate = true;
  options.forced = std::move(forced);
  CheckSession session(options);
  body(session);
  session.run();
  return RunResult{seed, session.report(), session.decision_trace()};
}

namespace {

SweepResult sweep_exhaustive(const SuiteBody& body,
                             const SweepOptions& options) {
  SweepResult out;
  // Forced-prefix DFS: run with a prefix, decisions past it default to
  // candidate 0; every untried alternative at or past the prefix becomes a
  // new prefix. Enumerates the full schedule tree without repetition.
  std::vector<std::vector<uint32_t>> stack;
  stack.emplace_back();
  while (!stack.empty() && out.runs < options.max_runs) {
    std::vector<uint32_t> prefix = std::move(stack.back());
    stack.pop_back();

    CheckSession::Options sopt;
    sopt.mode = CheckSession::Mode::kExplore;
    sopt.seed = options.first_seed;
    sopt.enumerate = true;
    sopt.forced = prefix;
    CheckSession session(sopt);
    body(session);
    session.run();
    ++out.runs;

    const std::vector<Decision>& decisions = session.decisions();
    for (size_t i = decisions.size(); i-- > prefix.size();) {
      for (uint32_t alt = decisions[i].options; alt-- > 1;) {
        std::vector<uint32_t> next;
        next.reserve(i + 1);
        for (size_t j = 0; j < i; ++j) next.push_back(decisions[j].chosen);
        next.push_back(alt);
        stack.push_back(std::move(next));
      }
    }

    if (!session.report().empty()) {
      out.failures.push_back(RunResult{options.first_seed, session.report(),
                                       session.decision_trace()});
      if (options.stop_on_finding) return out;
    }
  }
  out.complete = stack.empty();
  return out;
}

}  // namespace

SweepResult sweep(const SuiteBody& body, const SweepOptions& options) {
  if (options.exhaustive) return sweep_exhaustive(body, options);
  SweepResult out;
  for (uint32_t k = 0; k < options.seeds; ++k) {
    RunResult run = run_once(body, options.first_seed + k);
    ++out.runs;
    if (!run.report.empty()) {
      out.failures.push_back(std::move(run));
      if (options.stop_on_finding) break;
    }
  }
  return out;
}

}  // namespace p2g::check
