// CheckSession: the event sink behind the instrumented primitives.
//
// Two modes:
//
//  kRecord   — passive. Real locks are taken as usual; every operation is
//              reported (under a session mutex) to the happens-before
//              engine, which flags data races and lock-order cycles in
//              whatever schedule the OS happened to produce.
//
//  kExplore  — active. The session virtualizes every instrumented
//              primitive: participant threads are serialized by a token so
//              exactly one runs at a time, locks and condition variables
//              are purely logical, and a PCT-style seeded priority
//              scheduler decides every interleaving. The same seed always
//              produces the same schedule (decisions are a pure function
//              of seed and event sequence), so any finding replays
//              bit-exactly. Timed waits use virtual time: a timed waiter
//              can only fire its timeout when no untimed thread can run,
//              which models "time jumps to the deadline" and keeps
//              retransmit-style loops from starving the schedule.
//
// Scheduler-level findings:
//   P2G-C002  manifest deadlock (every thread blocked; lock wait-for cycle
//             described when present) — also emitted by the engine for
//             *potential* lock-order cycles that did not manifest.
//   P2G-C003  lost wakeup: at deadlock, a thread is blocked in an untimed
//             condition-variable wait whose condvar was only notified
//             before the wait began.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/hb_engine.h"
#include "check/sync.h"
#include "common/rng.h"

namespace p2g::check {

/// One scheduling decision: which of `options` eligible threads ran.
/// The sequence of decisions *is* the schedule; two runs with the same
/// seed must produce identical traces (see check_test determinism test).
struct Decision {
  uint32_t chosen = 0;
  uint32_t options = 1;
};

class CheckSession final : public EventSink {
 public:
  enum class Mode { kRecord, kExplore };

  struct Options {
    Mode mode = Mode::kExplore;
    uint64_t seed = 1;
    /// PCT depth: number of priority change points injected per run.
    int priority_changes = 3;
    /// Abort the run (with a diagnostic) past this many scheduling steps —
    /// the backstop for livelocks under virtual time.
    uint64_t max_steps = 200000;
    /// kRecord only: lazily register every thread that touches an
    /// instrumented primitive.
    bool capture_all = true;
    /// kExplore only: replace the PCT priority policy with systematic
    /// enumeration — decision i picks eligible candidate forced[i]
    /// (clamped), decisions past the end pick candidate 0. The exhaustive
    /// explorer drives this with growing prefixes.
    bool enumerate = false;
    std::vector<uint32_t> forced;
  };

  explicit CheckSession(Options options);
  ~CheckSession() override;

  CheckSession(const CheckSession&) = delete;
  CheckSession& operator=(const CheckSession&) = delete;

  /// kExplore: registers a participant thread. Call before run().
  void spawn(std::string name, std::function<void()> body);

  /// kExplore: runs all spawned threads to completion (or deadlock /
  /// abort) under the seeded schedule, then finalizes the report.
  void run();

  /// Uninstalls the session and runs end-of-run analyses (idempotent;
  /// kRecord callers use this, run() calls it for kExplore).
  void finish();

  uint64_t seed() const { return options_.seed; }
  analysis::LintReport& report() { return engine_.report(); }
  const analysis::LintReport& report() const { return engine_.report(); }
  HbEngine& engine() { return engine_; }

  /// The schedule actually taken (kExplore).
  const std::vector<Decision>& decisions() const { return decisions_; }
  /// Decisions rendered as "2/3 0/1 1/2 ..." for replay comparison.
  std::string decision_trace() const;

  // --- EventSink ------------------------------------------------------------
  bool virtualized() const override { return options_.mode == Mode::kExplore; }

  void rec_acquired(void* lock, LockMode mode, const char* name) override;
  void rec_released(void* lock, LockMode mode) override;
  void rec_notify(void* cv, bool all) override;

  void v_lock(void* lock, LockMode mode, const char* name) override;
  bool v_try_lock(void* lock, LockMode mode, const char* name) override;
  void v_unlock(void* lock, LockMode mode) override;
  bool v_wait(void* cv, void* lock, const char* cv_name,
              const char* lock_name, bool timed) override;
  void v_notify(void* cv, bool all) override;

  int thread_created(const char* name) override;
  void thread_started(int id) override;
  void thread_exited(int id) override;
  void thread_joined(int id) override;

  void mem_access(const void* addr, size_t size, bool write,
                  const Site& site) override;
  void mem_reset(const void* addr, size_t size) override;
  void hb_acquire(const void* token) override;
  void hb_release(const void* token) override;
  void hb_fence() override;
  void yield_point() override;

  int register_thread() override;

 private:
  enum class State {
    kRunnable,
    kRunning,
    kBlockedLock,
    kBlockedCv,
    kBlockedJoin,
    kFinished,
  };

  struct Participant {
    std::string name;
    State state = State::kRunnable;
    uint64_t priority = 0;
    bool go = false;  ///< token handed to this thread

    // Blocking details.
    const void* wait_lock = nullptr;  ///< waited-for / to-reacquire lock
    LockMode wait_mode = LockMode::kExclusive;
    const char* wait_lock_name = "lock";
    const void* wait_cv = nullptr;
    bool cv_timed = false;
    bool woken = false;       ///< condvar wait satisfied by a notify
    bool timed_fired = false; ///< condvar wait satisfied by virtual timeout
    int join_target = -1;

    std::function<void()> body;  ///< spawn() participants only
    std::thread thread;          ///< spawn() participants only
  };

  struct VLock {
    int exclusive_owner = -1;
    std::vector<int> shared_owners;
    const char* name = "lock";
  };

  struct VCv {
    const char* name = "condvar";
    uint64_t notify_count = 0;
  };

  /// Thrown into parked participants when the run aborts (deadlock, step
  /// budget); unwinds their bodies so the runner can join them.
  struct AbortRun {};

  void install();
  void uninstall();

  int self_tid() const;
  Participant& participant(int tid);
  bool lock_available(const VLock& lock, LockMode mode, int tid) const;
  void do_acquire(VLock& lock, LockMode mode, int tid);
  void do_release(VLock& lock, LockMode mode, int tid);
  bool eligible(int tid) const;          ///< runnable now (untimed rules)
  bool timeout_eligible(int tid) const;  ///< runnable if time jumped

  /// Advances the step counter, applies PCT priority change points, and
  /// reschedules. Entry point for every virtualized operation.
  void step(std::unique_lock<std::mutex>& g, int self);
  /// Hands the token to the next thread per policy; parks `self` until it
  /// gets the token back. `self` must have its state set (kRunnable to
  /// stay in the race, a blocked state otherwise) before the call.
  void reschedule_and_park(std::unique_lock<std::mutex>& g, int self);
  /// Picks the next thread (or detects completion/deadlock) and sets its
  /// go flag. Does not park.
  void pick_next(std::unique_lock<std::mutex>& g);
  void park(std::unique_lock<std::mutex>& g, int self);
  /// Throws AbortRun when the run is aborting and no exception is already
  /// in flight; returns true (= caller must no-op) when unwinding.
  bool abort_check();
  /// Scheduling choice among pool candidates: PCT highest priority, or the
  /// forced/default pick in enumerate mode. Recorded in decisions_.
  uint32_t choose_thread(const std::vector<int>& pool);
  /// Uniform choice (notify_one target): seeded rng, or forced/default in
  /// enumerate mode. Recorded in decisions_.
  uint32_t choose_uniform(uint32_t options);
  uint32_t forced_choice(uint32_t options);
  void handle_deadlock(std::unique_lock<std::mutex>& g);
  void abort_run(std::unique_lock<std::mutex>& g);
  void add_schedule_diag(const char* code, std::string message,
                         analysis::Anchor primary,
                         analysis::Anchor secondary = analysis::Anchor::none());

  Options options_;
  uint32_t generation_ = 0;
  bool installed_ = false;
  bool finished_analyses_ = false;

  // All mutable scheduler/engine state below is guarded by mutex_ (a raw
  // std::mutex — session internals are never instrumented).
  std::mutex mutex_;
  std::condition_variable cv_;
  HbEngine engine_;
  Rng rng_;  // p2g::Rng
  std::vector<std::unique_ptr<Participant>> participants_;
  std::map<const void*, VLock> vlocks_;
  std::map<const void*, VCv> vcvs_;
  std::vector<Decision> decisions_;
  std::vector<uint64_t> change_points_;  ///< sorted PCT change steps
  size_t next_change_ = 0;
  uint64_t low_priority_next_ = 0;  ///< priority handed out at change point
  uint64_t step_ = 0;
  bool run_started_ = false;
  bool all_done_ = false;
  bool abort_ = false;
};

}  // namespace p2g::check
