// Baseline JPEG (4:2:0) frame encoder and decoder.
//
// The encoder is split along the paper's MJPEG pipeline (Fig. 8):
//   stage 1  dct_quantize_*: pixels -> quantized coefficient grids
//            (what the yDCT/uDCT/vDCT kernels do, one 8x8 block each),
//   stage 2  encode_jpeg_from_coeffs: headers + Huffman VLC
//            (what the VLC/write kernel does).
// encode_jpeg() runs both stages for the standalone/baseline encoder, and
// decode_jpeg() reverses the whole thing for round-trip testing.
#pragma once

#include <cstdint>
#include <vector>

#include "media/dct.h"
#include "media/huffman.h"
#include "media/quant.h"
#include "media/yuv.h"

namespace p2g::media {

/// Quantized DCT coefficients of one plane: blocks in raster order, 64
/// raster-order coefficients per block.
struct CoeffGrid {
  int blocks_h = 0;  ///< block rows
  int blocks_w = 0;  ///< block columns
  std::vector<int16_t> coeffs;

  CoeffGrid() = default;
  CoeffGrid(int bh, int bw)
      : blocks_h(bh),
        blocks_w(bw),
        coeffs(static_cast<size_t>(bh) * static_cast<size_t>(bw) *
               kBlockSize) {}

  int16_t* block(int by, int bx) {
    return coeffs.data() +
           (static_cast<size_t>(by) * static_cast<size_t>(blocks_w) +
            static_cast<size_t>(bx)) *
               kBlockSize;
  }
  const int16_t* block(int by, int bx) const {
    return const_cast<CoeffGrid*>(this)->block(by, bx);
  }
};

struct EncoderConfig {
  int quality = 50;
  bool fast_dct = false;  ///< AAN instead of the paper's naive DCT
};

/// Copies the 8x8 block at block coordinates (by, bx) out of a plane,
/// replicating edge pixels when the plane is not a multiple of 8.
void extract_block(const uint8_t* plane, int width, int height, int by,
                   int bx, uint8_t out[kBlockSize]);

/// DCT + quantization of one extracted block.
void dct_quantize_block(const uint8_t pixels[kBlockSize],
                        const QuantTable& table, bool fast_dct,
                        int16_t out[kBlockSize]);

/// Full plane: extract + DCT + quantize every block.
CoeffGrid dct_quantize_plane(const uint8_t* plane, int width, int height,
                             const QuantTable& table, bool fast_dct);

/// Stage 2: headers + entropy coding of pre-quantized coefficient grids.
/// The chroma grids must be exactly half the luma grid in both dimensions
/// (4:2:0, 2x2/1x1 sampling).
std::vector<uint8_t> encode_jpeg_from_coeffs(
    int width, int height, const CoeffGrid& y, const CoeffGrid& u,
    const CoeffGrid& v, const QuantTable& luma_table,
    const QuantTable& chroma_table);

/// Both stages: one YUV 4:2:0 frame to a JFIF byte stream.
std::vector<uint8_t> encode_jpeg(const YuvFrame& frame,
                                 const EncoderConfig& config = {});

/// Decodes a baseline 4:2:0 JPEG produced by this encoder (also accepts
/// generic three-component baseline streams without restart markers).
YuvFrame decode_jpeg(const uint8_t* data, size_t size);
inline YuvFrame decode_jpeg(const std::vector<uint8_t>& bytes) {
  return decode_jpeg(bytes.data(), bytes.size());
}

}  // namespace p2g::media
