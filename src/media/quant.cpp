#include "media/quant.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace p2g::media {

const QuantTable& standard_luma_table() {
  static const QuantTable table = {
      16, 11, 10, 16, 24,  40,  51,  61,
      12, 12, 14, 19, 26,  58,  60,  55,
      14, 13, 16, 24, 40,  57,  69,  56,
      14, 17, 22, 29, 51,  87,  80,  62,
      18, 22, 37, 56, 68,  109, 103, 77,
      24, 35, 55, 64, 81,  104, 113, 92,
      49, 64, 78, 87, 103, 121, 120, 101,
      72, 92, 95, 98, 112, 100, 103, 99};
  return table;
}

const QuantTable& standard_chroma_table() {
  static const QuantTable table = {
      17, 18, 24, 47, 99, 99, 99, 99,
      18, 21, 26, 66, 99, 99, 99, 99,
      24, 26, 56, 99, 99, 99, 99, 99,
      47, 66, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99,
      99, 99, 99, 99, 99, 99, 99, 99};
  return table;
}

QuantTable scale_table(const QuantTable& base, int quality) {
  check_argument(quality >= 1 && quality <= 100,
                 "quality must be in [1, 100]");
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  QuantTable out;
  for (int i = 0; i < kBlockSize; ++i) {
    const int v = (static_cast<int>(base[static_cast<size_t>(i)]) * scale +
                   50) /
                  100;
    out[static_cast<size_t>(i)] =
        static_cast<uint16_t>(std::clamp(v, 1, 255));
  }
  return out;
}

const std::array<int, kBlockSize>& zigzag_order() {
  static const std::array<int, kBlockSize> order = {
      0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
      12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
      35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
      58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};
  return order;
}

const std::array<int, kBlockSize>& zigzag_inverse() {
  static const std::array<int, kBlockSize> inverse = [] {
    std::array<int, kBlockSize> inv{};
    const auto& order = zigzag_order();
    for (int k = 0; k < kBlockSize; ++k) {
      inv[static_cast<size_t>(order[static_cast<size_t>(k)])] = k;
    }
    return inv;
  }();
  return inverse;
}

void quantize(const double dct[kBlockSize], const QuantTable& table,
              int16_t out[kBlockSize]) {
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = static_cast<int16_t>(
        std::lround(dct[i] / static_cast<double>(table[static_cast<size_t>(i)])));
  }
}

void quantize_aan(const double scaled_dct[kBlockSize],
                  const QuantTable& table, int16_t out[kBlockSize]) {
  for (int u = 0; u < kBlockDim; ++u) {
    for (int v = 0; v < kBlockDim; ++v) {
      const int i = u * kBlockDim + v;
      const double divisor =
          static_cast<double>(table[static_cast<size_t>(i)]) *
          aan_scale_factor(u, v);
      out[i] = static_cast<int16_t>(std::lround(scaled_dct[i] / divisor));
    }
  }
}

void dequantize(const int16_t quantized[kBlockSize], const QuantTable& table,
                double out[kBlockSize]) {
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = static_cast<double>(quantized[i]) *
             static_cast<double>(table[static_cast<size_t>(i)]);
  }
}

}  // namespace p2g::media
