// MSB-first bit I/O with JPEG 0xFF byte stuffing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace p2g::media {

/// Writes bits MSB-first. When `stuffing` is enabled (JPEG entropy-coded
/// segments), every emitted 0xFF byte is followed by a 0x00 stuff byte.
class BitWriter {
 public:
  explicit BitWriter(bool stuffing = true) : stuffing_(stuffing) {}

  /// Appends the low `count` bits of `bits` (0 <= count <= 32), MSB first.
  void put_bits(uint32_t bits, int count);

  /// Pads the current byte with 1-bits (JPEG end-of-scan convention).
  void flush();

  /// Appends a raw byte (must be byte-aligned; used for markers).
  void put_byte(uint8_t byte);
  void put_u16(uint16_t value);  ///< big-endian, byte-aligned

  bool aligned() const { return bit_count_ == 0; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> take() { return std::move(bytes_); }
  size_t bit_position() const { return bytes_.size() * 8 + static_cast<size_t>(bit_count_); }

 private:
  void emit(uint8_t byte);

  std::vector<uint8_t> bytes_;
  uint32_t bit_buffer_ = 0;
  int bit_count_ = 0;
  bool stuffing_;
};

/// Reads bits MSB-first, transparently removing 0xFF00 stuffing.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size, bool stuffing = true)
      : data_(data), size_(size), stuffing_(stuffing) {}

  /// Next `count` bits (0 <= count <= 25). Throws kIo past the end.
  uint32_t get_bits(int count);

  /// Single bit.
  int get_bit();

  /// Byte offset of the next unread byte (after aligning).
  size_t byte_position() const { return pos_; }

  /// True when fewer than `count` bits remain.
  bool exhausted() const { return pos_ >= size_ && bit_count_ == 0; }

 private:
  void refill();

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint32_t bit_buffer_ = 0;
  int bit_count_ = 0;
  bool stuffing_;
};

}  // namespace p2g::media
