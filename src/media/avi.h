// AVI (RIFF) container for MJPEG streams.
//
// Raw concatenated JPEGs (mjpeg.h) are convenient inside the framework,
// but real tools expect MJPEG wrapped in AVI: a RIFF file with an 'hdrl'
// header list (avih + one 'vids'/'MJPG' stream), a 'movi' list of '00dc'
// chunks (one JPEG per frame) and an 'idx1' index. This writer/reader
// implements exactly that profile, so `mjpeg_encode --avi` output plays in
// ffplay/VLC and any AVI produced by this writer round-trips.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2g::media {

struct AviInfo {
  int width = 0;
  int height = 0;
  int fps = 25;
};

/// Serializes JPEG frames into an AVI byte stream.
std::vector<uint8_t> write_avi(const std::vector<std::vector<uint8_t>>& frames,
                               const AviInfo& info);

/// Writes the AVI to disk.
void write_avi_file(const std::string& path,
                    const std::vector<std::vector<uint8_t>>& frames,
                    const AviInfo& info);

/// Parses an AVI produced by this writer (or any MJPG AVI without odd
/// extensions): returns the per-frame JPEG buffers and fills `info`.
std::vector<std::vector<uint8_t>> read_avi(const std::vector<uint8_t>& bytes,
                                           AviInfo* info = nullptr);

std::vector<std::vector<uint8_t>> read_avi_file(const std::string& path,
                                                AviInfo* info = nullptr);

}  // namespace p2g::media
