// Planar YUV 4:2:0 frames, raw-file I/O and a deterministic synthetic
// sequence generator.
//
// The paper evaluates MJPEG on the *Foreman* CIF test sequence (352x288,
// 50 frames). That clip is not redistributable here, so the generator
// produces a deterministic synthetic CIF sequence (moving gradients,
// textured blocks and pseudo-noise) with the same geometry — identical
// macro-block counts and therefore identical P2G instance counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2g::media {

/// One planar YUV 4:2:0 frame. Chroma planes are half size in both
/// dimensions (CIF 352x288 -> 176x144 chroma).
struct YuvFrame {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> y;  ///< width * height
  std::vector<uint8_t> u;  ///< (width/2) * (height/2)
  std::vector<uint8_t> v;  ///< (width/2) * (height/2)

  YuvFrame() = default;
  YuvFrame(int w, int h);

  int chroma_width() const { return width / 2; }
  int chroma_height() const { return height / 2; }
};

/// A sequence of frames with uniform geometry.
struct YuvVideo {
  int width = 0;
  int height = 0;
  std::vector<YuvFrame> frames;

  size_t frame_count() const { return frames.size(); }
};

/// Deterministic synthetic sequence: per-frame moving gradient + block
/// texture + hash-noise. Same seed -> identical bytes.
YuvVideo generate_synthetic_video(int width, int height, int frames,
                                  uint32_t seed = 1);

/// Raw planar I420 file I/O (the layout used by the standard test clips).
void write_yuv_file(const std::string& path, const YuvVideo& video);
YuvVideo read_yuv_file(const std::string& path, int width, int height);

/// Peak signal-to-noise ratio between two equally sized planes (dB).
double psnr(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b);

}  // namespace p2g::media
