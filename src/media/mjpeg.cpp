#include "media/mjpeg.h"

#include <cstdio>

#include "common/error.h"

namespace p2g::media {

void MjpegWriter::add_frame(std::vector<uint8_t> jpeg_bytes) {
  check_argument(jpeg_bytes.size() >= 4 && jpeg_bytes[0] == 0xFF &&
                     jpeg_bytes[1] == 0xD8,
                 "frame does not start with SOI");
  offsets_.push_back(stream_.size());
  stream_.insert(stream_.end(), jpeg_bytes.begin(), jpeg_bytes.end());
}

void MjpegWriter::write_file(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  }
  std::fwrite(stream_.data(), 1, stream_.size(), f);
  std::fclose(f);
}

std::vector<std::vector<uint8_t>> split_mjpeg(
    const std::vector<uint8_t>& stream) {
  std::vector<std::vector<uint8_t>> frames;
  size_t start = SIZE_MAX;
  for (size_t i = 0; i + 1 < stream.size(); ++i) {
    if (stream[i] != 0xFF) continue;
    if (stream[i + 1] == 0xD8 && start == SIZE_MAX) {
      start = i;
    } else if (stream[i + 1] == 0xD9 && start != SIZE_MAX) {
      frames.emplace_back(stream.begin() + static_cast<ptrdiff_t>(start),
                          stream.begin() + static_cast<ptrdiff_t>(i + 2));
      start = SIZE_MAX;
      ++i;  // skip the D9
    }
  }
  if (start != SIZE_MAX) {
    throw_error(ErrorKind::kIo, "truncated final frame in MJPEG stream");
  }
  return frames;
}

std::vector<std::vector<uint8_t>> read_mjpeg_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> stream(static_cast<size_t>(len));
  const size_t got = std::fread(stream.data(), 1, stream.size(), f);
  std::fclose(f);
  if (got != stream.size()) {
    throw_error(ErrorKind::kIo, "short read on '" + path + "'");
  }
  return split_mjpeg(stream);
}

}  // namespace p2g::media
