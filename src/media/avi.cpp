#include "media/avi.h"

#include <cstdio>
#include <cstring>

#include "common/error.h"

namespace p2g::media {

namespace {

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
}

void put_fourcc(std::vector<uint8_t>& out, const char* cc) {
  // Byte-wise on purpose: range insert here trips GCC 12's
  // -Wstringop-overflow false positive under -O2.
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(cc[i]));
  }
}

/// Patches a previously reserved little-endian u32.
void patch_u32(std::vector<uint8_t>& out, size_t at, uint32_t v) {
  out[at] = static_cast<uint8_t>(v & 0xFF);
  out[at + 1] = static_cast<uint8_t>((v >> 8) & 0xFF);
  out[at + 2] = static_cast<uint8_t>((v >> 16) & 0xFF);
  out[at + 3] = static_cast<uint8_t>((v >> 24) & 0xFF);
}

uint32_t get_u32(const std::vector<uint8_t>& data, size_t at) {
  check_argument(at + 4 <= data.size(), "truncated AVI");
  return static_cast<uint32_t>(data[at]) |
         (static_cast<uint32_t>(data[at + 1]) << 8) |
         (static_cast<uint32_t>(data[at + 2]) << 16) |
         (static_cast<uint32_t>(data[at + 3]) << 24);
}

bool fourcc_at(const std::vector<uint8_t>& data, size_t at,
               const char* cc) {
  return at + 4 <= data.size() && std::memcmp(&data[at], cc, 4) == 0;
}

constexpr uint32_t kAvifHasIndex = 0x00000010;
constexpr uint32_t kAviIndexKeyframe = 0x00000010;

}  // namespace

std::vector<uint8_t> write_avi(
    const std::vector<std::vector<uint8_t>>& frames, const AviInfo& info) {
  check_argument(info.width > 0 && info.height > 0 && info.fps > 0,
                 "invalid AVI geometry");
  uint32_t max_frame = 0;
  for (const auto& frame : frames) {
    max_frame = std::max(max_frame, static_cast<uint32_t>(frame.size()));
  }

  std::vector<uint8_t> out;
  put_fourcc(out, "RIFF");
  const size_t riff_size_at = out.size();
  put_u32(out, 0);  // patched at the end
  put_fourcc(out, "AVI ");

  // ---- LIST hdrl ----------------------------------------------------------
  put_fourcc(out, "LIST");
  const size_t hdrl_size_at = out.size();
  put_u32(out, 0);
  const size_t hdrl_start = out.size();
  put_fourcc(out, "hdrl");

  // avih: main header.
  put_fourcc(out, "avih");
  put_u32(out, 56);
  put_u32(out, static_cast<uint32_t>(1'000'000 / info.fps));  // us/frame
  put_u32(out, max_frame * static_cast<uint32_t>(info.fps));  // bytes/sec
  put_u32(out, 0);                                            // padding
  put_u32(out, kAvifHasIndex);
  put_u32(out, static_cast<uint32_t>(frames.size()));
  put_u32(out, 0);  // initial frames
  put_u32(out, 1);  // streams
  put_u32(out, max_frame);
  put_u32(out, static_cast<uint32_t>(info.width));
  put_u32(out, static_cast<uint32_t>(info.height));
  for (int i = 0; i < 4; ++i) put_u32(out, 0);  // reserved

  // LIST strl { strh, strf }.
  put_fourcc(out, "LIST");
  const size_t strl_size_at = out.size();
  put_u32(out, 0);
  const size_t strl_start = out.size();
  put_fourcc(out, "strl");

  put_fourcc(out, "strh");
  put_u32(out, 56);
  put_fourcc(out, "vids");
  put_fourcc(out, "MJPG");
  put_u32(out, 0);  // flags
  put_u16(out, 0);  // priority
  put_u16(out, 0);  // language
  put_u32(out, 0);  // initial frames
  put_u32(out, 1);  // scale
  put_u32(out, static_cast<uint32_t>(info.fps));  // rate
  put_u32(out, 0);  // start
  put_u32(out, static_cast<uint32_t>(frames.size()));  // length
  put_u32(out, max_frame);  // suggested buffer
  put_u32(out, 0xFFFFFFFF); // quality (default)
  put_u32(out, 0);  // sample size
  put_u16(out, 0);  // rcFrame
  put_u16(out, 0);
  put_u16(out, static_cast<uint16_t>(info.width));
  put_u16(out, static_cast<uint16_t>(info.height));

  put_fourcc(out, "strf");
  put_u32(out, 40);  // BITMAPINFOHEADER
  put_u32(out, 40);
  put_u32(out, static_cast<uint32_t>(info.width));
  put_u32(out, static_cast<uint32_t>(info.height));
  put_u16(out, 1);   // planes
  put_u16(out, 24);  // bit count
  put_fourcc(out, "MJPG");
  put_u32(out, static_cast<uint32_t>(info.width * info.height * 3));
  put_u32(out, 0);
  put_u32(out, 0);
  put_u32(out, 0);
  put_u32(out, 0);

  patch_u32(out, strl_size_at,
            static_cast<uint32_t>(out.size() - strl_start));
  patch_u32(out, hdrl_size_at,
            static_cast<uint32_t>(out.size() - hdrl_start));

  // ---- LIST movi ----------------------------------------------------------
  put_fourcc(out, "LIST");
  const size_t movi_size_at = out.size();
  put_u32(out, 0);
  const size_t movi_start = out.size();
  put_fourcc(out, "movi");

  std::vector<std::pair<uint32_t, uint32_t>> index;  // offset, size
  for (const auto& frame : frames) {
    // idx1 offsets are relative to the 'movi' fourcc position.
    index.emplace_back(static_cast<uint32_t>(out.size() - movi_start),
                       static_cast<uint32_t>(frame.size()));
    put_fourcc(out, "00dc");
    put_u32(out, static_cast<uint32_t>(frame.size()));
    out.insert(out.end(), frame.begin(), frame.end());
    if (frame.size() % 2 != 0) out.push_back(0);  // even padding
  }
  patch_u32(out, movi_size_at,
            static_cast<uint32_t>(out.size() - movi_start));

  // ---- idx1 ---------------------------------------------------------------
  put_fourcc(out, "idx1");
  put_u32(out, static_cast<uint32_t>(index.size() * 16));
  for (const auto& [offset, size] : index) {
    put_fourcc(out, "00dc");
    put_u32(out, kAviIndexKeyframe);
    put_u32(out, offset);
    put_u32(out, size);
  }

  patch_u32(out, riff_size_at, static_cast<uint32_t>(out.size() - 8));
  return out;
}

void write_avi_file(const std::string& path,
                    const std::vector<std::vector<uint8_t>>& frames,
                    const AviInfo& info) {
  const std::vector<uint8_t> bytes = write_avi(frames, info);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  }
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

std::vector<std::vector<uint8_t>> read_avi(const std::vector<uint8_t>& bytes,
                                           AviInfo* info) {
  check_argument(fourcc_at(bytes, 0, "RIFF") && fourcc_at(bytes, 8, "AVI "),
                 "not an AVI file");
  std::vector<std::vector<uint8_t>> frames;

  size_t pos = 12;
  while (pos + 8 <= bytes.size()) {
    const bool is_list = fourcc_at(bytes, pos, "LIST");
    const uint32_t size = get_u32(bytes, pos + 4);
    if (is_list && fourcc_at(bytes, pos + 8, "hdrl") && info != nullptr) {
      // avih follows immediately inside hdrl.
      const size_t avih = pos + 12;
      if (fourcc_at(bytes, avih, "avih")) {
        info->fps = static_cast<int>(
            1'000'000 / std::max<uint32_t>(1, get_u32(bytes, avih + 8)));
        info->width = static_cast<int>(get_u32(bytes, avih + 8 + 32));
        info->height = static_cast<int>(get_u32(bytes, avih + 8 + 36));
      }
    }
    if (is_list && fourcc_at(bytes, pos + 8, "movi")) {
      size_t cursor = pos + 12;
      const size_t end = pos + 8 + size;
      while (cursor + 8 <= end && cursor + 8 <= bytes.size()) {
        const uint32_t chunk_size = get_u32(bytes, cursor + 4);
        if (fourcc_at(bytes, cursor, "00dc") ||
            fourcc_at(bytes, cursor, "00db")) {
          check_argument(cursor + 8 + chunk_size <= bytes.size(),
                         "truncated frame chunk");
          frames.emplace_back(
              bytes.begin() + static_cast<ptrdiff_t>(cursor + 8),
              bytes.begin() +
                  static_cast<ptrdiff_t>(cursor + 8 + chunk_size));
        }
        cursor += 8 + chunk_size + (chunk_size % 2);  // even alignment
      }
    }
    pos += 8 + size + (size % 2);  // lists are skipped whole at top level
  }
  return frames;
}

std::vector<std::vector<uint8_t>> read_avi_file(const std::string& path,
                                                AviInfo* info) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    throw_error(ErrorKind::kIo, "short read on '" + path + "'");
  }
  return read_avi(bytes, info);
}

}  // namespace p2g::media
