// JPEG baseline Huffman entropy coding (the paper's "VLC" stage).
//
// Implements canonical Huffman tables from (BITS, HUFFVAL) pairs, the four
// standard Annex K.3 tables, and per-block encode/decode with DC
// prediction, zero-run coding, ZRL and EOB.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "media/bitstream.h"
#include "media/dct.h"

namespace p2g::media {

/// A canonical Huffman table built from JPEG's BITS/HUFFVAL representation.
class HuffTable {
 public:
  /// `bits[i]` = number of codes of length i+1 (16 entries); `values` =
  /// symbols in code order.
  HuffTable(const std::array<uint8_t, 16>& bits,
            const std::vector<uint8_t>& values);

  /// Encoder-side lookup; throws kInternal for symbols without a code.
  void encode(BitWriter& writer, uint8_t symbol) const;

  /// Decoder-side sequential canonical decode.
  uint8_t decode(BitReader& reader) const;

  /// The DHT segment payload (BITS then HUFFVAL), for headers.
  std::vector<uint8_t> dht_payload() const;

 private:
  std::array<uint8_t, 16> bits_;
  std::vector<uint8_t> values_;
  // Encoder: per-symbol code/length.
  std::array<uint16_t, 256> code_of_{};
  std::array<int8_t, 256> length_of_{};
  // Decoder: canonical ranges per length.
  std::array<int32_t, 17> min_code_{};
  std::array<int32_t, 17> max_code_{};  // -1 = no codes at this length
  std::array<int32_t, 17> val_offset_{};
};

/// The four standard tables (ITU-T T.81 Annex K.3).
const HuffTable& std_dc_luma();
const HuffTable& std_dc_chroma();
const HuffTable& std_ac_luma();
const HuffTable& std_ac_chroma();

/// Number of bits needed to represent |value| (JPEG "category"/SSSS).
int bit_category(int value);

/// Encodes one quantized 8x8 block (raster order) into the bit stream.
/// `prev_dc` carries the DC predictor and is updated.
void encode_block(const int16_t coeffs[kBlockSize], int& prev_dc,
                  const HuffTable& dc_table, const HuffTable& ac_table,
                  BitWriter& writer);

/// Decodes one block (inverse of encode_block), raster order output.
void decode_block(BitReader& reader, int& prev_dc, const HuffTable& dc_table,
                  const HuffTable& ac_table, int16_t coeffs[kBlockSize]);

}  // namespace p2g::media
