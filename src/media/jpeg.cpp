#include "media/jpeg.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace p2g::media {

void extract_block(const uint8_t* plane, int width, int height, int by,
                   int bx, uint8_t out[kBlockSize]) {
  for (int r = 0; r < kBlockDim; ++r) {
    const int row = std::min(by * kBlockDim + r, height - 1);
    for (int c = 0; c < kBlockDim; ++c) {
      const int col = std::min(bx * kBlockDim + c, width - 1);
      out[r * kBlockDim + c] =
          plane[static_cast<size_t>(row) * static_cast<size_t>(width) +
                static_cast<size_t>(col)];
    }
  }
}

void dct_quantize_block(const uint8_t pixels[kBlockSize],
                        const QuantTable& table, bool fast_dct,
                        int16_t out[kBlockSize]) {
  double dct[kBlockSize];
  if (fast_dct) {
    forward_dct_aan(pixels, dct);
    quantize_aan(dct, table, out);
  } else {
    forward_dct_naive(pixels, dct);
    quantize(dct, table, out);
  }
}

CoeffGrid dct_quantize_plane(const uint8_t* plane, int width, int height,
                             const QuantTable& table, bool fast_dct) {
  const int bw = (width + kBlockDim - 1) / kBlockDim;
  const int bh = (height + kBlockDim - 1) / kBlockDim;
  CoeffGrid grid(bh, bw);
  uint8_t pixels[kBlockSize];
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      extract_block(plane, width, height, by, bx, pixels);
      dct_quantize_block(pixels, table, fast_dct, grid.block(by, bx));
    }
  }
  return grid;
}

namespace {

enum Marker : uint8_t {
  kSOI = 0xD8,
  kEOI = 0xD9,
  kAPP0 = 0xE0,
  kDQT = 0xDB,
  kSOF0 = 0xC0,
  kDHT = 0xC4,
  kSOS = 0xDA,
  kCOM = 0xFE,
};

void write_marker(BitWriter& w, uint8_t marker) {
  w.put_byte(0xFF);
  w.put_byte(marker);
}

void write_app0(BitWriter& w) {
  write_marker(w, kAPP0);
  w.put_u16(16);
  for (char ch : {'J', 'F', 'I', 'F', '\0'}) {
    w.put_byte(static_cast<uint8_t>(ch));
  }
  w.put_byte(1);  // version 1.1
  w.put_byte(1);
  w.put_byte(0);  // density units: none
  w.put_u16(1);
  w.put_u16(1);
  w.put_byte(0);  // no thumbnail
  w.put_byte(0);
}

void write_dqt(BitWriter& w, int id, const QuantTable& table) {
  write_marker(w, kDQT);
  w.put_u16(2 + 1 + kBlockSize);
  w.put_byte(static_cast<uint8_t>(id));  // 8-bit precision, table id
  const auto& zz = zigzag_order();
  for (int k = 0; k < kBlockSize; ++k) {
    w.put_byte(static_cast<uint8_t>(table[static_cast<size_t>(
        zz[static_cast<size_t>(k)])]));
  }
}

void write_sof0(BitWriter& w, int width, int height) {
  write_marker(w, kSOF0);
  w.put_u16(8 + 3 * 3);
  w.put_byte(8);  // sample precision
  w.put_u16(static_cast<uint16_t>(height));
  w.put_u16(static_cast<uint16_t>(width));
  w.put_byte(3);
  // Y: id 1, 2x2 sampling, qtable 0. Cb/Cr: 1x1, qtable 1.
  w.put_byte(1); w.put_byte(0x22); w.put_byte(0);
  w.put_byte(2); w.put_byte(0x11); w.put_byte(1);
  w.put_byte(3); w.put_byte(0x11); w.put_byte(1);
}

void write_dht(BitWriter& w, int table_class, int id,
               const HuffTable& table) {
  const std::vector<uint8_t> payload = table.dht_payload();
  write_marker(w, kDHT);
  w.put_u16(static_cast<uint16_t>(2 + 1 + payload.size()));
  w.put_byte(static_cast<uint8_t>((table_class << 4) | id));
  for (uint8_t b : payload) w.put_byte(b);
}

void write_sos(BitWriter& w) {
  write_marker(w, kSOS);
  w.put_u16(6 + 2 * 3);
  w.put_byte(3);
  w.put_byte(1); w.put_byte(0x00);  // Y: DC 0 / AC 0
  w.put_byte(2); w.put_byte(0x11);  // Cb: DC 1 / AC 1
  w.put_byte(3); w.put_byte(0x11);  // Cr
  w.put_byte(0);   // spectral start
  w.put_byte(63);  // spectral end
  w.put_byte(0);   // successive approximation
}

const int16_t kZeroBlock[kBlockSize] = {};

/// Returns the block or an all-zero block when (by, bx) is out of range
/// (padding MCUs at the right/bottom edges).
const int16_t* block_or_zero(const CoeffGrid& grid, int by, int bx) {
  if (by >= grid.blocks_h || bx >= grid.blocks_w) return kZeroBlock;
  return grid.block(by, bx);
}

}  // namespace

std::vector<uint8_t> encode_jpeg_from_coeffs(
    int width, int height, const CoeffGrid& y, const CoeffGrid& u,
    const CoeffGrid& v, const QuantTable& luma_table,
    const QuantTable& chroma_table) {
  check_argument(width > 0 && height > 0, "bad frame dimensions");
  check_argument(u.blocks_h == v.blocks_h && u.blocks_w == v.blocks_w,
                 "chroma grids must agree");

  BitWriter w(/*stuffing=*/true);
  write_marker(w, kSOI);
  write_app0(w);
  write_dqt(w, 0, luma_table);
  write_dqt(w, 1, chroma_table);
  write_sof0(w, width, height);
  write_dht(w, 0, 0, std_dc_luma());
  write_dht(w, 1, 0, std_ac_luma());
  write_dht(w, 0, 1, std_dc_chroma());
  write_dht(w, 1, 1, std_ac_chroma());
  write_sos(w);

  // Interleaved 4:2:0 MCU scan: 4 Y blocks, 1 Cb, 1 Cr per MCU.
  const int mcus_w = (width + 15) / 16;
  const int mcus_h = (height + 15) / 16;
  int dc_y = 0;
  int dc_u = 0;
  int dc_v = 0;
  for (int my = 0; my < mcus_h; ++my) {
    for (int mx = 0; mx < mcus_w; ++mx) {
      for (int sy = 0; sy < 2; ++sy) {
        for (int sx = 0; sx < 2; ++sx) {
          encode_block(block_or_zero(y, 2 * my + sy, 2 * mx + sx), dc_y,
                       std_dc_luma(), std_ac_luma(), w);
        }
      }
      encode_block(block_or_zero(u, my, mx), dc_u, std_dc_chroma(),
                   std_ac_chroma(), w);
      encode_block(block_or_zero(v, my, mx), dc_v, std_dc_chroma(),
                   std_ac_chroma(), w);
    }
  }
  w.flush();
  write_marker(w, kEOI);
  return w.take();
}

std::vector<uint8_t> encode_jpeg(const YuvFrame& frame,
                                 const EncoderConfig& config) {
  const QuantTable luma = scale_table(standard_luma_table(), config.quality);
  const QuantTable chroma =
      scale_table(standard_chroma_table(), config.quality);
  const CoeffGrid y = dct_quantize_plane(frame.y.data(), frame.width,
                                         frame.height, luma,
                                         config.fast_dct);
  const CoeffGrid u =
      dct_quantize_plane(frame.u.data(), frame.chroma_width(),
                         frame.chroma_height(), chroma, config.fast_dct);
  const CoeffGrid v =
      dct_quantize_plane(frame.v.data(), frame.chroma_width(),
                         frame.chroma_height(), chroma, config.fast_dct);
  return encode_jpeg_from_coeffs(frame.width, frame.height, y, u, v, luma,
                                 chroma);
}

namespace {

/// Streaming decoder state.
struct Decoder {
  const uint8_t* data = nullptr;
  size_t size = 0;
  size_t pos = 0;

  int width = 0;
  int height = 0;
  QuantTable qtables[4] = {};
  bool has_qtable[4] = {};
  std::vector<HuffTable> dc_tables{};
  std::vector<HuffTable> ac_tables{};
  int dc_ids[4] = {-1, -1, -1, -1};  // slot -> index into dc_tables
  int ac_ids[4] = {-1, -1, -1, -1};

  struct Component {
    int id = 0;
    int h = 1, v = 1;
    int qtable = 0;
    int dc_slot = 0, ac_slot = 0;
  };
  Component comps[3];
  int comp_count = 0;

  uint8_t u8() {
    if (pos >= size) throw_error(ErrorKind::kIo, "truncated JPEG");
    return data[pos++];
  }
  uint16_t u16() {
    const uint16_t hi = u8();
    return static_cast<uint16_t>((hi << 8) | u8());
  }
};

void parse_dqt(Decoder& d, size_t segment_end) {
  while (d.pos < segment_end) {
    const uint8_t pq_tq = d.u8();
    check_argument((pq_tq >> 4) == 0, "only 8-bit quant tables supported");
    const int id = pq_tq & 0x0F;
    const auto& zz = zigzag_order();
    for (int k = 0; k < kBlockSize; ++k) {
      d.qtables[id][static_cast<size_t>(zz[static_cast<size_t>(k)])] =
          d.u8();
    }
    d.has_qtable[id] = true;
  }
}

void parse_dht(Decoder& d, size_t segment_end) {
  while (d.pos < segment_end) {
    const uint8_t tc_th = d.u8();
    const int table_class = tc_th >> 4;
    const int id = tc_th & 0x0F;
    std::array<uint8_t, 16> bits{};
    size_t total = 0;
    for (auto& b : bits) {
      b = d.u8();
      total += b;
    }
    std::vector<uint8_t> values(total);
    for (auto& v : values) v = d.u8();
    if (table_class == 0) {
      d.dc_ids[id] = static_cast<int>(d.dc_tables.size());
      d.dc_tables.emplace_back(bits, values);
    } else {
      d.ac_ids[id] = static_cast<int>(d.ac_tables.size());
      d.ac_tables.emplace_back(bits, values);
    }
  }
}

void parse_sof0(Decoder& d) {
  const int precision = d.u8();
  check_argument(precision == 8, "only 8-bit precision supported");
  d.height = d.u16();
  d.width = d.u16();
  d.comp_count = d.u8();
  check_argument(d.comp_count == 3, "only 3-component JPEGs supported");
  for (int i = 0; i < d.comp_count; ++i) {
    auto& c = d.comps[i];
    c.id = d.u8();
    const uint8_t hv = d.u8();
    c.h = hv >> 4;
    c.v = hv & 0x0F;
    c.qtable = d.u8();
  }
  check_argument(d.comps[0].h == 2 && d.comps[0].v == 2 &&
                     d.comps[1].h == 1 && d.comps[1].v == 1 &&
                     d.comps[2].h == 1 && d.comps[2].v == 1,
                 "only 4:2:0 (2x2 / 1x1 / 1x1) sampling supported");
}

}  // namespace

YuvFrame decode_jpeg(const uint8_t* data, size_t size) {
  Decoder d;
  d.data = data;
  d.size = size;
  check_argument(d.u8() == 0xFF && d.u8() == kSOI, "missing SOI marker");

  bool in_scan = false;
  while (!in_scan) {
    uint8_t byte = d.u8();
    check_argument(byte == 0xFF, "expected marker");
    uint8_t marker = d.u8();
    while (marker == 0xFF) marker = d.u8();  // fill bytes
    if (marker == kEOI) {
      throw_error(ErrorKind::kIo, "EOI before scan data");
    }
    const size_t length = d.u16();
    const size_t segment_end = d.pos + length - 2;
    switch (marker) {
      case kDQT: parse_dqt(d, segment_end); break;
      case kDHT: parse_dht(d, segment_end); break;
      case kSOF0: parse_sof0(d); break;
      case kSOS: {
        const int n = d.u8();
        check_argument(n == d.comp_count, "SOS component count mismatch");
        for (int i = 0; i < n; ++i) {
          const int id = d.u8();
          const uint8_t slots = d.u8();
          for (int c = 0; c < d.comp_count; ++c) {
            if (d.comps[c].id == id) {
              d.comps[c].dc_slot = slots >> 4;
              d.comps[c].ac_slot = slots & 0x0F;
            }
          }
        }
        d.pos += 3;  // spectral selection bytes
        in_scan = true;
        break;
      }
      case kSOF0 + 1: case kSOF0 + 2: case kSOF0 + 3:
        throw_error(ErrorKind::kIo, "only baseline (SOF0) supported");
      default:
        d.pos = segment_end;  // skip APPn / COM / others
        break;
    }
  }

  check_argument(d.width > 0 && d.height > 0, "missing SOF0 before SOS");
  YuvFrame frame(d.width + (d.width % 2), d.height + (d.height % 2));
  frame.width = d.width;
  frame.height = d.height;

  const QuantTable& qy = d.qtables[d.comps[0].qtable];
  const QuantTable& qc = d.qtables[d.comps[1].qtable];
  const HuffTable& dc_y = d.dc_tables[static_cast<size_t>(
      d.dc_ids[d.comps[0].dc_slot])];
  const HuffTable& ac_y = d.ac_tables[static_cast<size_t>(
      d.ac_ids[d.comps[0].ac_slot])];
  const HuffTable& dc_c = d.dc_tables[static_cast<size_t>(
      d.dc_ids[d.comps[1].dc_slot])];
  const HuffTable& ac_c = d.ac_tables[static_cast<size_t>(
      d.ac_ids[d.comps[1].ac_slot])];

  BitReader reader(data + d.pos, size - d.pos, /*stuffing=*/true);
  const int mcus_w = (d.width + 15) / 16;
  const int mcus_h = (d.height + 15) / 16;
  int pred_y = 0;
  int pred_u = 0;
  int pred_v = 0;

  auto place_block = [](std::vector<uint8_t>& plane, int plane_w,
                        int plane_h, int by, int bx,
                        const uint8_t pixels[kBlockSize]) {
    for (int r = 0; r < kBlockDim; ++r) {
      const int row = by * kBlockDim + r;
      if (row >= plane_h) break;
      for (int c = 0; c < kBlockDim; ++c) {
        const int col = bx * kBlockDim + c;
        if (col >= plane_w) break;
        plane[static_cast<size_t>(row) * static_cast<size_t>(plane_w) +
              static_cast<size_t>(col)] = pixels[r * kBlockDim + c];
      }
    }
  };

  int16_t quantized[kBlockSize];
  double coeffs[kBlockSize];
  uint8_t pixels[kBlockSize];
  for (int my = 0; my < mcus_h; ++my) {
    for (int mx = 0; mx < mcus_w; ++mx) {
      for (int sy = 0; sy < 2; ++sy) {
        for (int sx = 0; sx < 2; ++sx) {
          decode_block(reader, pred_y, dc_y, ac_y, quantized);
          dequantize(quantized, qy, coeffs);
          inverse_dct_naive(coeffs, pixels);
          place_block(frame.y, frame.width, frame.height, 2 * my + sy,
                      2 * mx + sx, pixels);
        }
      }
      decode_block(reader, pred_u, dc_c, ac_c, quantized);
      dequantize(quantized, qc, coeffs);
      inverse_dct_naive(coeffs, pixels);
      place_block(frame.u, frame.chroma_width(), frame.chroma_height(), my,
                  mx, pixels);
      decode_block(reader, pred_v, dc_c, ac_c, quantized);
      dequantize(quantized, qc, coeffs);
      inverse_dct_naive(coeffs, pixels);
      place_block(frame.v, frame.chroma_width(), frame.chroma_height(), my,
                  mx, pixels);
    }
  }
  return frame;
}

}  // namespace p2g::media
