// Motion JPEG container: a sequence of independently compressed JPEG
// frames concatenated into one stream (the format the paper's MJPEG
// workload produces).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2g::media {

/// Accumulates encoded frames in memory; optionally writes them to disk.
class MjpegWriter {
 public:
  void add_frame(std::vector<uint8_t> jpeg_bytes);

  size_t frame_count() const { return offsets_.size(); }
  size_t byte_count() const { return stream_.size(); }
  const std::vector<uint8_t>& stream() const { return stream_; }

  /// Writes the accumulated stream to a file (".mjpeg" concatenation).
  void write_file(const std::string& path) const;

 private:
  std::vector<uint8_t> stream_;
  std::vector<size_t> offsets_;
};

/// Splits a concatenated MJPEG stream back into per-frame JPEG buffers by
/// scanning for SOI/EOI marker pairs (0xFF byte stuffing guarantees no
/// false EOI inside entropy-coded data).
std::vector<std::vector<uint8_t>> split_mjpeg(
    const std::vector<uint8_t>& stream);

/// Reads a whole MJPEG file and splits it into frames.
std::vector<std::vector<uint8_t>> read_mjpeg_file(const std::string& path);

}  // namespace p2g::media
