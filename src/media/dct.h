// 8x8 forward and inverse discrete cosine transforms.
//
// The paper's prototype deliberately uses a *naive* DCT ("there are
// versions of DCT that can significantly improve performance, such as
// FastDCT [2]") — we provide both: the naive O(n^4) transform used in the
// evaluation and the AAN fast scaled DCT (Arai, Agui, Nakajima '88, the
// paper's reference [2]) for the deadline/adaptive examples and ablations.
#pragma once

#include <cstdint>

namespace p2g::media {

constexpr int kBlockDim = 8;
constexpr int kBlockSize = 64;

/// Naive 2-D DCT-II of a level-shifted 8x8 block (exactly the textbook
/// double loop the paper's encoder uses). `pixels` are raw 0..255 samples
/// in row-major order; the -128 level shift happens inside.
void forward_dct_naive(const uint8_t pixels[kBlockSize],
                       double out[kBlockSize]);

/// AAN fast scaled forward DCT. Output is *scaled*: each coefficient must
/// be divided by aan_scale_factor(u, v) (fold it into the quantizer).
void forward_dct_aan(const uint8_t pixels[kBlockSize],
                     double out[kBlockSize]);

/// Scale factor the AAN transform leaves on coefficient (u=row, v=col).
double aan_scale_factor(int u, int v);

/// Naive 2-D inverse DCT; adds the +128 level shift and clamps to 0..255.
void inverse_dct_naive(const double coeffs[kBlockSize],
                       uint8_t pixels[kBlockSize]);

}  // namespace p2g::media
