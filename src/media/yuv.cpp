#include "media/yuv.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"

namespace p2g::media {

YuvFrame::YuvFrame(int w, int h) : width(w), height(h) {
  check_argument(w > 0 && h > 0 && w % 2 == 0 && h % 2 == 0,
                 "frame dimensions must be positive and even");
  y.assign(static_cast<size_t>(w) * static_cast<size_t>(h), 0);
  u.assign(static_cast<size_t>(w / 2) * static_cast<size_t>(h / 2), 0);
  v.assign(static_cast<size_t>(w / 2) * static_cast<size_t>(h / 2), 0);
}

namespace {

/// Small deterministic integer hash (xorshift-style) for texture noise.
inline uint32_t hash3(uint32_t x, uint32_t y, uint32_t t) {
  uint32_t h = x * 374761393u + y * 668265263u + t * 2246822519u;
  h = (h ^ (h >> 13)) * 1274126177u;
  return h ^ (h >> 16);
}

}  // namespace

YuvVideo generate_synthetic_video(int width, int height, int frames,
                                  uint32_t seed) {
  check_argument(frames >= 0, "frame count must be non-negative");
  YuvVideo video;
  video.width = width;
  video.height = height;
  video.frames.reserve(static_cast<size_t>(frames));

  for (int t = 0; t < frames; ++t) {
    YuvFrame frame(width, height);
    // Luma: diagonal gradient sweeping with time, a moving bright square
    // and hash noise in the lower third (keeps the DCT busy).
    for (int r = 0; r < height; ++r) {
      for (int c = 0; c < width; ++c) {
        int value = ((c + 2 * t) * 255 / (width + 2 * frames) +
                     (r * 255) / height) /
                    2;
        const int sq = std::min({48, width / 2, height / 2});
        const int sx = (t * 7) % std::max(1, width - sq);
        const int sy = (t * 5) % std::max(1, height - sq);
        if (c >= sx && c < sx + sq && r >= sy && r < sy + sq) {
          value = 255 - value;
        }
        if (r > 2 * height / 3) {
          value = (value + static_cast<int>(
                               hash3(static_cast<uint32_t>(c),
                                     static_cast<uint32_t>(r),
                                     static_cast<uint32_t>(t) ^ seed) &
                               0x3F)) &
                  0xFF;
        }
        frame.y[static_cast<size_t>(r) * static_cast<size_t>(width) +
                static_cast<size_t>(c)] = static_cast<uint8_t>(value);
      }
    }
    // Chroma: slow radial sweep.
    const int cw = frame.chroma_width();
    const int ch = frame.chroma_height();
    for (int r = 0; r < ch; ++r) {
      for (int c = 0; c < cw; ++c) {
        const size_t i = static_cast<size_t>(r) * static_cast<size_t>(cw) +
                         static_cast<size_t>(c);
        frame.u[i] = static_cast<uint8_t>(128 + ((c - cw / 2 + t) * 80) / cw);
        frame.v[i] = static_cast<uint8_t>(128 + ((r - ch / 2 - t) * 80) / ch);
      }
    }
    video.frames.push_back(std::move(frame));
  }
  return video;
}

void write_yuv_file(const std::string& path, const YuvVideo& video) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  }
  for (const YuvFrame& frame : video.frames) {
    std::fwrite(frame.y.data(), 1, frame.y.size(), f);
    std::fwrite(frame.u.data(), 1, frame.u.size(), f);
    std::fwrite(frame.v.data(), 1, frame.v.size(), f);
  }
  std::fclose(f);
}

YuvVideo read_yuv_file(const std::string& path, int width, int height) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for reading");
  }
  YuvVideo video;
  video.width = width;
  video.height = height;
  while (true) {
    YuvFrame frame(width, height);
    const size_t got_y = std::fread(frame.y.data(), 1, frame.y.size(), f);
    if (got_y == 0) break;  // clean end of file
    const size_t got_u = std::fread(frame.u.data(), 1, frame.u.size(), f);
    const size_t got_v = std::fread(frame.v.data(), 1, frame.v.size(), f);
    if (got_y != frame.y.size() || got_u != frame.u.size() ||
        got_v != frame.v.size()) {
      std::fclose(f);
      throw_error(ErrorKind::kIo, "truncated YUV frame in '" + path + "'");
    }
    video.frames.push_back(std::move(frame));
  }
  std::fclose(f);
  return video;
}

double psnr(const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
  check_argument(a.size() == b.size() && !a.empty(),
                 "psnr requires equal non-empty planes");
  double mse = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace p2g::media
