#include "media/dct.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace p2g::media {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// cos((2x+1) u pi / 16) lookup, filled once.
struct CosTable {
  double c[kBlockDim][kBlockDim];  // [x][u]
  CosTable() {
    for (int x = 0; x < kBlockDim; ++x) {
      for (int u = 0; u < kBlockDim; ++u) {
        c[x][u] = std::cos((2.0 * x + 1.0) * u * kPi / 16.0);
      }
    }
  }
};
const CosTable kCos;

inline double alpha(int u) { return u == 0 ? 1.0 / std::sqrt(2.0) : 1.0; }

}  // namespace

void forward_dct_naive(const uint8_t pixels[kBlockSize],
                       double out[kBlockSize]) {
  // Deliberately the textbook formula with live cosine evaluation, exactly
  // like the paper's prototype encoder ("both the standalone and P2G
  // versions of the MJPEG encoder use a naive DCT calculation", §VIII-A).
  // The cost profile — a few thousand cos() calls per block — is what puts
  // the paper's DCT kernels at ~170 us/block on 2011 hardware.
  double shifted[kBlockSize];
  for (int i = 0; i < kBlockSize; ++i) {
    shifted[i] = static_cast<double>(pixels[i]) - 128.0;
  }
  for (int u = 0; u < kBlockDim; ++u) {
    for (int v = 0; v < kBlockDim; ++v) {
      double sum = 0.0;
      for (int x = 0; x < kBlockDim; ++x) {
        for (int y = 0; y < kBlockDim; ++y) {
          sum += shifted[x * kBlockDim + y] *
                 std::cos((2.0 * x + 1.0) * u * kPi / 16.0) *
                 std::cos((2.0 * y + 1.0) * v * kPi / 16.0);
        }
      }
      out[u * kBlockDim + v] = 0.25 * alpha(u) * alpha(v) * sum;
    }
  }
}

namespace {

/// One-dimensional AAN butterfly over 8 samples (in place).
void aan_1d(double* d, std::ptrdiff_t stride) {
  const double c2 = 0.541196100;   // sqrt(2) * cos(3pi/8)... AAN constants
  const double c4 = 0.707106781;   // cos(pi/4)
  const double c6 = 1.306562965;   // sqrt(2) * cos(pi/8)

  double d0 = d[0 * stride], d1 = d[1 * stride], d2 = d[2 * stride],
         d3 = d[3 * stride], d4 = d[4 * stride], d5 = d[5 * stride],
         d6 = d[6 * stride], d7 = d[7 * stride];

  const double tmp0 = d0 + d7, tmp7 = d0 - d7;
  const double tmp1 = d1 + d6, tmp6 = d1 - d6;
  const double tmp2 = d2 + d5, tmp5 = d2 - d5;
  const double tmp3 = d3 + d4, tmp4 = d3 - d4;

  // Even part.
  const double tmp10 = tmp0 + tmp3, tmp13 = tmp0 - tmp3;
  const double tmp11 = tmp1 + tmp2, tmp12 = tmp1 - tmp2;

  d0 = tmp10 + tmp11;
  d4 = tmp10 - tmp11;

  const double z1 = (tmp12 + tmp13) * c4;
  d2 = tmp13 + z1;
  d6 = tmp13 - z1;

  // Odd part.
  const double tmp10o = tmp4 + tmp5;
  const double tmp11o = tmp5 + tmp6;
  const double tmp12o = tmp6 + tmp7;

  const double z5 = (tmp10o - tmp12o) * 0.382683433;
  const double z2 = c2 * tmp10o + z5;
  const double z4 = c6 * tmp12o + z5;
  const double z3 = tmp11o * c4;

  const double z11 = tmp7 + z3;
  const double z13 = tmp7 - z3;

  d5 = z13 + z2;
  d3 = z13 - z2;
  d1 = z11 + z4;
  d7 = z11 - z4;

  d[0 * stride] = d0;
  d[1 * stride] = d1;
  d[2 * stride] = d2;
  d[3 * stride] = d3;
  d[4 * stride] = d4;
  d[5 * stride] = d5;
  d[6 * stride] = d6;
  d[7 * stride] = d7;
}

struct AanScales {
  double s[kBlockSize];
  AanScales() {
    // Per-dimension AAN output scales.
    static const double aan[kBlockDim] = {
        1.0, 1.387039845, 1.306562965, 1.175875602,
        1.0, 0.785694958, 0.541196100, 0.275899379};
    for (int u = 0; u < kBlockDim; ++u) {
      for (int v = 0; v < kBlockDim; ++v) {
        s[u * kBlockDim + v] = aan[u] * aan[v] * 8.0;
      }
    }
  }
};
const AanScales kAanScales;

}  // namespace

void forward_dct_aan(const uint8_t pixels[kBlockSize],
                     double out[kBlockSize]) {
  for (int i = 0; i < kBlockSize; ++i) {
    out[i] = static_cast<double>(pixels[i]) - 128.0;
  }
  for (int r = 0; r < kBlockDim; ++r) aan_1d(out + r * kBlockDim, 1);
  for (int c = 0; c < kBlockDim; ++c) aan_1d(out + c, kBlockDim);
}

double aan_scale_factor(int u, int v) {
  return kAanScales.s[u * kBlockDim + v];
}

void inverse_dct_naive(const double coeffs[kBlockSize],
                       uint8_t pixels[kBlockSize]) {
  for (int x = 0; x < kBlockDim; ++x) {
    for (int y = 0; y < kBlockDim; ++y) {
      double sum = 0.0;
      for (int u = 0; u < kBlockDim; ++u) {
        for (int v = 0; v < kBlockDim; ++v) {
          sum += alpha(u) * alpha(v) * coeffs[u * kBlockDim + v] *
                 kCos.c[x][u] * kCos.c[y][v];
        }
      }
      const double value = 0.25 * sum + 128.0;
      pixels[x * kBlockDim + y] = static_cast<uint8_t>(
          std::clamp(static_cast<int>(std::lround(value)), 0, 255));
    }
  }
}

}  // namespace p2g::media
