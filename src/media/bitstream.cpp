#include "media/bitstream.h"

namespace p2g::media {

void BitWriter::emit(uint8_t byte) {
  bytes_.push_back(byte);
  if (stuffing_ && byte == 0xFF) bytes_.push_back(0x00);
}

void BitWriter::put_bits(uint32_t bits, int count) {
  check_argument(count >= 0 && count <= 32, "put_bits count out of range");
  if (count < 32) bits &= (uint32_t{1} << count) - 1;
  // Feed bit by bit into the byte accumulator (simple and branch-light
  // enough; entropy coding dominates elsewhere).
  for (int i = count - 1; i >= 0; --i) {
    bit_buffer_ = (bit_buffer_ << 1) | ((bits >> i) & 1u);
    if (++bit_count_ == 8) {
      emit(static_cast<uint8_t>(bit_buffer_ & 0xFF));
      bit_buffer_ = 0;
      bit_count_ = 0;
    }
  }
}

void BitWriter::flush() {
  while (bit_count_ != 0) put_bits(1, 1);  // pad with 1-bits
}

void BitWriter::put_byte(uint8_t byte) {
  check_internal(aligned(), "put_byte requires byte alignment");
  bytes_.push_back(byte);  // markers are never stuffed
}

void BitWriter::put_u16(uint16_t value) {
  put_byte(static_cast<uint8_t>(value >> 8));
  put_byte(static_cast<uint8_t>(value & 0xFF));
}

void BitReader::refill() {
  while (bit_count_ <= 24 && pos_ < size_) {
    uint8_t byte = data_[pos_++];
    if (stuffing_ && byte == 0xFF) {
      if (pos_ < size_ && data_[pos_] == 0x00) {
        ++pos_;  // skip stuff byte
      } else {
        // A real marker: treat as end of entropy-coded data by feeding
        // 1-padding (JPEG decoders do the same).
        --pos_;
        byte = 0xFF;
        bit_buffer_ = (bit_buffer_ << 8) | byte;
        bit_count_ += 8;
        return;
      }
    }
    bit_buffer_ = (bit_buffer_ << 8) | byte;
    bit_count_ += 8;
  }
}

uint32_t BitReader::get_bits(int count) {
  check_argument(count >= 0 && count <= 25, "get_bits count out of range");
  if (count == 0) return 0;
  refill();
  if (bit_count_ < count) {
    throw_error(ErrorKind::kIo, "bitstream exhausted");
  }
  const uint32_t value =
      (bit_buffer_ >> (bit_count_ - count)) & ((uint32_t{1} << count) - 1);
  bit_count_ -= count;
  bit_buffer_ &= (bit_count_ > 0) ? ((uint32_t{1} << bit_count_) - 1) : 0;
  return value;
}

int BitReader::get_bit() { return static_cast<int>(get_bits(1)); }

}  // namespace p2g::media
