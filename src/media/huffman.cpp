#include "media/huffman.h"

#include "common/error.h"
#include "media/quant.h"

namespace p2g::media {

HuffTable::HuffTable(const std::array<uint8_t, 16>& bits,
                     const std::vector<uint8_t>& values)
    : bits_(bits), values_(values) {
  length_of_.fill(-1);

  // Canonical code assignment (T.81 C.2): codes of each length are
  // consecutive, starting from (previous length's last code + 1) << 1.
  uint16_t code = 0;
  size_t k = 0;
  for (int len = 1; len <= 16; ++len) {
    min_code_[static_cast<size_t>(len)] = code;
    val_offset_[static_cast<size_t>(len)] =
        static_cast<int32_t>(k) - code;
    const int count = bits_[static_cast<size_t>(len - 1)];
    for (int i = 0; i < count; ++i) {
      check_argument(k < values_.size(),
                     "huffman BITS counts exceed HUFFVAL size");
      const uint8_t symbol = values_[k];
      code_of_[symbol] = code;
      length_of_[symbol] = static_cast<int8_t>(len);
      ++code;
      ++k;
    }
    max_code_[static_cast<size_t>(len)] =
        count > 0 ? code - 1 : -1;
    code = static_cast<uint16_t>(code << 1);
  }
  check_argument(k == values_.size(),
                 "huffman HUFFVAL has more symbols than BITS counts");
}

void HuffTable::encode(BitWriter& writer, uint8_t symbol) const {
  const int len = length_of_[symbol];
  check_internal(len > 0, "symbol has no huffman code");
  writer.put_bits(code_of_[symbol], len);
}

uint8_t HuffTable::decode(BitReader& reader) const {
  int32_t code = reader.get_bit();
  for (int len = 1; len <= 16; ++len) {
    if (max_code_[static_cast<size_t>(len)] >= 0 &&
        code <= max_code_[static_cast<size_t>(len)]) {
      const int32_t index = code + val_offset_[static_cast<size_t>(len)];
      return values_[static_cast<size_t>(index)];
    }
    code = (code << 1) | reader.get_bit();
  }
  throw_error(ErrorKind::kIo, "invalid huffman code in stream");
}

std::vector<uint8_t> HuffTable::dht_payload() const {
  std::vector<uint8_t> out(bits_.begin(), bits_.end());
  out.insert(out.end(), values_.begin(), values_.end());
  return out;
}

namespace {

std::vector<uint8_t> iota_values(int count) {
  std::vector<uint8_t> v(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) v[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  return v;
}

}  // namespace

const HuffTable& std_dc_luma() {
  static const HuffTable table(
      {0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0}, iota_values(12));
  return table;
}

const HuffTable& std_dc_chroma() {
  static const HuffTable table(
      {0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0}, iota_values(12));
  return table;
}

const HuffTable& std_ac_luma() {
  static const HuffTable table(
      {0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d},
      {0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41,
       0x06, 0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91,
       0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0, 0x24,
       0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a,
       0x25, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38,
       0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53,
       0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66,
       0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79,
       0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x92, 0x93,
       0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
       0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7,
       0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9,
       0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1,
       0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2,
       0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa});
  return table;
}

const HuffTable& std_ac_chroma() {
  static const HuffTable table(
      {0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77},
      {0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12,
       0x41, 0x51, 0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14,
       0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0, 0x15,
       0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17,
       0x18, 0x19, 0x1a, 0x26, 0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37,
       0x38, 0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x4a,
       0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65,
       0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78,
       0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a,
       0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3,
       0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5,
       0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
       0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9,
       0xda, 0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2,
       0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa});
  return table;
}

int bit_category(int value) {
  int magnitude = value < 0 ? -value : value;
  int bits = 0;
  while (magnitude != 0) {
    magnitude >>= 1;
    ++bits;
  }
  return bits;
}

namespace {

/// JPEG amplitude encoding: negatives are stored as value - 1 in `size`
/// low bits (one's-complement style).
uint32_t amplitude_bits(int value, int size) {
  if (value < 0) value += (1 << size) - 1;
  return static_cast<uint32_t>(value);
}

int amplitude_decode(uint32_t bits, int size) {
  const int value = static_cast<int>(bits);
  // A leading 0 bit marks a negative amplitude.
  if (size > 0 && value < (1 << (size - 1))) {
    return value - (1 << size) + 1;
  }
  return value;
}

}  // namespace

void encode_block(const int16_t coeffs[kBlockSize], int& prev_dc,
                  const HuffTable& dc_table, const HuffTable& ac_table,
                  BitWriter& writer) {
  const auto& zz = zigzag_order();

  // DC: difference against the predictor.
  const int dc = coeffs[0];
  const int diff = dc - prev_dc;
  prev_dc = dc;
  const int dc_size = bit_category(diff);
  dc_table.encode(writer, static_cast<uint8_t>(dc_size));
  if (dc_size > 0) writer.put_bits(amplitude_bits(diff, dc_size), dc_size);

  // AC: zero-run coding over the zig-zag scan.
  int run = 0;
  for (int k = 1; k < kBlockSize; ++k) {
    const int value = coeffs[zz[static_cast<size_t>(k)]];
    if (value == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      ac_table.encode(writer, 0xF0);  // ZRL: sixteen zeros
      run -= 16;
    }
    const int size = bit_category(value);
    ac_table.encode(writer,
                    static_cast<uint8_t>((run << 4) | size));
    writer.put_bits(amplitude_bits(value, size), size);
    run = 0;
  }
  if (run > 0) ac_table.encode(writer, 0x00);  // EOB
}

void decode_block(BitReader& reader, int& prev_dc, const HuffTable& dc_table,
                  const HuffTable& ac_table, int16_t coeffs[kBlockSize]) {
  const auto& zz = zigzag_order();
  for (int i = 0; i < kBlockSize; ++i) coeffs[i] = 0;

  const int dc_size = dc_table.decode(reader);
  int diff = 0;
  if (dc_size > 0) {
    diff = amplitude_decode(reader.get_bits(dc_size), dc_size);
  }
  prev_dc += diff;
  coeffs[0] = static_cast<int16_t>(prev_dc);

  int k = 1;
  while (k < kBlockSize) {
    const uint8_t symbol = ac_table.decode(reader);
    if (symbol == 0x00) break;  // EOB
    if (symbol == 0xF0) {       // ZRL
      k += 16;
      continue;
    }
    const int run = symbol >> 4;
    const int size = symbol & 0x0F;
    k += run;
    if (k >= kBlockSize) {
      throw_error(ErrorKind::kIo, "AC run overflows block");
    }
    const int value = amplitude_decode(reader.get_bits(size), size);
    coeffs[zz[static_cast<size_t>(k)]] = static_cast<int16_t>(value);
    ++k;
  }
}

}  // namespace p2g::media
