// JPEG quantization tables, quality scaling and zig-zag ordering.
#pragma once

#include <array>
#include <cstdint>

#include "media/dct.h"

namespace p2g::media {

using QuantTable = std::array<uint16_t, kBlockSize>;

/// Annex K luminance/chrominance tables (quality 50 reference).
const QuantTable& standard_luma_table();
const QuantTable& standard_chroma_table();

/// IJG quality scaling: 1 (worst) .. 100 (best); 50 = the standard table.
QuantTable scale_table(const QuantTable& base, int quality);

/// Zig-zag scan order: zigzag_order()[k] = raster index of the k-th
/// coefficient in scan order.
const std::array<int, kBlockSize>& zigzag_order();
/// Inverse: raster index -> position in the zig-zag scan.
const std::array<int, kBlockSize>& zigzag_inverse();

/// Quantizes raw DCT coefficients (rounly divided by the table).
void quantize(const double dct[kBlockSize], const QuantTable& table,
              int16_t out[kBlockSize]);

/// Quantizes AAN-scaled coefficients (folds aan_scale_factor into the
/// divisor).
void quantize_aan(const double scaled_dct[kBlockSize],
                  const QuantTable& table, int16_t out[kBlockSize]);

/// Multiplies quantized coefficients back up (decoder side).
void dequantize(const int16_t quantized[kBlockSize], const QuantTable& table,
                double out[kBlockSize]);

}  // namespace p2g::media
