#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace p2g {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::scoped_lock lock(g_log_mutex);
  std::fprintf(stderr, "[p2g %s] %s\n", level_name(level), message.c_str());
}

}  // namespace p2g
