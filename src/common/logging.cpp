#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/clock.h"

namespace p2g {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void ensure_env_applied() {
  std::call_once(g_env_once, [] { apply_log_env(); });
}

/// Seconds since the first log line of the process (monotonic).
double uptime_s() {
  static const int64_t epoch = now_ns();
  return static_cast<double>(now_ns() - epoch) / 1e9;
}

}  // namespace

void apply_log_env() {
  const char* env = std::getenv("P2G_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) {
    g_level.store(LogLevel::kDebug);
  } else if (std::strcmp(env, "info") == 0) {
    g_level.store(LogLevel::kInfo);
  } else if (std::strcmp(env, "warn") == 0) {
    g_level.store(LogLevel::kWarn);
  } else if (std::strcmp(env, "error") == 0) {
    g_level.store(LogLevel::kError);
  } else if (std::strcmp(env, "off") == 0) {
    g_level.store(LogLevel::kOff);
  }
}

void set_log_level(LogLevel level) {
  ensure_env_applied();  // a later env re-read must not undo this override
  g_level.store(level);
}

LogLevel log_level() {
  ensure_env_applied();
  return g_level.load();
}

void log_message(LogLevel level, std::string_view component,
                 const std::string& message) {
  ensure_env_applied();
  if (level < g_level.load()) return;
  std::scoped_lock lock(g_log_mutex);
  if (component.empty()) {
    std::fprintf(stderr, "[p2g %s +%.3fs] %s\n", level_name(level),
                 uptime_s(), message.c_str());
  } else {
    std::fprintf(stderr, "[p2g %s +%.3fs %.*s] %s\n", level_name(level),
                 uptime_s(), static_cast<int>(component.size()),
                 component.data(), message.c_str());
  }
}

}  // namespace p2g
