#include "common/error.h"

namespace p2g {

std::string_view to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInternal: return "internal";
    case ErrorKind::kWriteOnceViolation: return "write-once-violation";
    case ErrorKind::kTypeMismatch: return "type-mismatch";
    case ErrorKind::kShapeMismatch: return "shape-mismatch";
    case ErrorKind::kOutOfRange: return "out-of-range";
    case ErrorKind::kInvalidArgument: return "invalid-argument";
    case ErrorKind::kParse: return "parse-error";
    case ErrorKind::kSema: return "semantic-error";
    case ErrorKind::kIo: return "io-error";
    case ErrorKind::kProtocol: return "protocol-error";
    case ErrorKind::kDeadline: return "deadline-expired";
    case ErrorKind::kCancelled: return "cancelled";
  }
  return "unknown";
}

Error::Error(ErrorKind kind, const std::string& message)
    : std::runtime_error(std::string(to_string(kind)) + ": " + message),
      kind_(kind) {}

void throw_error(ErrorKind kind, const std::string& message) {
  throw Error(kind, message);
}

void internal_error(const std::string& message) {
  throw Error(ErrorKind::kInternal, message);
}

}  // namespace p2g
