// Error types shared by every P2G module.
//
// All recoverable failures in P2G are reported through p2g::Error, carrying
// an ErrorKind so callers (and tests) can dispatch on the failure class
// without parsing message strings.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace p2g {

/// Classification of P2G failures.
enum class ErrorKind {
  kInternal,            ///< invariant violation inside the framework
  kWriteOnceViolation,  ///< second store to the same (field, age, element)
  kTypeMismatch,        ///< element type of a fetch/store disagrees with the field
  kShapeMismatch,       ///< rank or extent disagreement
  kOutOfRange,          ///< index outside a sealed extent
  kInvalidArgument,     ///< malformed user input to a public API
  kParse,               ///< kernel-language lexical/syntactic error
  kSema,                ///< kernel-language semantic error
  kIo,                  ///< file or stream failure
  kProtocol,            ///< malformed message on the simulated cluster bus
  kDeadline,            ///< deadline expired
  kCancelled,           ///< runtime shut down while the operation was pending
};

/// Human-readable name of an ErrorKind (stable, used in messages and tests).
std::string_view to_string(ErrorKind kind);

/// Exception type used across P2G. Prefer the factory helpers below.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message);

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Throws Error with the given kind; message is prefixed by the kind name.
[[noreturn]] void throw_error(ErrorKind kind, const std::string& message);

/// Throws ErrorKind::kInternal. Use for broken framework invariants.
[[noreturn]] void internal_error(const std::string& message);

/// Checks a framework invariant; throws kInternal when `condition` is false.
inline void check_internal(bool condition, const std::string& message) {
  if (!condition) internal_error(message);
}

/// Checks a user-facing precondition; throws kInvalidArgument when false.
inline void check_argument(bool condition, const std::string& message) {
  if (!condition) throw_error(ErrorKind::kInvalidArgument, message);
}

}  // namespace p2g
