// Small string helpers shared by the kernel-language front end and reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace p2g {

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders "1234567" as "1,234,567" for the micro-benchmark tables.
std::string with_thousands(int64_t value);

/// Escapes a string for embedding inside a JSON string literal: `"`, `\`
/// and control characters (as \uXXXX). Shared by the trace and metrics
/// serializers so kernel names with quotes stay valid JSON.
std::string json_escape(std::string_view text);

}  // namespace p2g
