// A growable bitmap with a cached popcount, used by field storage to track
// which elements of an age have been written (write-once bookkeeping).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace p2g {

/// Growable bitset. All indices are element positions; the set keeps a
/// running count of set bits so completeness checks are O(1).
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t size) { resize(size); }

  /// Number of addressable bits.
  size_t size() const { return size_; }

  /// Number of set bits.
  size_t count() const { return count_; }

  bool all() const { return count_ == size_; }
  bool none() const { return count_ == 0; }

  /// Grows (or shrinks) the bitset; new bits start cleared.
  void resize(size_t new_size);

  bool test(size_t pos) const;

  /// Sets a bit. Returns false if it was already set (write-once probe).
  bool set(size_t pos);

  /// Sets [begin, end). Returns the number of bits that were newly set.
  size_t set_range(size_t begin, size_t end);

  /// True when every bit in [begin, end) is set.
  bool all_in_range(size_t begin, size_t end) const;

  /// Index of the first cleared bit, or size() when all bits are set.
  size_t find_first_unset() const;

  void clear();

 private:
  static constexpr size_t kBitsPerWord = 64;

  std::vector<uint64_t> words_;
  size_t size_ = 0;
  size_t count_ = 0;
};

}  // namespace p2g
