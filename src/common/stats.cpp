#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace p2g {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::summary() const {
  std::ostringstream os;
  os << mean() << " ± " << stddev() << " (n=" << count_ << ")";
  return os.str();
}

double percentile(std::vector<double> samples, double p) {
  check_argument(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace p2g
