// Streaming statistics (Welford) used by instrumentation and the benchmark
// harnesses that reproduce the paper's mean-and-stddev error bars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace p2g {

/// Accumulates count/mean/variance/min/max in O(1) space (Welford's method).
class RunningStat {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);
  void reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

  /// "mean ± stddev (n=count)" for reports.
  std::string summary() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile over a sample vector (nearest-rank); `p` in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace p2g
