// Minimal leveled logger. Thread-safe, writes to stderr. The runtime logs
// scheduling decisions at Debug level so tests stay quiet by default.
#pragma once

#include <sstream>
#include <string>

namespace p2g {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line ("[level] message") to stderr under a lock.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace p2g

#define P2G_LOG(level)                      \
  if (::p2g::log_level() > (level)) {       \
  } else                                    \
    ::p2g::detail::LogLine(level)

#define P2G_DEBUG P2G_LOG(::p2g::LogLevel::kDebug)
#define P2G_INFO P2G_LOG(::p2g::LogLevel::kInfo)
#define P2G_WARN P2G_LOG(::p2g::LogLevel::kWarn)
#define P2G_ERROR P2G_LOG(::p2g::LogLevel::kError)
