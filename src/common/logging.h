// Minimal leveled logger. Thread-safe, writes to stderr. The runtime logs
// scheduling decisions at Debug level so tests stay quiet by default.
//
// Each line carries a monotonic timestamp (seconds since the first log
// call) and an optional component tag:
//   [p2g info +0.123s runtime] watchdog expired; aborting run
// The threshold can be set without code changes via the P2G_LOG
// environment variable (debug|info|warn|error|off); set_log_level()
// overrides it.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace p2g {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Re-reads the P2G_LOG environment variable and applies it as the
/// threshold (unknown values are ignored). Called automatically once on
/// first use; exposed for tests.
void apply_log_env();

/// Writes one formatted line to stderr under a lock. `component` may be
/// empty (no tag printed).
void log_message(LogLevel level, std::string_view component,
                 const std::string& message);
inline void log_message(LogLevel level, const std::string& message) {
  log_message(level, {}, message);
}

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level, std::string_view component = {})
      : level_(level), component_(component) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace p2g

#define P2G_LOG(level)                      \
  if (::p2g::log_level() > (level)) {       \
  } else                                    \
    ::p2g::detail::LogLine(level)

/// Tagged variant: P2G_LOGC(LogLevel::kWarn, "runtime") << "...";
#define P2G_LOGC(level, component)          \
  if (::p2g::log_level() > (level)) {       \
  } else                                    \
    ::p2g::detail::LogLine(level, component)

#define P2G_DEBUG P2G_LOG(::p2g::LogLevel::kDebug)
#define P2G_INFO P2G_LOG(::p2g::LogLevel::kInfo)
#define P2G_WARN P2G_LOG(::p2g::LogLevel::kWarn)
#define P2G_ERROR P2G_LOG(::p2g::LogLevel::kError)

#define P2G_DEBUGC(component) P2G_LOGC(::p2g::LogLevel::kDebug, component)
#define P2G_INFOC(component) P2G_LOGC(::p2g::LogLevel::kInfo, component)
#define P2G_WARNC(component) P2G_LOGC(::p2g::LogLevel::kWarn, component)
#define P2G_ERRORC(component) P2G_LOGC(::p2g::LogLevel::kError, component)
