#include "common/dynamic_bitset.h"

#include <bit>

#include "common/error.h"

namespace p2g {

void DynamicBitset::resize(size_t new_size) {
  const size_t new_words = (new_size + kBitsPerWord - 1) / kBitsPerWord;
  if (new_size < size_) {
    // Clear bits beyond the new size before shrinking so count_ stays exact.
    for (size_t pos = new_size; pos < size_; ++pos) {
      if (test(pos)) {
        words_[pos / kBitsPerWord] &= ~(uint64_t{1} << (pos % kBitsPerWord));
        --count_;
      }
    }
  }
  words_.resize(new_words, 0);
  size_ = new_size;
}

bool DynamicBitset::test(size_t pos) const {
  check_internal(pos < size_, "DynamicBitset::test out of range");
  return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1u;
}

bool DynamicBitset::set(size_t pos) {
  check_internal(pos < size_, "DynamicBitset::set out of range");
  uint64_t& word = words_[pos / kBitsPerWord];
  const uint64_t mask = uint64_t{1} << (pos % kBitsPerWord);
  if (word & mask) return false;
  word |= mask;
  ++count_;
  return true;
}

size_t DynamicBitset::set_range(size_t begin, size_t end) {
  check_internal(begin <= end && end <= size_,
                 "DynamicBitset::set_range out of range");
  size_t newly = 0;
  size_t pos = begin;
  // Ragged head, whole middle words, then the ragged tail.
  while (pos < end && pos % kBitsPerWord != 0) {
    newly += set(pos) ? 1 : 0;
    ++pos;
  }
  while (pos + kBitsPerWord <= end) {
    uint64_t& word = words_[pos / kBitsPerWord];
    const size_t fresh =
        kBitsPerWord - static_cast<size_t>(std::popcount(word));
    word = ~uint64_t{0};
    newly += fresh;
    count_ += fresh;
    pos += kBitsPerWord;
  }
  while (pos < end) {
    newly += set(pos) ? 1 : 0;
    ++pos;
  }
  return newly;
}

bool DynamicBitset::all_in_range(size_t begin, size_t end) const {
  check_internal(begin <= end && end <= size_,
                 "DynamicBitset::all_in_range out of range");
  size_t pos = begin;
  while (pos < end && pos % kBitsPerWord != 0) {
    if (!test(pos)) return false;
    ++pos;
  }
  while (pos + kBitsPerWord <= end) {
    if (words_[pos / kBitsPerWord] != ~uint64_t{0}) return false;
    pos += kBitsPerWord;
  }
  while (pos < end) {
    if (!test(pos)) return false;
    ++pos;
  }
  return true;
}

size_t DynamicBitset::find_first_unset() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != ~uint64_t{0}) {
      const size_t bit = static_cast<size_t>(std::countr_one(words_[w]));
      const size_t pos = w * kBitsPerWord + bit;
      if (pos < size_) return pos;
    }
  }
  return size_;
}

void DynamicBitset::clear() {
  words_.assign(words_.size(), 0);
  count_ = 0;
}

}  // namespace p2g
