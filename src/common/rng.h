// Seedable, reproducible random numbers (splitmix64 + xoshiro256**).
//
// Everything that injects randomness into a run — fault plans, randomized
// property tests, benchmark input generation — derives from one uint64
// seed through this header, so a failing chaos run is replayable from a
// single number. Two entry points:
//
//  - Rng: a fast xoshiro256** stream (state seeded via splitmix64). Also a
//    UniformRandomBitGenerator, so it plugs into <random> distributions and
//    std::shuffle where needed.
//  - mix(...): a stateless splitmix64-based hash of up to four words.
//    Fault decisions use it to make each (seed, link, seqno) verdict a pure
//    function — independent of thread interleaving and draw order.
#pragma once

#include <cstdint>
#include <string_view>

namespace p2g {

/// splitmix64 step: advances *state and returns the next output. The
/// canonical generator for seeding other PRNGs (Vigna).
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless hash of up to four 64-bit words (splitmix64 finalizer chain).
/// mix(seed, a, b) == mix(seed, a, b) always: use it when a random-looking
/// verdict must be a pure function of its inputs.
inline uint64_t mix(uint64_t a, uint64_t b = 0, uint64_t c = 0,
                    uint64_t d = 0) {
  uint64_t state = a;
  uint64_t h = splitmix64(state);
  state ^= b + 0x9E3779B97F4A7C15ULL;
  h ^= splitmix64(state);
  state ^= c + 0xC2B2AE3D27D4EB4FULL;
  h ^= splitmix64(state);
  state ^= d + 0x165667B19E3779F9ULL;
  h ^= splitmix64(state);
  return h;
}

/// FNV-1a over a string, for hashing endpoint names into mix() inputs.
inline uint64_t hash_str(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<uint8_t>(ch);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// xoshiro256** 1.0 (Blackman & Vigna): fast, 256-bit state, passes BigCrush.
/// Seeded from one uint64 via splitmix64 (the recommended procedure), so a
/// zero seed is fine.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 1) { reseed(seed); }

  void reseed(uint64_t seed) {
    for (uint64_t& word : s_) word = splitmix64(seed);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive); lo must be <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return span == 0 ? static_cast<int64_t>(next())  // full 64-bit range
                     : lo + static_cast<int64_t>(next() % span);
  }

  /// True with probability p (p <= 0 never, p >= 1 always).
  bool chance(double p) { return uniform() < p; }

  // UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return next(); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace p2g
