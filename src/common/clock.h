// Monotonic timing helpers used by instrumentation and deadline timers.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace p2g {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;

/// Nanoseconds since an arbitrary (per-process) epoch; monotonic.
inline int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the calling thread, in nanoseconds. Unlike wall
/// time this is stable on oversubscribed machines: it sums exactly the
/// work the thread did, regardless of how the scheduler sliced it. Used to
/// attribute per-shard analyzer cost (bench_dispatch_overhead).
inline int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 +
         static_cast<int64_t>(ts.tv_nsec);
}

inline double ns_to_us(int64_t ns) { return static_cast<double>(ns) / 1e3; }
inline double ns_to_ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double ns_to_s(int64_t ns) { return static_cast<double>(ns) / 1e9; }

/// Measures the wall time of a scope and accumulates it into a counter.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(int64_t& accumulator)
      : accumulator_(accumulator), start_(now_ns()) {}
  ~ScopedTimerNs() { accumulator_ += now_ns() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  int64_t& accumulator_;
  int64_t start_;
};

/// Simple stopwatch for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }
  int64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_s() const { return ns_to_s(elapsed_ns()); }
  double elapsed_ms() const { return ns_to_ms(elapsed_ns()); }

 private:
  int64_t start_;
};

}  // namespace p2g
