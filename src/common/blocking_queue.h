// Unbounded MPSC/MPMC blocking queue used for the dependency analyzer's
// event stream. The paper's runtime pushes store/resize events from worker
// threads into a dedicated analyzer thread; this queue is that channel.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace p2g {

template <typename T>
class BlockingQueue {
 public:
  /// Pushes an item and wakes one waiter.
  void push(T item) {
    {
      std::scoped_lock lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until at least one item is available, then drains *all* pending
  /// items into `out` (cleared first) in FIFO order under a single lock
  /// acquisition — the batched variant of pop() for consumers that can
  /// amortize per-item overhead. Returns false only after close() with an
  /// empty queue.
  bool pop_all(std::deque<T>& out) {
    out.clear();
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    items_.swap(out);
    return true;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue; subsequent pops drain remaining items then fail.
  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace p2g
