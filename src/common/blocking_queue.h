// Unbounded MPSC/MPMC blocking queue used for the dependency analyzer's
// event stream. The paper's runtime pushes store/resize events from worker
// threads into a dedicated analyzer thread; this queue is that channel.
//
// Built on the instrumented sync primitives (check/sync.h): under a
// p2gcheck session every lock/wait is reported to the race checker and, in
// schedule-exploration mode, the seeded scheduler decides each
// interleaving. Without a session the primitives are passthroughs. The
// check::write/read annotations describe the logical queue state so an
// unsynchronized use of the queue internals would surface as P2G-C001.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "check/sync.h"

namespace p2g {

template <typename T>
class BlockingQueue {
 public:
  /// Pushes an item and wakes one waiter.
  void push(T item) {
    {
      std::scoped_lock lock(mutex_);
      check::write(items_, "BlockingQueue.items");
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed.
  /// Returns nullopt only after close() with an empty queue.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    check::read(closed_, "BlockingQueue.closed");
    if (items_.empty()) return std::nullopt;
    check::write(items_, "BlockingQueue.items");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until at least one item is available, then drains *all* pending
  /// items into `out` (cleared first) in FIFO order under a single lock
  /// acquisition — the batched variant of pop() for consumers that can
  /// amortize per-item overhead. Returns false only after close() with an
  /// empty queue.
  bool pop_all(std::deque<T>& out) {
    out.clear();
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    check::read(closed_, "BlockingQueue.closed");
    if (items_.empty()) return false;
    check::write(items_, "BlockingQueue.items");
    items_.swap(out);
    return true;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    check::write(items_, "BlockingQueue.items");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Closes the queue; subsequent pops drain remaining items then fail.
  void close() {
    {
      std::scoped_lock lock(mutex_);
      check::write(closed_, "BlockingQueue.closed");
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable sync::Mutex mutex_{"BlockingQueue.mutex"};
  sync::CondVar cv_{"BlockingQueue.cv"};
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace p2g
