#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace p2g {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view trim(std::string_view text) {
  const char* ws = " \t\r\n";
  const size_t first = text.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const size_t last = text.find_last_not_of(ws);
  return text.substr(first, last - first + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string with_thousands(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace p2g
