// Lock-free multi-producer single-consumer event queue (analyzer shards).
//
// Vyukov-style intrusive MPSC list with a stub node: producers publish with
// one atomic exchange plus one release store (wait-free, no lock), the
// single consumer drains the linked list without synchronizing against
// producers at all. Parking is the only place a lock appears: a consumer
// that finds the queue empty raises a `sleeping_` flag and waits on an
// instrumented sync::CondVar, and producers take the mutex only when they
// observe that flag — the uncontended push path stays lock-free.
//
// The p2gcheck annotations describe the intended happens-before edges so
// the race checker can verify the protocol instead of flagging it:
//   - producers write_range the node payload and release(this) before the
//     publishing exchange; the consumer acquire(this)s once per non-empty
//     drain before read_range-ing payloads,
//   - the consumer reset_range()s nodes before freeing them so recycled
//     allocations cannot race against stale epochs,
//   - the drain spin that waits for an in-flight producer to link its node
//     is a check::racy_read scheduling point, which keeps virtualized
//     schedule exploration live (the scheduler can run the producer).
// Under virtualized exploration the spin branch is in fact unreachable:
// there is no instrumented operation between a producer's exchange and its
// next-pointer store, so the scheduler can never preempt between them.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "check/sync.h"

namespace p2g {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscQueue() {
    Node* node = tail_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Lock-free push (any thread). Wakes the consumer only when it is
  /// parked, so the contended-queue fast path never touches the mutex.
  void push(T item) {
    Node* node = new Node(std::move(item));
    check::write_range(&node->value, sizeof(T), "MpscQueue.node");
    check::release(this);
    // seq_cst exchange + seq_cst sleeping_ load below: if this publication
    // is not visible to the consumer's post-park drain, the consumer's
    // sleeping_ store is visible here, so one side always notices the
    // other (no lost wakeup).
    Node* prev = head_.exchange(node, std::memory_order_seq_cst);
    prev->next.store(node, std::memory_order_release);
    approx_size_.fetch_add(1, std::memory_order_relaxed);
    if (sleeping_.load(std::memory_order_seq_cst)) {
      {
        std::scoped_lock lock(mutex_);
        check::write(wakeups_, "MpscQueue.wakeups");
        ++wakeups_;
      }
      cv_.notify_one();
    }
  }

  /// Blocks until at least one item is available, then drains everything
  /// pending into `out` (cleared first) — the shard analyzer's batched
  /// consume. Single consumer only. Returns false only after close() with
  /// an empty queue.
  bool pop_all(std::deque<T>& out) {
    out.clear();
    if (!stash_.empty()) out.swap(stash_);
    drain(out);
    if (!out.empty()) return true;
    while (true) {
      sleeping_.store(true, std::memory_order_seq_cst);
      if (drain(out) > 0) {
        sleeping_.store(false, std::memory_order_relaxed);
        return true;
      }
      {
        std::unique_lock lock(mutex_);
        check::read(closed_, "MpscQueue.closed");
        if (closed_) {
          sleeping_.store(false, std::memory_order_relaxed);
          lock.unlock();
          drain(out);  // events pushed before close() must not be lost
          return !out.empty();
        }
        cv_.wait(lock, [&] {
          check::read(wakeups_, "MpscQueue.wakeups");
          return wakeups_ > 0 || closed_;
        });
        check::write(wakeups_, "MpscQueue.wakeups");
        if (wakeups_ > 0) --wakeups_;
      }
      sleeping_.store(false, std::memory_order_relaxed);
      if (drain(out) > 0) return true;
    }
  }

  /// Blocking single-item pop (the unbatched ablation path). Single
  /// consumer only. Returns nullopt only after close() with an empty queue.
  std::optional<T> pop() {
    while (stash_.empty()) {
      if (!pop_all(stash_)) return std::nullopt;
    }
    T item = std::move(stash_.front());
    stash_.pop_front();
    return item;
  }

  /// Closes the queue; the consumer drains remaining items then fails.
  void close() {
    {
      std::scoped_lock lock(mutex_);
      check::write(closed_, "MpscQueue.closed");
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Approximate backlog (sampler gauge; racy by design).
  size_t size() const {
    const int64_t n = approx_size_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<size_t>(n) : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  /// Consumer-only: moves every reachable node's payload into `out`.
  size_t drain(std::deque<T>& out) {
    size_t drained = 0;
    bool acquired = false;
    Node* tail = tail_;
    while (true) {
      Node* next = tail->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        if (head_.load(std::memory_order_seq_cst) == tail) break;  // empty
        // A producer exchanged head_ but has not linked its node yet; its
        // two stores are adjacent, so this resolves in a few cycles.
        check::racy_read(&tail->next, sizeof(void*));
        continue;
      }
      if (!acquired) {
        check::acquire(this);
        acquired = true;
      }
      check::read_range(&next->value, sizeof(T), "MpscQueue.node");
      out.push_back(std::move(next->value));
      check::reset_range(tail, sizeof(Node));
      delete tail;
      tail = next;
      ++drained;
    }
    tail_ = tail;
    if (drained > 0) {
      approx_size_.fetch_sub(static_cast<int64_t>(drained),
                             std::memory_order_relaxed);
    }
    return drained;
  }

  std::atomic<Node*> head_;  ///< producers publish here
  Node* tail_;               ///< consumer-owned
  std::deque<T> stash_;      ///< consumer-owned (single-item pop)
  std::atomic<int64_t> approx_size_{0};

  // Parking protocol (consumer raises sleeping_, producers notify).
  std::atomic<bool> sleeping_{false};
  mutable sync::Mutex mutex_{"MpscQueue.mutex"};
  sync::CondVar cv_{"MpscQueue.cv"};
  int64_t wakeups_ = 0;
  bool closed_ = false;
};

}  // namespace p2g
