// A whole-frame streaming pipeline: the workload shape the shared-memory
// data plane is built for (ISSUE 10).
//
// Three kernels pass complete frames through an aging loop:
//   src (run-once): seeds frame(0) with deterministic pseudo-random bytes.
//   xform (per age): fetches frame(a) whole, stores out(a) whole.
//   pump (per age): fetches out(a) whole, stores frame(a+1) whole.
// The loop is capped with RunOptions::max_age. Every cross-partition
// transfer is a whole-array store of `frame_bytes` contiguous bytes —
// exactly what the arena fast lane ships as an offset with zero copies.
//
// All arithmetic is byte-wise and wraps (uint8), so results are bit-exact
// regardless of node count, transport, or schedule.
#pragma once

#include <cstdint>

#include "core/program.h"
#include "core/runtime.h"

namespace p2g::workloads {

struct PipelineConfig {
  int frame_bytes = 4096;  ///< elements per frame (uint8)
  int frames = 8;          ///< ages to run (max_age cap)
  uint32_t seed = 1;
};

struct PipelineWorkload {
  PipelineConfig config;

  Program build() const;

  /// Caps the aging loop at config.frames.
  void apply_schedule(RunOptions& options) const;
};

}  // namespace p2g::workloads
