// The paper's MJPEG workload (§VII-B, Fig. 8) expressed as a P2G program.
//
// Kernels and fields:
//   read/splityuv (source, serial by construction)
//       reads frame `a`, splits it into block-major planes and stores
//       yInput(a), uInput(a), vInput(a) as whole fields; stops storing at
//       end of stream (the 51st instance on a 50-frame clip).
//   yDCT / uDCT / vDCT (one instance per 8x8 macro-block)
//       fetch input(a)[by][bx], DCT + quantize, store result(a)[by][bx].
//       CIF 352x288 yields 44x36 = 1584 luma and 22x18 = 396 chroma
//       blocks per frame — exactly the instance counts of Table II.
//   vlc/write (serial)
//       fetches the three whole result fields of age `a`, entropy-codes
//       the frame (Huffman VLC) and appends it to the MJPEG stream.
//
// Fields are 3-D: [block row][block col][64 coefficients], which lets the
// block slices use plain (var, var, all) addressing.
#pragma once

#include <memory>

#include "core/program.h"
#include "core/runtime.h"
#include "media/jpeg.h"
#include "media/mjpeg.h"
#include "media/yuv.h"

namespace p2g::workloads {

struct MjpegWorkloadConfig {
  int quality = 50;
  bool fast_dct = false;  ///< the paper's evaluation uses the naive DCT
};

struct MjpegWorkload {
  std::shared_ptr<const media::YuvVideo> video;
  std::shared_ptr<media::MjpegWriter> output =
      std::make_shared<media::MjpegWriter>();
  MjpegWorkloadConfig config;

  Program build() const;
};

/// Block-major conversion used by read/splityuv: plane pixels -> a
/// [blocks_h][blocks_w][64] uint8 buffer.
nd::AnyBuffer plane_to_blocks(const uint8_t* plane, int width, int height);

}  // namespace p2g::workloads
