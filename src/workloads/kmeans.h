// The paper's K-means workload (§VII-A, Fig. 7) as a P2G program, plus a
// sequential reference implementation.
//
// P2G kernels and fields:
//   init (run-once): generates n random datapoints, stores them to
//       datapoints(0) and the first k of them to centroids(0).
//   assign (per datapoint x, per centroid j, per age): fetches datapoint x
//       and centroid j of age a, stores the squared euclidean distance to
//       dist(a)[x][j]. This is the finest-granularity decomposition —
//       n*k instances per iteration, the load that saturates the paper's
//       serial dependency analyzer (Fig. 10).
//   refine (per centroid j, per age): fetches the whole distance matrix,
//       all datapoints and the previous centroid j; computes the mean of
//       the points whose arg-min centroid is j and stores centroids(a+1)[j]
//       (previous centroid kept for empty clusters).
//   print (serial, per age): snapshots centroids(a).
//
// The aging loop assign -> dist -> refine -> centroids(a+1) -> assign is
// the paper's "kernel definitions of assign and refine form a loop".
// Like the paper we do not run to convergence: the iteration count is a
// fixed break-point enforced with per-kernel age caps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/program.h"
#include "core/runtime.h"

namespace p2g::workloads {

struct KmeansConfig {
  int n = 2000;         ///< datapoints (paper: 2000)
  int k = 100;          ///< clusters (paper: K=100)
  int dim = 2;          ///< point dimensionality
  int iterations = 10;  ///< fixed break-point (paper: 10)
  uint32_t seed = 42;
};

struct KmeansWorkload {
  KmeansConfig config;
  /// Centroid snapshots captured by print, one per age (k*dim doubles).
  std::shared_ptr<std::vector<std::vector<double>>> snapshots =
      std::make_shared<std::vector<std::vector<double>>>();

  Program build() const;

  /// Age caps that stop the loop after `iterations` iterations: assign and
  /// refine run for ages 0..iterations-1, print observes 0..iterations.
  void apply_schedule(RunOptions& options) const;
};

/// Deterministic dataset generation shared by the P2G and sequential
/// implementations.
std::vector<double> generate_points(const KmeansConfig& config);

/// Sequential reference: returns the centroids after `iterations`
/// iterations (identical arithmetic and tie-breaking as the P2G kernels,
/// so results must match exactly).
std::vector<double> kmeans_sequential(const KmeansConfig& config);

}  // namespace p2g::workloads
