// Block-based motion estimation across consecutive frames.
//
// The paper's introduction motivates P2G with workloads beyond plain
// coding — "extracting features in pictures", "calculation of 3D depth
// information from camera arrays" — all of which reduce to per-block
// analysis against neighboring frames. This workload is the classic
// building block: full-search block matching (the motion-estimation core
// of every MPEG-style encoder).
//
// P2G structure:
//   read (source)   stores each frame's luma twice: as a whole plane
//                   (planes(a), rank 2) and block-major (blocks(a),
//                   rank 3) — fields are views chosen per consumer.
//   motion          one instance per 16x16 block per frame a >= 1:
//                   fetches its block, the *whole previous plane*
//                   (a cross-age whole-field fetch) and performs a full
//                   search in a +-search window; stores the best (dx, dy)
//                   into vectors(a)[by][bx].
//   trace (serial)  per frame: mean motion magnitude (a scene-activity
//                   signal), appended to a shared trace.
//
// motion(1..) instances only exist from age 1 (the a-1 fetch is
// structurally infeasible at age 0), exercising the first-feasible-age
// machinery.
#pragma once

#include <memory>
#include <vector>

#include "core/program.h"
#include "media/yuv.h"

namespace p2g::workloads {

struct MotionConfig {
  int block = 16;   ///< block edge in pixels
  int search = 8;   ///< search radius in pixels
};

struct MotionWorkload {
  std::shared_ptr<const media::YuvVideo> video;
  MotionConfig config;
  /// Mean motion magnitude per frame (ages 1..frames-1), by trace.
  std::shared_ptr<std::vector<double>> activity =
      std::make_shared<std::vector<double>>();

  Program build() const;
};

/// Sequential reference: best (dx, dy) per block of `cur` against `prev`
/// (SAD, ties broken in scan order dy-major). Returned vector is
/// block-row-major, two entries (dx, dy) per block.
std::vector<int> motion_estimate_frame(const uint8_t* cur,
                                       const uint8_t* prev, int width,
                                       int height,
                                       const MotionConfig& config);

}  // namespace p2g::workloads
