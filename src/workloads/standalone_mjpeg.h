// The paper's comparison baseline: "the standalone single threaded MJPEG
// encoder on which the P2G version is based" (§VIII-A). A plain loop over
// frames, naive DCT, no framework.
#pragma once

#include "media/jpeg.h"
#include "media/mjpeg.h"
#include "media/yuv.h"

namespace p2g::workloads {

/// Encodes the whole video single-threaded; returns the MJPEG stream.
media::MjpegWriter encode_mjpeg_standalone(
    const media::YuvVideo& video, const media::EncoderConfig& config = {});

}  // namespace p2g::workloads
