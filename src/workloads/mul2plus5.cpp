#include "workloads/mul2plus5.h"

#include "core/context.h"

namespace p2g::workloads {

Program Mul2Plus5::build() const {
  ProgramBuilder pb;
  pb.field("m_data", nd::ElementType::kInt32, 1);
  pb.field("p_data", nd::ElementType::kInt32, 1);

  const int n = elements;
  pb.kernel("init")
      .run_once()
      .store("values", "m_data", AgeExpr::constant(0), Slice::whole())
      .body([n](KernelContext& ctx) {
        nd::AnyBuffer values(nd::ElementType::kInt32, nd::Extents({n}));
        for (int i = 0; i < n; ++i) {
          values.data<int32_t>()[i] = i + 10;  // put(values, i+10, i)
        }
        ctx.store_array("values", std::move(values));
      });

  pb.kernel("mul2")
      .index("x")
      .fetch("value", "m_data", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "p_data", AgeExpr::relative(0), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out",
                                  ctx.fetch_scalar<int32_t>("value") * 2);
      });

  pb.kernel("plus5")
      .index("x")
      .fetch("value", "p_data", AgeExpr::relative(0), Slice().var("x"))
      .store("out", "m_data", AgeExpr::relative(1), Slice().var("x"))
      .body([](KernelContext& ctx) {
        ctx.store_scalar<int32_t>("out",
                                  ctx.fetch_scalar<int32_t>("value") + 5);
      });

  auto sink = printed;
  pb.kernel("print")
      .serial()
      .fetch("m", "m_data", AgeExpr::relative(0), Slice::whole())
      .fetch("p", "p_data", AgeExpr::relative(0), Slice::whole())
      .body([sink](KernelContext& ctx) {
        const nd::ConstView& m = ctx.fetch_view("m");
        const nd::ConstView& p = ctx.fetch_view("p");
        std::vector<int32_t> row;
        row.reserve(static_cast<size_t>(m.element_count() +
                                        p.element_count()));
        for (int64_t i = 0; i < m.element_count(); ++i) {
          row.push_back(m.at_flat<int32_t>(i));
        }
        for (int64_t i = 0; i < p.element_count(); ++i) {
          row.push_back(p.at_flat<int32_t>(i));
        }
        sink->push_back(std::move(row));
      });

  return pb.build();
}

}  // namespace p2g::workloads
