#include "workloads/pipeline.h"

#include "core/context.h"

namespace p2g::workloads {

Program PipelineWorkload::build() const {
  ProgramBuilder pb;
  pb.field("frame", nd::ElementType::kUInt8, 1);
  pb.field("out", nd::ElementType::kUInt8, 1);

  const int n = config.frame_bytes;
  const uint32_t seed = config.seed;
  pb.kernel("src")
      .run_once()
      .store("f", "frame", AgeExpr::constant(0), Slice::whole())
      .body([n, seed](KernelContext& ctx) {
        nd::AnyBuffer values(nd::ElementType::kUInt8, nd::Extents({n}));
        uint32_t state = seed * 2654435761u + 1;
        for (int i = 0; i < n; ++i) {
          state ^= state << 13;
          state ^= state >> 17;
          state ^= state << 5;
          values.data<uint8_t>()[i] = static_cast<uint8_t>(state);
        }
        ctx.store_array("f", std::move(values));
      });

  pb.kernel("xform")
      .fetch("in", "frame", AgeExpr::relative(0), Slice::whole())
      .store("out", "out", AgeExpr::relative(0), Slice::whole())
      .body([](KernelContext& ctx) {
        const nd::ConstView& in = ctx.fetch_view("in");
        nd::AnyBuffer result(nd::ElementType::kUInt8, in.extents());
        for (int64_t i = 0; i < in.element_count(); ++i) {
          result.data<uint8_t>()[i] =
              static_cast<uint8_t>(in.at_flat<uint8_t>(i) * 2 + 1);
        }
        ctx.store_array("out", std::move(result));
      });

  pb.kernel("pump")
      .fetch("in", "out", AgeExpr::relative(0), Slice::whole())
      .store("next", "frame", AgeExpr::relative(1), Slice::whole())
      .body([](KernelContext& ctx) {
        const nd::ConstView& in = ctx.fetch_view("in");
        nd::AnyBuffer result(nd::ElementType::kUInt8, in.extents());
        for (int64_t i = 0; i < in.element_count(); ++i) {
          result.data<uint8_t>()[i] =
              static_cast<uint8_t>(in.at_flat<uint8_t>(i) + 3);
        }
        ctx.store_array("next", std::move(result));
      });

  return pb.build();
}

void PipelineWorkload::apply_schedule(RunOptions& options) const {
  options.max_age = config.frames;
}

}  // namespace p2g::workloads
