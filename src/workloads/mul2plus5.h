// The paper's running example (Figs. 2-6): an init kernel seeds
// m_data(0) = {10..14}; mul2 doubles each element into p_data(a); plus5
// adds 5 into m_data(a+1); print observes both fields per age. mul2 and
// plus5 form an aging cycle with no termination condition — cap it with
// RunOptions::max_age.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/program.h"

namespace p2g::workloads {

struct Mul2Plus5 {
  /// Rows captured by the print kernel, one per age:
  /// {m_data..., p_data...}.
  std::shared_ptr<std::vector<std::vector<int32_t>>> printed =
      std::make_shared<std::vector<std::vector<int32_t>>>();

  /// Number of elements in the fields (the paper uses 5).
  int elements = 5;

  Program build() const;
};

}  // namespace p2g::workloads
