#include "workloads/kmeans.h"

#include <cmath>

#include "common/error.h"
#include "core/context.h"

namespace p2g::workloads {

namespace {

/// xorshift64* generator: deterministic across platforms.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed == 0 ? 0x9e3779b97f4a7c15ULL
                                                : seed) {}
  uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  double uniform() {  // [0, 1)
    return static_cast<double>(next() >> 11) / 9007199254740992.0;
  }
};

double sq_distance(const double* a, const double* b, int dim) {
  double total = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double delta = a[d] - b[d];
    total += delta * delta;
  }
  return total;
}

/// Arg-min over the k distances of point x (lowest index wins ties) —
/// shared by refine and the sequential reference.
int argmin_cluster(const double* dist_row, int k) {
  int best = 0;
  for (int j = 1; j < k; ++j) {
    if (dist_row[j] < dist_row[best]) best = j;
  }
  return best;
}

}  // namespace

std::vector<double> generate_points(const KmeansConfig& config) {
  Rng rng(config.seed);
  std::vector<double> points(static_cast<size_t>(config.n) *
                             static_cast<size_t>(config.dim));
  for (double& v : points) v = rng.uniform() * 100.0;
  return points;
}

Program KmeansWorkload::build() const {
  const KmeansConfig cfg = config;
  check_argument(cfg.n > 0 && cfg.k > 0 && cfg.k <= cfg.n && cfg.dim > 0,
                 "invalid k-means configuration");

  ProgramBuilder pb;
  pb.field("datapoints", nd::ElementType::kFloat64, 2);  // [n][dim]
  pb.field("centroids", nd::ElementType::kFloat64, 2);   // [k][dim]
  pb.field("dist", nd::ElementType::kFloat64, 2);        // [n][k]

  pb.kernel("init")
      .run_once()
      .store("points", "datapoints", AgeExpr::constant(0), Slice::whole())
      .store("means", "centroids", AgeExpr::constant(0), Slice::whole())
      .body([cfg](KernelContext& ctx) {
        const std::vector<double> points = generate_points(cfg);
        nd::AnyBuffer data(nd::ElementType::kFloat64,
                           nd::Extents({cfg.n, cfg.dim}));
        std::copy(points.begin(), points.end(), data.data<double>());
        // Initial means: the first k datapoints (deterministic stand-in
        // for the paper's random selection).
        nd::AnyBuffer means(nd::ElementType::kFloat64,
                            nd::Extents({cfg.k, cfg.dim}));
        std::copy(points.begin(),
                  points.begin() + static_cast<ptrdiff_t>(
                                       static_cast<size_t>(cfg.k) *
                                       static_cast<size_t>(cfg.dim)),
                  means.data<double>());
        ctx.store_array("points", std::move(data));
        ctx.store_array("means", std::move(means));
      });

  const int dim = cfg.dim;
  pb.kernel("assign")
      .index("x")
      .index("j")
      .fetch("pt", "datapoints", AgeExpr::constant(0),
             Slice().var("x").all())
      .fetch("cent", "centroids", AgeExpr::relative(0),
             Slice().var("j").all())
      .store("d", "dist", AgeExpr::relative(0), Slice().var("x").var("j"))
      .body([dim](KernelContext& ctx) {
        // Point and centroid rows are contiguous in field storage; the
        // views alias it with no copy.
        const nd::ConstView& pt = ctx.fetch_view("pt");
        const nd::ConstView& cent = ctx.fetch_view("cent");
        ctx.store_scalar<double>(
            "d", sq_distance(pt.data<double>(), cent.data<double>(), dim));
      });

  const int n = cfg.n;
  const int k = cfg.k;
  pb.kernel("refine")
      .index("j")
      .fetch("prev", "centroids", AgeExpr::relative(0),
             Slice().var("j").all())
      .fetch("dall", "dist", AgeExpr::relative(0), Slice::whole())
      .fetch("pts", "datapoints", AgeExpr::constant(0), Slice::whole())
      .store("out", "centroids", AgeExpr::relative(1),
             Slice().var("j").all())
      .body([n, k, dim](KernelContext& ctx) {
        const int64_t j = ctx.index("j");
        const double* dist = ctx.fetch_view("dall").data<double>();
        const double* pts = ctx.fetch_view("pts").data<double>();
        const double* prev = ctx.fetch_view("prev").data<double>();

        std::vector<double> sum(static_cast<size_t>(dim), 0.0);
        int64_t count = 0;
        for (int x = 0; x < n; ++x) {
          if (argmin_cluster(dist + static_cast<size_t>(x) *
                                        static_cast<size_t>(k),
                             k) == j) {
            for (int d = 0; d < dim; ++d) {
              sum[static_cast<size_t>(d)] +=
                  pts[static_cast<size_t>(x) * static_cast<size_t>(dim) +
                      static_cast<size_t>(d)];
            }
            ++count;
          }
        }
        nd::AnyBuffer out(nd::ElementType::kFloat64, nd::Extents({dim}));
        for (int d = 0; d < dim; ++d) {
          out.data<double>()[d] =
              count > 0 ? sum[static_cast<size_t>(d)] /
                              static_cast<double>(count)
                        : prev[d];  // empty cluster keeps its centroid
        }
        ctx.store_array("out", std::move(out));
      });

  auto sink = snapshots;
  pb.kernel("print")
      .serial()
      .fetch("c", "centroids", AgeExpr::relative(0), Slice::whole())
      .body([sink](KernelContext& ctx) {
        const nd::ConstView& c = ctx.fetch_view("c");
        std::vector<double> snapshot(
            c.data<double>(), c.data<double>() + c.element_count());
        sink->push_back(std::move(snapshot));
      });

  return pb.build();
}

void KmeansWorkload::apply_schedule(RunOptions& options) const {
  options.max_age = config.iterations;
  options.kernel_schedules["assign"].max_age = config.iterations - 1;
  options.kernel_schedules["refine"].max_age = config.iterations - 1;
}

std::vector<double> kmeans_sequential(const KmeansConfig& config) {
  const std::vector<double> points = generate_points(config);
  const auto dim = static_cast<size_t>(config.dim);
  std::vector<double> centroids(points.begin(),
                                points.begin() +
                                    static_cast<ptrdiff_t>(
                                        static_cast<size_t>(config.k) * dim));
  std::vector<double> dist(static_cast<size_t>(config.n) *
                           static_cast<size_t>(config.k));

  for (int iter = 0; iter < config.iterations; ++iter) {
    for (int x = 0; x < config.n; ++x) {
      for (int j = 0; j < config.k; ++j) {
        dist[static_cast<size_t>(x) * static_cast<size_t>(config.k) +
             static_cast<size_t>(j)] =
            sq_distance(&points[static_cast<size_t>(x) * dim],
                        &centroids[static_cast<size_t>(j) * dim],
                        config.dim);
      }
    }
    std::vector<double> next(centroids.size(), 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(config.k), 0);
    for (int x = 0; x < config.n; ++x) {
      const int j = argmin_cluster(
          &dist[static_cast<size_t>(x) * static_cast<size_t>(config.k)],
          config.k);
      for (size_t d = 0; d < dim; ++d) {
        next[static_cast<size_t>(j) * dim + d] +=
            points[static_cast<size_t>(x) * dim + d];
      }
      ++counts[static_cast<size_t>(j)];
    }
    for (int j = 0; j < config.k; ++j) {
      for (size_t d = 0; d < dim; ++d) {
        if (counts[static_cast<size_t>(j)] > 0) {
          next[static_cast<size_t>(j) * dim + d] /=
              static_cast<double>(counts[static_cast<size_t>(j)]);
        } else {
          next[static_cast<size_t>(j) * dim + d] =
              centroids[static_cast<size_t>(j) * dim + d];
        }
      }
    }
    centroids = std::move(next);
  }
  return centroids;
}

}  // namespace p2g::workloads
