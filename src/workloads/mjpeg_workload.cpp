#include "workloads/mjpeg_workload.h"

#include <cstring>

#include "common/error.h"
#include "core/context.h"

namespace p2g::workloads {

using media::kBlockDim;
using media::kBlockSize;

nd::AnyBuffer plane_to_blocks(const uint8_t* plane, int width, int height) {
  const int bw = (width + kBlockDim - 1) / kBlockDim;
  const int bh = (height + kBlockDim - 1) / kBlockDim;
  nd::AnyBuffer out(nd::ElementType::kUInt8, nd::Extents({bh, bw, 64}));
  uint8_t* dst = out.data<uint8_t>();
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      media::extract_block(plane, width, height, by, bx,
                           dst + (static_cast<size_t>(by) *
                                      static_cast<size_t>(bw) +
                                  static_cast<size_t>(bx)) *
                                     kBlockSize);
    }
  }
  return out;
}

namespace {

/// Builds one DCT kernel definition: input(a)[by][bx] -> result(a)[by][bx].
void add_dct_kernel(ProgramBuilder& pb, const std::string& name,
                    const std::string& input, const std::string& result,
                    media::QuantTable table, bool fast_dct) {
  pb.kernel(name)
      .index("by")
      .index("bx")
      .fetch("block", input, AgeExpr::relative(0),
             Slice().var("by").var("bx").all())
      .store("out", result, AgeExpr::relative(0),
             Slice().var("by").var("bx").all())
      .body([table, fast_dct](KernelContext& ctx) {
        const nd::AnyBuffer& block = ctx.fetch_array("block");
        check_internal(block.element_count() == kBlockSize,
                       "DCT kernel expects one 8x8 block");
        nd::AnyBuffer out(nd::ElementType::kInt16, nd::Extents({64}));
        media::dct_quantize_block(block.data<uint8_t>(), table, fast_dct,
                                  out.data<int16_t>());
        ctx.store_array("out", std::move(out));
      });
}

/// Rebuilds a CoeffGrid from a [bh][bw][64] int16 field buffer (identical
/// memory layout, so one memcpy).
media::CoeffGrid grid_from_buffer(const nd::AnyBuffer& buf) {
  const auto& ext = buf.extents();
  media::CoeffGrid grid(static_cast<int>(ext.dim(0)),
                        static_cast<int>(ext.dim(1)));
  std::memcpy(grid.coeffs.data(), buf.data<int16_t>(),
              grid.coeffs.size() * sizeof(int16_t));
  return grid;
}

}  // namespace

Program MjpegWorkload::build() const {
  check_argument(video != nullptr, "MjpegWorkload needs a video");

  ProgramBuilder pb;
  pb.field("yInput", nd::ElementType::kUInt8, 3);
  pb.field("uInput", nd::ElementType::kUInt8, 3);
  pb.field("vInput", nd::ElementType::kUInt8, 3);
  pb.field("yResult", nd::ElementType::kInt16, 3);
  pb.field("uResult", nd::ElementType::kInt16, 3);
  pb.field("vResult", nd::ElementType::kInt16, 3);

  const media::QuantTable luma =
      media::scale_table(media::standard_luma_table(), config.quality);
  const media::QuantTable chroma =
      media::scale_table(media::standard_chroma_table(), config.quality);

  // read + splitYUV: one source instance per age; the instance that finds
  // no frame left stores nothing and does not continue (paper: "the read
  // loop ends when the kernel stops storing to the next age").
  auto video_ref = video;
  pb.kernel("read_splityuv")
      .store("y", "yInput", AgeExpr::relative(0), Slice::whole())
      .store("u", "uInput", AgeExpr::relative(0), Slice::whole())
      .store("v", "vInput", AgeExpr::relative(0), Slice::whole())
      .body([video_ref](KernelContext& ctx) {
        const auto frame_index = static_cast<size_t>(ctx.age());
        if (frame_index >= video_ref->frames.size()) return;  // EOF
        const media::YuvFrame& frame = video_ref->frames[frame_index];
        ctx.store_array("y", plane_to_blocks(frame.y.data(), frame.width,
                                             frame.height));
        ctx.store_array("u",
                        plane_to_blocks(frame.u.data(), frame.chroma_width(),
                                        frame.chroma_height()));
        ctx.store_array("v",
                        plane_to_blocks(frame.v.data(), frame.chroma_width(),
                                        frame.chroma_height()));
        ctx.continue_next_age();
      });

  add_dct_kernel(pb, "yDCT", "yInput", "yResult", luma, config.fast_dct);
  add_dct_kernel(pb, "uDCT", "uInput", "uResult", chroma, config.fast_dct);
  add_dct_kernel(pb, "vDCT", "vInput", "vResult", chroma, config.fast_dct);

  auto out_ref = output;
  const int width = video->width;
  const int height = video->height;
  pb.kernel("vlc_write")
      .serial()
      .fetch("y", "yResult", AgeExpr::relative(0), Slice::whole())
      .fetch("u", "uResult", AgeExpr::relative(0), Slice::whole())
      .fetch("v", "vResult", AgeExpr::relative(0), Slice::whole())
      .body([out_ref, width, height, luma, chroma](KernelContext& ctx) {
        const media::CoeffGrid y = grid_from_buffer(ctx.fetch_array("y"));
        const media::CoeffGrid u = grid_from_buffer(ctx.fetch_array("u"));
        const media::CoeffGrid v = grid_from_buffer(ctx.fetch_array("v"));
        out_ref->add_frame(media::encode_jpeg_from_coeffs(
            width, height, y, u, v, luma, chroma));
      });

  return pb.build();
}

}  // namespace p2g::workloads
