#include "workloads/motion.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"
#include "core/context.h"

namespace p2g::workloads {

namespace {

int64_t sad_at(const uint8_t* cur_block, int block, const uint8_t* prev,
               int width, int height, int top, int left) {
  int64_t sad = 0;
  for (int r = 0; r < block; ++r) {
    const int prow = top + r;
    for (int c = 0; c < block; ++c) {
      const int pcol = left + c;
      int prev_pixel = 0;
      if (prow >= 0 && prow < height && pcol >= 0 && pcol < width) {
        prev_pixel = prev[static_cast<size_t>(prow) *
                              static_cast<size_t>(width) +
                          static_cast<size_t>(pcol)];
      }
      sad += std::abs(static_cast<int>(cur_block[r * block + c]) -
                      prev_pixel);
    }
  }
  return sad;
}

/// Full search around (block_top, block_left); scan order dy-major so ties
/// resolve identically everywhere.
void best_vector(const uint8_t* cur_block, int block, const uint8_t* prev,
                 int width, int height, int block_top, int block_left,
                 int search, int* dx, int* dy) {
  int64_t best = std::numeric_limits<int64_t>::max();
  *dx = 0;
  *dy = 0;
  for (int cand_dy = -search; cand_dy <= search; ++cand_dy) {
    for (int cand_dx = -search; cand_dx <= search; ++cand_dx) {
      const int64_t sad =
          sad_at(cur_block, block, prev, width, height,
                 block_top + cand_dy, block_left + cand_dx);
      if (sad < best) {
        best = sad;
        *dx = cand_dx;
        *dy = cand_dy;
      }
    }
  }
}

}  // namespace

std::vector<int> motion_estimate_frame(const uint8_t* cur,
                                       const uint8_t* prev, int width,
                                       int height,
                                       const MotionConfig& config) {
  const int block = config.block;
  const int bw = width / block;
  const int bh = height / block;
  std::vector<int> out(static_cast<size_t>(bw) * static_cast<size_t>(bh) *
                       2);
  std::vector<uint8_t> cur_block(static_cast<size_t>(block) *
                                 static_cast<size_t>(block));
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      for (int r = 0; r < block; ++r) {
        std::memcpy(&cur_block[static_cast<size_t>(r * block)],
                    cur + static_cast<size_t>(by * block + r) *
                              static_cast<size_t>(width) +
                        static_cast<size_t>(bx * block),
                    static_cast<size_t>(block));
      }
      int dx = 0;
      int dy = 0;
      best_vector(cur_block.data(), block, prev, width, height, by * block,
                  bx * block, config.search, &dx, &dy);
      const size_t i =
          (static_cast<size_t>(by) * static_cast<size_t>(bw) +
           static_cast<size_t>(bx)) *
          2;
      out[i] = dx;
      out[i + 1] = dy;
    }
  }
  return out;
}

Program MotionWorkload::build() const {
  check_argument(video != nullptr, "MotionWorkload needs a video");
  const int block = config.block;
  const int search = config.search;
  const int width = video->width;
  const int height = video->height;
  check_argument(width % block == 0 && height % block == 0,
                 "frame dimensions must be multiples of the block size");

  ProgramBuilder pb;
  pb.field("planes", nd::ElementType::kUInt8, 2);   // [h][w]
  pb.field("blocks", nd::ElementType::kUInt8, 3);   // [bh][bw][block^2]
  pb.field("vectors", nd::ElementType::kInt32, 3);  // [bh][bw][2]

  auto video_ref = video;
  pb.kernel("read")
      .store("plane", "planes", AgeExpr::relative(0), Slice::whole())
      .store("blk", "blocks", AgeExpr::relative(0), Slice::whole())
      .body([video_ref, block, width, height](KernelContext& ctx) {
        const auto index = static_cast<size_t>(ctx.age());
        if (index >= video_ref->frames.size()) return;
        const media::YuvFrame& frame = video_ref->frames[index];

        nd::AnyBuffer plane(nd::ElementType::kUInt8,
                            nd::Extents({height, width}));
        std::memcpy(plane.raw(), frame.y.data(), frame.y.size());

        const int bw = width / block;
        const int bh = height / block;
        nd::AnyBuffer blocks(nd::ElementType::kUInt8,
                             nd::Extents({bh, bw, block * block}));
        uint8_t* dst = blocks.data<uint8_t>();
        for (int by = 0; by < bh; ++by) {
          for (int bx = 0; bx < bw; ++bx) {
            for (int r = 0; r < block; ++r) {
              std::memcpy(
                  dst, frame.y.data() +
                           static_cast<size_t>(by * block + r) *
                               static_cast<size_t>(width) +
                           static_cast<size_t>(bx * block),
                  static_cast<size_t>(block));
              dst += block;
            }
          }
        }
        ctx.store_array("plane", std::move(plane));
        ctx.store_array("blk", std::move(blocks));
        ctx.continue_next_age();
      });

  pb.kernel("motion")
      .index("by")
      .index("bx")
      .fetch("blk", "blocks", AgeExpr::relative(0),
             Slice().var("by").var("bx").all())
      .fetch("prev", "planes", AgeExpr::relative(-1), Slice::whole())
      .store("mv", "vectors", AgeExpr::relative(0),
             Slice().var("by").var("bx").all())
      .body([block, search, width, height](KernelContext& ctx) {
        // Both fetches alias field storage: the block row is contiguous by
        // construction and the previous plane is a whole sealed age.
        const nd::ConstView& blk = ctx.fetch_view("blk");
        const nd::ConstView& prev = ctx.fetch_view("prev");
        int dx = 0;
        int dy = 0;
        best_vector(blk.data<uint8_t>(), block, prev.data<uint8_t>(),
                    width, height,
                    static_cast<int>(ctx.index("by")) * block,
                    static_cast<int>(ctx.index("bx")) * block, search,
                    &dx, &dy);
        nd::AnyBuffer mv(nd::ElementType::kInt32, nd::Extents({2}));
        mv.data<int32_t>()[0] = dx;
        mv.data<int32_t>()[1] = dy;
        ctx.store_array("mv", std::move(mv));
      });

  auto sink = activity;
  pb.kernel("trace")
      .serial()
      .fetch("mvs", "vectors", AgeExpr::relative(0), Slice::whole())
      .body([sink](KernelContext& ctx) {
        const nd::ConstView& mvs = ctx.fetch_view("mvs");
        double total = 0.0;
        const int64_t blocks = mvs.element_count() / 2;
        for (int64_t b = 0; b < blocks; ++b) {
          const double dx = mvs.get_as_double(2 * b);
          const double dy = mvs.get_as_double(2 * b + 1);
          total += std::sqrt(dx * dx + dy * dy);
        }
        sink->push_back(blocks > 0 ? total / static_cast<double>(blocks)
                                   : 0.0);
      });

  return pb.build();
}

}  // namespace p2g::workloads
