#include "workloads/standalone_mjpeg.h"

namespace p2g::workloads {

media::MjpegWriter encode_mjpeg_standalone(
    const media::YuvVideo& video, const media::EncoderConfig& config) {
  media::MjpegWriter writer;
  for (const media::YuvFrame& frame : video.frames) {
    writer.add_frame(media::encode_jpeg(frame, config));
  }
  return writer;
}

}  // namespace p2g::workloads
