#include "core/timer.h"

namespace p2g {

void TimerSet::set_now(const std::string& name) {
  set(name, SteadyClock::now());
}

void TimerSet::set(const std::string& name, TimePoint at) {
  std::scoped_lock lock(mutex_);
  timers_[name] = at;
}

TimePoint TimerSet::base_of(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? epoch_ : it->second;
}

bool TimerSet::expired(const std::string& name,
                       std::chrono::milliseconds offset) const {
  return SteadyClock::now() >= base_of(name) + offset;
}

double TimerSet::elapsed_ms(const std::string& name) const {
  const auto delta = SteadyClock::now() - base_of(name);
  return std::chrono::duration<double, std::milli>(delta).count();
}

double TimerSet::remaining_ms(const std::string& name,
                              std::chrono::milliseconds offset) const {
  const auto deadline = base_of(name) + offset;
  return std::chrono::duration<double, std::milli>(deadline -
                                                   SteadyClock::now())
      .count();
}

}  // namespace p2g
