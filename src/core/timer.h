// Deadline timers (paper §V-B).
//
// The kernel language lets a workload declare a global timer (`timer t1`),
// poll it, move it (`t1 = now`), and branch on deadline expressions such as
// `t1 + 100ms`. A kernel that misses a deadline stores to an alternate
// field, which gives downstream kernels different dependencies — the
// "alternate code path" of the paper.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"

namespace p2g {

/// Named global timers shared by all kernel instances of a runtime.
class TimerSet {
 public:
  /// (Re)arms a timer at the current time (`t1 = now`).
  void set_now(const std::string& name);

  /// Arms a timer at an explicit point.
  void set(const std::string& name, TimePoint at);

  /// True when the timer exists and `name + offset` lies in the past
  /// (the deadline expression `t1 + offset` has expired). A timer that was
  /// never set is treated as armed at runtime start.
  bool expired(const std::string& name,
               std::chrono::milliseconds offset) const;

  /// Milliseconds elapsed since the timer was (last) set.
  double elapsed_ms(const std::string& name) const;

  /// Time remaining until `name + offset`; negative when already expired.
  double remaining_ms(const std::string& name,
                      std::chrono::milliseconds offset) const;

 private:
  TimePoint base_of(const std::string& name) const;

  mutable std::mutex mutex_;
  std::map<std::string, TimePoint> timers_;
  TimePoint epoch_ = SteadyClock::now();
};

}  // namespace p2g
