#include "core/context.h"

#include <algorithm>

namespace p2g {

KernelContext::KernelContext(const KernelDef& def, Age age, nd::Coord indices,
                             TimerSet* timers)
    : def_(&def),
      age_(age),
      indices_(std::move(indices)),
      timers_(timers),
      fetches_(def.fetches.size()) {}

int64_t KernelContext::index(size_t var) const {
  check_argument(var < indices_.size(), "index variable position out of "
                                        "range");
  return indices_[var];
}

int64_t KernelContext::index(std::string_view name) const {
  const auto it = std::find(def_->index_vars.begin(), def_->index_vars.end(),
                            name);
  check_argument(it != def_->index_vars.end(),
                 "unknown index variable '" + std::string(name) + "'");
  return indices_[static_cast<size_t>(it - def_->index_vars.begin())];
}

const KernelContext::FetchSlot& KernelContext::slot_for(
    std::string_view slot) const {
  const int i = def_->fetch_slot(slot);
  check_argument(i >= 0, "kernel '" + def_->name + "' has no fetch slot '" +
                             std::string(slot) + "'");
  const FetchSlot& fs = fetches_[static_cast<size_t>(i)];
  check_internal(fs.prepared,
                 "fetch slot '" + std::string(slot) + "' was not prepared");
  return fs;
}

const nd::ConstView& KernelContext::fetch_view(std::string_view slot) const {
  return slot_for(slot).view;
}

const nd::AnyBuffer& KernelContext::fetch_array(std::string_view slot) const {
  const FetchSlot& fs = slot_for(slot);
  if (fs.owned.has_value()) return *fs.owned;
  if (!fs.packed.has_value()) fs.packed = fs.view.materialize();
  return *fs.packed;
}

void KernelContext::store_array(std::string_view slot, nd::AnyBuffer data) {
  const int i = def_->store_slot(slot);
  check_argument(i >= 0, "kernel '" + def_->name + "' has no store slot '" +
                             std::string(slot) + "'");
  for (const PendingStore& p : stores_) {
    if (p.decl == static_cast<size_t>(i)) {
      throw_error(ErrorKind::kWriteOnceViolation,
                  "kernel '" + def_->name + "' stored slot '" +
                      std::string(slot) + "' twice in one instance");
    }
  }
  stores_.push_back(PendingStore{static_cast<size_t>(i), std::move(data)});
}

TimerSet& KernelContext::timers() const {
  check_internal(timers_ != nullptr, "no timer set attached to context");
  return *timers_;
}

void KernelContext::set_fetch(size_t slot, nd::AnyBuffer data) {
  check_internal(slot < fetches_.size(), "set_fetch slot out of range");
  FetchSlot& fs = fetches_[slot];
  fs.owned = std::move(data);
  // The view aliases the owned buffer, which lives exactly as long as the
  // context; no keepalive needed.
  fs.view = nd::ConstView(fs.owned->type(), fs.owned->extents(),
                          fs.owned->raw(), nullptr);
  fs.packed.reset();
  fs.prepared = true;
}

void KernelContext::set_fetch(size_t slot, nd::ConstView view) {
  check_internal(slot < fetches_.size(), "set_fetch slot out of range");
  FetchSlot& fs = fetches_[slot];
  fs.view = std::move(view);
  fs.owned.reset();
  fs.packed.reset();
  fs.prepared = true;
}

const KernelContext::PendingStore* KernelContext::pending_store(
    size_t decl) const {
  for (const PendingStore& p : stores_) {
    if (p.decl == decl) return &p;
  }
  return nullptr;
}

}  // namespace p2g
