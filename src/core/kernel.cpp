#include "core/kernel.h"

namespace p2g {

int KernelDef::fetch_slot(std::string_view slot_name) const {
  for (size_t i = 0; i < fetches.size(); ++i) {
    if (fetches[i].name == slot_name) return static_cast<int>(i);
  }
  return -1;
}

int KernelDef::store_slot(std::string_view slot_name) const {
  for (size_t i = 0; i < stores.size(); ++i) {
    if (stores[i].name == slot_name) return static_cast<int>(i);
  }
  return -1;
}

std::optional<KernelDef::VarBinding> KernelDef::binding_of_var(int var) const {
  for (size_t f = 0; f < fetches.size(); ++f) {
    if (auto dim = fetches[f].slice.dim_of_var(var)) {
      return VarBinding{f, *dim};
    }
  }
  return std::nullopt;
}

}  // namespace p2g
