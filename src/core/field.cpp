#include "core/field.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>

#include "common/error.h"

namespace p2g {

std::string StoreOrigin::to_string() const {
  std::string out = "kernel '" + kernel + "' instance age " +
                    std::to_string(age);
  if (!indices.empty()) out += " " + nd::to_string(indices);
  return out;
}

FieldStorage::FieldStorage(FieldDecl decl) : decl_(std::move(decl)) {}

const FieldStorage::SealIndex::Entry* FieldStorage::SealIndex::find(
    Age age) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), age,
      [](const Entry& e, Age a) { return e.age < a; });
  return it != entries.end() && it->age == age ? &*it : nullptr;
}

void FieldStorage::throw_write_once(const AgeData& ad, Age age,
                                    const nd::Region& conflict,
                                    const StoreOrigin* origin) const {
  std::string msg = "region " + conflict.to_string() + " of field " +
                    decl_.name + " age " + std::to_string(age) +
                    " overlaps previously written elements";
  if (origin != nullptr) {
    msg += "; writer: " + origin->to_string();
  }
  // With provenance tracking on (RunOptions::checked), name the earlier
  // writers of the overlapping elements — this turns the error into a
  // two-sided race report.
  size_t listed = 0;
  for (const auto& [region, writer] : ad.writers) {
    if (conflict.intersect(region).empty()) continue;
    msg += listed == 0 ? "; previously written by " : ", ";
    msg += writer.to_string() + " storing " + region.to_string();
    if (++listed == 4) {
      msg += ", ...";
      break;
    }
  }
  throw_error(ErrorKind::kWriteOnceViolation, msg);
}

FieldStorage::AgeData& FieldStorage::age_data(Age age) {
  auto it = ages_.find(age);
  if (it == ages_.end()) {
    AgeData fresh;
    const nd::Extents zero(std::vector<int64_t>(decl_.rank, 0));
    fresh.buffer = buffer_factory_
                       ? std::make_shared<nd::AnyBuffer>(
                             buffer_factory_(decl_.type, zero))
                       : std::make_shared<nd::AnyBuffer>(decl_.type, zero);
    it = ages_.emplace(age, std::move(fresh)).first;
  }
  return it->second;
}

const FieldStorage::AgeData* FieldStorage::find_age(Age age) const {
  auto it = ages_.find(age);
  return it == ages_.end() ? nullptr : &it->second;
}

void FieldStorage::grow(AgeData& data, const nd::Extents& new_extents) {
  const nd::Extents old_extents = data.buffer->extents();
  if (new_extents == old_extents) return;
  check_internal(!data.sealed || new_extents.fits_in(data.sealed_extents),
                 "grow beyond sealed extents of field " + decl_.name);
  // Published buffers are aliased by views; their allocation must never
  // move again. Publishing grows to the sealed extents first, so any later
  // grow request is the no-op handled above.
  check_internal(!data.published,
                 "grow of published age buffer of field " + decl_.name);
  // The resize may reallocate the payload; drop any access history of the
  // old allocation so recycled addresses cannot produce stale-epoch races.
  // (Const access: raw() non-const would materialize an adopted alias.)
  check::reset_range(std::as_const(*data.buffer).raw(),
                     static_cast<size_t>(old_extents.element_count()) *
                         nd::element_size(data.buffer->type()));
  data.buffer->resize(new_extents);

  // Remap written bits: positions are flat indices, which change with the
  // extents. Walk the set bits of the old layout and re-set them under the
  // new layout.
  DynamicBitset fresh(static_cast<size_t>(new_extents.element_count()));
  if (data.written.count() > 0) {
    const int64_t old_count = old_extents.element_count();
    for (int64_t flat = 0; flat < old_count; ++flat) {
      if (data.written.test(static_cast<size_t>(flat))) {
        const nd::Coord coord = old_extents.unflatten(flat);
        fresh.set(static_cast<size_t>(new_extents.flatten(coord)));
      }
    }
  }
  data.written = std::move(fresh);
}

void FieldStorage::publish(AgeData& data, Age age) {
  if (data.published) return;
  grow(data, data.sealed_extents);
  data.published = true;
  rebuild_seal_index();
  (void)age;
}

void FieldStorage::rebuild_seal_index() {
  auto fresh = std::make_shared<SealIndex>();
  fresh->entries.reserve(ages_.size());
  for (const auto& [age, data] : ages_) {  // map order: sorted by age
    if (data.published) fresh->entries.push_back({age, data.buffer});
  }
  // Publication protocol, spelled out for the race checker: the entries
  // are written here, then released through the atomic index pointer; the
  // lock-free fetch path acquires through the same pointer before reading
  // them. Removing either side of the edge surfaces as P2G-C001.
  check::write_range(fresh->entries.data(),
                     fresh->entries.size() * sizeof(SealIndex::Entry),
                     "FieldStorage.seal_index.entries");
  check::release(&seal_index_);
  seal_index_.store(std::move(fresh), std::memory_order_release);
}

nd::ConstView FieldStorage::make_view(
    std::shared_ptr<const nd::AnyBuffer> buffer,
    const nd::Region& region) const {
  const nd::AnyBuffer& buf = *buffer;
  const size_t esz = nd::element_size(buf.type());
  std::vector<int64_t> dims(region.rank());
  for (size_t i = 0; i < region.rank(); ++i) {
    dims[i] = region.interval(i).length();
  }
  nd::Extents view_extents(std::move(dims));
  if (const auto span = region.contiguous_span(buf.extents())) {
    const std::byte* base =
        buf.raw() + static_cast<size_t>(span->offset) * esz;
    return nd::ConstView(buf.type(), std::move(view_extents), base,
                         std::move(buffer));
  }
  // Strided view: base at the region's first coordinate, strides of the
  // full buffer layout.
  const std::byte* base =
      buf.raw() +
      static_cast<size_t>(buf.extents().flatten(region.first())) * esz;
  return nd::ConstView(buf.type(), std::move(view_extents),
                       buf.extents().strides(), base, std::move(buffer));
}

std::optional<nd::ConstView> FieldStorage::try_fetch_view(
    Age age, const nd::Region& region) {
  // Fast path: a published age resolves through the lock-free index.
  if (const auto index = seal_index_.load(std::memory_order_acquire)) {
    check::acquire(&seal_index_);
    check::read_range(index->entries.data(),
                      index->entries.size() * sizeof(SealIndex::Entry),
                      "FieldStorage.seal_index.entries");
    if (const SealIndex::Entry* entry = index->find(age)) {
      check_internal(region.within(entry->buffer->extents()),
                     "fetch region outside extents of field " + decl_.name);
      return make_view(entry->buffer, region);
    }
  }
  // Slow path: first fetch of a sealed age publishes it.
  std::unique_lock lock(mutex_);
  const auto it = ages_.find(age);
  if (it == ages_.end() || !it->second.sealed) return std::nullopt;
  publish(it->second, age);
  check_internal(region.within(it->second.buffer->extents()),
                 "fetch region outside extents of field " + decl_.name);
  return make_view(it->second.buffer, region);
}

std::optional<nd::ConstView> FieldStorage::try_fetch_view_whole(Age age) {
  if (const auto index = seal_index_.load(std::memory_order_acquire)) {
    check::acquire(&seal_index_);
    check::read_range(index->entries.data(),
                      index->entries.size() * sizeof(SealIndex::Entry),
                      "FieldStorage.seal_index.entries");
    if (const SealIndex::Entry* entry = index->find(age)) {
      return make_view(entry->buffer,
                       nd::Region::whole(entry->buffer->extents()));
    }
  }
  std::unique_lock lock(mutex_);
  const auto it = ages_.find(age);
  if (it == ages_.end() || !it->second.sealed) return std::nullopt;
  publish(it->second, age);
  return make_view(it->second.buffer,
                   nd::Region::whole(it->second.buffer->extents()));
}

StoreResult FieldStorage::store(Age age, const nd::Region& region,
                                const std::byte* data,
                                const StoreOrigin* origin) {
  check_argument(age >= 0, "field ages start at 0");
  check_argument(region.rank() == decl_.rank,
                 "store region rank mismatch on field " + decl_.name);
  std::unique_lock lock(mutex_);
  AgeData& ad = age_data(age);
  check::write(ad.written, "FieldStorage.age_meta");

  StoreResult result;
  if (!region.within(ad.buffer->extents())) {
    if (ad.sealed) {
      if (!region.within(ad.sealed_extents)) {
        throw_error(ErrorKind::kOutOfRange,
                    "store " + region.to_string() +
                        " outside sealed extents " +
                        ad.sealed_extents.to_string() + " of field " +
                        decl_.name + " age " + std::to_string(age));
      }
      grow(ad, ad.sealed_extents);  // lazy allocation up to the seal
    } else {
      grow(ad, ad.buffer->extents().max_with(region.required_extents()));
      result.resized = true;
    }
  }

  // Write-once enforcement, then payload scatter.
  const nd::Extents& ext = ad.buffer->extents();
  if (const auto span = region.contiguous_span(ext)) {
    const auto begin = static_cast<size_t>(span->offset);
    const auto end = begin + static_cast<size_t>(span->length);
    if (ad.written.set_range(begin, end) !=
        static_cast<size_t>(span->length)) {
      throw_write_once(ad, age, region, origin);
    }
  } else {
    region.for_each([&](const nd::Coord& coord) {
      const auto flat = static_cast<size_t>(ext.flatten(coord));
      if (!ad.written.set(flat)) {
        throw_write_once(ad, age, nd::Region::point(coord), origin);
      }
    });
  }
  if (track_writers_) {
    ad.writers.emplace_back(region,
                            origin != nullptr ? *origin : StoreOrigin{});
  }
  ad.buffer->scatter(region, data);
  result.extents = ext;
  return result;
}

int64_t FieldStorage::store_fill(Age age, const nd::Region& region,
                                 const std::byte* data) {
  check_argument(age >= 0, "field ages start at 0");
  check_argument(region.rank() == decl_.rank,
                 "store region rank mismatch on field " + decl_.name);
  std::unique_lock lock(mutex_);
  AgeData& ad = age_data(age);
  check::write(ad.written, "FieldStorage.age_meta");

  if (!region.within(ad.buffer->extents())) {
    if (ad.sealed) {
      if (!region.within(ad.sealed_extents)) {
        throw_error(ErrorKind::kOutOfRange,
                    "store " + region.to_string() +
                        " outside sealed extents " +
                        ad.sealed_extents.to_string() + " of field " +
                        decl_.name + " age " + std::to_string(age));
      }
      grow(ad, ad.sealed_extents);
    } else {
      grow(ad, ad.buffer->extents().max_with(region.required_extents()));
    }
  }

  // Per-element: take the write-once bit first, copy only on fresh cells.
  // The payload is densely packed in the region's row-major order.
  const nd::Extents& ext = ad.buffer->extents();
  const size_t esz = nd::element_size(decl_.type);
  std::byte* base = ad.buffer->raw();
  int64_t fresh = 0;
  int64_t src = 0;
  region.for_each([&](const nd::Coord& coord) {
    const auto flat = static_cast<size_t>(ext.flatten(coord));
    if (ad.written.set(flat)) {
      std::memcpy(base + flat * esz,
                  data + static_cast<size_t>(src) * esz, esz);
      ++fresh;
    }
    ++src;
  });
  return fresh;
}

StoreResult FieldStorage::store_whole(Age age, const nd::AnyBuffer& data,
                                      const StoreOrigin* origin) {
  check_argument(data.type() == decl_.type,
                 "store_whole type mismatch on field " + decl_.name);
  check_argument(data.extents().rank() == decl_.rank,
                 "store_whole rank mismatch on field " + decl_.name);
  const nd::Region region = nd::Region::whole(data.extents());
  return store(age, region, data.raw(), origin);
}

void FieldStorage::seal(Age age, const nd::Extents& extents) {
  std::unique_lock lock(mutex_);
  AgeData& ad = age_data(age);
  check::write(ad.sealed, "FieldStorage.age_meta");
  if (ad.sealed) {
    // Idempotent as long as the extents agree.
    check_internal(extents.fits_in(ad.sealed_extents),
                   "conflicting seal extents on field " + decl_.name);
    return;
  }
  // Data already written beyond the proposed seal widens it to the union.
  // The buffer itself is only grown when data is actually stored.
  ad.sealed_extents = ad.buffer->extents().max_with(extents);
  ad.sealed = true;
}

bool FieldStorage::is_sealed(Age age) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  if (ad == nullptr) return false;
  check::read(ad->sealed, "FieldStorage.age_meta");
  return ad->sealed;
}

bool FieldStorage::is_complete(Age age) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  if (ad == nullptr) return false;
  check::read(ad->written, "FieldStorage.age_meta");
  return ad->sealed && static_cast<int64_t>(ad->written.count()) ==
                           ad->sealed_extents.element_count();
}

bool FieldStorage::region_written(Age age, const nd::Region& region) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  if (ad == nullptr) return false;
  check::read(ad->written, "FieldStorage.age_meta");
  const nd::Extents& ext = ad->buffer->extents();
  if (!region.within(ext)) return false;
  if (const auto span = region.contiguous_span(ext)) {
    return ad->written.all_in_range(
        static_cast<size_t>(span->offset),
        static_cast<size_t>(span->offset + span->length));
  }
  bool all = true;
  region.for_each([&](const nd::Coord& coord) {
    if (!all) return;
    if (!ad->written.test(static_cast<size_t>(ext.flatten(coord)))) {
      all = false;
    }
  });
  return all;
}

nd::Extents FieldStorage::extents(Age age) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  if (ad == nullptr) {
    return nd::Extents(std::vector<int64_t>(decl_.rank, 0));
  }
  return ad->current_extents();
}

nd::AnyBuffer FieldStorage::fetch(Age age, const nd::Region& region) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  check_internal(ad != nullptr,
                 "fetch from untouched age of field " + decl_.name);
  check_internal(region.within(ad->buffer->extents()),
                 "fetch region outside extents of field " + decl_.name);

  std::vector<int64_t> dims(region.rank());
  for (size_t i = 0; i < region.rank(); ++i) {
    dims[i] = region.interval(i).length();
  }
  nd::AnyBuffer out(decl_.type, nd::Extents(std::move(dims)));
  ad->buffer->gather(region, out.raw());
  return out;
}

nd::AnyBuffer FieldStorage::fetch_whole(Age age) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  check_internal(ad != nullptr,
                 "fetch from untouched age of field " + decl_.name);
  const nd::Region region = nd::Region::whole(ad->current_extents());
  check_internal(region.within(ad->buffer->extents()),
                 "fetch region outside extents of field " + decl_.name);
  nd::AnyBuffer out(decl_.type, region.required_extents());
  ad->buffer->gather(region, out.raw());
  return out;
}

int64_t FieldStorage::written_count(Age age) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  return ad == nullptr ? 0 : static_cast<int64_t>(ad->written.count());
}

void FieldStorage::release_age(Age age) {
  std::unique_lock lock(mutex_);
  const auto it = ages_.find(age);
  if (it == ages_.end()) return;
  const bool was_published = it->second.published;
  // The age's metadata address may be recycled by a future age: forget it.
  check::reset_range(&it->second, sizeof(AgeData));
  // Outstanding views keep the payload alive through their keepalive; this
  // only drops the storage's own reference.
  ages_.erase(it);
  if (was_published) rebuild_seal_index();
}

std::vector<Age> FieldStorage::live_ages() const {
  std::shared_lock lock(mutex_);
  std::vector<Age> out;
  out.reserve(ages_.size());
  for (const auto& [age, data] : ages_) out.push_back(age);
  return out;
}

size_t FieldStorage::memory_bytes() const {
  std::shared_lock lock(mutex_);
  size_t total = 0;
  for (const auto& [age, data] : ages_) {
    total += static_cast<size_t>(data.buffer->element_count()) *
             nd::element_size(data.buffer->type());
  }
  return total;
}

void FieldStorage::set_buffer_factory(BufferFactory factory) {
  std::unique_lock lock(mutex_);
  check_internal(ages_.empty(),
                 "buffer factory installed after ages exist on field " +
                     decl_.name);
  buffer_factory_ = std::move(factory);
}

std::optional<FieldStorage::RawBlock> FieldStorage::peek_block(
    Age age) const {
  std::shared_lock lock(mutex_);
  const AgeData* ad = find_age(age);
  if (ad == nullptr) return std::nullopt;
  RawBlock block;
  block.base = std::as_const(*ad->buffer).raw();
  block.extents = ad->buffer->extents();
  return block;
}

bool FieldStorage::adopt_whole(Age age, const nd::ConstView& view) {
  if (view.type() != decl_.type || view.extents().rank() != decl_.rank ||
      !view.is_contiguous()) {
    return false;
  }
  std::unique_lock lock(mutex_);
  AgeData& ad = age_data(age);
  // Only a pristine age can alias foreign pages: once anything was written
  // (or the buffer published), the write-once bitmap refers to the current
  // allocation. Sealed ages additionally pin the final extents.
  if (ad.written.count() > 0 || ad.published) return false;
  if (ad.sealed && !(view.extents() == ad.sealed_extents)) return false;
  ad.buffer = std::make_shared<nd::AnyBuffer>(nd::AnyBuffer::alias(
      view.type(), view.extents(), view.raw(), view.keepalive()));
  const auto count = static_cast<size_t>(view.extents().element_count());
  ad.written = DynamicBitset(count);
  ad.written.set_range(0, count);
  return true;
}

}  // namespace p2g
