// Events flowing from worker threads into the dependency analyzer.
//
// The runtime is push-based (paper §VI-B): kernel instances produce store
// events which the analyzer thread consumes to discover newly runnable
// instances.
#pragma once

#include <variant>

#include "core/ids.h"
#include "core/trace.h"
#include "nd/region.h"

namespace p2g {

/// A region of (field, age) has been written.
struct StoreEvent {
  FieldId field = kInvalidField;
  Age age = 0;
  nd::Region region;
  KernelId producer = kInvalidKernel;
  size_t store_decl = 0;  ///< which store statement of the producer
  bool whole = false;     ///< the statement is a whole-field store
  /// Causal identity of the write: the frame it belongs to and the span
  /// that produced it (zero when tracing is off). The analyzer threads it
  /// into the instances this store makes runnable.
  TraceContext ctx;
};

/// A kernel instance (possibly a chunk of several bodies) finished.
struct InstanceDoneEvent {
  KernelId kernel = kInvalidKernel;
  Age age = 0;
  bool continue_next_age = false;  ///< set by source kernels
};

/// Re-enables a kernel on this node and re-enumerates its instances from
/// surviving field data (failover: the kernel's previous owner died).
/// Write-once semantics make the re-execution deterministic; idempotent
/// stores make it safe to redo work whose results already arrived.
struct RescanEvent {
  KernelId kernel = kInvalidKernel;
};

/// Cross-shard seal request (analyzer sharding): another shard's extent-
/// propagation cascade reached `field`, whose seal bookkeeping lives on the
/// field's owner shard. The owner re-runs check_seal; redundant requests
/// are idempotent (check_seal early-outs on already-sealed ages).
struct SealCheckEvent {
  FieldId field = kInvalidField;
  Age age = 0;
};

/// Cross-shard consumer notification (analyzer sharding): (field, age)
/// gained data or sealed on its owner shard. Receivers enumerate only the
/// consumer kernels *they* own — kernel enumeration and dispatched-set
/// dedup stay single-threaded per kernel. `region` constrains the scan
/// when `constrained` (a store), otherwise the scan is a full post-seal
/// rescan. `ctx` threads the originating store's causal identity.
struct ScanConsumersEvent {
  FieldId field = kInvalidField;
  Age age = 0;
  bool constrained = false;
  nd::Region region;
  TraceContext ctx;
};

using Event = std::variant<StoreEvent, InstanceDoneEvent, RescanEvent,
                           SealCheckEvent, ScanConsumersEvent>;

}  // namespace p2g
