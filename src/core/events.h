// Events flowing from worker threads into the dependency analyzer.
//
// The runtime is push-based (paper §VI-B): kernel instances produce store
// events which the analyzer thread consumes to discover newly runnable
// instances.
#pragma once

#include <variant>

#include "core/ids.h"
#include "nd/region.h"

namespace p2g {

/// A region of (field, age) has been written.
struct StoreEvent {
  FieldId field = kInvalidField;
  Age age = 0;
  nd::Region region;
  KernelId producer = kInvalidKernel;
  size_t store_decl = 0;  ///< which store statement of the producer
  bool whole = false;     ///< the statement is a whole-field store
};

/// A kernel instance (possibly a chunk of several bodies) finished.
struct InstanceDoneEvent {
  KernelId kernel = kInvalidKernel;
  Age age = 0;
  bool continue_next_age = false;  ///< set by source kernels
};

using Event = std::variant<StoreEvent, InstanceDoneEvent>;

}  // namespace p2g
