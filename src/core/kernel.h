// Kernel definitions: the static description of a computation step.
//
// A kernel definition declares which slices of which fields it fetches and
// stores (the paper's fetch/store statements) plus a body. The dependency
// analyzer derives everything else — instance domains, the implicit static
// dependency graph, and seal propagation — from these declarations.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.h"
#include "nd/buffer.h"
#include "nd/slice.h"

namespace p2g {

class KernelContext;

/// Age expression of a fetch/store statement: either relative to the kernel
/// instance's age (`a + offset`) or a constant age (`0`).
struct AgeExpr {
  enum class Kind { kRelative, kConst };

  Kind kind = Kind::kRelative;
  int64_t value = 0;  ///< offset for kRelative, absolute age for kConst

  static AgeExpr relative(int64_t offset = 0) {
    return AgeExpr{Kind::kRelative, offset};
  }
  static AgeExpr constant(Age age) { return AgeExpr{Kind::kConst, age}; }

  /// Concrete age for an instance at age `a`; negative result = unsatisfiable.
  Age resolve(Age a) const {
    return kind == Kind::kRelative ? a + value : value;
  }

  /// Instance age(s) consistent with a statement touching concrete age `g`.
  /// For relative exprs there is exactly one (g - offset, possibly negative);
  /// for const exprs any instance age is consistent iff g == value.
  bool matches_concrete(Age g) const {
    return kind == Kind::kConst ? g == value : true;
  }

  bool operator==(const AgeExpr&) const = default;
};

/// One fetch statement: `fetch <name> = field(age)[slice]`.
struct FetchDecl {
  std::string name;    ///< slot name used by the body to access the data
  FieldId field = kInvalidField;
  AgeExpr age;
  nd::SliceSpec slice;
};

/// One store statement: `store field(age)[slice] = <name>`.
struct StoreDecl {
  std::string name;
  FieldId field = kInvalidField;
  AgeExpr age;
  nd::SliceSpec slice;
};

using KernelBody = std::function<void(KernelContext&)>;

/// Static definition of a kernel (the paper's "kernel definition").
struct KernelDef {
  KernelId id = kInvalidKernel;
  std::string name;

  /// Index-variable names; variable ids are positions in this vector.
  std::vector<std::string> index_vars;

  std::vector<FetchDecl> fetches;
  std::vector<StoreDecl> stores;

  KernelBody body;

  /// True when the kernel has an `age` variable and therefore one instance
  /// domain per age. Kernels without an age (the paper's `init`) run once.
  bool has_age = true;

  /// Serial kernels execute their instances in strictly increasing age
  /// order (e.g. a kernel appending frames to an output stream).
  bool serial = false;

  /// A source kernel has an age but no fetches; instance a+1 runs only if
  /// instance a called KernelContext::continue_next_age() (the paper's
  /// read kernel, which stops storing at end-of-file).
  bool is_source() const { return has_age && fetches.empty(); }

  /// Run-once kernels have no age variable (and no fetches).
  bool is_run_once() const { return !has_age; }

  /// Position of a fetch slot by name, or -1.
  int fetch_slot(std::string_view slot_name) const;
  /// Position of a store slot by name, or -1.
  int store_slot(std::string_view slot_name) const;

  /// The fetch that binds index variable `var` (first match), with the
  /// dimension it binds, or nullopt when the variable is unbound.
  struct VarBinding {
    size_t fetch_index;
    size_t dim;
  };
  std::optional<VarBinding> binding_of_var(int var) const;
};

}  // namespace p2g
