// Identifier types shared across the P2G runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nd/extents.h"

namespace p2g {

using FieldId = int32_t;
using KernelId = int32_t;

/// Iteration number of a field (the paper's "age"). Ages start at 0 and the
/// write-once rule holds per (field, age, element).
using Age = int64_t;

constexpr FieldId kInvalidField = -1;
constexpr KernelId kInvalidKernel = -1;

/// Identity of one kernel instance: kernel, age, and index-variable values.
struct InstanceKey {
  KernelId kernel = kInvalidKernel;
  Age age = 0;
  nd::Coord indices;  // one entry per index variable of the kernel

  bool operator==(const InstanceKey&) const = default;

  std::string to_string() const;
};

struct InstanceKeyHash {
  size_t operator()(const InstanceKey& key) const {
    size_t h = std::hash<int64_t>{}(
        (static_cast<int64_t>(key.kernel) << 40) ^ key.age);
    for (int64_t v : key.indices) {
      h ^= std::hash<int64_t>{}(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

inline std::string InstanceKey::to_string() const {
  std::string out = "kernel#" + std::to_string(kernel) + "@age" +
                    std::to_string(age) + nd::to_string(indices);
  return out;
}

}  // namespace p2g
