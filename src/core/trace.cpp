#include "core/trace.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace p2g {

void TraceCollector::record(Span span) {
  std::scoped_lock lock(mutex_);
  spans_.push_back(std::move(span));
}

void TraceCollector::record_counter(CounterSample sample) {
  std::scoped_lock lock(mutex_);
  counters_.push_back(std::move(sample));
}

size_t TraceCollector::span_count() const {
  std::scoped_lock lock(mutex_);
  return spans_.size();
}

size_t TraceCollector::counter_sample_count() const {
  std::scoped_lock lock(mutex_);
  return counters_.size();
}

std::string TraceCollector::to_chrome_json() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  // Normalize to the earliest event so timestamps start near zero.
  int64_t epoch = 0;
  for (const Span& span : spans_) {
    if (epoch == 0 || span.start_ns < epoch) epoch = span.start_ns;
  }
  for (const CounterSample& sample : counters_) {
    if (epoch == 0 || sample.t_ns < epoch) epoch = sample.t_ns;
  }
  for (const Span& span : spans_) {
    if (!first) os << ",\n";
    first = false;
    // Chrome trace "complete" events: ph=X, ts/dur in microseconds.
    os << "  {\"name\": \"" << json_escape(span.name)
       << "\", \"cat\": \"p2g\", "
       << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << span.thread_id
       << ", \"ts\": " << (span.start_ns - epoch) / 1000.0
       << ", \"dur\": " << span.duration_ns / 1000.0
       << ", \"args\": {\"age\": " << span.age
       << ", \"bodies\": " << span.bodies << "}}";
  }
  for (const CounterSample& sample : counters_) {
    if (!first) os << ",\n";
    first = false;
    // Counter events: ph=C, one track per name, rendered by Perfetto as a
    // filled curve above the span lanes.
    os << "  {\"name\": \"" << json_escape(sample.track)
       << "\", \"cat\": \"p2g\", \"ph\": \"C\", \"pid\": 1"
       << ", \"ts\": " << (sample.t_ns - epoch) / 1000.0
       << ", \"args\": {\"value\": " << sample.value << "}}";
  }
  os << "\n]\n";
  return os.str();
}

void TraceCollector::write_file(const std::string& path) const {
  const std::string json = to_chrome_json();
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace p2g
