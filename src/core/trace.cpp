#include "core/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace p2g {

namespace {

// Domain-separation salts so frame ids, span ids and flow ids never
// collide even when built from overlapping inputs.
constexpr uint64_t kFrameSalt = 0x70326766726D6531ULL;  // "p2gfrme1"
constexpr uint64_t kFlowSalt = 0x703267666C6F7731ULL;   // "p2gflow1"

uint64_t flow_id_of(const TraceContext& ctx) {
  return mix(kFlowSalt, ctx.trace_id, ctx.span_id);
}

void write_hex(std::ostream& os, uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  os << buf;
}

/// Causal args shared by spans and flight entries: emitted only for traced
/// events to keep untraced documents byte-compatible with the PR 1 format.
void write_causal_args(std::ostream& os, SpanKind kind, uint64_t trace_id,
                       uint64_t span_id, uint64_t parent_span) {
  os << ", \"kind\": \"" << to_string(kind) << "\"";
  os << ", \"trace\": \"";
  write_hex(os, trace_id);
  os << "\", \"span\": \"";
  write_hex(os, span_id);
  os << "\"";
  if (parent_span != 0) {
    os << ", \"parent\": \"";
    write_hex(os, parent_span);
    os << "\"";
  }
}

}  // namespace

uint64_t frame_trace_id(FieldId field, Age age) {
  const uint64_t id = mix(kFrameSalt, static_cast<uint64_t>(field),
                          static_cast<uint64_t>(age));
  return id != 0 ? id : 1;
}

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kWorker: return "worker";
    case SpanKind::kAnalyzer: return "analyzer";
    case SpanKind::kWire: return "wire";
    case SpanKind::kRemoteStore: return "remote_store";
    case SpanKind::kRecovery: return "recovery";
    case SpanKind::kOther: return "other";
  }
  return "other";
}

void TraceCollector::record(Span span) {
  std::scoped_lock lock(mutex_);
  spans_.push_back(std::move(span));
}

void TraceCollector::record_counter(CounterSample sample) {
  std::scoped_lock lock(mutex_);
  counters_.push_back(std::move(sample));
}

void TraceCollector::record_flow(FlowEvent flow) {
  std::scoped_lock lock(mutex_);
  flows_.push_back(flow);
}

void TraceCollector::record_flow_start(const TraceContext& ctx, int64_t t_ns,
                                       int64_t thread_id) {
  record_flow(FlowEvent{flow_id_of(ctx), t_ns, thread_id, false});
}

void TraceCollector::record_flow_finish(const TraceContext& ctx,
                                        int64_t t_ns, int64_t thread_id) {
  record_flow(FlowEvent{flow_id_of(ctx), t_ns, thread_id, true});
}

void TraceCollector::name_thread(int64_t thread_id, std::string name) {
  std::scoped_lock lock(mutex_);
  thread_names_[thread_id] = std::move(name);
}

size_t TraceCollector::span_count() const {
  std::scoped_lock lock(mutex_);
  return spans_.size();
}

size_t TraceCollector::counter_sample_count() const {
  std::scoped_lock lock(mutex_);
  return counters_.size();
}

size_t TraceCollector::flow_event_count() const {
  std::scoped_lock lock(mutex_);
  return flows_.size();
}

std::vector<TraceCollector::Span> TraceCollector::spans_snapshot() const {
  std::scoped_lock lock(mutex_);
  return spans_;
}

int64_t TraceCollector::earliest_ns() const {
  std::scoped_lock lock(mutex_);
  int64_t epoch = 0;
  for (const Span& span : spans_) {
    if (epoch == 0 || span.start_ns < epoch) epoch = span.start_ns;
  }
  for (const CounterSample& sample : counters_) {
    if (epoch == 0 || sample.t_ns < epoch) epoch = sample.t_ns;
  }
  for (const FlowEvent& flow : flows_) {
    if (epoch == 0 || flow.t_ns < epoch) epoch = flow.t_ns;
  }
  return epoch;
}

void TraceCollector::emit_events(std::ostream& os, int pid,
                                 const std::string& process_name,
                                 int64_t epoch_ns, bool& first) const {
  std::scoped_lock lock(mutex_);
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: label the process lane and every thread lane so Perfetto
  // shows "node1 / worker 0" instead of bare pid/tid numbers.
  sep();
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
     << ", \"args\": {\"name\": \"" << json_escape(process_name) << "\"}}";
  std::set<int64_t> tids;
  for (const Span& span : spans_) tids.insert(span.thread_id);
  for (const FlowEvent& flow : flows_) tids.insert(flow.thread_id);
  for (const int64_t tid : tids) {
    std::string label;
    const auto it = thread_names_.find(tid);
    if (it != thread_names_.end()) {
      label = it->second;
    } else if (tid >= 0) {
      label = "worker " + std::to_string(tid);
    } else if (tid == -1) {
      label = "analyzer";
    } else if (tid == -2) {
      label = "net";
    } else if (tid == -3) {
      label = "retry";
    } else if (tid <= -10) {
      // Analyzer shards >= 1 (shard 0 stays on the classic -1 lane).
      label = "analyzer " + std::to_string(-10 - tid);
    } else {
      label = "thread " + std::to_string(tid);
    }
    sep();
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
       << json_escape(label) << "\"}}";
  }

  for (const Span& span : spans_) {
    sep();
    // Chrome trace "complete" events: ph=X, ts/dur in microseconds.
    os << "  {\"name\": \"" << json_escape(span.name)
       << "\", \"cat\": \"p2g\", "
       << "\"ph\": \"X\", \"pid\": " << pid
       << ", \"tid\": " << span.thread_id
       << ", \"ts\": " << (span.start_ns - epoch_ns) / 1000.0
       << ", \"dur\": " << span.duration_ns / 1000.0
       << ", \"args\": {\"age\": " << span.age
       << ", \"bodies\": " << span.bodies;
    if (span.trace_id != 0 || span.kind != SpanKind::kWorker) {
      write_causal_args(os, span.kind, span.trace_id, span.span_id,
                        span.parent_span);
    }
    os << "}}";
  }
  for (const CounterSample& sample : counters_) {
    sep();
    // Counter events: ph=C, one track per name, rendered by Perfetto as a
    // filled curve above the span lanes.
    os << "  {\"name\": \"" << json_escape(sample.track)
       << "\", \"cat\": \"p2g\", \"ph\": \"C\", \"pid\": " << pid
       << ", \"ts\": " << (sample.t_ns - epoch_ns) / 1000.0
       << ", \"args\": {\"value\": " << sample.value << "}}";
  }
  for (const FlowEvent& flow : flows_) {
    sep();
    // Flow endpoints: ph=s where data leaves a span, ph=f (bp=e: bind to
    // the enclosing slice) where a dependent span picks it up. The id is
    // derived from the carried TraceContext, so the two sides agree on it
    // across nodes and Chrome draws the arrow between lanes.
    os << "  {\"name\": \"dep\", \"cat\": \"p2g.flow\", \"ph\": \""
       << (flow.finish ? "f" : "s") << "\"";
    if (flow.finish) os << ", \"bp\": \"e\"";
    os << ", \"id\": \"";
    write_hex(os, flow.flow_id);
    os << "\", \"pid\": " << pid << ", \"tid\": " << flow.thread_id
       << ", \"ts\": " << (flow.t_ns - epoch_ns) / 1000.0 << "}";
  }
}

std::string TraceCollector::to_chrome_json() const {
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  emit_events(os, 1, "p2g", earliest_ns(), first);
  os << "\n]\n";
  return os.str();
}

void TraceCollector::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) {
    throw_error(ErrorKind::kIo, "cannot open '" + path + "' for writing");
  }
  // Streamed, not materialized: the document is written event by event so
  // a large trace never builds a second full copy in memory.
  os << "[\n";
  bool first = true;
  emit_events(os, 1, "p2g", earliest_ns(), first);
  os << "\n]\n";
  os.flush();
  if (!os.good()) {
    throw_error(ErrorKind::kIo, "failed writing trace to '" + path + "'");
  }
}

}  // namespace p2g
