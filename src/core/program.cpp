#include "core/program.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace p2g {

Slice& Slice::var(std::string name) {
  dims_.push_back(Dim{Dim::Kind::kVar, std::move(name), 0});
  return *this;
}

Slice& Slice::all() {
  dims_.push_back(Dim{Dim::Kind::kAll, {}, 0});
  return *this;
}

Slice& Slice::at(int64_t index) {
  dims_.push_back(Dim{Dim::Kind::kConst, {}, index});
  return *this;
}

KernelBuilder& KernelBuilder::index(std::string name) {
  index_vars_.push_back(std::move(name));
  return *this;
}

KernelBuilder& KernelBuilder::fetch(std::string slot, std::string field,
                                    AgeExpr age, Slice slice) {
  fetches_.push_back(
      FetchSpec{std::move(slot), std::move(field), age, std::move(slice)});
  return *this;
}

KernelBuilder& KernelBuilder::store(std::string slot, std::string field,
                                    AgeExpr age, Slice slice) {
  stores_.push_back(
      StoreSpec{std::move(slot), std::move(field), age, std::move(slice)});
  return *this;
}

KernelBuilder& KernelBuilder::body(KernelBody fn) {
  body_ = std::move(fn);
  return *this;
}

KernelBuilder& KernelBuilder::run_once() {
  has_age_ = false;
  return *this;
}

KernelBuilder& KernelBuilder::serial() {
  serial_ = true;
  return *this;
}

const FieldDecl& Program::field(FieldId id) const {
  check_argument(id >= 0 && static_cast<size_t>(id) < fields_.size(),
                 "unknown field id");
  return fields_[static_cast<size_t>(id)];
}

const KernelDef& Program::kernel(KernelId id) const {
  check_argument(id >= 0 && static_cast<size_t>(id) < kernels_.size(),
                 "unknown kernel id");
  return kernels_[static_cast<size_t>(id)];
}

FieldId Program::find_field(std::string_view name) const {
  for (const FieldDecl& f : fields_) {
    if (f.name == name) return f.id;
  }
  return kInvalidField;
}

KernelId Program::find_kernel(std::string_view name) const {
  for (const KernelDef& k : kernels_) {
    if (k.name == name) return k.id;
  }
  return kInvalidKernel;
}

const std::vector<Program::Use>& Program::consumers_of(FieldId field) const {
  check_argument(field >= 0 && static_cast<size_t>(field) < consumers_.size(),
                 "unknown field id");
  return consumers_[static_cast<size_t>(field)];
}

const std::vector<Program::Use>& Program::producers_of(FieldId field) const {
  check_argument(field >= 0 && static_cast<size_t>(field) < producers_.size(),
                 "unknown field id");
  return producers_[static_cast<size_t>(field)];
}

ProgramBuilder& ProgramBuilder::field(std::string name, nd::ElementType type,
                                      size_t rank) {
  return field(std::move(name), type, rank, {});
}

ProgramBuilder& ProgramBuilder::field(std::string name, nd::ElementType type,
                                      size_t rank,
                                      std::vector<int64_t> declared_extents) {
  for (const FieldDecl& f : fields_) {
    if (f.name == name) {
      throw_error(ErrorKind::kSema, "duplicate field name '" + name + "'");
    }
  }
  check_argument(declared_extents.empty() || declared_extents.size() == rank,
                 "declared extents of field '" + name +
                     "' must match its rank");
  FieldDecl decl;
  decl.id = static_cast<FieldId>(fields_.size());
  decl.name = std::move(name);
  decl.type = type;
  decl.rank = rank;
  decl.declared_extents = std::move(declared_extents);
  fields_.push_back(std::move(decl));
  return *this;
}

std::string_view to_string(IndependenceCertificate::Kind kind) {
  return kind == IndependenceCertificate::Kind::kPointwise ? "pointwise"
                                                           : "whole-cover";
}

KernelBuilder& ProgramBuilder::kernel(std::string name) {
  for (const auto& k : kernels_) {
    if (k->name_ == name) {
      throw_error(ErrorKind::kSema, "duplicate kernel name '" + name + "'");
    }
  }
  kernels_.push_back(std::make_unique<KernelBuilder>());
  kernels_.back()->name_ = std::move(name);
  return *kernels_.back();
}

namespace {

/// Resolves a builder-side Slice to a runtime SliceSpec, mapping variable
/// names to ids through `var_names`.
nd::SliceSpec resolve_slice(const Slice& slice,
                            const std::vector<std::string>& var_names,
                            const std::string& kernel_name,
                            const FieldDecl& field) {
  if (slice.is_whole()) return nd::SliceSpec::whole();
  if (slice.dims().size() != field.rank) {
    throw_error(ErrorKind::kSema,
                "kernel '" + kernel_name + "': slice rank " +
                    std::to_string(slice.dims().size()) +
                    " does not match rank " + std::to_string(field.rank) +
                    " of field '" + field.name + "'");
  }
  std::vector<nd::SliceDim> dims;
  dims.reserve(slice.dims().size());
  for (const Slice::Dim& d : slice.dims()) {
    switch (d.kind) {
      case Slice::Dim::Kind::kAll:
        dims.push_back(nd::SliceDim::all());
        break;
      case Slice::Dim::Kind::kConst:
        dims.push_back(nd::SliceDim::constant(d.value));
        break;
      case Slice::Dim::Kind::kVar: {
        const auto it =
            std::find(var_names.begin(), var_names.end(), d.var);
        if (it == var_names.end()) {
          throw_error(ErrorKind::kSema,
                      "kernel '" + kernel_name + "': slice references " +
                          "undeclared index variable '" + d.var + "'");
        }
        dims.push_back(nd::SliceDim::variable(
            static_cast<int>(it - var_names.begin())));
        break;
      }
    }
  }
  return nd::SliceSpec(std::move(dims));
}

}  // namespace

Program ProgramBuilder::build() {
  Program prog;
  prog.fields_ = fields_;
  prog.consumers_.resize(fields_.size());
  prog.producers_.resize(fields_.size());

  for (const auto& kb : kernels_) {
    KernelDef def;
    def.id = static_cast<KernelId>(prog.kernels_.size());
    def.name = kb->name_;
    def.index_vars = kb->index_vars_;
    def.has_age = kb->has_age_;
    def.serial = kb->serial_;
    def.body = kb->body_;

    if (!def.body) {
      throw_error(ErrorKind::kSema,
                  "kernel '" + def.name + "' has no body");
    }
    {
      std::set<std::string> seen(def.index_vars.begin(),
                                 def.index_vars.end());
      if (seen.size() != def.index_vars.size()) {
        throw_error(ErrorKind::kSema, "kernel '" + def.name +
                                          "' declares duplicate index "
                                          "variables");
      }
    }

    auto field_by_name = [&](const std::string& name) -> const FieldDecl& {
      const FieldId id = prog.find_field(name);
      if (id == kInvalidField) {
        throw_error(ErrorKind::kSema, "kernel '" + def.name +
                                          "' references unknown field '" +
                                          name + "'");
      }
      return prog.field(id);
    };

    for (const auto& f : kb->fetches_) {
      const FieldDecl& fd = field_by_name(f.field);
      FetchDecl decl;
      decl.name = f.slot;
      decl.field = fd.id;
      decl.age = f.age;
      decl.slice = resolve_slice(f.slice, def.index_vars, def.name, fd);
      def.fetches.push_back(std::move(decl));
    }
    for (const auto& s : kb->stores_) {
      const FieldDecl& fd = field_by_name(s.field);
      StoreDecl decl;
      decl.name = s.slot;
      decl.field = fd.id;
      decl.age = s.age;
      decl.slice = resolve_slice(s.slice, def.index_vars, def.name, fd);
      def.stores.push_back(std::move(decl));
    }

    // Slot names must be unique within each statement list.
    {
      std::set<std::string> slots;
      for (const auto& f : def.fetches) {
        if (!slots.insert(f.name).second) {
          throw_error(ErrorKind::kSema, "kernel '" + def.name +
                                            "' has duplicate fetch slot '" +
                                            f.name + "'");
        }
      }
      slots.clear();
      for (const auto& s : def.stores) {
        if (!slots.insert(s.name).second) {
          throw_error(ErrorKind::kSema, "kernel '" + def.name +
                                            "' has duplicate store slot '" +
                                            s.name + "'");
        }
      }
    }

    // Ageless (run-once) kernels: every statement must use constant ages,
    // and there is no index domain to derive, so no index variables.
    if (def.is_run_once()) {
      if (!def.index_vars.empty()) {
        throw_error(ErrorKind::kSema,
                    "run-once kernel '" + def.name +
                        "' cannot declare index variables");
      }
      for (const auto& f : def.fetches) {
        if (f.age.kind != AgeExpr::Kind::kConst) {
          throw_error(ErrorKind::kSema,
                      "run-once kernel '" + def.name +
                          "' must fetch constant ages");
        }
      }
      for (const auto& s : def.stores) {
        if (s.age.kind != AgeExpr::Kind::kConst) {
          throw_error(ErrorKind::kSema,
                      "run-once kernel '" + def.name +
                          "' must store constant ages");
        }
      }
    }

    // Source kernels (age, no fetches): index variables would be unbound,
    // and var-indexed stores would have no domain.
    if (def.is_source() && !def.index_vars.empty()) {
      throw_error(ErrorKind::kSema,
                  "source kernel '" + def.name +
                      "' cannot declare index variables (no fetch binds "
                      "them)");
    }

    // Every index variable must be bound by at least one fetch.
    for (size_t v = 0; v < def.index_vars.size(); ++v) {
      if (!def.binding_of_var(static_cast<int>(v))) {
        throw_error(ErrorKind::kSema,
                    "kernel '" + def.name + "': index variable '" +
                        def.index_vars[v] +
                        "' is not bound by any fetch statement");
      }
    }

    // Aged kernels with fetches need at least one relative-age fetch: the
    // analyzer derives candidate instance ages from relative fetches, and a
    // kernel fetching only constant ages would have an unbounded age
    // domain.
    if (def.has_age && !def.fetches.empty()) {
      const bool any_relative =
          std::any_of(def.fetches.begin(), def.fetches.end(),
                      [](const FetchDecl& f) {
                        return f.age.kind == AgeExpr::Kind::kRelative;
                      });
      if (!any_relative) {
        throw_error(ErrorKind::kSema,
                    "kernel '" + def.name +
                        "' has an age but fetches only constant ages; no "
                        "event can bound its age domain");
      }
    }

    // Aged kernels must store relative ages: a constant-age store would be
    // repeated every age, violating write-once.
    if (def.has_age) {
      for (const auto& s : def.stores) {
        if (s.age.kind != AgeExpr::Kind::kRelative) {
          throw_error(ErrorKind::kSema,
                      "aged kernel '" + def.name +
                          "' must store relative ages (a constant age "
                          "would be written once per age)");
        }
      }
    }

    // Serial kernels run one instance per age; index variables would make
    // "strictly increasing age order" ambiguous.
    if (def.serial && !def.index_vars.empty()) {
      throw_error(ErrorKind::kSema,
                  "serial kernel '" + def.name +
                      "' cannot declare index variables");
    }

    prog.kernels_.push_back(std::move(def));
  }

  // Derived use maps.
  for (const KernelDef& k : prog.kernels_) {
    for (size_t i = 0; i < k.fetches.size(); ++i) {
      prog.consumers_[static_cast<size_t>(k.fetches[i].field)].push_back(
          Program::Use{k.id, i});
    }
    for (size_t i = 0; i < k.stores.size(); ++i) {
      prog.producers_[static_cast<size_t>(k.stores[i].field)].push_back(
          Program::Use{k.id, i});
    }
  }

  return prog;
}

}  // namespace p2g
