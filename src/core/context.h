// KernelContext: the interface a kernel body uses to reach its fetched
// slices, buffer its stores, query its age/index bindings, and poll
// deadline timers.
//
// Stores are buffered and committed by the worker after the body returns;
// this both matches the paper's deferred-store semantics under kernel
// fusion (§V-A, Age=3 in Fig. 4) and keeps write-once violations
// attributable to a single instance.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "core/kernel.h"
#include "core/timer.h"
#include "nd/buffer.h"

namespace p2g {

class KernelContext {
 public:
  KernelContext(const KernelDef& def, Age age, nd::Coord indices,
                TimerSet* timers);

  const KernelDef& def() const { return *def_; }
  Age age() const { return age_; }

  /// Value of an index variable by position or by name.
  int64_t index(size_t var) const;
  int64_t index(std::string_view name) const;
  const nd::Coord& indices() const { return indices_; }

  // --- fetched data -------------------------------------------------------

  /// The fetched slice for a slot, shaped like the resolved region.
  const nd::AnyBuffer& fetch_array(std::string_view slot) const;

  /// Single-element fetch as a scalar.
  template <typename T>
  T fetch_scalar(std::string_view slot) const {
    const nd::AnyBuffer& buf = fetch_array(slot);
    check_argument(buf.element_count() == 1,
                   "fetch_scalar on a non-scalar slice");
    return buf.data<T>()[0];
  }

  // --- stores (buffered until the body returns) ---------------------------

  /// Stores a payload for a slot. For elementwise slices the payload must
  /// hold exactly one element; for slices with `all()` dimensions or whole-
  /// field stores, the payload supplies those extents.
  void store_array(std::string_view slot, nd::AnyBuffer data);

  template <typename T>
  void store_scalar(std::string_view slot, T value) {
    nd::AnyBuffer buf(nd::element_type_of<T>(), nd::Extents({1}));
    buf.template data<T>()[0] = value;
    store_array(slot, std::move(buf));
  }

  // --- source-kernel control ----------------------------------------------

  /// Requests the next age of a source kernel (the paper's read kernel
  /// keeps calling this until end-of-stream).
  void continue_next_age() { continue_ = true; }
  bool continue_requested() const { return continue_; }

  // --- deadlines ------------------------------------------------------------

  TimerSet& timers() const;

  // --- worker-facing (not for kernel bodies) -------------------------------

  void set_fetch(size_t slot, nd::AnyBuffer data);

  struct PendingStore {
    size_t decl = 0;
    nd::AnyBuffer data;
  };
  const std::vector<PendingStore>& pending_stores() const { return stores_; }

  /// Pending store for a given decl index, or nullptr.
  const PendingStore* pending_store(size_t decl) const;

 private:
  const KernelDef* def_;
  Age age_;
  nd::Coord indices_;
  TimerSet* timers_;
  std::vector<std::optional<nd::AnyBuffer>> fetches_;
  std::vector<PendingStore> stores_;
  bool continue_ = false;
};

}  // namespace p2g
