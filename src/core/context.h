// KernelContext: the interface a kernel body uses to reach its fetched
// slices, buffer its stores, query its age/index bindings, and poll
// deadline timers.
//
// Stores are buffered and committed by the worker after the body returns;
// this both matches the paper's deferred-store semantics under kernel
// fusion (§V-A, Age=3 in Fig. 4) and keeps write-once violations
// attributable to a single instance.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "core/kernel.h"
#include "core/timer.h"
#include "nd/buffer.h"
#include "nd/view.h"

namespace p2g {

class KernelContext {
 public:
  KernelContext(const KernelDef& def, Age age, nd::Coord indices,
                TimerSet* timers);

  const KernelDef& def() const { return *def_; }
  Age age() const { return age_; }

  /// Value of an index variable by position or by name.
  int64_t index(size_t var) const;
  int64_t index(std::string_view name) const;
  const nd::Coord& indices() const { return indices_; }

  // --- fetched data -------------------------------------------------------

  /// View of the fetched slice for a slot, shaped like the resolved region.
  /// This is the zero-copy path: when the producing age is sealed the view
  /// aliases field storage directly; otherwise it views a per-instance copy.
  /// Either way, no payload copy happens at call time.
  const nd::ConstView& fetch_view(std::string_view slot) const;

  /// The fetched slice as a packed buffer. Kept for kernels that want an
  /// owning array; materializes the view once per slot on first call.
  const nd::AnyBuffer& fetch_array(std::string_view slot) const;

  /// Single-element fetch as a scalar.
  template <typename T>
  T fetch_scalar(std::string_view slot) const {
    const nd::ConstView& view = fetch_view(slot);
    check_argument(view.element_count() == 1,
                   "fetch_scalar on a non-scalar slice");
    return view.at_flat<T>(0);
  }

  // --- stores (buffered until the body returns) ---------------------------

  /// Stores a payload for a slot. For elementwise slices the payload must
  /// hold exactly one element; for slices with `all()` dimensions or whole-
  /// field stores, the payload supplies those extents.
  void store_array(std::string_view slot, nd::AnyBuffer data);

  template <typename T>
  void store_scalar(std::string_view slot, T value) {
    nd::AnyBuffer buf(nd::element_type_of<T>(), nd::Extents({1}));
    buf.template data<T>()[0] = value;
    store_array(slot, std::move(buf));
  }

  // --- source-kernel control ----------------------------------------------

  /// Requests the next age of a source kernel (the paper's read kernel
  /// keeps calling this until end-of-stream).
  void continue_next_age() { continue_ = true; }
  bool continue_requested() const { return continue_; }

  // --- deadlines ------------------------------------------------------------

  TimerSet& timers() const;

  // --- worker-facing (not for kernel bodies) -------------------------------

  /// Prepares a slot with an owned copy (unsealed-age fallback, injected
  /// data). The slot's view aliases the owned buffer.
  void set_fetch(size_t slot, nd::AnyBuffer data);

  /// Prepares a slot with a zero-copy view of field storage.
  void set_fetch(size_t slot, nd::ConstView view);

  struct PendingStore {
    size_t decl = 0;
    nd::AnyBuffer data;
  };
  const std::vector<PendingStore>& pending_stores() const { return stores_; }

  /// Pending store for a given decl index, or nullptr.
  const PendingStore* pending_store(size_t decl) const;

 private:
  struct FetchSlot {
    bool prepared = false;
    nd::ConstView view;
    /// Owning storage behind the view when prepared by copy.
    std::optional<nd::AnyBuffer> owned;
    /// Lazy packed materialization for fetch_array over a storage view.
    mutable std::optional<nd::AnyBuffer> packed;
  };

  const FetchSlot& slot_for(std::string_view slot) const;

  const KernelDef* def_;
  Age age_;
  nd::Coord indices_;
  TimerSet* timers_;
  std::vector<FetchSlot> fetches_;
  std::vector<PendingStore> stores_;
  bool continue_ = false;
};

}  // namespace p2g
