#include "core/instrumentation.h"

#include <sstream>

#include "common/error.h"
#include "common/string_util.h"
#include "core/program.h"

namespace p2g {

const KernelStats* InstrumentationReport::find(
    std::string_view kernel_name) const {
  for (const KernelStats& k : kernels) {
    if (k.name == kernel_name) return &k;
  }
  return nullptr;
}

std::string InstrumentationReport::to_table() const {
  std::ostringstream os;
  os << format("%-16s %12s %16s %16s\n", "Kernel", "Instances",
               "Dispatch Time", "Kernel Time");
  for (const KernelStats& k : kernels) {
    os << format("%-16s %12s %13.2f us %13.2f us\n", k.name.c_str(),
                 with_thousands(k.instances).c_str(), k.avg_dispatch_us(),
                 k.avg_kernel_us());
  }
  return os.str();
}

Instrumentation::Instrumentation(size_t kernel_count)
    : counters_(kernel_count) {}

void Instrumentation::record(KernelId kernel, int64_t dispatch_ns,
                             int64_t bodies, int64_t kernel_ns) {
  check_internal(kernel >= 0 &&
                     static_cast<size_t>(kernel) < counters_.size(),
                 "instrumentation: kernel id out of range");
  Counters& c = counters_[static_cast<size_t>(kernel)];
  c.dispatches.fetch_add(1, std::memory_order_relaxed);
  c.instances.fetch_add(bodies, std::memory_order_relaxed);
  c.dispatch_ns.fetch_add(dispatch_ns, std::memory_order_relaxed);
  c.kernel_ns.fetch_add(kernel_ns, std::memory_order_relaxed);
}

InstrumentationReport Instrumentation::snapshot(
    const Program& program) const {
  InstrumentationReport report;
  report.kernels.reserve(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    KernelStats stats;
    stats.name = program.kernel(static_cast<KernelId>(i)).name;
    stats.dispatches = counters_[i].dispatches.load();
    stats.instances = counters_[i].instances.load();
    stats.dispatch_ns = counters_[i].dispatch_ns.load();
    stats.kernel_ns = counters_[i].kernel_ns.load();
    report.kernels.push_back(std::move(stats));
  }
  return report;
}

}  // namespace p2g
