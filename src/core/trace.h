// Execution tracing: a timeline of every dispatched work item in Chrome
// trace-event JSON (load in chrome://tracing or Perfetto).
//
// The paper's execution nodes feed instrumentation to the schedulers; the
// aggregate view is Tables II/III, and this is the per-instance view —
// one lane per worker thread plus the analyzer, showing dispatch gaps,
// chunk widths and the serial-analyzer bottleneck of Fig. 10 visually.
//
// Causal layer (ISSUE 6): every span carries a TraceContext — a trace id
// naming the (field, age) "frame" that started the causal chain plus the
// span id of its cause — and contexts are propagated through store events,
// wire messages and remote stores. Producer/consumer hand-offs are emitted
// as Perfetto flow events (ph:"s"/"f") so the UI draws arrows across node
// lanes, and the span DAG feeds the critical-path analyzer (obs/causal.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/ids.h"

namespace p2g {

/// Causal identity carried along a dependency edge: which frame the data
/// belongs to and which span produced it. A zero trace id means
/// "untraced" (tracing disabled, or data with no causal parent such as a
/// checkpoint replay).
struct TraceContext {
  uint64_t trace_id = 0;  ///< frame id, derived per source (field, age)
  uint64_t span_id = 0;   ///< producing span (causal parent downstream)

  bool valid() const { return trace_id != 0; }
};

/// Deterministic frame id of a source (field, age): every node derives the
/// same id without coordination, so cross-node chains agree on the frame
/// they belong to. Never returns 0.
uint64_t frame_trace_id(FieldId field, Age age);

/// What a span measured — the critical-path analyzer buckets latency by
/// this kind (obs/causal.h).
enum class SpanKind : uint8_t {
  kWorker = 0,       ///< kernel bodies on a worker thread
  kAnalyzer = 1,     ///< dependency-analyzer batch
  kWire = 2,         ///< serialize + send (and retransmit children)
  kRemoteStore = 3,  ///< decode + apply of a remote store
  kRecovery = 4,     ///< failure detection / reassignment work
  kOther = 5,
};

const char* to_string(SpanKind kind);

/// Thread-safe collector of trace spans, counter samples and flow events.
/// Enabled via RunOptions::trace_path (write a file after the run) or
/// RunOptions::collect_trace (collect only; the distributed master stitches
/// per-node collectors into one merged file). Workers record one span per
/// executed work item and the analyzer one span per processed event batch.
/// With metrics enabled, sampled gauges become Perfetto counter tracks
/// (ph:"C") rendered alongside the span lanes.
class TraceCollector {
 public:
  struct Span {
    std::string name;   ///< kernel name or analyzer phase
    int64_t start_ns;   ///< monotonic
    int64_t duration_ns;
    int64_t thread_id;  ///< worker index; -1 = analyzer, -2 = net, -3 = retry
    Age age;
    int64_t bodies;     ///< kernel bodies covered (chunk width)
    // Causal fields (zero when untraced).
    SpanKind kind = SpanKind::kWorker;
    uint64_t trace_id = 0;     ///< frame this span belongs to
    uint64_t span_id = 0;      ///< this span's identity
    uint64_t parent_span = 0;  ///< causal parent span (0 = root)
  };

  /// One point of a counter track (a sampled gauge).
  struct CounterSample {
    std::string track;  ///< counter-track name, e.g. "ready_queue_depth"
    int64_t t_ns;       ///< monotonic
    int64_t value;
  };

  /// A flow-event endpoint: start (ph:"s") where data leaves a span,
  /// finish (ph:"f") where a causally dependent span picks it up. Chrome
  /// binds endpoints by id and draws an arrow between the enclosing spans.
  struct FlowEvent {
    uint64_t flow_id;
    int64_t t_ns;
    int64_t thread_id;
    bool finish;  ///< false = ph:"s", true = ph:"f"
  };

  void record(Span span);
  void record_counter(CounterSample sample);
  void record_flow(FlowEvent flow);

  /// Flow endpoints for a context hand-off; the flow id is a pure function
  /// of the context, so producer and consumer nodes agree on it.
  void record_flow_start(const TraceContext& ctx, int64_t t_ns,
                         int64_t thread_id);
  void record_flow_finish(const TraceContext& ctx, int64_t t_ns,
                          int64_t thread_id);

  /// Labels a thread lane (ph:"M" thread_name metadata). Unlabeled lanes
  /// get defaults ("worker N" / "analyzer" / "net" / "retry").
  void name_thread(int64_t thread_id, std::string name);

  /// Serializes everything as a Chrome trace-event JSON array document.
  std::string to_chrome_json() const;

  /// Streams the JSON document to a file without materializing it in
  /// memory (throws kIo on failure).
  void write_file(const std::string& path) const;

  /// Streams this collector's events as trace-event objects into an open
  /// document: metadata (ph:"M" process/thread names), spans, counters and
  /// flows, with `pid` as the process lane and timestamps rebased to
  /// `epoch_ns`. `first` tracks comma placement across collectors — the
  /// distributed master calls this once per node to stitch one merged
  /// trace.
  void emit_events(std::ostream& os, int pid,
                   const std::string& process_name, int64_t epoch_ns,
                   bool& first) const;

  /// Earliest event timestamp (monotonic ns); 0 when empty. The merged
  /// trace uses the minimum across collectors as the shared epoch.
  int64_t earliest_ns() const;

  /// Copies out all spans (for critical-path analysis).
  std::vector<Span> spans_snapshot() const;

  size_t span_count() const;
  size_t counter_sample_count() const;
  size_t flow_event_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;
  std::vector<FlowEvent> flows_;
  std::map<int64_t, std::string> thread_names_;
};

}  // namespace p2g
