// Execution tracing: a timeline of every dispatched work item in Chrome
// trace-event JSON (load in chrome://tracing or Perfetto).
//
// The paper's execution nodes feed instrumentation to the schedulers; the
// aggregate view is Tables II/III, and this is the per-instance view —
// one lane per worker thread plus the analyzer, showing dispatch gaps,
// chunk widths and the serial-analyzer bottleneck of Fig. 10 visually.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/ids.h"

namespace p2g {

/// Thread-safe collector of trace spans and counter samples. Enabled via
/// RunOptions::trace_path; workers record one span per executed work item
/// and the analyzer one span per processed event batch. With metrics
/// enabled, sampled gauges (queue depth, utilization, memory) become
/// Perfetto counter tracks (ph:"C") rendered alongside the span lanes.
class TraceCollector {
 public:
  struct Span {
    std::string name;   ///< kernel name or analyzer phase
    int64_t start_ns;   ///< monotonic
    int64_t duration_ns;
    int64_t thread_id;  ///< worker index; -1 = analyzer
    Age age;
    int64_t bodies;     ///< kernel bodies covered (chunk width)
  };

  /// One point of a counter track (a sampled gauge).
  struct CounterSample {
    std::string track;  ///< counter-track name, e.g. "ready_queue_depth"
    int64_t t_ns;       ///< monotonic
    int64_t value;
  };

  void record(Span span);
  void record_counter(CounterSample sample);

  /// Serializes all spans (ph:"X") and counter samples (ph:"C") as a
  /// Chrome trace-event JSON array document.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to a file (throws kIo on failure).
  void write_file(const std::string& path) const;

  size_t span_count() const;
  size_t counter_sample_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
  std::vector<CounterSample> counters_;
};

}  // namespace p2g
