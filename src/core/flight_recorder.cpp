#include "core/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>

#include "common/logging.h"
#include "common/string_util.h"

namespace p2g {

namespace {

// Process-wide registry for the SIGABRT dump: fixed slots of atomic
// pointers so the signal handler never takes a lock or allocates.
constexpr size_t kMaxRecorders = 32;
std::atomic<FlightRecorder*> g_recorders[kMaxRecorders];
std::atomic<int> g_abort_fd{-1};

// Async-signal-safe formatting: snprintf is NOT on the POSIX
// async-signal-safe list (glibc's may take locale locks or malloc on
// first use), so the handler formats with these hand-rolled appenders
// into a stack buffer and emits via write(2) only.
size_t as_append(char* buf, size_t cap, size_t pos, const char* s) {
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

size_t as_append_dec(char* buf, size_t cap, size_t pos, long long value) {
  char digits[24];
  size_t n = 0;
  // Negate into unsigned space so LLONG_MIN does not overflow.
  unsigned long long u = value < 0
      ? ~static_cast<unsigned long long>(value) + 1ULL
      : static_cast<unsigned long long>(value);
  do {
    digits[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0);
  if (value < 0 && pos < cap) buf[pos++] = '-';
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

size_t as_append_hex(char* buf, size_t cap, size_t pos,
                     unsigned long long value) {
  char digits[16];
  size_t n = 0;
  do {
    digits[n++] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  } while (value != 0);
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

extern "C" void p2g_flight_abort_handler(int signum) {
  const int fd = g_abort_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    for (size_t i = 0; i < kMaxRecorders; ++i) {
      FlightRecorder* recorder =
          g_recorders[i].load(std::memory_order_acquire);
      if (recorder == nullptr) continue;
      // Entries are preallocated PODs; formatting is hand-rolled into a
      // stack buffer (no snprintf), output goes through write(2).
      recorder->visit_entries([fd, i](const FlightRecorder::Entry& e) {
        char line[256];
        const size_t cap = sizeof(line);
        size_t pos = 0;
        pos = as_append(line, cap, pos, "{\"name\": \"");
        pos = as_append(line, cap, pos, e.name);
        pos = as_append(line, cap, pos,
                        "\", \"cat\": \"p2g.flight\", \"ph\": \"X\", "
                        "\"pid\": ");
        pos = as_append_dec(line, cap, pos, static_cast<long long>(i));
        pos = as_append(line, cap, pos, ", \"tid\": ");
        pos = as_append_dec(line, cap, pos,
                            static_cast<long long>(e.thread_id));
        pos = as_append(line, cap, pos, ", \"ts_ns\": ");
        pos = as_append_dec(line, cap, pos,
                            static_cast<long long>(e.t_ns));
        pos = as_append(line, cap, pos, ", \"dur_ns\": ");
        pos = as_append_dec(line, cap, pos,
                            static_cast<long long>(e.duration_ns));
        pos = as_append(line, cap, pos, ", \"span\": \"0x");
        pos = as_append_hex(line, cap, pos,
                            static_cast<unsigned long long>(e.span_id));
        pos = as_append(line, cap, pos, "\"}\n");
        const ssize_t written = write(fd, line, pos);
        (void)written;
      });
    }
    fsync(fd);
  }
  signal(signum, SIG_DFL);
  raise(signum);
}

}  // namespace

void FlightRecorder::Ring::snapshot(std::vector<Entry>& out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  check::acquire(&head_);
  const uint64_t count = head < kRingSize ? head : kRingSize;
  for (uint64_t i = head - count; i < head; ++i) {
    const Entry& e = entries_[i & (kRingSize - 1)];
    check::racy_read(&e, sizeof(Entry));
    out.push_back(e);
  }
}

FlightRecorder::FlightRecorder() {
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    FlightRecorder* expected = nullptr;
    if (g_recorders[i].compare_exchange_strong(expected, this)) break;
  }
}

FlightRecorder::~FlightRecorder() {
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    FlightRecorder* expected = this;
    if (g_recorders[i].compare_exchange_strong(expected, nullptr)) break;
  }
  for (Slot& slot : slots_) {
    delete slot.ring.load(std::memory_order_acquire);
  }
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  // One-entry thread-local cache: the common case is one recorder per
  // thread for its whole life, so this is a pointer compare. On a miss
  // (thread touched another recorder in between) rescan the slots —
  // registration is rare and the scan is short.
  struct Cache {
    FlightRecorder* owner = nullptr;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner == this) return cache.ring;

  const std::thread::id self = std::this_thread::get_id();
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
    Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
    if (ring != nullptr && slots_[i].owner == self) {
      cache.owner = this;
      cache.ring = ring;
      return ring;
    }
  }
  const size_t index = slot_count_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxThreads) return nullptr;  // out of slots: drop events
  slots_[index].owner = self;
  Ring* ring = new Ring();
  slots_[index].ring.store(ring, std::memory_order_release);
  cache.owner = this;
  cache.ring = ring;
  return ring;
}

void FlightRecorder::record(std::string_view name, SpanKind kind,
                            int64_t t_ns, int64_t duration_ns,
                            int64_t thread_id, const TraceContext& ctx,
                            uint64_t span_id, int64_t age) {
  Ring* ring = ring_for_this_thread();
  if (ring == nullptr) return;
  Entry entry;
  entry.t_ns = t_ns;
  entry.duration_ns = duration_ns;
  entry.thread_id = thread_id;
  entry.age = age;
  entry.trace_id = ctx.trace_id;
  entry.span_id = span_id;
  entry.parent_span = ctx.span_id;
  entry.kind = kind;
  const size_t n = std::min(name.size(), sizeof(entry.name) - 1);
  std::memcpy(entry.name, name.data(), n);
  entry.name[n] = '\0';
  ring->record(entry);
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::vector<Entry> out;
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
    const Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
    if (ring != nullptr) ring->snapshot(out);
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  uint64_t total = 0;
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
    const Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->recorded();
  }
  return total;
}

void FlightRecorder::emit_events(std::ostream& os, int pid,
                                 const std::string& process_name,
                                 int64_t epoch_ns, bool& first) const {
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
     << ", \"args\": {\"name\": \"" << json_escape(process_name) << "\"}}";
  for (const Entry& e : snapshot()) {
    sep();
    os << "  {\"name\": \"" << json_escape(e.name)
       << "\", \"cat\": \"p2g.flight\", \"ph\": \"X\", \"pid\": " << pid
       << ", \"tid\": " << e.thread_id
       << ", \"ts\": " << (e.t_ns - epoch_ns) / 1000.0
       << ", \"dur\": " << e.duration_ns / 1000.0
       << ", \"args\": {\"age\": " << e.age << ", \"kind\": \""
       << to_string(e.kind) << "\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  ", \"trace\": \"0x%llx\", \"span\": \"0x%llx\"",
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span_id));
    os << buf;
    if (e.parent_span != 0) {
      std::snprintf(buf, sizeof(buf), ", \"parent\": \"0x%llx\"",
                    static_cast<unsigned long long>(e.parent_span));
      os << buf;
    }
    os << "}}";
  }
}

bool FlightRecorder::dump_file(const std::string& path,
                               const std::string& process_name) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) {
    P2G_WARNC("flight") << "cannot open flight dump '" << path << "'";
    return false;
  }
  os << "[\n";
  bool first = true;
  emit_events(os, 1, process_name, 0, first);
  os << "\n]\n";
  os.flush();
  if (!os.good()) {
    P2G_WARNC("flight") << "failed writing flight dump '" << path << "'";
    return false;
  }
  return true;
}

void FlightRecorder::install_abort_dump(const std::string& path) {
  static std::once_flag once;
  std::call_once(once, [&path] {
    const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      P2G_WARNC("flight") << "cannot open abort dump '" << path << "'";
      return;
    }
    g_abort_fd.store(fd, std::memory_order_release);
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &p2g_flight_abort_handler;
    sigaction(SIGABRT, &action, nullptr);
  });
}

}  // namespace p2g
