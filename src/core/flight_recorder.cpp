#include "core/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <ostream>

#include "common/logging.h"
#include "common/string_util.h"

namespace p2g {

namespace {

// Process-wide registry for the SIGABRT dump: fixed slots of atomic
// pointers so the signal handler never takes a lock or allocates.
constexpr size_t kMaxRecorders = 32;
std::atomic<FlightRecorder*> g_recorders[kMaxRecorders];
std::atomic<int> g_abort_fd{-1};

extern "C" void p2g_flight_abort_handler(int signum) {
  const int fd = g_abort_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    for (size_t i = 0; i < kMaxRecorders; ++i) {
      FlightRecorder* recorder =
          g_recorders[i].load(std::memory_order_acquire);
      if (recorder == nullptr) continue;
      // Entries are preallocated PODs; formatting uses a stack buffer and
      // integer-only snprintf, output goes through write(2).
      recorder->visit_entries([fd, i](const FlightRecorder::Entry& e) {
        char line[256];
        const int n = std::snprintf(
            line, sizeof(line),
            "{\"name\": \"%s\", \"cat\": \"p2g.flight\", \"ph\": \"X\", "
            "\"pid\": %zu, \"tid\": %lld, \"ts_ns\": %lld, "
            "\"dur_ns\": %lld, \"span\": \"0x%llx\"}\n",
            e.name, i, static_cast<long long>(e.thread_id),
            static_cast<long long>(e.t_ns),
            static_cast<long long>(e.duration_ns),
            static_cast<unsigned long long>(e.span_id));
        if (n > 0) {
          const ssize_t written =
              write(fd, line, static_cast<size_t>(n));
          (void)written;
        }
      });
    }
    fsync(fd);
  }
  signal(signum, SIG_DFL);
  raise(signum);
}

}  // namespace

void FlightRecorder::Ring::snapshot(std::vector<Entry>& out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t count = head < kRingSize ? head : kRingSize;
  for (uint64_t i = head - count; i < head; ++i) {
    out.push_back(entries_[i & (kRingSize - 1)]);
  }
}

FlightRecorder::FlightRecorder() {
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    FlightRecorder* expected = nullptr;
    if (g_recorders[i].compare_exchange_strong(expected, this)) break;
  }
}

FlightRecorder::~FlightRecorder() {
  for (size_t i = 0; i < kMaxRecorders; ++i) {
    FlightRecorder* expected = this;
    if (g_recorders[i].compare_exchange_strong(expected, nullptr)) break;
  }
  for (Slot& slot : slots_) {
    delete slot.ring.load(std::memory_order_acquire);
  }
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  // One-entry thread-local cache: the common case is one recorder per
  // thread for its whole life, so this is a pointer compare. On a miss
  // (thread touched another recorder in between) rescan the slots —
  // registration is rare and the scan is short.
  struct Cache {
    FlightRecorder* owner = nullptr;
    Ring* ring = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner == this) return cache.ring;

  const std::thread::id self = std::this_thread::get_id();
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
    Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
    if (ring != nullptr && slots_[i].owner == self) {
      cache.owner = this;
      cache.ring = ring;
      return ring;
    }
  }
  const size_t index = slot_count_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxThreads) return nullptr;  // out of slots: drop events
  slots_[index].owner = self;
  Ring* ring = new Ring();
  slots_[index].ring.store(ring, std::memory_order_release);
  cache.owner = this;
  cache.ring = ring;
  return ring;
}

void FlightRecorder::record(std::string_view name, SpanKind kind,
                            int64_t t_ns, int64_t duration_ns,
                            int64_t thread_id, const TraceContext& ctx,
                            uint64_t span_id, int64_t age) {
  Ring* ring = ring_for_this_thread();
  if (ring == nullptr) return;
  Entry entry;
  entry.t_ns = t_ns;
  entry.duration_ns = duration_ns;
  entry.thread_id = thread_id;
  entry.age = age;
  entry.trace_id = ctx.trace_id;
  entry.span_id = span_id;
  entry.parent_span = ctx.span_id;
  entry.kind = kind;
  const size_t n = std::min(name.size(), sizeof(entry.name) - 1);
  std::memcpy(entry.name, name.data(), n);
  entry.name[n] = '\0';
  ring->record(entry);
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  std::vector<Entry> out;
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
    const Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
    if (ring != nullptr) ring->snapshot(out);
  }
  return out;
}

uint64_t FlightRecorder::recorded() const {
  uint64_t total = 0;
  const size_t count = slot_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
    const Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->recorded();
  }
  return total;
}

void FlightRecorder::emit_events(std::ostream& os, int pid,
                                 const std::string& process_name,
                                 int64_t epoch_ns, bool& first) const {
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
     << ", \"args\": {\"name\": \"" << json_escape(process_name) << "\"}}";
  for (const Entry& e : snapshot()) {
    sep();
    os << "  {\"name\": \"" << json_escape(e.name)
       << "\", \"cat\": \"p2g.flight\", \"ph\": \"X\", \"pid\": " << pid
       << ", \"tid\": " << e.thread_id
       << ", \"ts\": " << (e.t_ns - epoch_ns) / 1000.0
       << ", \"dur\": " << e.duration_ns / 1000.0
       << ", \"args\": {\"age\": " << e.age << ", \"kind\": \""
       << to_string(e.kind) << "\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  ", \"trace\": \"0x%llx\", \"span\": \"0x%llx\"",
                  static_cast<unsigned long long>(e.trace_id),
                  static_cast<unsigned long long>(e.span_id));
    os << buf;
    if (e.parent_span != 0) {
      std::snprintf(buf, sizeof(buf), ", \"parent\": \"0x%llx\"",
                    static_cast<unsigned long long>(e.parent_span));
      os << buf;
    }
    os << "}}";
  }
}

bool FlightRecorder::dump_file(const std::string& path,
                               const std::string& process_name) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) {
    P2G_WARNC("flight") << "cannot open flight dump '" << path << "'";
    return false;
  }
  os << "[\n";
  bool first = true;
  emit_events(os, 1, process_name, 0, first);
  os << "\n]\n";
  os.flush();
  if (!os.good()) {
    P2G_WARNC("flight") << "failed writing flight dump '" << path << "'";
    return false;
  }
  return true;
}

void FlightRecorder::install_abort_dump(const std::string& path) {
  static std::once_flag once;
  std::call_once(once, [&path] {
    const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      P2G_WARNC("flight") << "cannot open abort dump '" << path << "'";
      return;
    }
    g_abort_fd.store(fd, std::memory_order_release);
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = &p2g_flight_abort_handler;
    sigaction(SIGABRT, &action, nullptr);
  });
}

}  // namespace p2g
