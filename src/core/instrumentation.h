// Per-kernel instrumentation: instance counts, dispatch overhead and time
// spent in kernel bodies. This is the data behind the paper's Tables II
// and III, and the profile feed used by the high-level scheduler to weight
// the final dependency graph (§IV).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/ids.h"

namespace p2g {

class Program;

/// Snapshot of one kernel's counters.
struct KernelStats {
  std::string name;
  int64_t dispatches = 0;   ///< work items dispatched (chunks count once)
  int64_t instances = 0;    ///< kernel bodies executed
  int64_t dispatch_ns = 0;  ///< fetch resolution + store commit time
  int64_t kernel_ns = 0;    ///< time inside kernel bodies

  double avg_dispatch_us() const {
    return dispatches > 0
               ? static_cast<double>(dispatch_ns) / 1e3 /
                     static_cast<double>(dispatches)
               : 0.0;
  }
  double avg_kernel_us() const {
    return instances > 0 ? static_cast<double>(kernel_ns) / 1e3 /
                               static_cast<double>(instances)
                         : 0.0;
  }
};

/// Full instrumentation snapshot.
struct InstrumentationReport {
  std::vector<KernelStats> kernels;

  const KernelStats* find(std::string_view kernel_name) const;

  /// Formats the micro-benchmark table of the paper:
  /// Kernel | Instances | Dispatch Time | Kernel Time.
  std::string to_table() const;
};

/// Thread-safe accumulation of per-kernel counters.
class Instrumentation {
 public:
  explicit Instrumentation(size_t kernel_count);

  /// Records one dispatched work item covering `bodies` kernel bodies.
  void record(KernelId kernel, int64_t dispatch_ns, int64_t bodies,
              int64_t kernel_ns);

  InstrumentationReport snapshot(const Program& program) const;

 private:
  struct Counters {
    std::atomic<int64_t> dispatches{0};
    std::atomic<int64_t> instances{0};
    std::atomic<int64_t> dispatch_ns{0};
    std::atomic<int64_t> kernel_ns{0};
  };

  std::vector<Counters> counters_;
};

}  // namespace p2g
