#include "core/runtime.h"

#include <algorithm>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/context.h"
#include "core/dependency.h"

namespace p2g {

Runtime::Runtime(Program program, RunOptions options)
    : program_(std::move(program)),
      options_(std::move(options)),
      ready_(options_.age_priority),
      instr_(program_.kernels().size()) {
  storages_.reserve(program_.fields().size());
  for (const FieldDecl& decl : program_.fields()) {
    storages_.push_back(std::make_unique<FieldStorage>(decl));
    if (options_.checked) storages_.back()->track_writers(true);
  }
  kcfg_.resize(program_.kernels().size());
  if (options_.trace_path || options_.collect_trace) {
    trace_ = std::make_unique<TraceCollector>();
  }
  if (options_.flight_recorder) {
    flight_ = std::make_unique<FlightRecorder>();
  }
  span_salt_ = mix(0x7370616E73616C74ULL,  // "spansalt"
                   hash_str(options_.trace_label.empty()
                                ? std::string_view("p2g")
                                : std::string_view(options_.trace_label)));
  if (options_.metrics.enabled) setup_metrics();
  resolve_options();
  analyzer_ =
      std::make_unique<DependencyAnalyzer>(*this, options_.analyzer_shards);
  const size_t nshards = analyzer_->shard_count();
  event_queues_.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    event_queues_.push_back(std::make_unique<MpscQueue<Event>>());
  }
  analyzer_cpu_ns_.assign(nshards, 0);
}

Runtime::~Runtime() = default;

void Runtime::setup_metrics() {
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  m_dispatch_ns_ = &metrics_->histogram("dispatch_latency_ns");
  m_kernel_ns_ = &metrics_->histogram("kernel_body_ns");
  m_analyzer_ns_ = &metrics_->histogram("analyzer_handle_ns");
  m_store_batch_ = &metrics_->histogram("store_batch_events");
  m_store_bytes_ = &metrics_->counter("store_commit_bytes_total");
  m_busy_ns_ = &metrics_->counter("worker_busy_ns_total");
  m_idle_ns_ = &metrics_->counter("worker_idle_ns_total");
  m_events_ = &metrics_->counter("analyzer_events_total");
  // Per-shard analyzer counters (setup_metrics runs before the analyzer is
  // constructed, so clamp the shard count from the options directly).
  const int nshards = std::clamp(options_.analyzer_shards, 1, 64);
  m_shard_events_.reserve(static_cast<size_t>(nshards));
  m_shard_xshard_.reserve(static_cast<size_t>(nshards));
  for (int i = 0; i < nshards; ++i) {
    const std::string suffix = ":shard" + std::to_string(i);
    m_shard_events_.push_back(
        &metrics_->counter("analyzer_events_total" + suffix));
    m_shard_xshard_.push_back(
        &metrics_->counter("analyzer_xshard_msgs_total" + suffix));
  }
}

void Runtime::start_sampler() {
  sampler_ = std::make_unique<obs::Sampler>(
      std::chrono::milliseconds(options_.metrics.sample_period_ms));
  sampler_->add_source("ready_queue_depth", [this] {
    return static_cast<int64_t>(ready_.size());
  });
  sampler_->add_source("analyzer_backlog", [this] {
    int64_t total = 0;
    for (const auto& q : event_queues_) {
      total += static_cast<int64_t>(q->size());
    }
    return total;
  });
  for (size_t i = 0; i < event_queues_.size(); ++i) {
    sampler_->add_source("analyzer_backlog:shard" + std::to_string(i),
                         [raw = event_queues_[i].get()] {
                           return static_cast<int64_t>(raw->size());
                         });
  }
  sampler_->add_source("field_memory_bytes", [this] {
    int64_t total = 0;
    for (const auto& fs : storages_) {
      total += static_cast<int64_t>(fs->memory_bytes());
    }
    return total;
  });
  for (const auto& fs : storages_) {
    sampler_->add_source(
        "field_memory_bytes:" + fs->decl().name,
        [raw = fs.get()] {
          return static_cast<int64_t>(raw->memory_bytes());
        });
  }
  // Utilization over the last sampling interval (sampler thread only).
  sampler_->add_source(
      "worker_utilization_pct",
      [this, busy = int64_t{0}, idle = int64_t{0}]() mutable {
        const int64_t b = m_busy_ns_->value();
        const int64_t i = m_idle_ns_->value();
        const int64_t db = b - busy;
        const int64_t di = i - idle;
        busy = b;
        idle = i;
        return db + di > 0 ? 100 * db / (db + di) : int64_t{0};
      });
  sampler_->start();
}

void Runtime::finalize_metrics() {
  if (!sampler_) return;
  sampler_->stop();
  for (obs::TimeSeries& series : sampler_->take_series()) {
    if (trace_) {
      for (const obs::TimeSeriesSample& sample : series.samples) {
        trace_->record_counter(TraceCollector::CounterSample{
            series.name, sample.t_ns, sample.value});
      }
    }
    metrics_->add_series(std::move(series));
  }
  sampler_.reset();
}

void Runtime::resolve_options() {
  const Age global_cap = options_.max_age.value_or(
      std::numeric_limits<Age>::max());
  for (const KernelDef& k : program_.kernels()) {
    KernelRunCfg& cfg = kcfg_[static_cast<size_t>(k.id)];
    cfg.cap = global_cap;
  }
  for (const std::string& name : options_.disabled_kernels) {
    const KernelId id = program_.find_kernel(name);
    check_argument(id != kInvalidKernel,
                   "disabled_kernels lists unknown kernel '" + name + "'");
    kcfg_[static_cast<size_t>(id)].enabled = false;
  }
  for (const auto& [name, sched] : options_.kernel_schedules) {
    const KernelId id = program_.find_kernel(name);
    check_argument(id != kInvalidKernel,
                   "kernel schedule for unknown kernel '" + name + "'");
    KernelRunCfg& cfg = kcfg_[static_cast<size_t>(id)];
    check_argument(sched.chunk >= 1, "chunk must be >= 1");
    cfg.chunk = sched.chunk;
    cfg.chunk_explicit = sched.chunk != 1;
    if (sched.max_age) cfg.cap = std::min(cfg.cap, *sched.max_age);
  }
  fusions_.reserve(options_.fusions.size());
  for (const FusionRule& rule : options_.fusions) {
    resolve_fusion(rule);
  }
  for (const ResolvedFusion& fu : fusions_) {
    KernelRunCfg& cfg = kcfg_[static_cast<size_t>(fu.upstream)];
    check_argument(cfg.fusion == nullptr,
                   "kernel '" + program_.kernel(fu.upstream).name +
                       "' is upstream of more than one fusion");
    cfg.fusion = &fu;
  }
  // No fusion chains: a downstream kernel may not be fused into, or be the
  // upstream of, another fusion (the dispatched-set marking would race).
  for (const ResolvedFusion& fu : fusions_) {
    check_argument(kcfg_[static_cast<size_t>(fu.downstream)].fusion == nullptr,
                   "fusion chains are not supported ('" +
                       program_.kernel(fu.downstream).name +
                       "' is both downstream and upstream)");
    int as_downstream = 0;
    for (const ResolvedFusion& other : fusions_) {
      if (other.downstream == fu.downstream) ++as_downstream;
    }
    check_argument(as_downstream == 1,
                   "kernel '" + program_.kernel(fu.downstream).name +
                       "' is downstream of more than one fusion");
  }
}

void Runtime::resolve_fusion(const FusionRule& rule) {
  const KernelId up_id = program_.find_kernel(rule.upstream);
  const KernelId down_id = program_.find_kernel(rule.downstream);
  check_argument(up_id != kInvalidKernel && down_id != kInvalidKernel,
                 "fusion references unknown kernel(s) '" + rule.upstream +
                     "' -> '" + rule.downstream + "'");
  const KernelDef& up = program_.kernel(up_id);
  const KernelDef& down = program_.kernel(down_id);

  check_argument(!down.serial && !down.is_source() && !down.is_run_once(),
                 "fusion downstream '" + down.name +
                     "' must be a plain data-parallel kernel");
  check_argument(down.fetches.size() == 1,
                 "fusion downstream '" + down.name +
                     "' must have exactly one fetch");
  const FetchDecl& df = down.fetches[0];
  check_argument(df.slice.is_elementwise() &&
                     df.age.kind == AgeExpr::Kind::kRelative,
                 "fusion downstream fetch must be elementwise with a "
                 "relative age");

  // Find the upstream store feeding that fetch.
  const StoreDecl* matched = nullptr;
  size_t matched_index = 0;
  for (size_t s = 0; s < up.stores.size(); ++s) {
    const StoreDecl& d = up.stores[s];
    if (d.field != df.field) continue;
    if (!d.slice.is_elementwise() || d.age.kind != AgeExpr::Kind::kRelative) {
      continue;
    }
    if (d.slice.dims().size() != df.slice.dims().size()) continue;
    bool compatible = true;
    for (size_t i = 0; i < d.slice.dims().size() && compatible; ++i) {
      const nd::SliceDim& a = d.slice.dims()[i];
      const nd::SliceDim& b = df.slice.dims()[i];
      if (a.kind != b.kind) compatible = false;
      if (a.kind == nd::SliceDim::Kind::kConst && a.value != b.value) {
        compatible = false;
      }
    }
    if (compatible) {
      matched = &d;
      matched_index = s;
      break;
    }
  }
  check_argument(matched != nullptr,
                 "fusion: no elementwise store of '" + up.name +
                     "' matches the fetch of '" + down.name + "'");

  ResolvedFusion fu;
  fu.upstream = up_id;
  fu.downstream = down_id;
  fu.upstream_store_decl = matched_index;
  fu.age_delta = matched->age.value - df.age.value;

  // Per-dimension variable correspondence: downstream var at dim i takes
  // the value of the upstream var at dim i.
  fu.coord_map.assign(down.index_vars.size(), SIZE_MAX);
  for (size_t i = 0; i < df.slice.dims().size(); ++i) {
    if (df.slice.dims()[i].kind == nd::SliceDim::Kind::kVar) {
      fu.coord_map[static_cast<size_t>(df.slice.dims()[i].var)] =
          static_cast<size_t>(matched->slice.dims()[i].var);
    }
  }
  for (size_t v = 0; v < fu.coord_map.size(); ++v) {
    check_argument(fu.coord_map[v] != SIZE_MAX,
                   "fusion: downstream index variable '" +
                       down.index_vars[v] + "' is not covered by the fused "
                       "fetch");
  }

  // The intermediate store can be elided when the fused downstream is the
  // field's only consumer (paper: "storing to m_data could be circumvented
  // in its entirety").
  const auto& consumers = program_.consumers_of(df.field);
  fu.elide = consumers.size() == 1 && consumers[0].kernel == down_id;

  fusions_.push_back(std::move(fu));
}

FieldStorage& Runtime::storage(FieldId field) {
  check_argument(field >= 0 &&
                     static_cast<size_t>(field) < storages_.size(),
                 "unknown field id");
  return *storages_[static_cast<size_t>(field)];
}

FieldStorage& Runtime::storage(std::string_view field_name) {
  const FieldId id = program_.find_field(field_name);
  check_argument(id != kInvalidField,
                 "unknown field '" + std::string(field_name) + "'");
  return storage(id);
}

InstrumentationReport Runtime::instrumentation() const {
  return instr_.snapshot(program_);
}

int64_t Runtime::certified_skips() const {
  return analyzer_ ? analyzer_->certified_skip_count() : 0;
}

void Runtime::complete_outstanding(int64_t n) {
  if (outstanding_.fetch_sub(n) == n && !options_.keep_alive) {
    begin_shutdown();
  }
}

int64_t Runtime::inject_store(FieldId field, Age age,
                              const nd::Region& region, KernelId producer,
                              size_t store_decl, bool whole,
                              const std::byte* payload, bool fill,
                              const TraceContext& ctx) {
  int64_t fresh;
  if (fill) {
    fresh = storage(field).store_fill(age, region, payload);
    // A pure duplicate (retransmitted forward, replayed store, checkpoint
    // already covered) changes nothing: the analyzer has seen this event.
    if (fresh == 0) return 0;
  } else {
    StoreOrigin origin;
    origin.kernel = producer != kInvalidKernel
                        ? program_.kernel(producer).name
                        : std::string("injected");
    origin.age = age;
    storage(field).store(age, region, payload, &origin);
    fresh = region.element_count();
  }
  StoreEvent event;
  event.field = field;
  event.age = age;
  event.region = region;
  event.producer = producer;
  event.store_decl = store_decl;
  event.whole = whole;
  event.ctx = ctx;
  push_event(std::move(event));
  return fresh;
}

int64_t Runtime::inject_store_view(FieldId field, Age age,
                                   const nd::Region& region,
                                   KernelId producer, size_t store_decl,
                                   bool whole, const nd::ConstView& view,
                                   bool* adopted, const TraceContext& ctx) {
  bool did_adopt = false;
  if (whole && view.is_contiguous() &&
      region == nd::Region::whole(view.extents())) {
    did_adopt = storage(field).adopt_whole(age, view);
  }
  if (!did_adopt) {
    StoreOrigin origin;
    origin.kernel = producer != kInvalidKernel
                        ? program_.kernel(producer).name
                        : std::string("injected");
    origin.age = age;
    if (view.is_contiguous()) {
      storage(field).store(age, region, view.raw(), &origin);
    } else {
      const nd::AnyBuffer packed = view.materialize();
      storage(field).store(age, region, packed.raw(), &origin);
    }
  }
  if (adopted != nullptr) *adopted = did_adopt;
  StoreEvent event;
  event.field = field;
  event.age = age;
  event.region = region;
  event.producer = producer;
  event.store_decl = store_decl;
  event.whole = whole;
  event.ctx = ctx;
  push_event(std::move(event));
  return region.element_count();
}

std::optional<std::string> Runtime::dump_flight() const {
  if (!flight_ || !options_.flight_dir) return std::nullopt;
  const std::string label =
      options_.trace_label.empty() ? "p2g" : options_.trace_label;
  const std::string path = *options_.flight_dir + "/flight_" + label +
                           ".json";
  if (!flight_->dump_file(path, label)) return std::nullopt;
  return path;
}

void Runtime::enable_kernel(const std::string& name) {
  const KernelId id = program_.find_kernel(name);
  check_argument(id != kInvalidKernel,
                 "enable_kernel: unknown kernel '" + name + "'");
  RescanEvent event;
  event.kernel = id;
  push_event(event);
}

void Runtime::submit(WorkItem item, bool already_counted) {
  if (!already_counted) add_outstanding(1);
  ready_.push(std::move(item));
}

void Runtime::submit_batch(std::vector<WorkItem> items) {
  if (items.empty()) return;
  add_outstanding(static_cast<int64_t>(items.size()));
  ready_.push_batch(std::move(items));
}

void Runtime::push_event(Event event) {
  add_outstanding(1);
  const size_t shard = analyzer_->shard_of(event);
  event_queues_[shard]->push(std::move(event));
}

void Runtime::push_shard_event(size_t shard, Event event) {
  // The outstanding unit is added before the sending shard releases its own
  // event's unit, so the quiescence count never undershoots.
  add_outstanding(1);
  if (!m_shard_xshard_.empty()) m_shard_xshard_[shard]->add(1);
  event_queues_[shard]->push(std::move(event));
}

void Runtime::adapt_granularity() {
  if (!options_.adaptive_chunking) return;
  constexpr int64_t kMaxChunk = 256;
  const InstrumentationReport report = instr_.snapshot(program_);
  for (const KernelDef& k : program_.kernels()) {
    KernelRunCfg& cfg = kcfg_[static_cast<size_t>(k.id)];
    const int64_t chunk = cfg.chunk.load(std::memory_order_relaxed);
    if (cfg.chunk_explicit || chunk >= kMaxChunk) continue;
    if (k.serial || k.is_source() || k.is_run_once()) continue;
    const KernelStats* stats = report.find(k.name);
    if (stats == nullptr || stats->dispatches < 64) continue;
    // Dispatch-bound kernels get coarser slices (Fig. 4, Age=2).
    if (stats->avg_dispatch_us() > stats->avg_kernel_us()) {
      const int64_t grown = std::min<int64_t>(chunk * 2, kMaxChunk);
      cfg.chunk.store(grown, std::memory_order_relaxed);
      P2G_DEBUGC("runtime") << "adaptive LLS: kernel '" << k.name
                            << "' chunk -> " << grown;
    }
  }
}

void Runtime::begin_shutdown() {
  {
    std::scoped_lock lock(done_mutex_);
    check::write(done_, "Runtime.done");
    done_ = true;
  }
  for (const auto& q : event_queues_) q->close();
  ready_.close();
  done_cv_.notify_all();
}

void Runtime::fail(std::exception_ptr error) {
  bool first_error = false;
  {
    std::scoped_lock lock(error_mutex_);
    check::write(error_, "Runtime.error");
    if (!error_) {
      error_ = std::move(error);
      first_error = true;
    }
  }
  // Fatal errors leave a postmortem: the first failure dumps the flight
  // recorder before shutdown tears the timeline down.
  if (first_error) dump_flight();
  begin_shutdown();
}

// GCC 12 falsely flags the moved-from variant inside the inlined
// MpscQueue::pop (-Wmaybe-uninitialized, PR 105562 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void Runtime::analyzer_loop(int shard) {
  // now_ns() only when somebody consumes the timestamps: two clock reads
  // per event were measurable overhead on event-dense runs.
  const bool timed = trace_ != nullptr || metrics_ != nullptr;
  MpscQueue<Event>& queue = *event_queues_[static_cast<size_t>(shard)];
  // Trace lane: shard 0 keeps the classic "analyzer" lane (-1); further
  // shards get lanes below the service threads (-2 net, -3 retry).
  const int lane = shard == 0 ? -1 : -10 - shard;
  obs::Counter* shard_events =
      m_shard_events_.empty() ? nullptr
                              : m_shard_events_[static_cast<size_t>(shard)];
  const int64_t cpu_start = thread_cpu_ns();

  if (!options_.analyzer_batch) {
    // Ablation baseline: one event per queue round trip.
    while (auto event = queue.pop()) {
      const int64_t start = timed ? now_ns() : 0;
      try {
        analyzer_->handle(static_cast<size_t>(shard), *event);
      } catch (...) {
        fail(std::current_exception());
      }
      if (timed) {
        const int64_t end = now_ns();
        if (trace_) {
          trace_->record(TraceCollector::Span{"analyze", start, end - start,
                                              lane, 0, 0,
                                              SpanKind::kAnalyzer, 0, 0, 0});
        }
        if (metrics_) {
          m_analyzer_ns_->record(end - start);
          m_events_->add(1);
          if (shard_events != nullptr) shard_events->add(1);
        }
      }
      complete_outstanding();
    }
  } else {
    // Batched: drain the whole backlog at once, handle it, then settle
    // accounting once. The outstanding units are released only after the
    // batch is fully handled — and any cross-shard messages it produced
    // added their units first — so the count never undershoots the real
    // amount of pending work (quiescence stays sound).
    std::deque<Event> batch;
    while (queue.pop_all(batch)) {
      const int64_t start = timed ? now_ns() : 0;
      const auto n = static_cast<int64_t>(batch.size());
      try {
        analyzer_->handle_batch(static_cast<size_t>(shard), batch);
      } catch (...) {
        fail(std::current_exception());
      }
      if (timed) {
        const int64_t end = now_ns();
        if (trace_) {
          trace_->record(TraceCollector::Span{"analyze", start, end - start,
                                              lane, 0, n,
                                              SpanKind::kAnalyzer, 0, 0, 0});
        }
        if (metrics_) {
          m_analyzer_ns_->record(end - start);
          m_events_->add(n);
          if (shard_events != nullptr) shard_events->add(n);
        }
      }
      complete_outstanding(n);
    }
  }

  analyzer_cpu_ns_[static_cast<size_t>(shard)] = thread_cpu_ns() - cpu_start;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

void Runtime::worker_loop(int worker_index) {
  int64_t wait_start = metrics_ ? now_ns() : 0;
  std::optional<WorkItem> bonus;
  while (auto item = ready_.pop(bonus)) {
    // The queue hands over a second item when no other worker is waiting;
    // run both before going back to the lock.
    while (item) {
      int64_t busy_start = 0;
      if (metrics_) {
        busy_start = now_ns();
        m_idle_ns_->add(busy_start - wait_start);
      }
      try {
        execute(*item, worker_index);
      } catch (...) {
        fail(std::current_exception());
        complete_outstanding();  // the failed instance's unit
      }
      if (metrics_) {
        wait_start = now_ns();
        m_busy_ns_->add(wait_start - busy_start);
      }
      item = std::move(bonus);
      bonus.reset();
    }
  }
}

void Runtime::prepare_fetches(KernelContext& ctx) {
  const KernelDef& def = ctx.def();
  for (size_t i = 0; i < def.fetches.size(); ++i) {
    const FetchDecl& f = def.fetches[i];
    const Age ga = f.age.resolve(ctx.age());
    check_internal(ga >= 0, "dispatched instance with negative fetch age");
    FieldStorage& fs = storage(f.field);
    if (f.slice.is_whole()) {
      // Whole fetches only dispatch once the age is complete (hence
      // sealed), so the view path always hits: zero-copy.
      if (auto view = fs.try_fetch_view_whole(ga)) {
        ctx.set_fetch(i, std::move(*view));
      } else {
        ctx.set_fetch(i, fs.fetch_whole(ga));
      }
    } else {
      const nd::Region region = f.slice.resolve(ctx.indices(),
                                                fs.extents(ga));
      // Elementwise fetches can be satisfied before the age seals (the
      // buffer may still be reallocated by implicit resizing) — copy then.
      if (auto view = fs.try_fetch_view(ga, region)) {
        ctx.set_fetch(i, std::move(*view));
      } else {
        ctx.set_fetch(i, fs.fetch(ga, region));
      }
    }
  }
}

void Runtime::commit_stores(KernelContext& ctx, const ResolvedFusion* fusion,
                            std::vector<StoreEvent>& events,
                            TraceContext* span_ctx) {
  const KernelDef& def = ctx.def();
  for (const KernelContext::PendingStore& p : ctx.pending_stores()) {
    if (fusion != nullptr && p.decl == fusion->upstream_store_decl &&
        fusion->elide) {
      continue;  // intermediate field circumvented entirely
    }
    const StoreDecl& d = def.stores[p.decl];
    const FieldDecl& fd = program_.field(d.field);
    check_argument(p.data.type() == fd.type,
                   "kernel '" + def.name + "' stored " +
                       std::string(nd::to_string(p.data.type())) +
                       " into field '" + fd.name + "' of type " +
                       std::string(nd::to_string(fd.type)));
    const Age ga = d.age.resolve(ctx.age());
    check_argument(ga >= 0, "kernel '" + def.name +
                                "' stored to a negative age");
    FieldStorage& fs = storage(d.field);
    StoreOrigin origin;
    origin.kernel = def.name;
    origin.age = ctx.age();
    origin.indices = ctx.indices();

    StoreEvent event;
    event.field = d.field;
    event.age = ga;
    event.producer = def.id;
    event.store_decl = p.decl;

    if (d.slice.is_whole()) {
      check_argument(p.data.extents().rank() == fd.rank,
                     "kernel '" + def.name + "' whole-store rank mismatch "
                     "on field '" + fd.name + "'");
      if (options_.idempotent_stores) {
        fs.store_fill(ga, nd::Region::whole(p.data.extents()), p.data.raw());
      } else {
        fs.store_whole(ga, p.data, &origin);
      }
      event.region = nd::Region::whole(p.data.extents());
      event.whole = true;
    } else {
      // Resolve the target region: index variables and constants from the
      // declaration, all() dimensions from the payload's shape.
      const auto& dims = d.slice.dims();
      const size_t all_count = static_cast<size_t>(
          std::count_if(dims.begin(), dims.end(), [](const nd::SliceDim& sd) {
            return sd.kind == nd::SliceDim::Kind::kAll;
          }));
      const bool payload_is_field_shaped =
          p.data.extents().rank() == dims.size();
      check_argument(
          all_count == 0 || payload_is_field_shaped ||
              p.data.extents().rank() == all_count,
          "kernel '" + def.name + "': payload rank does not determine the "
          "all() dimensions of the store to '" + fd.name + "'");

      std::vector<nd::Interval> intervals(dims.size());
      size_t next_all = 0;
      for (size_t i = 0; i < dims.size(); ++i) {
        switch (dims[i].kind) {
          case nd::SliceDim::Kind::kVar: {
            const int64_t v =
                ctx.indices()[static_cast<size_t>(dims[i].var)];
            intervals[i] = nd::Interval{v, v + 1};
            break;
          }
          case nd::SliceDim::Kind::kConst:
            intervals[i] = nd::Interval{dims[i].value, dims[i].value + 1};
            break;
          case nd::SliceDim::Kind::kAll: {
            const int64_t len =
                payload_is_field_shaped
                    ? p.data.extents().dim(i)
                    : p.data.extents().dim(next_all++);
            intervals[i] = nd::Interval{0, len};
            break;
          }
        }
      }
      nd::Region region(std::move(intervals));
      check_argument(region.element_count() == p.data.element_count(),
                     "kernel '" + def.name + "': payload holds " +
                         std::to_string(p.data.element_count()) +
                         " elements but the store region " +
                         region.to_string() + " needs " +
                         std::to_string(region.element_count()));
      if (options_.idempotent_stores) {
        fs.store_fill(ga, region, p.data.raw());
      } else {
        fs.store(ga, region, p.data.raw(), &origin);
      }
      event.region = std::move(region);
    }
    if (span_ctx != nullptr && span_ctx->span_id != 0) {
      // A root span (source kernel, no inherited frame) starts a new
      // frame: its first store names the (field, age) the chain is about.
      if (span_ctx->trace_id == 0) {
        span_ctx->trace_id = frame_trace_id(event.field, event.age);
      }
      event.ctx = *span_ctx;
    }
    if (options_.store_tap) options_.store_tap(event);
    if (m_store_bytes_ != nullptr) {
      m_store_bytes_->add(p.data.element_count() *
                          static_cast<int64_t>(
                              nd::element_size(p.data.type())));
    }
    events.push_back(std::move(event));
  }
}

void Runtime::push_store_events(std::vector<StoreEvent> events,
                                int worker_index) {
  size_t i = 0;
  while (i < events.size()) {
    const size_t batch_start = i;
    StoreEvent merged = std::move(events[i]);
    if (!merged.whole) {
      nd::Region box = merged.region;
      int64_t covered = box.element_count();
      size_t j = i + 1;
      while (j < events.size()) {
        const StoreEvent& next = events[j];
        if (next.whole || next.field != merged.field ||
            next.age != merged.age || next.producer != merged.producer ||
            next.store_decl != merged.store_decl) {
          break;
        }
        const nd::Region candidate = box.bounding_union(next.region);
        const int64_t grown = covered + next.region.element_count();
        if (candidate.element_count() != grown) break;  // not a clean tile
        box = candidate;
        covered = grown;
        ++j;
      }
      merged.region = std::move(box);
      i = j;
    } else {
      ++i;
    }
    if (m_store_batch_ != nullptr) {
      // Coalesced store events per analyzer batch — how much chunking
      // relieves the serial analyzer.
      m_store_batch_->record(static_cast<int64_t>(i - batch_start));
    }
    if (trace_ && merged.ctx.valid()) {
      // Flow start: the arrow's tail, inside the producing span (the span
      // is recorded after this returns, covering this timestamp). The
      // consumer emits the matching finish with the same derived id.
      trace_->record_flow_start(merged.ctx, now_ns(), worker_index);
    }
    push_event(std::move(merged));
  }
}

void Runtime::run_fused_downstream(const KernelContext& up_ctx,
                                   const ResolvedFusion& fusion,
                                   std::vector<StoreEvent>& events,
                                   TraceContext* span_ctx) {
  const KernelContext::PendingStore* feed =
      up_ctx.pending_store(fusion.upstream_store_decl);
  if (feed == nullptr) return;  // upstream took an alternate path

  const KernelDef& down = program_.kernel(fusion.downstream);
  nd::Coord coord(fusion.coord_map.size());
  for (size_t v = 0; v < fusion.coord_map.size(); ++v) {
    coord[v] = up_ctx.indices()[fusion.coord_map[v]];
  }
  const Age age = up_ctx.age() + fusion.age_delta;

  int64_t dispatch_ns = 0;
  int64_t kernel_ns = 0;
  KernelContext ctx(down, age, std::move(coord), &timers_);
  {
    ScopedTimerNs t(dispatch_ns);
    // Handed over in memory, no field access and no copy: the pending
    // store outlives the fused body's context.
    ctx.set_fetch(0, nd::ConstView(feed->data.type(), feed->data.extents(),
                                   feed->data.raw(), nullptr));
  }
  {
    ScopedTimerNs t(kernel_ns);
    down.body(ctx);
  }
  {
    ScopedTimerNs t(dispatch_ns);
    // The fused body runs inside the upstream's span; its stores carry
    // the same span identity.
    commit_stores(ctx, kcfg_[static_cast<size_t>(down.id)].fusion, events,
                  span_ctx);
  }
  instr_.record(down.id, dispatch_ns, 1, kernel_ns);
}

void Runtime::execute(const WorkItem& item, int worker_index) {
  const bool tracing = trace_ != nullptr || flight_ != nullptr;
  const int64_t trace_start = tracing ? now_ns() : 0;
  const KernelDef& def = program_.kernel(item.kernel);
  const ResolvedFusion* fusion = kcfg_[static_cast<size_t>(def.id)].fusion;

  // This span's causal identity: frame inherited from the triggering
  // store (zero for roots until the first store names one), fresh span id.
  TraceContext span_ctx;
  if (tracing) {
    span_ctx.trace_id = item.cause.trace_id;
    span_ctx.span_id = next_span_id();
    if (trace_ && item.cause.valid()) {
      // Flow finish: the arrow's head, at the top of this span.
      trace_->record_flow_finish(item.cause, trace_start, worker_index);
    }
  }

  int64_t dispatch_ns = 0;
  int64_t kernel_ns = 0;
  int64_t bodies = 0;
  bool continue_flag = false;
  std::vector<StoreEvent> events;

  for (const nd::Coord& coord : item.coords) {
    KernelContext ctx(def, item.age, coord, &timers_);
    {
      ScopedTimerNs t(dispatch_ns);
      prepare_fetches(ctx);
    }
    {
      ScopedTimerNs t(kernel_ns);
      def.body(ctx);
    }
    ++bodies;
    {
      ScopedTimerNs t(dispatch_ns);
      commit_stores(ctx, fusion, events, tracing ? &span_ctx : nullptr);
    }
    if (fusion != nullptr) {
      run_fused_downstream(ctx, *fusion, events,
                           tracing ? &span_ctx : nullptr);
    }
    if (ctx.continue_requested()) continue_flag = true;
  }

  {
    ScopedTimerNs t(dispatch_ns);
    push_store_events(std::move(events), worker_index);
  }
  instr_.record(def.id, dispatch_ns, bodies, kernel_ns);
  if (metrics_) {
    m_dispatch_ns_->record(dispatch_ns);
    m_kernel_ns_->record(kernel_ns);
  }
  if (tracing) {
    const int64_t duration = now_ns() - trace_start;
    if (trace_) {
      trace_->record(TraceCollector::Span{
          def.name, trace_start, duration, worker_index, item.age, bodies,
          SpanKind::kWorker, span_ctx.trace_id, span_ctx.span_id,
          item.cause.span_id});
    }
    if (flight_) {
      flight_->record(def.name, SpanKind::kWorker, trace_start, duration,
                      worker_index, item.cause, span_ctx.span_id, item.age);
    }
  }

  if (needs_done_event(def)) {
    InstanceDoneEvent done;
    done.kernel = def.id;
    done.age = item.age;
    done.continue_next_age = continue_flag;
    push_event(done);
  }
  complete_outstanding();
}

RunReport Runtime::run() {
  check_argument(!started_, "Runtime::run() may only be called once");
  started_ = true;

  Stopwatch stopwatch;
  analyzer_->bootstrap();

  RunReport report;
  if (outstanding_.load() == 0 && !options_.keep_alive) {
    // Nothing to run (no run-once or source kernels).
    report.wall_s = stopwatch.elapsed_s();
    report.instrumentation = instrumentation();
    report.metrics = metrics_snapshot();
    return report;
  }

  int workers = options_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 2;
  }

  if (metrics_) start_sampler();
  const size_t nshards = analyzer_->shard_count();
  std::vector<std::thread> analyzer_threads;
  analyzer_threads.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    analyzer_threads.emplace_back(
        [this, i] { analyzer_loop(static_cast<int>(i)); });
  }
  std::vector<std::thread> worker_threads;
  worker_threads.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_threads.emplace_back([this, i] { worker_loop(i); });
  }

  {
    std::unique_lock lock(done_mutex_);
    if (options_.watchdog) {
      if (!done_cv_.wait_for(lock, *options_.watchdog,
                             [&] { return done_; })) {
        report.timed_out = true;
        P2G_WARNC("runtime") << "watchdog expired; aborting run";
      }
    } else {
      done_cv_.wait(lock, [&] { return done_; });
    }
  }
  if (report.timed_out) begin_shutdown();

  for (std::thread& t : analyzer_threads) t.join();
  for (std::thread& t : worker_threads) t.join();

  // Flush all telemetry *before* propagating a worker error or returning
  // the watchdog-timeout report: failed and hung runs are exactly the
  // ones whose trace/metrics matter most.
  finalize_metrics();
  report.wall_s = stopwatch.elapsed_s();
  report.instrumentation = instrumentation();
  report.metrics = metrics_snapshot();

  std::exception_ptr error;
  {
    std::scoped_lock lock(error_mutex_);
    error = error_;
  }

  if (trace_ && options_.trace_path) {
    if (error) {
      // Best effort: an I/O failure must not mask the run's real error.
      try {
        trace_->write_file(*options_.trace_path);
      } catch (const std::exception& e) {
        P2G_WARNC("runtime") << "failed to write trace after run error: "
                             << e.what();
      }
    } else {
      trace_->write_file(*options_.trace_path);
    }
  }

  if (error) std::rethrow_exception(error);
  return report;
}

}  // namespace p2g
