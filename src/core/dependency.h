// The dependency analyzer (paper §VI-B), sharded.
//
// Dependency tracking is partitioned across N analyzer shards, each running
// in its own thread and owning a disjoint set of fields (field % N) — and
// therefore those fields' seal bookkeeping — plus a disjoint set of kernels
// (the shard of a kernel's first fetched field), and therefore those
// kernels' candidate enumeration, dispatched-set dedup, serial gating and
// chunk buffers. Events are routed by FieldId / KernelId into per-shard
// lock-free MPSC queues (common/mpsc_queue.h); cross-shard effects — a seal
// that unblocks another shard's kernel, an extent-propagation cascade
// reaching another shard's field — travel as explicit SealCheckEvent /
// ScanConsumersEvent messages instead of shared locks. Ready WorkItems flow
// into the ReadyQueue from every shard concurrently through the existing
// push_batch path. With RunOptions::analyzer_shards = 1 (the default) this
// is exactly the single-analyzer-thread design the paper describes.
//
// Sealing: an age of a field is *sealed* when every producer's contribution
// is known — a whole-field store arrives, or an elementwise producer's
// index domain becomes known (which in turn requires the extents of the
// fields binding its index variables to be sealed). Sealing is what makes
// "all elements written" (completeness) meaningful for whole-field fetches
// and what the paper calls implicit-resize extent propagation.
//
// Why the sharded fixpoint dispatches the same instance set: dispatch
// conditions are monotone (write-once data only accumulates, seals are
// final), each kernel is enumerated by exactly one shard (so the
// exactly-once check is single-threaded per kernel), and every state
// change is announced to every shard owning an interested kernel. At
// quiescence the dispatched set is the least fixpoint of the same monotone
// conditions a single analyzer evaluates — identical for any shard count.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/events.h"
#include "core/kernel.h"
#include "core/ready_queue.h"
#include "core/runtime.h"

namespace p2g {

class DependencyAnalyzer {
 public:
  /// `shards` is clamped to [1, 64].
  DependencyAnalyzer(Runtime& runtime, int shards);

  /// Creates the initial instances: run-once kernels without fetches and
  /// the first age of every source kernel. Single-threaded (pre-run).
  void bootstrap();

  size_t shard_count() const { return shards_.size(); }

  /// The shard whose state `event` touches (queue routing). Cross-shard
  /// messages are addressed explicitly by their sender and never take this
  /// path.
  size_t shard_of(const Event& event) const;

  /// Processes one event (called from shard `shard`'s thread only).
  void handle(size_t shard, const Event& event);

  /// Processes a drained event backlog in order, flushing chunk buffers and
  /// revisiting granularity once per batch instead of once per event. Same
  /// observable semantics as calling handle() per event — instances only
  /// dispatch marginally later, which chunking exploits: a batch often
  /// fills a chunk that single events would have split.
  void handle_batch(size_t shard, const std::deque<Event>& events);

  /// Instances dispatched so far, summed over shards (tests/diagnostics;
  /// exact only at quiescence).
  int64_t dispatched_count() const;

  /// Per-candidate dependence checks skipped via independence certificates
  /// (Program::certify + RunOptions::use_certificates).
  int64_t certified_skip_count() const;

  /// Cross-shard messages sent (0 with one shard).
  int64_t cross_shard_messages() const;

  /// Analyzer-state footprint, summed over shards. Streaming runs retire
  /// seal bookkeeping on seal and dispatched-coord sets once an age closes,
  /// so these stay bounded by the in-flight age window instead of growing
  /// with the run length. Quiescent use only (tests).
  struct MemoryStats {
    size_t fa_states = 0;      ///< unsealed (field, age) seal entries
    size_t open_ages = 0;      ///< (kernel, age) dispatch sets still open
    size_t open_coords = 0;    ///< coords held by open dispatch sets
    size_t retry_entries = 0;  ///< blocked (kernel, age) retry registrations
  };
  MemoryStats memory_stats() const;

  /// The first age at which each kernel can ever run, derived by fixpoint
  /// over the static graph (a kernel fetching f(a-1) cannot run before
  /// age 1; consumers of its output inherit the bound transitively).
  /// kInfeasible marks kernels that can never run. Serial gating starts at
  /// this age instead of 0, so structurally skipped leading ages do not
  /// park the kernel forever.
  static constexpr Age kInfeasible = std::numeric_limits<Age>::max() / 2;
  static std::vector<Age> first_feasible_ages(const Program& program);

 private:
  struct ProducerKey {
    KernelId kernel;
    size_t decl;
    auto operator<=>(const ProducerKey&) const = default;
  };

  /// Seal bookkeeping of one unsealed (field, age). The sealed bit itself
  /// lives in FieldStorage (the authoritative, thread-safe source); entries
  /// here are erased the moment the age seals, so long runs do not
  /// accumulate per-age state for completed work.
  struct FieldAgeState {
    /// Contribution extents of producers accounted for so far.
    std::map<ProducerKey, nd::Extents> satisfied;
    /// First-store witness lengths for `all()` dimensions of elementwise
    /// store statements (-1 = dimension not an all() dim).
    std::map<ProducerKey, std::vector<int64_t>> witnesses;
  };

  struct SerialState {
    Age next = 0;
    bool in_flight = false;
    std::map<Age, WorkItem> parked;
  };

  struct CoordHash {
    size_t operator()(const nd::Coord& c) const {
      size_t h = c.size();
      for (const int64_t v : c) {
        h ^= std::hash<int64_t>{}(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  /// Dispatched coords of one open (kernel, age). `total` is the final
  /// candidate-space size, set once every binding field extent is sealed
  /// (-1 until then); when `coords` reaches it the age closes and the set
  /// is dropped.
  struct AgeDispatch {
    std::unordered_set<nd::Coord, CoordHash> coords;
    int64_t total = -1;
  };

  /// Exactly-once dispatch bookkeeping of one kernel (touched only by the
  /// kernel's owner shard). A *closed* age had every instance dispatched
  /// (or can never dispatch again: completed source ages); membership
  /// checks treat closed ages as fully dispatched, which is what lets the
  /// per-coord sets retire. `closed_below` starts at the kernel's first
  /// feasible age so structurally skipped leading ages cannot wedge the
  /// watermark.
  struct KernelDispatch {
    Age closed_below = 0;
    std::set<Age> closed_sparse;
    std::map<Age, AgeDispatch> open;
  };

  /// Instances buffered for chunked dispatch, with the causal context of
  /// the first store event that made one of them runnable (the chunk's
  /// WorkItem inherits it).
  struct ChunkBuffer {
    std::vector<nd::Coord> coords;
    TraceContext cause;
  };

  /// All mutable per-shard state. Each instance is touched only by its own
  /// shard thread (single-threaded before run() starts).
  struct Shard {
    size_t index = 0;
    /// Unsealed (field, age) entries of fields this shard owns.
    std::map<std::pair<FieldId, Age>, FieldAgeState> fa_states;
    std::deque<std::pair<FieldId, Age>> seal_worklist;
    /// Blocked candidates, indexed by the exact (field, age) whose change
    /// can unblock them: (consumer kernel, instance age) entries fire only
    /// when an event touches that field age, replacing the old whole-
    /// kernel-age-set rescan.
    std::map<std::pair<FieldId, Age>, std::set<std::pair<KernelId, Age>>>
        retry;
    std::map<std::pair<KernelId, Age>, ChunkBuffer> chunk_buffers;
    /// Context of the store event currently being handled; stamps instances
    /// it (transitively) makes runnable.
    TraceContext current_cause;
    int64_t events_handled = 0;
    int64_t certified_skips = 0;
    int64_t dispatched_total = 0;
    int64_t xshard_sent = 0;
  };

  /// Event dispatch without the per-call flush/adapt epilogue.
  void handle_one(Shard& s, const Event& event);

  void handle_store(Shard& s, const StoreEvent& event);
  void handle_done(Shard& s, const InstanceDoneEvent& event);
  void handle_rescan(Shard& s, const RescanEvent& event);
  void handle_scan(Shard& s, const ScanConsumersEvent& event);

  /// Attempts to seal (field, age); queues cascaded checks on success.
  /// Only ever called on the field's owner shard.
  void check_seal(Shard& s, FieldId field, Age age);
  void drain_seal_worklist(Shard& s);
  void on_sealed(Shard& s, FieldId field, Age age);

  /// Announces a (field, age) change: scans this shard's consumers and
  /// sends ScanConsumersEvents to every other shard owning one. Called on
  /// the field's owner shard (stores and seals land there).
  void announce_scan(Shard& s, FieldId field, Age age,
                     const nd::Region* written);

  /// Enumerates candidate instances of the consumers of (field, age) that
  /// this shard owns, either constrained by a freshly written region or
  /// unconstrained, then fires retry registrations keyed on (field, age).
  void scan_local(Shard& s, FieldId field, Age age,
                  const nd::Region* written);
  void fire_retries(Shard& s, FieldId field, Age age);

  /// Enumerates candidates of one kernel at one age. When `constrain_fetch`
  /// is set, variable ranges are narrowed by the written region through
  /// that fetch's slice. The kernel must be owned by `s`.
  void try_enumerate(Shard& s, const KernelDef& def, Age age,
                     std::optional<size_t> constrain_fetch,
                     const nd::Region* written);

  /// All fetch dependencies of a candidate instance are fulfilled.
  /// `skip_fetch` marks one fetch as certificate-satisfied: the caller
  /// proved (via an independence certificate plus a just-committed region
  /// constraining the candidate) that its data is fully written, so its
  /// fine-grained region check is skipped. On failure `*blocking_fetch`
  /// (when non-null) names the first unsatisfied fetch, for precise retry
  /// registration.
  bool satisfied(Shard& s, const KernelDef& def, Age age,
                 const nd::Coord& coord,
                 std::optional<size_t> skip_fetch = std::nullopt,
                 size_t* blocking_fetch = nullptr);

  /// Registers (def, age) for retry when the field age behind `fetch_index`
  /// next changes.
  void register_retry(Shard& s, const KernelDef& def, Age age,
                      size_t fetch_index);

  /// True when (consumer kernel, fetch) carries an independence
  /// certificate and RunOptions::use_certificates is on.
  bool certified(KernelId kernel, size_t fetch) const {
    const auto& flags = certified_[static_cast<size_t>(kernel)];
    return fetch < flags.size() && flags[fetch] != 0;
  }

  // --- exactly-once dispatch bookkeeping ------------------------------------
  bool age_closed(const KernelDispatch& kd, Age age) const {
    return age < kd.closed_below || kd.closed_sparse.count(age) != 0;
  }
  bool is_dispatched(KernelId kernel, Age age, const nd::Coord& coord) const;
  /// Marks (kernel, age, coord) dispatched; false when it already was (or
  /// the age is closed). Auto-closes the age when `total` is reached.
  bool mark_dispatched(Shard& s, KernelId kernel, Age age, nd::Coord coord);
  /// Retires an age's coord set: every instance is known dispatched (or
  /// can never dispatch again). Cascades to a fused downstream twin, whose
  /// coords are exactly the mapped upstream coords.
  void close_age(Shard& s, KernelId kernel, Age age);

  /// Marks dispatched (including a fused downstream twin) and buffers the
  /// instance for chunked dispatch.
  void create_instance(Shard& s, const KernelDef& def, Age age,
                       nd::Coord coord);

  /// Flushes chunk buffers into work items (serial kernels are gated).
  void flush_chunks(Shard& s);
  void submit_or_park(Shard& s, WorkItem item);

  /// Index-variable domain lengths of a kernel at an age, or nullopt while
  /// some binding field extent is not sealed yet.
  std::optional<std::vector<int64_t>> domain_of(const KernelDef& def,
                                                Age age) const;

  /// Sends a cross-shard message. The unit of outstanding work is added
  /// before this shard's own event unit is released, so the quiescence
  /// count never undershoots.
  void send_shard(Shard& s, size_t target, Event event);

  FieldStorage& storage(FieldId field) const {
    return *runtime_.storages_[static_cast<size_t>(field)];
  }

  size_t field_shard(FieldId field) const {
    return field_shard_[static_cast<size_t>(field)];
  }
  size_t kernel_shard(KernelId kernel) const {
    return kernel_shard_[static_cast<size_t>(kernel)];
  }

  Runtime& runtime_;
  const Program& program_;

  std::vector<Shard> shards_;
  // --- ownership maps, computed once, read-only afterwards ------------------
  std::vector<size_t> field_shard_;
  std::vector<size_t> kernel_shard_;
  /// Per field: bitmask of shards owning at least one consumer kernel.
  std::vector<uint64_t> field_consumer_shards_;
  std::vector<Age> first_feasible_;

  // --- per-kernel state, touched only by the kernel's owner shard -----------
  std::vector<KernelDispatch> dispatch_;
  std::vector<SerialState> serial_;

  /// Per-kernel per-fetch certificate bitmap, resolved once from
  /// Program::certificates() (empty vectors when certificates are off).
  std::vector<std::vector<char>> certified_;
};

}  // namespace p2g
