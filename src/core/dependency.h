// The dependency analyzer (paper §VI-B).
//
// Runs in a dedicated thread. Consumes store / instance-done events, tracks
// per-(field, age) seal state (extent finality), propagates extents through
// the implicit static dependency graph, enumerates newly runnable kernel
// instances and dispatches each exactly once.
//
// Sealing: an age of a field is *sealed* when every producer's contribution
// is known — a whole-field store arrives, or an elementwise producer's
// index domain becomes known (which in turn requires the extents of the
// fields binding its index variables to be sealed). Sealing is what makes
// "all elements written" (completeness) meaningful for whole-field fetches
// and what the paper calls implicit-resize extent propagation.
#pragma once

#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/events.h"
#include "core/kernel.h"
#include "core/ready_queue.h"
#include "core/runtime.h"

namespace p2g {

class DependencyAnalyzer {
 public:
  explicit DependencyAnalyzer(Runtime& runtime);

  /// Creates the initial instances: run-once kernels without fetches and
  /// the first age of every source kernel.
  void bootstrap();

  /// Processes one event (called from the analyzer thread only).
  void handle(const Event& event);

  /// Processes a drained event backlog in order, flushing chunk buffers and
  /// revisiting granularity once per batch instead of once per event. Same
  /// observable semantics as calling handle() per event — instances only
  /// dispatch marginally later, which chunking exploits: a batch often
  /// fills a chunk that single events would have split.
  void handle_batch(const std::deque<Event>& events);

  /// Number of instances dispatched so far (tests/diagnostics).
  int64_t dispatched_count() const {
    return static_cast<int64_t>(dispatched_.size());
  }

  /// Per-candidate dependence checks skipped via independence certificates
  /// (Program::certify + RunOptions::use_certificates).
  int64_t certified_skip_count() const { return certified_skips_; }

  /// The first age at which each kernel can ever run, derived by fixpoint
  /// over the static graph (a kernel fetching f(a-1) cannot run before
  /// age 1; consumers of its output inherit the bound transitively).
  /// kInfeasible marks kernels that can never run. Serial gating starts at
  /// this age instead of 0, so structurally skipped leading ages do not
  /// park the kernel forever.
  static constexpr Age kInfeasible = std::numeric_limits<Age>::max() / 2;
  static std::vector<Age> first_feasible_ages(const Program& program);

 private:
  struct ProducerKey {
    KernelId kernel;
    size_t decl;
    auto operator<=>(const ProducerKey&) const = default;
  };

  /// Seal bookkeeping of one (field, age).
  struct FieldAgeState {
    bool sealed = false;
    /// Contribution extents of producers accounted for so far.
    std::map<ProducerKey, nd::Extents> satisfied;
    /// First-store witness lengths for `all()` dimensions of elementwise
    /// store statements (-1 = dimension not an all() dim).
    std::map<ProducerKey, std::vector<int64_t>> witnesses;
  };

  struct SerialState {
    Age next = 0;
    bool in_flight = false;
    std::map<Age, WorkItem> parked;
  };

  /// Event dispatch without the per-call flush/adapt epilogue.
  void handle_one(const Event& event);

  void handle_store(const StoreEvent& event);
  void handle_done(const InstanceDoneEvent& event);
  void handle_rescan(const RescanEvent& event);

  /// Attempts to seal (field, age); queues cascaded checks on success.
  void check_seal(FieldId field, Age age);
  void drain_seal_worklist();
  void on_sealed(FieldId field, Age age);

  /// Enumerates candidate instances of consumers of (field, age), either
  /// constrained by a freshly written region or unconstrained.
  void scan_consumers(FieldId field, Age age, const nd::Region* written);

  /// Enumerates candidates of one kernel at one age. When `constrain_fetch`
  /// is set, variable ranges are narrowed by the written region through
  /// that fetch's slice.
  void try_enumerate(const KernelDef& def, Age age,
                     std::optional<size_t> constrain_fetch,
                     const nd::Region* written);

  /// All fetch dependencies of a candidate instance are fulfilled.
  /// `skip_fetch` marks one fetch as certificate-satisfied: the caller
  /// proved (via an independence certificate plus a just-committed region
  /// constraining the candidate) that its data is fully written, so its
  /// fine-grained region check is skipped.
  bool satisfied(const KernelDef& def, Age age, const nd::Coord& coord,
                 std::optional<size_t> skip_fetch = std::nullopt) const;

  /// True when (consumer kernel, fetch) carries an independence
  /// certificate and RunOptions::use_certificates is on.
  bool certified(KernelId kernel, size_t fetch) const {
    const auto& flags = certified_[static_cast<size_t>(kernel)];
    return fetch < flags.size() && flags[fetch] != 0;
  }

  /// Marks dispatched (including a fused downstream twin) and buffers the
  /// instance for chunked dispatch.
  void create_instance(const KernelDef& def, Age age, nd::Coord coord);

  /// Flushes chunk buffers into work items (serial kernels are gated).
  void flush_chunks();
  void submit_or_park(WorkItem item);

  /// Index-variable domain lengths of a kernel at an age, or nullopt while
  /// some binding field extent is not sealed yet.
  std::optional<std::vector<int64_t>> domain_of(const KernelDef& def,
                                                Age age) const;

  FieldStorage& storage(FieldId field) const {
    return *runtime_.storages_[static_cast<size_t>(field)];
  }

  /// Instances buffered for chunked dispatch, with the causal context of
  /// the first store event that made one of them runnable (the chunk's
  /// WorkItem inherits it).
  struct ChunkBuffer {
    std::vector<nd::Coord> coords;
    TraceContext cause;
  };

  Runtime& runtime_;
  const Program& program_;

  std::map<std::pair<FieldId, Age>, FieldAgeState> fa_states_;
  std::unordered_set<InstanceKey, InstanceKeyHash> dispatched_;
  std::map<KernelId, SerialState> serial_;
  /// Ages at which a kernel had unsatisfied (or non-enumerable) candidates;
  /// retried whenever an event touches any field the kernel fetches.
  std::map<KernelId, std::set<Age>> retry_;
  std::deque<std::pair<FieldId, Age>> seal_worklist_;
  std::map<std::pair<KernelId, Age>, ChunkBuffer> chunk_buffers_;
  /// Context of the store event currently being handled; stamps instances
  /// it (transitively) makes runnable. Analyzer thread only.
  TraceContext current_cause_;
  int64_t events_handled_ = 0;
  /// Per-kernel per-fetch certificate bitmap, resolved once from
  /// Program::certificates() (empty vectors when certificates are off).
  std::vector<std::vector<char>> certified_;
  /// Mutable: bumped from the const satisfied() hot path (analyzer thread
  /// only; read after the run via certified_skip_count()).
  mutable int64_t certified_skips_ = 0;
};

}  // namespace p2g
