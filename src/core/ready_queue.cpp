#include "core/ready_queue.h"

namespace p2g {

void ReadyQueue::push(WorkItem item) {
  {
    std::scoped_lock lock(mutex_);
    item.seq = next_seq_++;
    items_.push(std::move(item));
  }
  cv_.notify_one();
}

std::optional<WorkItem> ReadyQueue::pop() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return std::nullopt;
  WorkItem item = items_.top();
  items_.pop();
  return item;
}

void ReadyQueue::close() {
  {
    std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t ReadyQueue::size() const {
  std::scoped_lock lock(mutex_);
  return items_.size();
}

}  // namespace p2g
