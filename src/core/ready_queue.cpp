#include "core/ready_queue.h"

namespace p2g {

void ReadyQueue::push(WorkItem item) {
  bool wake = false;
  {
    std::scoped_lock lock(mutex_);
    check::write(next_seq_, "ReadyQueue.items");
    item.seq = next_seq_++;
    items_.push(std::move(item));
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_one();
}

void ReadyQueue::push_batch(std::vector<WorkItem> items) {
  if (items.empty()) return;
  bool wake = false;
  {
    std::scoped_lock lock(mutex_);
    check::write(next_seq_, "ReadyQueue.items");
    for (WorkItem& item : items) {
      item.seq = next_seq_++;
      items_.push(std::move(item));
    }
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_one();
}

WorkItem ReadyQueue::take_top() {
  check::write(next_seq_, "ReadyQueue.items");
  WorkItem item = std::move(const_cast<WorkItem&>(items_.top()));
  items_.pop();
  return item;
}

std::optional<WorkItem> ReadyQueue::pop() {
  std::unique_lock lock(mutex_);
  ++waiters_;
  cv_.wait(lock, [&] { return !items_.empty() || closed_; });
  --waiters_;
  check::read(closed_, "ReadyQueue.closed");
  if (items_.empty()) return std::nullopt;
  WorkItem item = take_top();
  // More work and somebody is parked: pass the wakeup along so the chain
  // keeps draining even though push only ever notifies one worker.
  const bool handoff = !items_.empty() && waiters_ > 0;
  lock.unlock();
  if (handoff) cv_.notify_one();
  return item;
}

std::optional<WorkItem> ReadyQueue::pop(std::optional<WorkItem>& bonus) {
  bonus.reset();
  std::unique_lock lock(mutex_);
  ++waiters_;
  cv_.wait(lock, [&] { return !items_.empty() || closed_; });
  --waiters_;
  check::read(closed_, "ReadyQueue.closed");
  if (items_.empty()) return std::nullopt;
  WorkItem item = take_top();
  if (!items_.empty() && waiters_ == 0) {
    // Nobody else wants work right now: take a second unit and save this
    // worker its next lock round trip.
    bonus = take_top();
  }
  const bool handoff = !items_.empty() && waiters_ > 0;
  lock.unlock();
  if (handoff) cv_.notify_one();
  return item;
}

void ReadyQueue::close() {
  {
    std::scoped_lock lock(mutex_);
    check::write(closed_, "ReadyQueue.closed");
    closed_ = true;
  }
  cv_.notify_all();
}

size_t ReadyQueue::size() const {
  std::scoped_lock lock(mutex_);
  return items_.size();
}

}  // namespace p2g
