// Runtime: a P2G execution node for multi-core machines (paper §VI-B).
//
// The runtime owns field storage, one or more dependency-analyzer shard
// threads (RunOptions::analyzer_shards), an age-ordered ready queue and a
// pool of worker threads. Kernel instances run on workers and emit store
// events; the analyzer shards consume events routed by field/kernel
// ownership, discover newly runnable instances and dispatch each instance
// exactly once (write-once semantics make this sound). The run terminates
// at quiescence: no pending events, no ready or running instances.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "core/events.h"
#include "core/flight_recorder.h"
#include "core/field.h"
#include "core/instrumentation.h"
#include "core/program.h"
#include "core/ready_queue.h"
#include "core/timer.h"
#include "core/trace.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace p2g {

class DependencyAnalyzer;
class KernelContext;

/// Requests fusing a downstream kernel into its upstream producer — the
/// paper's "decrease task parallelism" (Fig. 4, Age=3). The downstream
/// kernel must have exactly one fetch, elementwise on a field the upstream
/// stores elementwise with a matching slice.
struct FusionRule {
  std::string upstream;
  std::string downstream;
};

/// Per-kernel low-level-scheduler knobs.
struct KernelSchedule {
  /// Data-granularity control (Fig. 4, Age=2): up to `chunk` instances of
  /// the same kernel and age are dispatched as one work item.
  int64_t chunk = 1;
  /// Last age at which instances of this kernel may run.
  std::optional<Age> max_age;
};

struct RunOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int workers = 0;
  /// Adaptive data-granularity control (paper §V-A): the analyzer watches
  /// the instrumented dispatch/kernel-time ratio and doubles a kernel's
  /// chunk size while dispatch overhead dominates (kernels with an
  /// explicit chunk in kernel_schedules are left alone).
  bool adaptive_chunking = false;
  /// Global cap on instance ages (required for cyclic programs with no
  /// natural termination, e.g. the paper's mul2/plus5 loop).
  std::optional<Age> max_age;
  std::map<std::string, KernelSchedule> kernel_schedules;
  std::vector<FusionRule> fusions;
  /// Aborts the run if quiescence is not reached in time (hang detection).
  std::optional<std::chrono::milliseconds> watchdog;
  /// Oldest-first dispatch (paper §VI-B). false = plain FIFO (ablation).
  bool age_priority = true;
  /// Batched event handling: the analyzer drains its whole event backlog
  /// under one queue lock and amortizes trace/metrics/accounting over the
  /// batch. false = one event per lock round trip (ablation baseline).
  bool analyzer_batch = true;
  /// Analyzer shards (clamped to [1, 64]): dependency tracking is
  /// partitioned across this many analyzer threads, each owning a disjoint
  /// set of fields and kernels, fed by per-shard lock-free MPSC queues and
  /// exchanging cross-shard effects as explicit messages
  /// (core/dependency.h). 1 (the default) is exactly the paper's single
  /// analyzer thread; any value dispatches a bit-identical instance set.
  int analyzer_shards = 1;
  /// Consume independence certificates embedded by Program::certify(): a
  /// store event arriving through a certified (consumer, fetch) pair skips
  /// that fetch's fine-grained region_written tracking for every candidate
  /// the event's region admits. No effect when the program carries no
  /// certificates. false = ablation baseline (PR 3 batched dispatch path).
  bool use_certificates = true;
  /// Checked mode: record writer provenance per (field, age, region) so a
  /// write-once violation reports *both* offending kernel instances and
  /// their slices instead of just the second one. Costs one small record
  /// per store; use for debugging double-write errors, not production
  /// runs. (Unlike P2G_SANITIZE=thread this catches semantic write-once
  /// races even when the two stores never overlap in time.)
  bool checked = false;

  // --- hooks for distributed operation (src/dist) --------------------------

  /// Kernels this execution node does *not* run (they belong to another
  /// partition). Their stores arrive through Runtime::inject_store.
  std::set<std::string> disabled_kernels;
  /// Keep running at quiescence and wait for injected stores; the run only
  /// ends via Runtime::stop() (or the watchdog).
  bool keep_alive = false;
  /// Called after every committed store (worker thread) — the execution
  /// node uses it to forward stores to remote consumers.
  std::function<void(const StoreEvent&)> store_tap;
  /// Idempotent commits: stores write only not-yet-written elements instead
  /// of throwing kWriteOnceViolation on overlap. Store events and the
  /// store_tap still fire for skipped stores (seal bookkeeping and remote
  /// forwarding must see re-executed work). Required for failover
  /// re-execution, where a re-enabled kernel redoes instances whose results
  /// partially survived locally.
  bool idempotent_stores = false;

  /// When set, every dispatched work item and analyzer batch is recorded
  /// and written as Chrome trace-event JSON to this path after the run
  /// (open in chrome://tracing or Perfetto). Meant for small runs — one
  /// span per work item.
  std::optional<std::string> trace_path;
  /// Collect spans without writing a file: the distributed master reads
  /// each node's collector and stitches one merged trace. Implied by
  /// trace_path.
  bool collect_trace = false;
  /// Process-lane label in traces and span-id salt (the execution node
  /// sets its node name); empty = "p2g".
  std::string trace_label;
  /// Keep a bounded per-thread ring of recent events (core/flight_recorder.h)
  /// even when full tracing is off, dumped on crash/fatal error.
  bool flight_recorder = false;
  /// Directory for flight-recorder dump artifacts written on fatal errors
  /// (and by ExecutionNode::crash()); file name is flight_<label>.json.
  std::optional<std::string> flight_dir;

  /// Telemetry (src/obs): latency histograms, counters, and a sampler
  /// thread turning queue depth / utilization / memory gauges into time
  /// series. The snapshot lands in RunReport::metrics; combined with
  /// trace_path, sampled gauges also become Perfetto counter tracks.
  obs::MetricsOptions metrics;
};

struct RunReport {
  double wall_s = 0.0;
  bool timed_out = false;
  InstrumentationReport instrumentation;
  /// Telemetry snapshot (empty unless RunOptions::metrics.enabled).
  obs::MetricsSnapshot metrics;
};

/// A single execution node. Construct, run() once, then inspect field
/// storage and instrumentation.
class Runtime {
 public:
  explicit Runtime(Program program, RunOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes the program to quiescence (blocking). May be called once.
  RunReport run();

  /// Applies a store produced on another execution node: writes the region
  /// payload into local field storage and feeds the analyzer the same
  /// event a local store would have produced. Thread-safe; usable before
  /// and during run().
  ///
  /// With `fill` set the apply is idempotent: only not-yet-written elements
  /// are stored, and a fully duplicate store pushes no event. Returns the
  /// number of freshly written elements (the region's element count in
  /// non-fill mode, where duplicates throw).
  int64_t inject_store(FieldId field, Age age, const nd::Region& region,
                       KernelId producer, size_t store_decl, bool whole,
                       const std::byte* payload, bool fill = false,
                       const TraceContext& ctx = {});

  /// inject_store for payloads already mapped into this process (the
  /// shared-memory data plane): when `view` densely covers the whole
  /// region of an untouched age, field storage *adopts* the view's pages
  /// (zero copies, keepalive pins the mapping); otherwise the bytes are
  /// copied in like a regular non-fill store. Sets *adopted accordingly
  /// when non-null.
  int64_t inject_store_view(FieldId field, Age age, const nd::Region& region,
                            KernelId producer, size_t store_decl, bool whole,
                            const nd::ConstView& view,
                            bool* adopted = nullptr,
                            const TraceContext& ctx = {});

  /// Re-enables a disabled kernel and re-enumerates its instances from
  /// surviving field data (failover: the kernel's previous owner died).
  /// Thread-safe; the rescan runs on the analyzer thread.
  void enable_kernel(const std::string& name);

  /// Ends a keep-alive run (or aborts a normal one). Thread-safe.
  void stop() { begin_shutdown(); }

  /// True when no events, ready instances or running instances exist.
  bool idle() const { return outstanding_.load() == 0; }

  const Program& program() const { return program_; }
  FieldStorage& storage(FieldId field);
  FieldStorage& storage(std::string_view field_name);
  TimerSet& timers() { return timers_; }

  /// Instrumentation snapshot (also embedded in the RunReport).
  InstrumentationReport instrumentation() const;

  /// Number of per-candidate dependence checks the analyzer skipped via
  /// independence certificates (0 without certify()/use_certificates).
  int64_t certified_skips() const;

  /// The dependency analyzer (tests/bench: shard counters, memory stats).
  DependencyAnalyzer& analyzer() { return *analyzer_; }

  /// CPU time the busiest analyzer shard thread consumed during run(),
  /// in nanoseconds. On oversubscribed machines (or a single-core box,
  /// where N shard threads time-share one core) wall clock cannot show the
  /// per-shard load split; the max shard CPU is the quantity that
  /// parallelism across cores would put on the critical path. Valid after
  /// run() returns; 0 before.
  int64_t max_analyzer_cpu_ns() const {
    int64_t best = 0;
    for (const int64_t ns : analyzer_cpu_ns_) best = std::max(best, ns);
    return best;
  }

  /// The execution trace (nullptr unless RunOptions::trace_path or
  /// collect_trace was set).
  const TraceCollector* trace() const { return trace_.get(); }

  /// Mutable collector handle for embedding layers (the execution node
  /// records wire/remote-store/recovery spans into the node's timeline).
  TraceCollector* mutable_trace() { return trace_.get(); }

  /// The flight recorder (nullptr unless RunOptions::flight_recorder).
  FlightRecorder* flight() { return flight_.get(); }

  /// Fresh, node-unique span id (never 0). Cheap: one atomic increment
  /// plus a stateless hash salted with the node label.
  uint64_t next_span_id() {
    const uint64_t id =
        mix(span_salt_, span_seq_.fetch_add(1, std::memory_order_relaxed));
    return id != 0 ? id : 1;
  }

  /// Writes the flight-recorder dump artifact into RunOptions::flight_dir
  /// (no-op without recorder or dir). Returns the path when written.
  std::optional<std::string> dump_flight() const;

  /// The metrics registry (nullptr unless RunOptions::metrics.enabled).
  const obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Mutable registry handle for embedding layers (the execution node folds
  /// reliable-channel counters in before shipping its snapshot).
  obs::MetricsRegistry* mutable_metrics() { return metrics_.get(); }

  /// Telemetry snapshot; empty when metrics are disabled.
  obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_ ? metrics_->snapshot() : obs::MetricsSnapshot{};
  }

 private:
  friend class DependencyAnalyzer;

  /// Resolved fusion of a downstream kernel into its upstream producer.
  struct ResolvedFusion {
    KernelId upstream = kInvalidKernel;
    KernelId downstream = kInvalidKernel;
    size_t upstream_store_decl = 0;
    int64_t age_delta = 0;  ///< downstream age = upstream age + age_delta
    /// downstream coord[v] = upstream coord[coord_map[v]]
    std::vector<size_t> coord_map;
    /// Skip committing the intermediate store (sole consumer is fused).
    bool elide = false;
  };

  /// Per-kernel resolved schedule. `chunk` is adapted only from analyzer
  /// shard 0 (adapt_granularity) but read by every shard's flush path, so
  /// it is a relaxed atomic: any shard using a slightly stale chunk size
  /// only changes work-item grouping, never correctness.
  struct KernelRunCfg {
    std::atomic<int64_t> chunk{1};
    bool chunk_explicit = false;  ///< user-set; adaptive control skips it
    Age cap = std::numeric_limits<Age>::max();
    const ResolvedFusion* fusion = nullptr;  ///< as upstream
    bool enabled = true;  ///< false: kernel runs on another node

    // The atomic deletes the implicit copy/move; vector::resize needs
    // MoveInsertable even when growing from empty. Only ever invoked
    // before any thread starts.
    KernelRunCfg() = default;
    KernelRunCfg(KernelRunCfg&& other) noexcept
        : chunk(other.chunk.load(std::memory_order_relaxed)),
          chunk_explicit(other.chunk_explicit),
          cap(other.cap),
          fusion(other.fusion),
          enabled(other.enabled) {}
  };

  /// Analyzer-thread hook: revisits chunk sizes from instrumentation.
  void adapt_granularity();

  void setup_metrics();
  void start_sampler();
  /// Stops the sampler, folds its series into the registry and (with
  /// tracing on) into Perfetto counter tracks. Safe to call repeatedly.
  void finalize_metrics();

  void resolve_options();
  void resolve_fusion(const FusionRule& rule);

  // Work accounting: every event and every created instance holds one unit;
  // quiescence (= shutdown) happens when the count returns to zero.
  void add_outstanding(int64_t n) { outstanding_.fetch_add(n); }
  void complete_outstanding(int64_t n = 1);

  /// Enqueues a work item. When `already_counted`, the instance already
  /// holds an outstanding unit (it was parked by the serial gate).
  void submit(WorkItem item, bool already_counted = false);

  /// Enqueues a batch of work items under one ready-queue lock.
  void submit_batch(std::vector<WorkItem> items);

  /// Routes an event to the analyzer shard owning its state.
  void push_event(Event event);
  /// Enqueues onto a specific shard's queue (cross-shard analyzer
  /// messages, which are addressed explicitly by their sender).
  void push_shard_event(size_t shard, Event event);

  void begin_shutdown();
  void fail(std::exception_ptr error);

  void worker_loop(int worker_index);
  void analyzer_loop(int shard);

  /// Runs all bodies of a work item: fetch prep, body, store commit, fused
  /// downstream execution, instrumentation, done-event emission.
  void execute(const WorkItem& item, int worker_index);
  void prepare_fetches(KernelContext& ctx);
  /// Commits buffered stores into field storage; appends the store events
  /// to `events` (pushed, possibly coalesced, by execute()). `span_ctx`
  /// is the executing span's identity: events are stamped with it, and a
  /// root span (no inherited frame) adopts the first store's frame id.
  void commit_stores(KernelContext& ctx, const ResolvedFusion* fusion,
                     std::vector<StoreEvent>& events,
                     TraceContext* span_ctx);
  void run_fused_downstream(const KernelContext& up_ctx,
                            const ResolvedFusion& fusion,
                            std::vector<StoreEvent>& events,
                            TraceContext* span_ctx);
  /// Merges runs of events from the same store statement whose regions
  /// tile an exact rectangle (chunked instances over consecutive indices),
  /// then pushes them — cutting analyzer load proportionally to the chunk
  /// size — and emits one flow-start per traced event so consumers can
  /// draw the dependency arrow.
  void push_store_events(std::vector<StoreEvent> events, int worker_index);

  Age cap_of(KernelId kernel) const {
    return kcfg_[static_cast<size_t>(kernel)].cap;
  }

  bool kernel_enabled(KernelId kernel) const {
    return kcfg_[static_cast<size_t>(kernel)].enabled;
  }

  static bool needs_done_event(const KernelDef& def) {
    return def.serial || def.is_source();
  }

  Program program_;
  RunOptions options_;
  std::vector<std::unique_ptr<FieldStorage>> storages_;
  std::vector<KernelRunCfg> kcfg_;
  std::vector<ResolvedFusion> fusions_;

  ReadyQueue ready_;
  /// One lock-free MPSC event queue per analyzer shard (producers: workers
  /// and other shards; consumer: the shard's thread).
  std::vector<std::unique_ptr<MpscQueue<Event>>> event_queues_;
  /// Per-shard thread CPU time, written by each shard thread on exit and
  /// read after join (bench: critical-path analyzer cost).
  std::vector<int64_t> analyzer_cpu_ns_;
  Instrumentation instr_;
  TimerSet timers_;
  std::unique_ptr<TraceCollector> trace_;
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<DependencyAnalyzer> analyzer_;
  std::atomic<uint64_t> span_seq_{1};
  uint64_t span_salt_ = 0;

  // Telemetry (null when RunOptions::metrics.enabled is false). The raw
  // pointers are hot-path handles resolved once in setup_metrics().
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Sampler> sampler_;
  obs::Histogram* m_dispatch_ns_ = nullptr;
  obs::Histogram* m_kernel_ns_ = nullptr;
  obs::Histogram* m_analyzer_ns_ = nullptr;
  obs::Histogram* m_store_batch_ = nullptr;
  obs::Counter* m_store_bytes_ = nullptr;
  obs::Counter* m_busy_ns_ = nullptr;
  obs::Counter* m_idle_ns_ = nullptr;
  obs::Counter* m_events_ = nullptr;
  /// Per-shard analyzer counters (events handled / cross-shard messages
  /// received), indexed by shard; empty when metrics are off.
  std::vector<obs::Counter*> m_shard_events_;
  std::vector<obs::Counter*> m_shard_xshard_;

  std::atomic<int64_t> outstanding_{0};
  sync::Mutex done_mutex_{"Runtime.done_mutex"};
  sync::CondVar done_cv_{"Runtime.done_cv"};
  bool done_ = false;
  bool started_ = false;

  sync::Mutex error_mutex_{"Runtime.error_mutex"};
  std::exception_ptr error_;
};

}  // namespace p2g
