// The per-node ready queue of runnable kernel instances.
//
// The paper's low-level scheduler prefers kernel instances with lower age
// ("older" instances) so that kernels satisfying their own dependencies in
// aging cycles cannot starve others (§VI-B). We implement that as a
// priority queue ordered by (age, enqueue sequence).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "core/ids.h"
#include "nd/extents.h"

namespace p2g {

/// One dispatchable unit: a kernel instance, or a chunk of instances of the
/// same kernel and age when the scheduler decreased data parallelism.
struct WorkItem {
  KernelId kernel = kInvalidKernel;
  Age age = 0;
  /// Index bindings of each body in the chunk; empty Coord for kernels
  /// without index variables. Always at least one entry.
  std::vector<nd::Coord> coords;
  int64_t enqueue_ns = 0;
  uint64_t seq = 0;
};

/// Blocking, age-ordered queue feeding the worker pool.
class ReadyQueue {
 public:
  /// `age_priority` = false degrades to plain FIFO (the ablation baseline
  /// for the paper's oldest-first rule).
  explicit ReadyQueue(bool age_priority = true)
      : age_priority_(age_priority) {}

  void push(WorkItem item);

  /// Blocks for the lowest-age item; nullopt after close() drains.
  std::optional<WorkItem> pop();

  void close();
  size_t size() const;

 private:
  struct Compare {
    bool age_priority;
    bool operator()(const WorkItem& a, const WorkItem& b) const {
      if (age_priority && a.age != b.age) {
        return a.age > b.age;  // lower age first
      }
      return a.seq > b.seq;  // FIFO otherwise
    }
  };

  bool age_priority_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<WorkItem, std::vector<WorkItem>, Compare> items_{
      Compare{age_priority_}};
  uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace p2g
