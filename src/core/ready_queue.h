// The per-node ready queue of runnable kernel instances.
//
// The paper's low-level scheduler prefers kernel instances with lower age
// ("older" instances) so that kernels satisfying their own dependencies in
// aging cycles cannot starve others (§VI-B). We implement that as a
// priority queue ordered by (age, enqueue sequence).
//
// Hot-path design: the analyzer pushes whole batches under one lock with at
// most one wakeup per batch, wakeups are skipped entirely when no worker is
// blocked (waiter count tracked under the mutex), and items move — not copy
// — through push and pop. Workers may additionally grab a *bonus* second
// item per pop when no other worker is waiting, halving their queue round
// trips under load without starving idle peers.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "check/sync.h"
#include "core/ids.h"
#include "core/trace.h"
#include "nd/extents.h"

namespace p2g {

/// One dispatchable unit: a kernel instance, or a chunk of instances of the
/// same kernel and age when the scheduler decreased data parallelism.
struct WorkItem {
  KernelId kernel = kInvalidKernel;
  Age age = 0;
  /// Index bindings of each body in the chunk; empty Coord for kernels
  /// without index variables. Always at least one entry.
  std::vector<nd::Coord> coords;
  uint64_t seq = 0;
  /// Causal parent: the store event that made this instance runnable
  /// (first one for a chunk; zero when tracing is off). The executed
  /// span's flow arrow and parent link derive from it.
  TraceContext cause;
};

/// Blocking, age-ordered queue feeding the worker pool.
class ReadyQueue {
 public:
  /// `age_priority` = false degrades to plain FIFO (the ablation baseline
  /// for the paper's oldest-first rule).
  explicit ReadyQueue(bool age_priority = true)
      : age_priority_(age_priority) {}

  void push(WorkItem item);

  /// Pushes a batch of items: one lock acquisition, at most one wakeup.
  /// (Waking one worker suffices — each woken worker takes at most two
  /// items and the rest remain claimable by peers finishing their bodies.)
  void push_batch(std::vector<WorkItem> items);

  /// Blocks for the lowest-age item; nullopt after close() drains.
  std::optional<WorkItem> pop();

  /// Like pop(), but when more work is queued and no other worker is
  /// waiting for it, also moves the next item into `bonus` — a second unit
  /// for the same worker at no extra lock round trip.
  std::optional<WorkItem> pop(std::optional<WorkItem>& bonus);

  void close();
  size_t size() const;

 private:
  struct Compare {
    bool age_priority;
    bool operator()(const WorkItem& a, const WorkItem& b) const {
      if (age_priority && a.age != b.age) {
        return a.age > b.age;  // lower age first
      }
      return a.seq > b.seq;  // FIFO otherwise
    }
  };

  /// Moves the top item out (caller holds the lock). The const_cast is the
  /// standard escape hatch for std::priority_queue's const top(): safe here
  /// because the comparator reads only the trivially-copyable age/seq
  /// fields, which a move leaves intact for the pop() sift-down.
  WorkItem take_top();

  bool age_priority_;
  mutable sync::Mutex mutex_{"ReadyQueue.mutex"};
  sync::CondVar cv_{"ReadyQueue.cv"};
  std::priority_queue<WorkItem, std::vector<WorkItem>, Compare> items_{
      Compare{age_priority_}};
  uint64_t next_seq_ = 0;
  int waiters_ = 0;  ///< workers blocked in pop (guarded by mutex_)
  bool closed_ = false;
};

}  // namespace p2g
