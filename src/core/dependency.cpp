#include "core/dependency.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/logging.h"

namespace p2g {

namespace {

/// Sentinel upper bound for "unknown domain, hope the event constrains it".
constexpr int64_t kHuge = std::numeric_limits<int64_t>::max() / 4;

bool has_all_dim(const nd::SliceSpec& slice) {
  if (slice.is_whole()) return false;
  for (const nd::SliceDim& d : slice.dims()) {
    if (d.kind == nd::SliceDim::Kind::kAll) return true;
  }
  return false;
}

}  // namespace

std::vector<Age> DependencyAnalyzer::first_feasible_ages(
    const Program& program) {
  const size_t nk = program.kernels().size();
  const size_t nf = program.fields().size();
  // first_age[F]: minimal age at which field F can receive data.
  std::vector<Age> field_first(nf, kInfeasible);
  std::vector<Age> kernel_first(nk, kInfeasible);

  // Monotone relaxation: values only decrease, bounded below by 0.
  for (size_t round = 0; round < nk + nf + 8; ++round) {
    bool changed = false;
    for (const KernelDef& k : program.kernels()) {
      Age first;
      if (k.fetches.empty()) {
        first = 0;  // run-once and source kernels start immediately
      } else {
        first = 0;
        for (const FetchDecl& f : k.fetches) {
          const Age ff = field_first[static_cast<size_t>(f.field)];
          if (ff >= kInfeasible) {
            first = kInfeasible;
            break;
          }
          if (f.age.kind == AgeExpr::Kind::kRelative) {
            // Need a + offset >= ff and a + offset >= 0.
            first = std::max(first, ff - f.age.value);
            first = std::max(first, -f.age.value);
          } else if (f.age.value < ff) {
            first = kInfeasible;  // constant age never written
            break;
          }
        }
      }
      if (first < kernel_first[k.id]) {
        kernel_first[static_cast<size_t>(k.id)] = first;
        changed = true;
      }
      if (kernel_first[static_cast<size_t>(k.id)] >= kInfeasible) continue;
      for (const StoreDecl& s : k.stores) {
        const Age target =
            s.age.kind == AgeExpr::Kind::kConst
                ? s.age.value
                : kernel_first[static_cast<size_t>(k.id)] + s.age.value;
        if (target >= 0 &&
            target < field_first[static_cast<size_t>(s.field)]) {
          field_first[static_cast<size_t>(s.field)] = target;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return kernel_first;
}

DependencyAnalyzer::DependencyAnalyzer(Runtime& runtime, int shards)
    : runtime_(runtime), program_(runtime.program()) {
  const size_t n =
      static_cast<size_t>(std::clamp(shards, 1, 64));
  shards_.resize(n);
  for (size_t i = 0; i < n; ++i) shards_[i].index = i;

  const size_t nf = program_.fields().size();
  const size_t nk = program_.kernels().size();

  field_shard_.resize(nf);
  for (size_t f = 0; f < nf; ++f) field_shard_[f] = f % n;

  // A kernel lives where its first fetched field lives (the shard that
  // sees most of the events that can unblock it); fetchless kernels follow
  // their first stored field so a single-chain program stays one-shard.
  kernel_shard_.assign(nk, 0);
  for (const KernelDef& k : program_.kernels()) {
    size_t owner = 0;
    if (!k.fetches.empty()) {
      owner = field_shard(k.fetches[0].field);
    } else if (!k.stores.empty()) {
      owner = field_shard(k.stores[0].field);
    }
    kernel_shard_[static_cast<size_t>(k.id)] = owner;
  }
  // A fused downstream's twin marks come from the upstream's enumeration,
  // so the pair must share a shard (dispatched-set dedup stays
  // single-threaded per kernel).
  for (const auto& fu : runtime_.fusions_) {
    kernel_shard_[static_cast<size_t>(fu.downstream)] =
        kernel_shard_[static_cast<size_t>(fu.upstream)];
  }

  field_consumer_shards_.assign(nf, 0);
  for (size_t f = 0; f < nf; ++f) {
    uint64_t mask = 0;
    for (const Program::Use& use :
         program_.consumers_of(static_cast<FieldId>(f))) {
      mask |= uint64_t{1} << kernel_shard_[static_cast<size_t>(use.kernel)];
    }
    field_consumer_shards_[f] = mask;
  }

  first_feasible_ = first_feasible_ages(program_);
  dispatch_.resize(nk);
  serial_.resize(nk);
  for (const KernelDef& k : program_.kernels()) {
    const Age first = first_feasible_[static_cast<size_t>(k.id)];
    if (first < kInfeasible) {
      // Ages below the first feasible one can never dispatch; starting the
      // closed watermark there lets it advance contiguously.
      dispatch_[static_cast<size_t>(k.id)].closed_below = first;
      if (k.serial) serial_[static_cast<size_t>(k.id)].next = first;
    }
  }

  // Resolve embedded independence certificates (Program::certify) into a
  // per-kernel per-fetch bitmap for the try_enumerate hot path. Computed
  // once, read-only afterwards, shared by every shard.
  certified_.resize(nk);
  if (runtime_.options_.use_certificates) {
    for (const IndependenceCertificate& cert : program_.certificates()) {
      auto& flags = certified_[static_cast<size_t>(cert.consumer)];
      const size_t nfetches =
          program_.kernel(cert.consumer).fetches.size();
      if (flags.empty()) flags.assign(nfetches, 0);
      if (cert.fetch < flags.size()) flags[cert.fetch] = 1;
    }
  }
}

size_t DependencyAnalyzer::shard_of(const Event& event) const {
  if (const auto* store = std::get_if<StoreEvent>(&event)) {
    return field_shard(store->field);
  }
  if (const auto* done = std::get_if<InstanceDoneEvent>(&event)) {
    return kernel_shard(done->kernel);
  }
  if (const auto* rescan = std::get_if<RescanEvent>(&event)) {
    return kernel_shard(rescan->kernel);
  }
  if (const auto* seal = std::get_if<SealCheckEvent>(&event)) {
    return field_shard(seal->field);
  }
  // ScanConsumersEvents are addressed explicitly by their sender
  // (push_shard_event); routing one generically targets the field owner.
  return field_shard(std::get<ScanConsumersEvent>(event).field);
}

void DependencyAnalyzer::bootstrap() {
  for (const KernelDef& def : program_.kernels()) {
    if (!runtime_.kernel_enabled(def.id)) continue;
    Shard& s = shards_[kernel_shard(def.id)];
    if (def.is_run_once() && def.fetches.empty()) {
      create_instance(s, def, 0, {});
    } else if (def.is_source()) {
      mark_dispatched(s, def.id, 0, {});
      WorkItem item;
      item.kernel = def.id;
      item.age = 0;
      item.coords = {nd::Coord{}};
      runtime_.submit(std::move(item));
    }
  }
  for (Shard& s : shards_) flush_chunks(s);
}

void DependencyAnalyzer::handle_one(Shard& s, const Event& event) {
  s.current_cause = TraceContext{};  // done/rescan-created work is untraced
  if (const auto* store = std::get_if<StoreEvent>(&event)) {
    handle_store(s, *store);
  } else if (const auto* done = std::get_if<InstanceDoneEvent>(&event)) {
    handle_done(s, *done);
  } else if (const auto* rescan = std::get_if<RescanEvent>(&event)) {
    handle_rescan(s, *rescan);
  } else if (const auto* seal = std::get_if<SealCheckEvent>(&event)) {
    check_seal(s, seal->field, seal->age);
    drain_seal_worklist(s);
  } else if (const auto* scan = std::get_if<ScanConsumersEvent>(&event)) {
    handle_scan(s, *scan);
  }
}

void DependencyAnalyzer::handle(size_t shard, const Event& event) {
  Shard& s = shards_[shard];
  handle_one(s, event);
  flush_chunks(s);
  // Periodically revisit the data-granularity decisions (paper §V-A).
  // Shard 0 owns the adaptation so KernelRunCfg::chunk has one writer.
  if ((++s.events_handled & 0x3FF) == 0 && shard == 0) {
    runtime_.adapt_granularity();
  }
}

void DependencyAnalyzer::handle_batch(size_t shard,
                                      const std::deque<Event>& events) {
  Shard& s = shards_[shard];
  for (const Event& event : events) handle_one(s, event);
  flush_chunks(s);
  // Same ~1024-event cadence as handle(), crossed at batch granularity.
  const int64_t before = s.events_handled;
  s.events_handled += static_cast<int64_t>(events.size());
  if (shard == 0 && (before >> 10) != (s.events_handled >> 10)) {
    runtime_.adapt_granularity();
  }
}

int64_t DependencyAnalyzer::dispatched_count() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.dispatched_total;
  return total;
}

int64_t DependencyAnalyzer::certified_skip_count() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.certified_skips;
  return total;
}

int64_t DependencyAnalyzer::cross_shard_messages() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.xshard_sent;
  return total;
}

DependencyAnalyzer::MemoryStats DependencyAnalyzer::memory_stats() const {
  MemoryStats stats;
  for (const Shard& s : shards_) {
    stats.fa_states += s.fa_states.size();
    for (const auto& [key, entries] : s.retry) {
      stats.retry_entries += entries.size();
    }
  }
  for (const KernelDispatch& kd : dispatch_) {
    stats.open_ages += kd.open.size();
    for (const auto& [age, ad] : kd.open) {
      stats.open_coords += ad.coords.size();
    }
  }
  return stats;
}

void DependencyAnalyzer::send_shard(Shard& s, size_t target, Event event) {
  ++s.xshard_sent;
  runtime_.push_shard_event(target, std::move(event));
}

void DependencyAnalyzer::handle_store(Shard& s, const StoreEvent& event) {
  // Everything this store makes runnable — directly or through the seal
  // cascade — is causally downstream of it.
  s.current_cause = event.ctx;

  // Seal bookkeeping only accumulates while the age is unsealed; late
  // elementwise stores into an already-sealed age (the extents were known
  // before all data arrived) must not resurrect a retired entry.
  if (event.producer != kInvalidKernel &&
      !storage(event.field).is_sealed(event.age)) {
    FieldAgeState& state = s.fa_states[{event.field, event.age}];
    const ProducerKey key{event.producer, event.store_decl};
    if (event.whole) {
      state.satisfied.emplace(key, event.region.required_extents());
    } else {
      const KernelDef& producer = program_.kernel(event.producer);
      const nd::SliceSpec& slice = producer.stores[event.store_decl].slice;
      const bool needs_witness =
          has_all_dim(slice) || producer.is_source() ||
          producer.is_run_once();
      if (needs_witness && !state.witnesses.count(key)) {
        std::vector<int64_t> lengths(slice.dims().size(), -1);
        for (size_t i = 0; i < slice.dims().size(); ++i) {
          if (slice.dims()[i].kind == nd::SliceDim::Kind::kAll) {
            lengths[i] = event.region.interval(i).length();
          }
        }
        state.witnesses.emplace(key, std::move(lengths));
      }
    }
  }

  check_seal(s, event.field, event.age);
  drain_seal_worklist(s);
  announce_scan(s, event.field, event.age, &event.region);
}

void DependencyAnalyzer::handle_done(Shard& s,
                                     const InstanceDoneEvent& event) {
  const KernelDef& def = program_.kernel(event.kernel);

  if (def.serial) {
    SerialState& state = serial_[static_cast<size_t>(def.id)];
    state.in_flight = false;
    state.next = event.age + 1;
    const auto it = state.parked.find(state.next);
    if (it != state.parked.end()) {
      WorkItem item = std::move(it->second);
      state.parked.erase(it);
      state.in_flight = true;
      runtime_.submit(std::move(item), /*already_counted=*/true);
    }
  }

  if (def.is_source()) {
    if (event.continue_next_age) {
      const Age next = event.age + 1;
      if (next <= runtime_.cap_of(def.id) &&
          mark_dispatched(s, def.id, next, {})) {
        WorkItem item;
        item.kernel = def.id;
        item.age = next;
        item.coords = {nd::Coord{}};
        runtime_.submit(std::move(item));
      }
    }
    // The completed age will never be re-created (a same-node rescan of a
    // dispatched source age was always a no-op); retire its entry.
    close_age(s, def.id, event.age);
  }
}

void DependencyAnalyzer::handle_rescan(Shard& s, const RescanEvent& event) {
  const KernelDef& def = program_.kernel(event.kernel);
  // `enabled` is only ever read on the kernel's owner shard
  // (try_enumerate) or before threads start (bootstrap), so the flip needs
  // no synchronization.
  runtime_.kcfg_[static_cast<size_t>(def.id)].enabled = true;

  if (def.is_source()) {
    // Re-drive the source chain from age 0. Instances whose output already
    // arrived re-store idempotently and their continue flags rebuild the
    // chain up to the first genuinely lost age.
    if (mark_dispatched(s, def.id, 0, {})) {
      WorkItem item;
      item.kernel = def.id;
      item.age = 0;
      item.coords = {nd::Coord{}};
      runtime_.submit(std::move(item));
    }
    return;
  }

  // General kernel: every live age of a fetched field names an instance age
  // that may now be runnable here. try_enumerate dedups via the dispatch
  // bookkeeping and re-checks satisfaction, so over-approximating the age
  // set is safe.
  std::set<Age> ages;
  ages.insert(0);
  for (const FetchDecl& f : def.fetches) {
    if (f.age.kind != AgeExpr::Kind::kRelative) continue;
    for (const Age la : storage(f.field).live_ages()) {
      const Age a = la - f.age.value;
      if (a >= 0) ages.insert(a);
    }
  }
  for (const Age a : ages) {
    try_enumerate(s, def, a, std::nullopt, nullptr);
  }
}

void DependencyAnalyzer::handle_scan(Shard& s,
                                     const ScanConsumersEvent& event) {
  s.current_cause = event.ctx;
  scan_local(s, event.field, event.age,
             event.constrained ? &event.region : nullptr);
}

void DependencyAnalyzer::check_seal(Shard& s, FieldId field, Age age) {
  // The storage seal index is the authoritative (and thread-safe) sealed
  // bit; the shard-local FieldAgeState only holds pre-seal bookkeeping.
  if (storage(field).is_sealed(age)) return;

  // Enumerate the producers of this (field, age).
  struct ActiveProducer {
    ProducerKey key;
    Age instance_age;
    const StoreDecl* decl;
    const KernelDef* kernel;
  };
  std::vector<ActiveProducer> producers;
  for (const Program::Use& use : program_.producers_of(field)) {
    const KernelDef& k = program_.kernel(use.kernel);
    const StoreDecl& d = k.stores[use.statement];
    Age instance_age;
    if (d.age.kind == AgeExpr::Kind::kConst) {
      if (d.age.value != age) continue;
      instance_age = 0;  // run-once semantics; aged kernels with const
                         // stores contribute via witnesses below
    } else {
      instance_age = age - d.age.value;
      if (instance_age < 0 || instance_age > runtime_.cap_of(k.id)) continue;
    }
    producers.push_back(
        ActiveProducer{ProducerKey{k.id, use.statement}, instance_age, &d, &k});
  }
  if (producers.empty()) return;  // nothing will ever define this age

  static const FieldAgeState kNoState;
  const auto state_it = s.fa_states.find({field, age});
  const FieldAgeState& state =
      state_it != s.fa_states.end() ? state_it->second : kNoState;

  nd::Extents extents;
  bool first = true;
  for (const ActiveProducer& p : producers) {
    nd::Extents contribution;
    const auto sat = state.satisfied.find(p.key);
    if (sat != state.satisfied.end()) {
      contribution = sat->second;  // whole-store producers
    } else if (p.decl->slice.is_whole()) {
      return;  // whole store not seen yet
    } else {
      // Elementwise producer: extents derive from its index domain plus a
      // witness store for all() dimensions / witness-only producers.
      const bool needs_witness = has_all_dim(p.decl->slice) ||
                                 p.kernel->is_source() ||
                                 p.kernel->is_run_once();
      const std::vector<int64_t>* witness = nullptr;
      if (needs_witness) {
        const auto wit = state.witnesses.find(p.key);
        if (wit == state.witnesses.end()) return;  // no witness yet
        witness = &wit->second;
      }
      std::optional<std::vector<int64_t>> domain;
      if (!p.kernel->index_vars.empty()) {
        domain = domain_of(*p.kernel, p.instance_age);
        if (!domain) return;  // domain not known yet
      }
      std::vector<int64_t> dims(p.decl->slice.dims().size(), 0);
      for (size_t i = 0; i < dims.size(); ++i) {
        const nd::SliceDim& sd = p.decl->slice.dims()[i];
        switch (sd.kind) {
          case nd::SliceDim::Kind::kVar:
            dims[i] = (*domain)[static_cast<size_t>(sd.var)];
            break;
          case nd::SliceDim::Kind::kConst:
            dims[i] = sd.value + 1;
            break;
          case nd::SliceDim::Kind::kAll:
            dims[i] = (*witness)[i];
            break;
        }
      }
      contribution = nd::Extents(std::move(dims));
    }
    extents = first ? contribution : extents.max_with(contribution);
    first = false;
  }

  storage(field).seal(age, extents);
  // Sealed ages never consult their pre-seal bookkeeping again; retiring
  // the entry here is what keeps analyzer memory flat on streaming runs.
  if (state_it != s.fa_states.end()) s.fa_states.erase(state_it);
  P2G_DEBUG << "sealed field '" << program_.field(field).name << "' age "
            << age << " at " << extents.to_string();
  on_sealed(s, field, age);
}

void DependencyAnalyzer::drain_seal_worklist(Shard& s) {
  while (!s.seal_worklist.empty()) {
    const auto [field, age] = s.seal_worklist.front();
    s.seal_worklist.pop_front();
    check_seal(s, field, age);
  }
}

void DependencyAnalyzer::on_sealed(Shard& s, FieldId field, Age age) {
  // Extent propagation: consumers whose index domains may now be known can
  // seal the extents of the fields they store to. The targets are derived
  // from static structure alone, so this shard can compute them for every
  // consumer — but the seal *check* must run on the target field's owner.
  for (const Program::Use& use : program_.consumers_of(field)) {
    const KernelDef& k = program_.kernel(use.kernel);
    const FetchDecl& f = k.fetches[use.statement];
    Age instance_age;
    if (f.age.kind == AgeExpr::Kind::kConst) {
      if (f.age.value != age) continue;
      // Constant-age fetches influence every instance age; propagation for
      // those is driven by the kernel's relative-age fetches instead.
      if (!k.is_run_once()) continue;
      instance_age = 0;
    } else {
      instance_age = age - f.age.value;
      if (instance_age < 0 || instance_age > runtime_.cap_of(k.id)) continue;
    }
    for (size_t st = 0; st < k.stores.size(); ++st) {
      const Age target = k.stores[st].age.resolve(instance_age);
      if (target < 0) continue;
      const FieldId tf = k.stores[st].field;
      if (field_shard(tf) == s.index) {
        s.seal_worklist.emplace_back(tf, target);
      } else {
        SealCheckEvent request;
        request.field = tf;
        request.age = target;
        send_shard(s, field_shard(tf), request);
      }
    }
  }

  // Newly sealed extents can complete whole-field fetches and make domains
  // enumerable; rescan consumers unconstrained.
  announce_scan(s, field, age, nullptr);
}

void DependencyAnalyzer::announce_scan(Shard& s, FieldId field, Age age,
                                       const nd::Region* written) {
  scan_local(s, field, age, written);
  uint64_t mask = field_consumer_shards_[static_cast<size_t>(field)] &
                  ~(uint64_t{1} << s.index);
  for (size_t target = 0; mask != 0; ++target, mask >>= 1) {
    if ((mask & 1) == 0) continue;
    ScanConsumersEvent notify;
    notify.field = field;
    notify.age = age;
    notify.constrained = written != nullptr;
    if (written != nullptr) notify.region = *written;
    notify.ctx = s.current_cause;
    send_shard(s, target, notify);
  }
}

void DependencyAnalyzer::scan_local(Shard& s, FieldId field, Age age,
                                    const nd::Region* written) {
  for (const Program::Use& use : program_.consumers_of(field)) {
    if (kernel_shard(use.kernel) != s.index) continue;
    const KernelDef& k = program_.kernel(use.kernel);
    const FetchDecl& f = k.fetches[use.statement];

    if (f.age.kind == AgeExpr::Kind::kRelative) {
      // Exactly one instance age is influenced through this fetch.
      const Age a = age - f.age.value;
      if (a >= 0) try_enumerate(s, k, a, use.statement, written);
      continue;
    }

    // Constant-age fetch. Run-once kernels have exactly instance age 0;
    // aged kernels (e.g. the k-means datapoints field, stored once and
    // fetched by every assign age) are re-driven precisely through the
    // (field, age)-keyed retry index fired below.
    if (f.age.value != age) continue;
    if (k.is_run_once()) try_enumerate(s, k, 0, use.statement, written);
  }

  fire_retries(s, field, age);
}

void DependencyAnalyzer::fire_retries(Shard& s, FieldId field, Age age) {
  const auto it = s.retry.find({field, age});
  if (it == s.retry.end()) return;
  // Entries re-register themselves (possibly under a different blocking
  // field) when they are still blocked; detach first so the re-inserts do
  // not grow the set being walked.
  const std::set<std::pair<KernelId, Age>> entries = std::move(it->second);
  s.retry.erase(it);
  for (const auto& [kernel, a] : entries) {
    try_enumerate(s, program_.kernel(kernel), a, std::nullopt, nullptr);
  }
}

void DependencyAnalyzer::register_retry(Shard& s, const KernelDef& def,
                                        Age age, size_t fetch_index) {
  const FetchDecl& f = def.fetches[fetch_index];
  const Age ga = f.age.resolve(age);
  if (ga < 0) return;
  // Relative-age fetches (and run-once consumers) are already re-driven by
  // the direct consumer scan of every store/seal event on (field, ga) —
  // indexing them too would re-enumerate the whole candidate space per
  // store event, bypassing the constrained certificate fast path and
  // turning per-store work quadratic. Only constant-age fetches of aged
  // kernels escape the direct scans and need the index.
  if (f.age.kind == AgeExpr::Kind::kRelative || def.is_run_once()) return;
  s.retry[{f.field, ga}].insert({def.id, age});
}

void DependencyAnalyzer::try_enumerate(Shard& s, const KernelDef& def,
                                       Age age,
                                       std::optional<size_t> constrain_fetch,
                                       const nd::Region* written) {
  if (age < 0 || age > runtime_.cap_of(def.id)) return;
  if (!runtime_.kernel_enabled(def.id)) return;  // runs on another node
  if (def.is_run_once() && age != 0) return;
  if (def.is_source()) return;  // sources are driven by done events

  KernelDispatch& kd = dispatch_[static_cast<size_t>(def.id)];
  if (age_closed(kd, age)) return;  // every instance already dispatched

  // Certificate fast path: when the event region arrives through a
  // certified fetch, that fetch's data is statically known to be fully
  // written for every candidate the region admits (see
  // IndependenceCertificate), so both its age-level gate and its
  // per-candidate region check below are skipped.
  const bool cert_skip = constrain_fetch && written != nullptr &&
                         certified(def.id, *constrain_fetch);

  // Age-level gates shared by every candidate of this (kernel, age). A
  // failed gate registers a retry on the exact (field, age) that blocks.
  for (size_t fi = 0; fi < def.fetches.size(); ++fi) {
    const FetchDecl& f = def.fetches[fi];
    const Age ga = f.age.resolve(age);
    if (ga < 0) return;  // this age can never run
    if (cert_skip && fi == *constrain_fetch) continue;
    if (f.slice.is_whole()) {
      if (!storage(f.field).is_complete(ga)) {
        register_retry(s, def, age, fi);
        return;
      }
    } else if (has_all_dim(f.slice)) {
      if (!storage(f.field).is_sealed(ga)) {
        register_retry(s, def, age, fi);
        return;
      }
    }
  }

  // Variable ranges: start from the domain when known, otherwise rely on
  // the constraining region to bound them.
  const size_t nvars = def.index_vars.size();
  std::vector<nd::Interval> ranges(nvars, nd::Interval{0, kHuge});
  bool domain_final = true;
  for (size_t v = 0; v < nvars; ++v) {
    const auto binding = def.binding_of_var(static_cast<int>(v));
    check_internal(binding.has_value(), "unbound index variable survived "
                                        "validation");
    const FetchDecl& bf = def.fetches[binding->fetch_index];
    const Age ga = bf.age.resolve(age);
    if (ga >= 0 && storage(bf.field).is_sealed(ga)) {
      ranges[v] = nd::Interval{0, storage(bf.field).extents(ga).dim(
                                      binding->dim)};
    } else {
      domain_final = false;
    }
  }

  // Sealed extents are immutable, so once every binding is sealed the
  // candidate space is final: record its size so the age can close (and
  // its coord set retire) as soon as that many instances dispatched —
  // whether by this pass or by later constrained scans.
  if (domain_final) {
    int64_t total = 1;
    for (const nd::Interval& r : ranges) total *= r.length();
    AgeDispatch& ad = kd.open[age];
    ad.total = total;
    if (static_cast<int64_t>(ad.coords.size()) >= total) {
      close_age(s, def.id, age);
      return;
    }
  }

  if (constrain_fetch && written != nullptr) {
    const nd::SliceSpec& slice = def.fetches[*constrain_fetch].slice;
    if (!slice.constrain(*written, ranges)) return;  // region cannot help
  }

  for (size_t v = 0; v < nvars; ++v) {
    if (ranges[v].end >= kHuge) {
      // Unbounded variable: cannot enumerate yet; retry when the binding
      // field age seals.
      register_retry(s, def, age,
                     def.binding_of_var(static_cast<int>(v))->fetch_index);
      return;
    }
    if (ranges[v].empty()) return;  // empty slice, no instances to add
  }

  // Enumerate the candidate product space.
  uint64_t blocked_fetches = 0;
  nd::Coord coord(nvars);
  for (size_t v = 0; v < nvars; ++v) coord[v] = ranges[v].begin;
  while (true) {
    if (!is_dispatched(def.id, age, coord)) {
      size_t blocking = SIZE_MAX;
      if (satisfied(s, def, age, coord,
                    cert_skip ? constrain_fetch : std::nullopt, &blocking)) {
        create_instance(s, def, age, coord);
        if (age_closed(kd, age)) break;  // auto-closed: nothing left
      } else if (blocking != SIZE_MAX && blocking < 64) {
        blocked_fetches |= uint64_t{1} << blocking;
      }
    }
    // Advance the product iterator (row-major).
    if (nvars == 0) break;
    size_t v = nvars;
    bool carry_out = true;
    while (v-- > 0) {
      if (++coord[v] < ranges[v].end) {
        carry_out = false;
        break;
      }
      coord[v] = ranges[v].begin;
    }
    if (carry_out) break;
  }

  // Register each distinct blocking field age: unsatisfied candidates are
  // revisited only when data that can actually unblock them arrives.
  for (size_t fi = 0; blocked_fetches != 0; ++fi, blocked_fetches >>= 1) {
    if (blocked_fetches & 1) register_retry(s, def, age, fi);
  }
}

bool DependencyAnalyzer::satisfied(Shard& s, const KernelDef& def, Age age,
                                   const nd::Coord& coord,
                                   std::optional<size_t> skip_fetch,
                                   size_t* blocking_fetch) {
  for (size_t fi = 0; fi < def.fetches.size(); ++fi) {
    const FetchDecl& f = def.fetches[fi];
    const Age ga = f.age.resolve(age);
    if (ga < 0) return false;
    if (skip_fetch && fi == *skip_fetch) {
      ++s.certified_skips;
      continue;
    }
    FieldStorage& fs = storage(f.field);
    if (f.slice.is_whole()) {
      if (!fs.is_complete(ga)) {
        if (blocking_fetch != nullptr) *blocking_fetch = fi;
        return false;
      }
    } else {
      if (has_all_dim(f.slice) && !fs.is_sealed(ga)) {
        if (blocking_fetch != nullptr) *blocking_fetch = fi;
        return false;
      }
      const nd::Region region = f.slice.resolve(coord, fs.extents(ga));
      if (!fs.region_written(ga, region)) {
        if (blocking_fetch != nullptr) *blocking_fetch = fi;
        return false;
      }
    }
  }
  return true;
}

bool DependencyAnalyzer::is_dispatched(KernelId kernel, Age age,
                                       const nd::Coord& coord) const {
  const KernelDispatch& kd = dispatch_[static_cast<size_t>(kernel)];
  if (age_closed(kd, age)) return true;
  const auto it = kd.open.find(age);
  return it != kd.open.end() && it->second.coords.count(coord) != 0;
}

bool DependencyAnalyzer::mark_dispatched(Shard& s, KernelId kernel, Age age,
                                         nd::Coord coord) {
  KernelDispatch& kd = dispatch_[static_cast<size_t>(kernel)];
  if (age_closed(kd, age)) return false;
  AgeDispatch& ad = kd.open[age];
  if (!ad.coords.insert(std::move(coord)).second) return false;
  ++s.dispatched_total;
  if (ad.total >= 0 && static_cast<int64_t>(ad.coords.size()) >= ad.total) {
    close_age(s, kernel, age);
  }
  return true;
}

void DependencyAnalyzer::close_age(Shard& s, KernelId kernel, Age age) {
  KernelDispatch& kd = dispatch_[static_cast<size_t>(kernel)];
  if (age_closed(kd, age)) return;
  kd.open.erase(age);
  if (age == kd.closed_below) {
    ++kd.closed_below;
    // Absorb previously closed sparse ages into the watermark.
    auto it = kd.closed_sparse.begin();
    while (it != kd.closed_sparse.end() && *it == kd.closed_below) {
      it = kd.closed_sparse.erase(it);
      ++kd.closed_below;
    }
  } else if (age > kd.closed_below) {
    kd.closed_sparse.insert(age);
  }
  // A fused downstream's candidates are exactly the mapped upstream coords
  // (its sole fetch is the upstream's store); once the upstream age fully
  // dispatched, every twin is marked, so the downstream age closes too.
  const auto& cfg = runtime_.kcfg_[static_cast<size_t>(kernel)];
  if (cfg.fusion != nullptr) {
    const Age down_age = age + cfg.fusion->age_delta;
    if (down_age >= 0) close_age(s, cfg.fusion->downstream, down_age);
  }
}

void DependencyAnalyzer::create_instance(Shard& s, const KernelDef& def,
                                         Age age, nd::Coord coord) {
  ChunkBuffer& buffer = s.chunk_buffers[{def.id, age}];
  if (!buffer.cause.valid()) buffer.cause = s.current_cause;
  buffer.coords.push_back(coord);

  // A fused downstream twin runs inside the upstream's work item; mark it
  // dispatched *now* (before any event can be observed) so no scan can
  // double-run it. Fusion forces both kernels onto this shard.
  const auto& cfg = runtime_.kcfg_[static_cast<size_t>(def.id)];
  if (cfg.fusion != nullptr) {
    const auto& fu = *cfg.fusion;
    nd::Coord down_coord(fu.coord_map.size());
    for (size_t v = 0; v < fu.coord_map.size(); ++v) {
      down_coord[v] = coord[fu.coord_map[v]];
    }
    mark_dispatched(s, fu.downstream, age + fu.age_delta,
                    std::move(down_coord));
  }

  mark_dispatched(s, def.id, age, std::move(coord));
}

void DependencyAnalyzer::flush_chunks(Shard& s) {
  if (s.chunk_buffers.empty()) return;
  std::vector<WorkItem> batch;
  for (auto& [key, buffer] : s.chunk_buffers) {
    std::vector<nd::Coord>& coords = buffer.coords;
    const auto [kernel, age] = key;
    const int64_t chunk = std::max<int64_t>(
        1, runtime_.kcfg_[static_cast<size_t>(kernel)].chunk.load(
               std::memory_order_relaxed));
    const bool serial = program_.kernel(kernel).serial;
    const size_t total = coords.size();
    size_t begin = 0;
    while (begin < total) {
      const size_t end = std::min(total, begin + static_cast<size_t>(chunk));
      WorkItem item;
      item.kernel = kernel;
      item.age = age;
      item.cause = buffer.cause;
      if (begin == 0 && end == total) {
        item.coords = std::move(coords);  // whole buffer in one item
      } else {
        item.coords.reserve(end - begin);
        std::move(coords.begin() + static_cast<ptrdiff_t>(begin),
                  coords.begin() + static_cast<ptrdiff_t>(end),
                  std::back_inserter(item.coords));
      }
      if (serial) {
        submit_or_park(s, std::move(item));
      } else {
        batch.push_back(std::move(item));
      }
      begin = end;
    }
  }
  s.chunk_buffers.clear();
  // One ready-queue lock and at most one worker wakeup for the whole flush;
  // push_batch is safe to call from every shard concurrently.
  runtime_.submit_batch(std::move(batch));
}

void DependencyAnalyzer::submit_or_park(Shard& s, WorkItem item) {
  const KernelDef& def = program_.kernel(item.kernel);
  if (!def.serial) {
    runtime_.submit(std::move(item));
    return;
  }
  SerialState& state = serial_[static_cast<size_t>(def.id)];
  if (item.age == state.next && !state.in_flight) {
    state.in_flight = true;
    runtime_.submit(std::move(item));
  } else {
    check_internal(!state.parked.count(item.age),
                   "duplicate parked serial instance of kernel '" +
                       def.name + "'");
    runtime_.add_outstanding(1);
    state.parked.emplace(item.age, std::move(item));
  }
}

std::optional<std::vector<int64_t>> DependencyAnalyzer::domain_of(
    const KernelDef& def, Age age) const {
  std::vector<int64_t> lengths(def.index_vars.size(), 0);
  for (size_t v = 0; v < def.index_vars.size(); ++v) {
    const auto binding = def.binding_of_var(static_cast<int>(v));
    check_internal(binding.has_value(), "unbound variable in domain_of");
    const FetchDecl& bf = def.fetches[binding->fetch_index];
    const Age ga = bf.age.resolve(age);
    if (ga < 0) {
      lengths[v] = 0;  // empty domain: this age can never run
      continue;
    }
    if (!storage(bf.field).is_sealed(ga)) return std::nullopt;
    lengths[v] = storage(bf.field).extents(ga).dim(binding->dim);
  }
  return lengths;
}

}  // namespace p2g
