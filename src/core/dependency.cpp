#include "core/dependency.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/logging.h"

namespace p2g {

namespace {

/// Sentinel upper bound for "unknown domain, hope the event constrains it".
constexpr int64_t kHuge = std::numeric_limits<int64_t>::max() / 4;

bool has_all_dim(const nd::SliceSpec& slice) {
  if (slice.is_whole()) return false;
  for (const nd::SliceDim& d : slice.dims()) {
    if (d.kind == nd::SliceDim::Kind::kAll) return true;
  }
  return false;
}

}  // namespace

std::vector<Age> DependencyAnalyzer::first_feasible_ages(
    const Program& program) {
  const size_t nk = program.kernels().size();
  const size_t nf = program.fields().size();
  // first_age[F]: minimal age at which field F can receive data.
  std::vector<Age> field_first(nf, kInfeasible);
  std::vector<Age> kernel_first(nk, kInfeasible);

  // Monotone relaxation: values only decrease, bounded below by 0.
  for (size_t round = 0; round < nk + nf + 8; ++round) {
    bool changed = false;
    for (const KernelDef& k : program.kernels()) {
      Age first;
      if (k.fetches.empty()) {
        first = 0;  // run-once and source kernels start immediately
      } else {
        first = 0;
        for (const FetchDecl& f : k.fetches) {
          const Age ff = field_first[static_cast<size_t>(f.field)];
          if (ff >= kInfeasible) {
            first = kInfeasible;
            break;
          }
          if (f.age.kind == AgeExpr::Kind::kRelative) {
            // Need a + offset >= ff and a + offset >= 0.
            first = std::max(first, ff - f.age.value);
            first = std::max(first, -f.age.value);
          } else if (f.age.value < ff) {
            first = kInfeasible;  // constant age never written
            break;
          }
        }
      }
      if (first < kernel_first[k.id]) {
        kernel_first[static_cast<size_t>(k.id)] = first;
        changed = true;
      }
      if (kernel_first[static_cast<size_t>(k.id)] >= kInfeasible) continue;
      for (const StoreDecl& s : k.stores) {
        const Age target =
            s.age.kind == AgeExpr::Kind::kConst
                ? s.age.value
                : kernel_first[static_cast<size_t>(k.id)] + s.age.value;
        if (target >= 0 &&
            target < field_first[static_cast<size_t>(s.field)]) {
          field_first[static_cast<size_t>(s.field)] = target;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return kernel_first;
}

DependencyAnalyzer::DependencyAnalyzer(Runtime& runtime)
    : runtime_(runtime), program_(runtime.program()) {
  const std::vector<Age> first = first_feasible_ages(program_);
  for (const KernelDef& k : program_.kernels()) {
    if (k.serial && first[static_cast<size_t>(k.id)] < kInfeasible) {
      serial_[k.id].next = first[static_cast<size_t>(k.id)];
    }
  }

  // Resolve embedded independence certificates (Program::certify) into a
  // per-kernel per-fetch bitmap for the try_enumerate hot path.
  certified_.resize(program_.kernels().size());
  if (runtime_.options_.use_certificates) {
    for (const IndependenceCertificate& cert : program_.certificates()) {
      auto& flags = certified_[static_cast<size_t>(cert.consumer)];
      const size_t nfetches =
          program_.kernel(cert.consumer).fetches.size();
      if (flags.empty()) flags.assign(nfetches, 0);
      if (cert.fetch < flags.size()) flags[cert.fetch] = 1;
    }
  }
}

void DependencyAnalyzer::bootstrap() {
  for (const KernelDef& def : program_.kernels()) {
    if (!runtime_.kernel_enabled(def.id)) continue;
    if (def.is_run_once() && def.fetches.empty()) {
      create_instance(def, 0, {});
    } else if (def.is_source()) {
      const InstanceKey key{def.id, 0, {}};
      dispatched_.insert(key);
      WorkItem item;
      item.kernel = def.id;
      item.age = 0;
      item.coords = {nd::Coord{}};
      runtime_.submit(std::move(item));
    }
  }
  flush_chunks();
}

void DependencyAnalyzer::handle_one(const Event& event) {
  current_cause_ = TraceContext{};  // done/rescan-created work is untraced
  if (const auto* store = std::get_if<StoreEvent>(&event)) {
    handle_store(*store);
  } else if (const auto* done = std::get_if<InstanceDoneEvent>(&event)) {
    handle_done(*done);
  } else if (const auto* rescan = std::get_if<RescanEvent>(&event)) {
    handle_rescan(*rescan);
  }
}

void DependencyAnalyzer::handle(const Event& event) {
  handle_one(event);
  flush_chunks();
  // Periodically revisit the data-granularity decisions (paper §V-A).
  if ((++events_handled_ & 0x3FF) == 0) runtime_.adapt_granularity();
}

void DependencyAnalyzer::handle_batch(const std::deque<Event>& events) {
  for (const Event& event : events) handle_one(event);
  flush_chunks();
  // Same ~1024-event cadence as handle(), crossed at batch granularity.
  const int64_t before = events_handled_;
  events_handled_ += static_cast<int64_t>(events.size());
  if ((before >> 10) != (events_handled_ >> 10)) runtime_.adapt_granularity();
}

void DependencyAnalyzer::handle_store(const StoreEvent& event) {
  // Everything this store makes runnable — directly or through the seal
  // cascade — is causally downstream of it.
  current_cause_ = event.ctx;
  FieldAgeState& state = fa_states_[{event.field, event.age}];

  if (event.producer != kInvalidKernel) {
    const ProducerKey key{event.producer, event.store_decl};
    if (event.whole) {
      state.satisfied.emplace(key, event.region.required_extents());
    } else {
      const KernelDef& producer = program_.kernel(event.producer);
      const nd::SliceSpec& slice = producer.stores[event.store_decl].slice;
      const bool needs_witness =
          has_all_dim(slice) || producer.is_source() ||
          producer.is_run_once();
      if (needs_witness && !state.witnesses.count(key)) {
        std::vector<int64_t> lengths(slice.dims().size(), -1);
        for (size_t i = 0; i < slice.dims().size(); ++i) {
          if (slice.dims()[i].kind == nd::SliceDim::Kind::kAll) {
            lengths[i] = event.region.interval(i).length();
          }
        }
        state.witnesses.emplace(key, std::move(lengths));
      }
    }
  }

  check_seal(event.field, event.age);
  drain_seal_worklist();
  scan_consumers(event.field, event.age, &event.region);
}

void DependencyAnalyzer::handle_done(const InstanceDoneEvent& event) {
  const KernelDef& def = program_.kernel(event.kernel);

  if (def.serial) {
    SerialState& state = serial_[def.id];
    state.in_flight = false;
    state.next = event.age + 1;
    const auto it = state.parked.find(state.next);
    if (it != state.parked.end()) {
      WorkItem item = std::move(it->second);
      state.parked.erase(it);
      state.in_flight = true;
      runtime_.submit(std::move(item), /*already_counted=*/true);
    }
  }

  if (def.is_source() && event.continue_next_age) {
    const Age next = event.age + 1;
    if (next <= runtime_.cap_of(def.id)) {
      const InstanceKey key{def.id, next, {}};
      if (dispatched_.insert(key).second) {
        WorkItem item;
        item.kernel = def.id;
        item.age = next;
        item.coords = {nd::Coord{}};
        runtime_.submit(std::move(item));
      }
    }
  }
}

void DependencyAnalyzer::handle_rescan(const RescanEvent& event) {
  const KernelDef& def = program_.kernel(event.kernel);
  // `enabled` is only ever read on this thread (try_enumerate/bootstrap),
  // so the flip needs no synchronization.
  runtime_.kcfg_[static_cast<size_t>(def.id)].enabled = true;

  if (def.is_source()) {
    // Re-drive the source chain from age 0. Instances whose output already
    // arrived re-store idempotently and their continue flags rebuild the
    // chain up to the first genuinely lost age.
    const InstanceKey key{def.id, 0, {}};
    if (dispatched_.insert(key).second) {
      WorkItem item;
      item.kernel = def.id;
      item.age = 0;
      item.coords = {nd::Coord{}};
      runtime_.submit(std::move(item));
    }
    return;
  }

  // General kernel: every live age of a fetched field names an instance age
  // that may now be runnable here. try_enumerate dedups via dispatched_ and
  // re-checks satisfaction, so over-approximating the age set is safe.
  std::set<Age> ages;
  ages.insert(0);
  for (const FetchDecl& f : def.fetches) {
    if (f.age.kind != AgeExpr::Kind::kRelative) continue;
    for (const Age la : storage(f.field).live_ages()) {
      const Age a = la - f.age.value;
      if (a >= 0) ages.insert(a);
    }
  }
  for (const Age a : ages) {
    try_enumerate(def, a, std::nullopt, nullptr);
  }
}

void DependencyAnalyzer::check_seal(FieldId field, Age age) {
  FieldAgeState& state = fa_states_[{field, age}];
  if (state.sealed) return;

  // Enumerate the producers of this (field, age).
  struct ActiveProducer {
    ProducerKey key;
    Age instance_age;
    const StoreDecl* decl;
    const KernelDef* kernel;
  };
  std::vector<ActiveProducer> producers;
  for (const Program::Use& use : program_.producers_of(field)) {
    const KernelDef& k = program_.kernel(use.kernel);
    const StoreDecl& d = k.stores[use.statement];
    Age instance_age;
    if (d.age.kind == AgeExpr::Kind::kConst) {
      if (d.age.value != age) continue;
      instance_age = 0;  // run-once semantics; aged kernels with const
                         // stores contribute via witnesses below
    } else {
      instance_age = age - d.age.value;
      if (instance_age < 0 || instance_age > runtime_.cap_of(k.id)) continue;
    }
    producers.push_back(
        ActiveProducer{ProducerKey{k.id, use.statement}, instance_age, &d, &k});
  }
  if (producers.empty()) return;  // nothing will ever define this age

  nd::Extents extents;
  bool first = true;
  for (const ActiveProducer& p : producers) {
    nd::Extents contribution;
    const auto sat = state.satisfied.find(p.key);
    if (sat != state.satisfied.end()) {
      contribution = sat->second;  // whole-store producers
    } else if (p.decl->slice.is_whole()) {
      return;  // whole store not seen yet
    } else {
      // Elementwise producer: extents derive from its index domain plus a
      // witness store for all() dimensions / witness-only producers.
      const bool needs_witness = has_all_dim(p.decl->slice) ||
                                 p.kernel->is_source() ||
                                 p.kernel->is_run_once();
      const std::vector<int64_t>* witness = nullptr;
      if (needs_witness) {
        const auto wit = state.witnesses.find(p.key);
        if (wit == state.witnesses.end()) return;  // no witness yet
        witness = &wit->second;
      }
      std::optional<std::vector<int64_t>> domain;
      if (!p.kernel->index_vars.empty()) {
        domain = domain_of(*p.kernel, p.instance_age);
        if (!domain) return;  // domain not known yet
      }
      std::vector<int64_t> dims(p.decl->slice.dims().size(), 0);
      for (size_t i = 0; i < dims.size(); ++i) {
        const nd::SliceDim& sd = p.decl->slice.dims()[i];
        switch (sd.kind) {
          case nd::SliceDim::Kind::kVar:
            dims[i] = (*domain)[static_cast<size_t>(sd.var)];
            break;
          case nd::SliceDim::Kind::kConst:
            dims[i] = sd.value + 1;
            break;
          case nd::SliceDim::Kind::kAll:
            dims[i] = (*witness)[i];
            break;
        }
      }
      contribution = nd::Extents(std::move(dims));
    }
    extents = first ? contribution : extents.max_with(contribution);
    first = false;
  }

  state.sealed = true;
  storage(field).seal(age, extents);
  P2G_DEBUG << "sealed field '" << program_.field(field).name << "' age "
            << age << " at " << extents.to_string();
  on_sealed(field, age);
}

void DependencyAnalyzer::drain_seal_worklist() {
  while (!seal_worklist_.empty()) {
    const auto [field, age] = seal_worklist_.front();
    seal_worklist_.pop_front();
    check_seal(field, age);
  }
}

void DependencyAnalyzer::on_sealed(FieldId field, Age age) {
  // Extent propagation: consumers whose index domains may now be known can
  // seal the extents of the fields they store to.
  for (const Program::Use& use : program_.consumers_of(field)) {
    const KernelDef& k = program_.kernel(use.kernel);
    const FetchDecl& f = k.fetches[use.statement];
    Age instance_age;
    if (f.age.kind == AgeExpr::Kind::kConst) {
      if (f.age.value != age) continue;
      // Constant-age fetches influence every instance age; propagation for
      // those is driven by the kernel's relative-age fetches instead.
      if (!k.is_run_once()) continue;
      instance_age = 0;
    } else {
      instance_age = age - f.age.value;
      if (instance_age < 0 || instance_age > runtime_.cap_of(k.id)) continue;
    }
    for (size_t s = 0; s < k.stores.size(); ++s) {
      const Age target = k.stores[s].age.resolve(instance_age);
      if (target >= 0) {
        seal_worklist_.emplace_back(k.stores[s].field, target);
      }
    }
  }

  // Newly sealed extents can complete whole-field fetches and make domains
  // enumerable; rescan consumers unconstrained.
  scan_consumers(field, age, nullptr);
}

void DependencyAnalyzer::scan_consumers(FieldId field, Age age,
                                        const nd::Region* written) {
  for (const Program::Use& use : program_.consumers_of(field)) {
    const KernelDef& k = program_.kernel(use.kernel);
    const FetchDecl& f = k.fetches[use.statement];

    if (f.age.kind == AgeExpr::Kind::kRelative) {
      // Exactly one instance age is influenced through this fetch.
      const Age a = age - f.age.value;
      if (a >= 0) try_enumerate(k, a, use.statement, written);
      continue;
    }

    // Constant-age fetch. For run-once kernels the instance age is 0; for
    // aged kernels the event can unblock *any* age whose candidates were
    // previously unsatisfied (e.g. the k-means datapoints field, stored
    // once and fetched by every assign age) — those ages are in the retry
    // set. Constant-age fields receive few events, so this stays cheap.
    if (f.age.value != age) continue;
    if (k.is_run_once()) {
      try_enumerate(k, 0, use.statement, written);
      continue;
    }
    const auto retry_it = retry_.find(k.id);
    if (retry_it != retry_.end()) {
      const std::set<Age> retry_ages = retry_it->second;  // copy: mutated
      for (const Age a : retry_ages) {
        try_enumerate(k, a, std::nullopt, nullptr);
      }
    }
  }
}

void DependencyAnalyzer::try_enumerate(const KernelDef& def, Age age,
                                       std::optional<size_t> constrain_fetch,
                                       const nd::Region* written) {
  if (age < 0 || age > runtime_.cap_of(def.id)) return;
  if (!runtime_.kernel_enabled(def.id)) return;  // runs on another node
  if (def.is_run_once() && age != 0) return;
  if (def.is_source()) return;  // sources are driven by done events

  // Certificate fast path: when the event region arrives through a
  // certified fetch, that fetch's data is statically known to be fully
  // written for every candidate the region admits (see
  // IndependenceCertificate), so both its age-level gate and its
  // per-candidate region check below are skipped.
  const bool cert_skip = constrain_fetch && written != nullptr &&
                         certified(def.id, *constrain_fetch);

  // Age-level gates shared by every candidate of this (kernel, age).
  for (size_t fi = 0; fi < def.fetches.size(); ++fi) {
    const FetchDecl& f = def.fetches[fi];
    const Age ga = f.age.resolve(age);
    if (ga < 0) return;  // this age can never run
    if (cert_skip && fi == *constrain_fetch) continue;
    if (f.slice.is_whole()) {
      if (!storage(f.field).is_complete(ga)) {
        retry_[def.id].insert(age);
        return;
      }
    } else if (has_all_dim(f.slice)) {
      if (!storage(f.field).is_sealed(ga)) {
        retry_[def.id].insert(age);
        return;
      }
    }
  }

  // Variable ranges: start from the domain when known, otherwise rely on
  // the constraining region to bound them.
  const size_t nvars = def.index_vars.size();
  std::vector<nd::Interval> ranges(nvars, nd::Interval{0, kHuge});
  for (size_t v = 0; v < nvars; ++v) {
    const auto binding = def.binding_of_var(static_cast<int>(v));
    check_internal(binding.has_value(), "unbound index variable survived "
                                        "validation");
    const FetchDecl& bf = def.fetches[binding->fetch_index];
    const Age ga = bf.age.resolve(age);
    if (ga >= 0 && storage(bf.field).is_sealed(ga)) {
      ranges[v] = nd::Interval{0, storage(bf.field).extents(ga).dim(
                                      binding->dim)};
    }
  }

  if (constrain_fetch && written != nullptr) {
    const nd::SliceSpec& slice = def.fetches[*constrain_fetch].slice;
    if (!slice.constrain(*written, ranges)) return;  // region cannot help
  }

  for (const nd::Interval& r : ranges) {
    if (r.end >= kHuge) {
      // Unbounded variable: cannot enumerate yet; retry on later events.
      retry_[def.id].insert(age);
      return;
    }
    if (r.empty()) return;  // empty domain, no instances at this age
  }

  // Enumerate the candidate product space.
  bool any_unsatisfied = false;
  nd::Coord coord(nvars);
  for (size_t v = 0; v < nvars; ++v) coord[v] = ranges[v].begin;
  while (true) {
    InstanceKey key{def.id, age, coord};
    if (!dispatched_.count(key)) {
      if (satisfied(def, age, coord,
                    cert_skip ? constrain_fetch : std::nullopt)) {
        create_instance(def, age, coord);
      } else {
        any_unsatisfied = true;
      }
    }
    // Advance the product iterator (row-major).
    if (nvars == 0) break;
    size_t v = nvars;
    bool carry_out = true;
    while (v-- > 0) {
      if (++coord[v] < ranges[v].end) {
        carry_out = false;
        break;
      }
      coord[v] = ranges[v].begin;
    }
    if (carry_out) break;
  }

  if (any_unsatisfied) {
    retry_[def.id].insert(age);
  } else if (!constrain_fetch) {
    // A full, unconstrained enumeration dispatched everything: no need to
    // revisit this age again.
    const auto it = retry_.find(def.id);
    if (it != retry_.end()) it->second.erase(age);
  }
}

bool DependencyAnalyzer::satisfied(const KernelDef& def, Age age,
                                   const nd::Coord& coord,
                                   std::optional<size_t> skip_fetch) const {
  for (size_t fi = 0; fi < def.fetches.size(); ++fi) {
    const FetchDecl& f = def.fetches[fi];
    const Age ga = f.age.resolve(age);
    if (ga < 0) return false;
    if (skip_fetch && fi == *skip_fetch) {
      ++certified_skips_;
      continue;
    }
    FieldStorage& fs = storage(f.field);
    if (f.slice.is_whole()) {
      if (!fs.is_complete(ga)) return false;
    } else {
      if (has_all_dim(f.slice) && !fs.is_sealed(ga)) return false;
      const nd::Region region = f.slice.resolve(coord, fs.extents(ga));
      if (!fs.region_written(ga, region)) return false;
    }
  }
  return true;
}

void DependencyAnalyzer::create_instance(const KernelDef& def, Age age,
                                         nd::Coord coord) {
  dispatched_.insert(InstanceKey{def.id, age, coord});

  // A fused downstream twin runs inside the upstream's work item; mark it
  // dispatched *now* (analyzer thread) so no event can double-run it.
  const auto& cfg = runtime_.kcfg_[static_cast<size_t>(def.id)];
  if (cfg.fusion != nullptr) {
    const auto& fu = *cfg.fusion;
    nd::Coord down_coord(fu.coord_map.size());
    for (size_t v = 0; v < fu.coord_map.size(); ++v) {
      down_coord[v] = coord[fu.coord_map[v]];
    }
    dispatched_.insert(
        InstanceKey{fu.downstream, age + fu.age_delta, std::move(down_coord)});
  }

  ChunkBuffer& buffer = chunk_buffers_[{def.id, age}];
  if (!buffer.cause.valid()) buffer.cause = current_cause_;
  buffer.coords.push_back(std::move(coord));
}

void DependencyAnalyzer::flush_chunks() {
  if (chunk_buffers_.empty()) return;
  std::vector<WorkItem> batch;
  for (auto& [key, buffer] : chunk_buffers_) {
    std::vector<nd::Coord>& coords = buffer.coords;
    const auto [kernel, age] = key;
    const int64_t chunk =
        std::max<int64_t>(1, runtime_.kcfg_[static_cast<size_t>(kernel)].chunk);
    const bool serial = program_.kernel(kernel).serial;
    const size_t total = coords.size();
    size_t begin = 0;
    while (begin < total) {
      const size_t end = std::min(total, begin + static_cast<size_t>(chunk));
      WorkItem item;
      item.kernel = kernel;
      item.age = age;
      item.cause = buffer.cause;
      if (begin == 0 && end == total) {
        item.coords = std::move(coords);  // whole buffer in one item
      } else {
        item.coords.reserve(end - begin);
        std::move(coords.begin() + static_cast<ptrdiff_t>(begin),
                  coords.begin() + static_cast<ptrdiff_t>(end),
                  std::back_inserter(item.coords));
      }
      if (serial) {
        submit_or_park(std::move(item));
      } else {
        batch.push_back(std::move(item));
      }
      begin = end;
    }
  }
  chunk_buffers_.clear();
  // One ready-queue lock and at most one worker wakeup for the whole flush.
  runtime_.submit_batch(std::move(batch));
}

void DependencyAnalyzer::submit_or_park(WorkItem item) {
  const KernelDef& def = program_.kernel(item.kernel);
  if (!def.serial) {
    runtime_.submit(std::move(item));
    return;
  }
  SerialState& state = serial_[def.id];
  if (item.age == state.next && !state.in_flight) {
    state.in_flight = true;
    runtime_.submit(std::move(item));
  } else {
    check_internal(!state.parked.count(item.age),
                   "duplicate parked serial instance of kernel '" +
                       def.name + "'");
    runtime_.add_outstanding(1);
    state.parked.emplace(item.age, std::move(item));
  }
}

std::optional<std::vector<int64_t>> DependencyAnalyzer::domain_of(
    const KernelDef& def, Age age) const {
  std::vector<int64_t> lengths(def.index_vars.size(), 0);
  for (size_t v = 0; v < def.index_vars.size(); ++v) {
    const auto binding = def.binding_of_var(static_cast<int>(v));
    check_internal(binding.has_value(), "unbound variable in domain_of");
    const FetchDecl& bf = def.fetches[binding->fetch_index];
    const Age ga = bf.age.resolve(age);
    if (ga < 0) {
      lengths[v] = 0;  // empty domain: this age can never run
      continue;
    }
    if (!storage(bf.field).is_sealed(ga)) return std::nullopt;
    lengths[v] = storage(bf.field).extents(ga).dim(binding->dim);
  }
  return lengths;
}

}  // namespace p2g
