// Program: the validated static description of a P2G workload, and the
// fluent builder used to construct one from C++ (the kernel-language front
// end in src/lang produces Programs through the same builder).
//
// Example (the paper's mul2 kernel):
//
//   ProgramBuilder pb;
//   pb.field("m_data", nd::ElementType::kInt32, 1);
//   pb.field("p_data", nd::ElementType::kInt32, 1);
//   pb.kernel("mul2")
//       .index("x")
//       .fetch("value", "m_data", AgeExpr::relative(0), Slice().var("x"))
//       .store("out", "p_data", AgeExpr::relative(0), Slice().var("x"))
//       .body([](KernelContext& ctx) {
//         ctx.store_scalar<int32_t>("out", ctx.fetch_scalar<int32_t>("value") * 2);
//       });
//   Program prog = pb.build();
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/field.h"
#include "core/kernel.h"

namespace p2g {

namespace analysis {
struct LintReport;
}

/// A statically proven independence fact about one (field, consumer fetch)
/// pair, produced by the dependence pass (src/analysis/dependence.h) and
/// consumed by the DependencyAnalyzer as a dispatch fast path: when a
/// store event arrives through a certified fetch, every candidate instance
/// the event's region admits is guaranteed to have that fetch's data fully
/// written, so the per-candidate fine-grained region_written check can be
/// skipped.
struct IndependenceCertificate {
  enum class Kind {
    /// The fetch slice is elementwise (every dimension a variable or
    /// constant): any candidate consistent with a committed region reads
    /// only elements inside that region.
    kPointwise,
    /// The field has exactly one producer statement — a whole-field store
    /// from a kernel without index variables — so a single store event
    /// covers the age's entire content.
    kWholeCover,
  };

  Kind kind = Kind::kPointwise;
  FieldId field = kInvalidField;
  KernelId consumer = kInvalidKernel;
  size_t fetch = 0;  ///< fetch statement index within the consumer
  /// Human-readable proof sketch, embedded in serialized reports.
  std::string reason;
};

std::string_view to_string(IndependenceCertificate::Kind kind);

/// Builder-side slice: dimensions address index variables by *name*;
/// ProgramBuilder::build() resolves names to variable ids.
class Slice {
 public:
  struct Dim {
    enum class Kind { kAll, kVar, kConst };
    Kind kind = Kind::kAll;
    std::string var;
    int64_t value = 0;
  };

  /// Default-constructed slice addresses the whole field.
  Slice() = default;

  static Slice whole() { return Slice(); }

  /// Appends a dimension addressed by index variable `name`.
  Slice& var(std::string name);
  /// Appends a dimension covering the full extent.
  Slice& all();
  /// Appends a dimension fixed at a constant index.
  Slice& at(int64_t index);

  bool is_whole() const { return dims_.empty(); }
  const std::vector<Dim>& dims() const { return dims_; }

 private:
  std::vector<Dim> dims_;
};

class ProgramBuilder;

/// Accumulates one kernel definition; obtained from ProgramBuilder::kernel.
class KernelBuilder {
 public:
  /// Declares an index variable (the paper's `index x;`).
  KernelBuilder& index(std::string name);

  /// Adds a fetch statement: `fetch <slot> = field(age)[slice]`.
  KernelBuilder& fetch(std::string slot, std::string field, AgeExpr age,
                       Slice slice);

  /// Adds a store statement: `store field(age)[slice] = <slot>`.
  KernelBuilder& store(std::string slot, std::string field, AgeExpr age,
                       Slice slice);

  KernelBuilder& body(KernelBody fn);

  /// Marks the kernel as ageless: it runs exactly once (the paper's init).
  KernelBuilder& run_once();

  /// Serial kernels execute at most one instance at a time, in strictly
  /// increasing age order (e.g. writing frames to an output stream).
  KernelBuilder& serial();

 private:
  friend class ProgramBuilder;

  struct FetchSpec {
    std::string slot, field;
    AgeExpr age;
    Slice slice;
  };
  struct StoreSpec {
    std::string slot, field;
    AgeExpr age;
    Slice slice;
  };

  std::string name_;
  std::vector<std::string> index_vars_;
  std::vector<FetchSpec> fetches_;
  std::vector<StoreSpec> stores_;
  KernelBody body_;
  bool has_age_ = true;
  bool serial_ = false;
};

/// Validated, immutable workload description.
class Program {
 public:
  const std::vector<FieldDecl>& fields() const { return fields_; }
  const std::vector<KernelDef>& kernels() const { return kernels_; }

  const FieldDecl& field(FieldId id) const;
  const KernelDef& kernel(KernelId id) const;

  /// Id lookup by name; returns kInvalidField / kInvalidKernel when absent.
  FieldId find_field(std::string_view name) const;
  KernelId find_kernel(std::string_view name) const;

  /// Kernels fetching from a field, as (kernel, fetch index) pairs.
  struct Use {
    KernelId kernel;
    size_t statement;  ///< index into fetches/stores of the kernel
  };
  const std::vector<Use>& consumers_of(FieldId field) const;
  const std::vector<Use>& producers_of(FieldId field) const;

  /// Runs the p2g-lint static checks (src/analysis/lint.h) over this
  /// program: write-once conflicts, undefined fetches, non-unrollable
  /// cycles, unsatisfiable constant indices, unused fields/kernels. Throws
  /// ErrorKind::kSema when `throw_on_error` and an error-severity
  /// diagnostic was found; otherwise returns the full report. Defined in
  /// src/analysis/lint.cpp — callers must link p2g_analysis.
  analysis::LintReport validate(bool throw_on_error = true) const;

  /// Runs the symbolic dependence pass (src/analysis/dependence.h) and
  /// embeds the resulting independence certificates into this program for
  /// the runtime's analyzer fast path (RunOptions::use_certificates).
  /// Returns the number of certificates. Defined in
  /// src/analysis/dependence.cpp — callers must link p2g_analysis.
  size_t certify();

  /// Certificates embedded by certify() (empty before it runs).
  const std::vector<IndependenceCertificate>& certificates() const {
    return certificates_;
  }

 private:
  friend class ProgramBuilder;

  std::vector<FieldDecl> fields_;
  std::vector<KernelDef> kernels_;
  std::vector<std::vector<Use>> consumers_;  // indexed by FieldId
  std::vector<std::vector<Use>> producers_;
  std::vector<IndependenceCertificate> certificates_;
};

/// Builds and validates Programs.
class ProgramBuilder {
 public:
  /// Declares a field with element type and rank (number of dimensions).
  ProgramBuilder& field(std::string name, nd::ElementType type, size_t rank);

  /// Same, with declared per-dimension extents (-1 = implicit). Declared
  /// extents feed static analysis only; runtime extents are still
  /// discovered by stores.
  ProgramBuilder& field(std::string name, nd::ElementType type, size_t rank,
                        std::vector<int64_t> declared_extents);

  /// Starts a kernel definition; the returned builder stays valid until
  /// build() is called.
  KernelBuilder& kernel(std::string name);

  /// Validates everything and produces the Program. Throws
  /// ErrorKind::kSema on inconsistencies (unknown fields, unbound index
  /// variables, rank mismatches, ...).
  Program build();

 private:
  std::vector<FieldDecl> fields_;
  std::vector<std::unique_ptr<KernelBuilder>> kernels_;
};

}  // namespace p2g
