// Fields: the central data abstraction of P2G.
//
// A field is a named, typed, multi-dimensional array with an *age*
// dimension. Each (age, element) cell obeys write-once semantics — storing
// twice throws — which is what makes the runtime deterministic and lets the
// dependency analyzer decide runnability from written-bitmaps alone.
//
// Extents are discovered at runtime ("implicit resizing"): stores may grow
// an age's extents until the analyzer *seals* the age, after which the
// extent is final and completeness (`all elements written`) is meaningful.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "check/sync.h"
#include "common/dynamic_bitset.h"
#include "core/ids.h"
#include "nd/buffer.h"
#include "nd/region.h"
#include "nd/view.h"

namespace p2g {

/// Static declaration of a field.
struct FieldDecl {
  FieldId id = kInvalidField;
  std::string name;
  nd::ElementType type = nd::ElementType::kInt32;
  size_t rank = 1;
  /// Optional declared per-dimension extents (the kernel language's
  /// `int32[8] data age;`): empty = fully implicit, otherwise one entry
  /// per dimension with -1 for dimensions left implicit. Runtime extents
  /// are still discovered by stores — declared extents only feed static
  /// analysis (P2G-W008 out-of-bounds slice checks, footprint bounds).
  std::vector<int64_t> declared_extents;

  /// Declared extent of `dim`, or -1 when implicit.
  int64_t declared_extent(size_t dim) const {
    return dim < declared_extents.size() ? declared_extents[dim] : -1;
  }
};

/// Result of a store operation, consumed by the runtime to build events.
struct StoreResult {
  bool resized = false;       ///< extents grew as part of this store
  nd::Extents extents;        ///< extents after the store
};

/// Identity of the kernel instance performing a store, passed down so a
/// write-once violation names the offending writer (and, in checked mode,
/// the previous writer of the same elements).
struct StoreOrigin {
  std::string kernel;   ///< kernel name ("injected" for remote stores)
  Age age = 0;          ///< instance age
  nd::Coord indices;    ///< instance index-variable values

  /// "kernel 'mul2' instance age 3 [2]"
  std::string to_string() const;
};

/// Runtime storage of one field across all live ages. Thread-safe.
class FieldStorage {
 public:
  explicit FieldStorage(FieldDecl decl);

  const FieldDecl& decl() const { return decl_; }

  /// Stores a densely packed region payload into (age, region), enforcing
  /// write-once per element. Grows extents when the region does not fit and
  /// the age is not sealed; throws kOutOfRange if it is. `origin`, when
  /// given, is named in the write-once violation error (and recorded per
  /// region under track_writers).
  StoreResult store(Age age, const nd::Region& region, const std::byte* data,
                    const StoreOrigin* origin = nullptr);

  /// Stores a whole array as (age)'s complete content. The age's extents
  /// become at least the buffer's extents.
  StoreResult store_whole(Age age, const nd::AnyBuffer& data,
                          const StoreOrigin* origin = nullptr);

  /// Fill-mode store: writes only the elements of `region` that have not
  /// been written yet and silently skips the rest. Returns the number of
  /// freshly written elements (0 = the store was a pure duplicate). This is
  /// the idempotent-apply primitive of the fault-tolerance layer: replayed
  /// forwards, checkpoint restores, and re-executed kernel instances may
  /// partially overlap data that already arrived, and write-once semantics
  /// guarantee any overlapping payload bytes are identical.
  int64_t store_fill(Age age, const nd::Region& region,
                     const std::byte* data);

  /// Checked mode (RunOptions::checked): record the origin of every store
  /// per (age, region) so a write-once violation can also report who wrote
  /// the overlapping elements first. Costs one (Region, StoreOrigin) copy
  /// per store; off by default.
  void track_writers(bool enabled) { track_writers_ = enabled; }

  /// Marks the age's extents as final (grows the buffer if needed). Called
  /// by the dependency analyzer when all producers are accounted for.
  void seal(Age age, const nd::Extents& extents);

  bool is_sealed(Age age) const;

  /// True when sealed and every element has been written.
  bool is_complete(Age age) const;

  /// True when the region lies within current extents and every element in
  /// it has been written.
  bool region_written(Age age, const nd::Region& region) const;

  /// Current extents of an age ({} rank-`rank` zeros when never touched).
  nd::Extents extents(Age age) const;

  /// Copies (age, region) into a densely packed buffer of the field's type.
  /// All elements must have been written.
  nd::AnyBuffer fetch(Age age, const nd::Region& region) const;

  /// Copies the whole content of a complete age.
  nd::AnyBuffer fetch_whole(Age age) const;

  // --- zero-copy read path -------------------------------------------------
  //
  // Sealed ages never reallocate their payload again (implicit resizing is
  // over), and write-once semantics mean already-written elements never
  // change — so a fetch of a sealed age can alias the age buffer instead of
  // copying it. The view carries a shared_ptr keepalive: release_age() may
  // drop the age while kernels still hold views, and the memory is freed
  // only when the last view goes away.
  //
  // Reads of sealed ages are lock-free in steady state: the first fetch of
  // a sealed age publishes it (grows the buffer to its final extents under
  // the writer lock, then installs an immutable snapshot index); later
  // fetches resolve through an atomic snapshot load without touching the
  // storage mutex at all.

  /// View of (age, region) aliasing the age buffer. Returns nullopt while
  /// the age is unsealed (the buffer may still be reallocated by implicit
  /// resizing) — callers fall back to fetch(). Contiguous regions yield
  /// dense views; anything else yields a strided view, still zero-copy.
  std::optional<nd::ConstView> try_fetch_view(Age age,
                                              const nd::Region& region);

  /// Whole-field variant of try_fetch_view (the region is the sealed
  /// extents).
  std::optional<nd::ConstView> try_fetch_view_whole(Age age);

  /// Number of elements written so far at this age.
  int64_t written_count(Age age) const;

  /// Releases the storage of an age (garbage collection of old ages).
  void release_age(Age age);

  /// Ages currently held (for reports/tests).
  std::vector<Age> live_ages() const;

  /// Total bytes currently allocated across live ages.
  size_t memory_bytes() const;

  // --- external storage hooks (the shared-memory data plane) ---------------

  /// Factory for new age buffers. A shared-memory data plane installs one
  /// that allocates payload bytes from its mapped arena, so outgoing whole
  /// stores can ship as arena offsets instead of copies. Must be set
  /// before the runtime starts (not thread-safe against stores).
  using BufferFactory =
      std::function<nd::AnyBuffer(nd::ElementType, const nd::Extents&)>;
  void set_buffer_factory(BufferFactory factory);

  /// A raw look at an age's current payload block: base pointer and
  /// extents under the reader lock. The pointer is only stable if the
  /// caller knows the block cannot be reclaimed (arena-backed buffers —
  /// bump arenas never free; heap-backed buffers may relocate on growth,
  /// so callers must range-check the pointer against their arena before
  /// trusting it).
  struct RawBlock {
    const std::byte* base = nullptr;
    nd::Extents extents;
  };
  std::optional<RawBlock> peek_block(Age age) const;

  /// Adopts `view` (densely packed, matching type/rank) as the complete
  /// payload of `age` without copying: the age buffer aliases the view's
  /// memory and every element is marked written. Only possible when the
  /// age has no written elements yet and, if sealed, the view covers the
  /// sealed extents. Returns false when adoption is not possible (caller
  /// falls back to a copying store). This is how a mapped peer-arena frame
  /// becomes local field content with zero copies.
  bool adopt_whole(Age age, const nd::ConstView& view);

 private:
  struct AgeData {
    /// Payload, shared with outstanding views (keepalive).
    std::shared_ptr<nd::AnyBuffer> buffer;
    DynamicBitset written;
    bool sealed = false;
    /// The age is in the lock-free seal index (buffer at final extents).
    bool published = false;
    /// Final extents once sealed. The buffer itself grows lazily (an age
    /// that is sealed but never stored — e.g. the elided intermediate of a
    /// fused pipeline — costs no memory).
    nd::Extents sealed_extents;
    /// Writer provenance, only populated under track_writers.
    std::vector<std::pair<nd::Region, StoreOrigin>> writers;

    nd::Extents current_extents() const {
      return sealed ? sealed_extents : buffer->extents();
    }
  };

  /// Immutable snapshot of the published (sealed, fully grown) ages, read
  /// lock-free on the fetch fast path and rebuilt under the writer lock on
  /// publish/release (both rare: once per age).
  struct SealIndex {
    struct Entry {
      Age age;
      std::shared_ptr<const nd::AnyBuffer> buffer;
    };
    std::vector<Entry> entries;  ///< sorted by age

    const Entry* find(Age age) const;
  };

  AgeData& age_data(Age age);           // creates on demand (locked caller)
  const AgeData* find_age(Age age) const;

  /// Grows buffer + written-bitmap to new extents, remapping set bits.
  void grow(AgeData& data, const nd::Extents& new_extents);

  /// Grows a sealed age to its final extents and installs it in the seal
  /// index (caller holds the writer lock).
  void publish(AgeData& data, Age age);

  /// Rebuilds the seal index from the published entries of ages_ (caller
  /// holds the writer lock).
  void rebuild_seal_index();

  /// View of `region` aliasing a published buffer.
  nd::ConstView make_view(std::shared_ptr<const nd::AnyBuffer> buffer,
                          const nd::Region& region) const;

  /// Builds and throws the kWriteOnceViolation error for a store hitting
  /// already-written elements of `conflict` (caller holds the lock).
  [[noreturn]] void throw_write_once(const AgeData& ad, Age age,
                                     const nd::Region& conflict,
                                     const StoreOrigin* origin) const;

  FieldDecl decl_;
  bool track_writers_ = false;
  BufferFactory buffer_factory_;  ///< optional external-arena allocator
  /// Writer lock for stores/seal/release/publish; shared for queries. The
  /// published-age fetch path takes neither (its ordering is the
  /// release-store/acquire-load pair on seal_index_, described to the
  /// checker via check::release/check::acquire annotations).
  mutable sync::SharedMutex mutex_{"FieldStorage.mutex"};
  std::map<Age, AgeData> ages_;
  std::atomic<std::shared_ptr<const SealIndex>> seal_index_;
};

}  // namespace p2g
