// Lock-free per-thread flight recorder: a bounded ring of the most recent
// trace events per thread, kept even when full tracing is off, so a node
// that dies (scripted crash, fatal error, SIGABRT) leaves a postmortem
// timeline instead of a silent death. Chaos runs (PR 4) dump each crashed
// node's rings to a JSON artifact and the distributed master stitches them
// into the merged trace file.
//
// Concurrency model: each ring has exactly one writer (its owning thread);
// record() is two relaxed stores plus a release bump of the head index, so
// the hot path never touches a lock or allocates. Readers (dump paths)
// snapshot racily — a torn in-progress entry at the head is acceptable for
// a postmortem — which also makes the SIGABRT dump handler safe: it only
// walks preallocated PODs through atomic pointers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "check/sync.h"
#include "core/trace.h"

namespace p2g {

class FlightRecorder {
 public:
  /// Entries kept per thread (power of two; older entries are overwritten).
  static constexpr size_t kRingSize = 256;
  /// Per-recorder thread slots; threads beyond this record nowhere.
  static constexpr size_t kMaxThreads = 64;

  /// One recorded event: a POD mirror of TraceCollector::Span with the
  /// name truncated into inline storage (no allocation on the hot path).
  struct Entry {
    int64_t t_ns = 0;
    int64_t duration_ns = 0;
    int64_t thread_id = 0;
    int64_t age = 0;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span = 0;
    SpanKind kind = SpanKind::kOther;
    char name[23] = {};  ///< NUL-terminated, truncated label
  };

  /// Single-writer bounded ring.
  class Ring {
   public:
    void record(const Entry& entry) {
      const uint64_t head = head_.load(std::memory_order_relaxed);
      Entry& slot = entries_[head & (kRingSize - 1)];
      // Single-writer invariant: write_range flags a second thread ever
      // recording into this ring; the release edge on head_ models the
      // release-store publication below.
      slot = entry;
      check::write_range(&slot, sizeof(Entry), "FlightRecorder.ring.entry");
      check::release(&head_);
      head_.store(head + 1, std::memory_order_release);
    }

    /// Racy snapshot, oldest first. Fine for postmortem use.
    void snapshot(std::vector<Entry>& out) const;

    /// Allocation-free racy visit, oldest first (signal-safe).
    template <typename Fn>
    void visit(Fn&& fn) const {
      const uint64_t head = head_.load(std::memory_order_acquire);
      check::acquire(&head_);
      const uint64_t count = head < kRingSize ? head : kRingSize;
      for (uint64_t i = head - count; i < head; ++i) {
        const Entry& e = entries_[i & (kRingSize - 1)];
        // A torn in-progress entry at the head is acceptable postmortem
        // data; declare the read intentionally racy.
        check::racy_read(&e, sizeof(Entry));
        fn(e);
      }
    }

    uint64_t recorded() const {
      return head_.load(std::memory_order_acquire);
    }

   private:
    std::atomic<uint64_t> head_{0};
    std::array<Entry, kRingSize> entries_{};
  };

  FlightRecorder();
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records an event on the calling thread's ring (registered lazily on
  /// first use; a no-op once kMaxThreads rings exist).
  void record(std::string_view name, SpanKind kind, int64_t t_ns,
              int64_t duration_ns, int64_t thread_id,
              const TraceContext& ctx, uint64_t span_id, int64_t age = 0);

  /// All rings' entries, oldest first per ring.
  std::vector<Entry> snapshot() const;

  /// Allocation-free racy visit of every ring's entries (signal-safe: no
  /// locks, no heap — walks preallocated PODs through atomic pointers).
  template <typename Fn>
  void visit_entries(Fn&& fn) const {
    const size_t count = slot_count_.load(std::memory_order_acquire);
    for (size_t i = 0; i < count && i < kMaxThreads; ++i) {
      const Ring* ring = slots_[i].ring.load(std::memory_order_acquire);
      if (ring != nullptr) ring->visit(fn);
    }
  }

  /// Total events ever recorded (wrapped entries included).
  uint64_t recorded() const;

  /// Streams the snapshot as Chrome trace events (ph:"X", cat
  /// "p2g.flight") under `pid`, timestamps rebased to `epoch_ns`; used
  /// both for the standalone dump artifact and for stitching into the
  /// master's merged trace. `first` tracks comma placement.
  void emit_events(std::ostream& os, int pid,
                   const std::string& process_name, int64_t epoch_ns,
                   bool& first) const;

  /// Writes a standalone trace-JSON dump artifact (best effort: logs and
  /// returns false on I/O failure instead of throwing — dump paths run
  /// during crash handling).
  bool dump_file(const std::string& path,
                 const std::string& process_name) const;

  /// Installs a process-wide SIGABRT handler that appends every live
  /// recorder's rings to `path` (JSON lines, via write(2) only) before
  /// re-raising. Idempotent; the first path wins.
  static void install_abort_dump(const std::string& path);

 private:
  Ring* ring_for_this_thread();

  struct Slot {
    std::atomic<Ring*> ring{nullptr};
    std::thread::id owner;
  };

  std::array<Slot, kMaxThreads> slots_;
  std::atomic<size_t> slot_count_{0};
};

}  // namespace p2g
