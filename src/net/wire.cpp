#include "net/wire.h"

#include <cstring>

#include "common/error.h"

namespace p2g::net {
namespace {

using dist::Reader;
using dist::Writer;

constexpr size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

void require_exhausted(const Reader& r, const char* what) {
  if (!r.exhausted()) {
    throw_error(ErrorKind::kProtocol,
                std::string("trailing bytes after ") + what);
  }
}

}  // namespace

std::vector<uint8_t> NetEnvelope::encode() const {
  Writer w;
  w.str(to);
  w.u8(static_cast<uint8_t>(msg.type));
  w.str(msg.from);
  w.i64(static_cast<int64_t>(msg.seq));
  w.u32(msg.attempt);
  w.i64(static_cast<int64_t>(msg.trace.trace_id));
  w.i64(static_cast<int64_t>(msg.trace.span_id));
  w.blob(msg.payload.data(), msg.payload.size());
  return w.take();
}

NetEnvelope NetEnvelope::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  NetEnvelope e;
  e.to = r.str();
  e.msg.type = static_cast<dist::MessageType>(r.u8());
  e.msg.from = r.str();
  e.msg.seq = static_cast<uint64_t>(r.i64());
  e.msg.attempt = r.u32();
  e.msg.trace.trace_id = static_cast<uint64_t>(r.i64());
  e.msg.trace.span_id = static_cast<uint64_t>(r.i64());
  e.msg.payload = r.blob();
  require_exhausted(r, "NetEnvelope");
  return e;
}

std::vector<uint8_t> HelloMsg::encode() const {
  Writer w;
  w.str(name);
  w.i64(pid);
  return w.take();
}

HelloMsg HelloMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  HelloMsg m;
  m.name = r.str();
  m.pid = r.i64();
  require_exhausted(r, "HelloMsg");
  return m;
}

std::vector<uint8_t> AssignMsg::encode() const {
  Writer w;
  w.u32(static_cast<uint32_t>(kernels.size()));
  for (const auto& [kernel, owner] : kernels) {
    w.str(kernel);
    w.str(owner);
  }
  w.u32(static_cast<uint32_t>(capture_fields.size()));
  for (const auto& field : capture_fields) w.str(field);
  return w.take();
}

AssignMsg AssignMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  AssignMsg m;
  const uint32_t nk = r.count(8);  // two length-prefixed strings minimum
  m.kernels.reserve(nk);
  for (uint32_t i = 0; i < nk; ++i) {
    std::string kernel = r.str();
    std::string owner = r.str();
    m.kernels.emplace_back(std::move(kernel), std::move(owner));
  }
  const uint32_t nf = r.count(4);
  m.capture_fields.reserve(nf);
  for (uint32_t i = 0; i < nf; ++i) m.capture_fields.push_back(r.str());
  require_exhausted(r, "AssignMsg");
  return m;
}

std::vector<uint8_t> CaptureMsg::encode() const {
  Writer w;
  w.str(field);
  w.i64(age);
  w.blob(payload.data(), payload.size());
  return w.take();
}

CaptureMsg CaptureMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  CaptureMsg m;
  m.field = r.str();
  m.age = r.i64();
  m.payload = r.blob();
  require_exhausted(r, "CaptureMsg");
  return m;
}

std::vector<uint8_t> NodeDoneMsg::encode() const {
  Writer w;
  w.u8(ok ? 1 : 0);
  w.str(error);
  return w.take();
}

NodeDoneMsg NodeDoneMsg::decode(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  NodeDoneMsg m;
  m.ok = r.u8() != 0;
  m.error = r.str();
  require_exhausted(r, "NodeDoneMsg");
  return m;
}

std::vector<uint8_t> encode_frame(const NetEnvelope& envelope) {
  const std::vector<uint8_t> body = envelope.encode();
  Writer w;
  w.u32(static_cast<uint32_t>(body.size()));
  std::vector<uint8_t> frame = w.take();
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

NetEnvelope decode_frame(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  const uint32_t len = r.u32();
  if (len != r.remaining()) {
    throw_error(ErrorKind::kProtocol, "truncated message");
  }
  return NetEnvelope::decode(
      std::vector<uint8_t>(bytes.begin() + 4, bytes.end()));
}

void FrameReader::feed(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<NetEnvelope> FrameReader::poll() {
  if (buffer_.size() < 4) return std::nullopt;
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data(), sizeof(len));
  if (len > kMaxFrameBytes) {
    throw_error(ErrorKind::kProtocol, "frame length exceeds 64 MiB cap");
  }
  if (buffer_.size() < 4u + len) return std::nullopt;
  const std::vector<uint8_t> body(buffer_.begin() + 4,
                                  buffer_.begin() + 4 + len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  return NetEnvelope::decode(body);
}

}  // namespace p2g::net
