#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/logging.h"

namespace p2g::net {
namespace {

/// Writes the whole buffer, retrying short writes. MSG_NOSIGNAL: a peer
/// that died must surface as EPIPE, not kill the process with SIGPIPE.
bool write_all(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool is_data_frame(dist::MessageType type) {
  return type == dist::MessageType::kRemoteStore ||
         type == dist::MessageType::kData;
}

}  // namespace

// --- SocketHub --------------------------------------------------------------

SocketHub::SocketHub(obs::MetricsRegistry* metrics) : metrics_(metrics) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  check_internal(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  check_internal(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind() failed: " + std::string(std::strerror(errno)));
  check_internal(::listen(listen_fd_, 64) == 0, "listen() failed");

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

SocketHub::~SocketHub() { close_all(); }

void SocketHub::accept_loop() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (close_all)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::scoped_lock lock(mutex_);
      if (closed_) {
        ::close(fd);
        return;
      }
      pending_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void SocketHub::reader_loop(const std::shared_ptr<Connection>& conn) {
  FrameReader frames;
  uint8_t buf[64 * 1024];
  bool hello_done = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: connection gone
    try {
      frames.feed(buf, static_cast<size_t>(n));
      while (auto envelope = frames.poll()) {
        if (!hello_done) {
          if (envelope->msg.type != dist::MessageType::kHello) {
            P2G_WARNC("net") << "first frame from fd " << conn->fd
                             << " is not kHello; dropping connection";
            break;
          }
          const HelloMsg hello = HelloMsg::decode(envelope->msg.payload);
          {
            std::scoped_lock lock(mutex_);
            conn->name = hello.name;
            nodes_[hello.name] = conn;
            for (auto it = pending_.begin(); it != pending_.end(); ++it) {
              if (it->get() == conn.get()) {
                pending_.erase(it);
                break;
              }
            }
          }
          hello_cv_.notify_all();
          hello_done = true;
          continue;
        }
        if (envelope->to == "*") {
          broadcast(std::move(envelope->msg));
        } else {
          route(envelope->to, std::move(envelope->msg));
        }
      }
    } catch (const Error& e) {
      P2G_WARNC("net") << "dropping connection '" << conn->name
                       << "': " << e.what();
      break;
    }
  }
  std::scoped_lock lock(mutex_);
  conn->dead = true;
  if (!conn->name.empty()) dead_[conn->name] = true;
}

bool SocketHub::wait_for_nodes(size_t n, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  return hello_cv_.wait_for(lock, timeout,
                            [&] { return nodes_.size() >= n || closed_; }) &&
         nodes_.size() >= n;
}

std::vector<std::string> SocketHub::connected_nodes() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& [name, conn] : nodes_) names.push_back(name);
  return names;
}

std::shared_ptr<Transport::Mailbox> SocketHub::register_endpoint(
    const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto it = local_.find(name);
  if (it != local_.end()) return it->second;
  auto mailbox = std::make_shared<Mailbox>();
  local_.emplace(name, mailbox);
  return mailbox;
}

SendStatus SocketHub::send(const std::string& to, dist::Message msg) {
  return route(to, std::move(msg));
}

SendStatus SocketHub::route(const std::string& to, dist::Message msg) {
  std::shared_ptr<Connection> conn;
  {
    std::scoped_lock lock(mutex_);
    const auto dead_it = dead_.find(to);
    if (dead_it != dead_.end() && dead_it->second) {
      ++stats_.dead_letters;
      ++stats_.per_endpoint[to].dead_letters;
      if (metrics_ != nullptr) {
        metrics_->counter("net_dead_letters_total:" + to).add(1);
      }
      return SendStatus::kDead;
    }
    const auto local_it = local_.find(to);
    if (local_it != local_.end()) {
      if (closed_ || local_it->second->closed()) {
        ++stats_.dead_letters;
        ++stats_.per_endpoint[to].dead_letters;
        return SendStatus::kClosed;
      }
      ++stats_.delivered;
      stats_.bytes += static_cast<int64_t>(msg.payload.size());
      auto& ep = stats_.per_endpoint[to];
      ++ep.messages;
      ep.bytes += static_cast<int64_t>(msg.payload.size());
      local_it->second->push(std::move(msg));
      return SendStatus::kDelivered;
    }
    const auto node_it = nodes_.find(to);
    if (node_it == nodes_.end()) {
      throw_error(ErrorKind::kProtocol, "unknown endpoint '" + to + "'");
    }
    conn = node_it->second;
    if (conn->dead) {
      ++stats_.dead_letters;
      ++stats_.per_endpoint[to].dead_letters;
      if (metrics_ != nullptr) {
        metrics_->counter("net_dead_letters_total:" + to).add(1);
      }
      return SendStatus::kDead;
    }
  }
  NetEnvelope envelope;
  envelope.to = to;
  const size_t payload_bytes = msg.payload.size();
  envelope.msg = std::move(msg);
  if (!write_frame(conn, envelope)) {
    std::scoped_lock lock(mutex_);
    conn->dead = true;
    dead_[to] = true;
    ++stats_.dead_letters;
    ++stats_.per_endpoint[to].dead_letters;
    if (metrics_ != nullptr) {
      metrics_->counter("net_dead_letters_total:" + to).add(1);
    }
    return SendStatus::kDead;
  }
  std::scoped_lock lock(mutex_);
  ++stats_.delivered;
  stats_.bytes += static_cast<int64_t>(payload_bytes);
  auto& ep = stats_.per_endpoint[to];
  ++ep.messages;
  ep.bytes += static_cast<int64_t>(payload_bytes);
  return SendStatus::kDelivered;
}

int SocketHub::broadcast(dist::Message msg) {
  std::vector<std::string> targets;
  {
    std::scoped_lock lock(mutex_);
    for (const auto& [name, mailbox] : local_) {
      if (name != msg.from) targets.push_back(name);
    }
    for (const auto& [name, conn] : nodes_) {
      if (name != msg.from) targets.push_back(name);
    }
  }
  int delivered_count = 0;
  for (const auto& target : targets) {
    if (route(target, msg) == SendStatus::kDelivered) ++delivered_count;
  }
  return delivered_count;
}

bool SocketHub::write_frame(const std::shared_ptr<Connection>& conn,
                            const NetEnvelope& envelope) {
  const std::vector<uint8_t> frame = encode_frame(envelope);
  std::scoped_lock lock(conn->write_mutex);
  return write_all(conn->fd, frame.data(), frame.size());
}

void SocketHub::count_dead_letter(const std::string& to) {
  ++stats_.dead_letters;
  ++stats_.per_endpoint[to].dead_letters;
  if (metrics_ != nullptr) {
    metrics_->counter("net_dead_letters_total:" + to).add(1);
  }
}

void SocketHub::close_all() {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::scoped_lock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    for (auto& [name, mailbox] : local_) mailbox->close();
    for (auto& [name, conn] : nodes_) conns.push_back(conn);
    for (auto& conn : pending_) conns.push_back(conn);
    pending_.clear();
  }
  hello_cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    ::close(conn->fd);
    conn->fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void SocketHub::mark_dead(const std::string& name) {
  std::shared_ptr<Connection> conn;
  {
    std::scoped_lock lock(mutex_);
    dead_[name] = true;
    const auto it = nodes_.find(name);
    if (it != nodes_.end()) {
      conn = it->second;
      conn->dead = true;
    }
  }
  // Sever the socket so the fenced node's reader stops feeding the hub and
  // the remote process observes the cut.
  if (conn) ::shutdown(conn->fd, SHUT_RDWR);
}

bool SocketHub::is_dead(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = dead_.find(name);
  return it != dead_.end() && it->second;
}

bool SocketHub::unreachable(const std::string& name) const {
  return is_dead(name);
}

int64_t SocketHub::delivered() const {
  std::scoped_lock lock(mutex_);
  return stats_.delivered;
}

BusStats SocketHub::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

// --- SocketNodeTransport ----------------------------------------------------

SocketNodeTransport::SocketNodeTransport(const std::string& host,
                                         uint16_t port,
                                         const std::string& name)
    : name_(name) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  check_internal(fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  check_internal(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 "bad hub address '" + host + "'");
  check_internal(
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "connect to " + host + ":" + std::to_string(port) +
          " failed: " + std::string(std::strerror(errno)));

  HelloMsg hello;
  hello.name = name;
  hello.pid = static_cast<int64_t>(::getpid());
  NetEnvelope envelope;
  envelope.to = "master";
  envelope.msg.type = dist::MessageType::kHello;
  envelope.msg.from = name;
  envelope.msg.payload = hello.encode();
  const std::vector<uint8_t> frame = encode_frame(envelope);
  check_internal(write_all(fd_, frame.data(), frame.size()),
                 "hello handshake write failed");

  reader_ = std::thread([this] { reader_loop(); });
}

SocketNodeTransport::~SocketNodeTransport() { close_all(); }

void SocketNodeTransport::set_metrics(obs::MetricsRegistry* metrics) {
  std::scoped_lock lock(mutex_);
  metrics_ = metrics;
}

bool SocketNodeTransport::hub_dead() const {
  std::scoped_lock lock(mutex_);
  return hub_dead_;
}

void SocketNodeTransport::reader_loop() {
  FrameReader frames;
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    try {
      frames.feed(buf, static_cast<size_t>(n));
      while (auto envelope = frames.poll()) {
        std::scoped_lock lock(mutex_);
        // Auto-register: frames may arrive for this node's endpoint in the
        // instant between connect and the driver's register_endpoint call.
        auto it = local_.find(envelope->to);
        if (it == local_.end()) {
          it = local_.emplace(envelope->to, std::make_shared<Mailbox>()).first;
        }
        ++stats_.delivered;
        stats_.bytes += static_cast<int64_t>(envelope->msg.payload.size());
        it->second->push(std::move(envelope->msg));
      }
    } catch (const Error& e) {
      P2G_WARNC("net") << "node '" << name_ << "' dropping hub stream: "
                       << e.what();
      break;
    }
  }
  std::scoped_lock lock(mutex_);
  hub_dead_ = true;
}

std::shared_ptr<Transport::Mailbox> SocketNodeTransport::register_endpoint(
    const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto it = local_.find(name);
  if (it != local_.end()) return it->second;
  auto mailbox = std::make_shared<Mailbox>();
  local_.emplace(name, mailbox);
  return mailbox;
}

SendStatus SocketNodeTransport::send(const std::string& to,
                                     dist::Message msg) {
  bool count_data = false;
  {
    std::scoped_lock lock(mutex_);
    const auto dead_it = dead_.find(to);
    if (dead_it != dead_.end() && dead_it->second) {
      count_dead_letter(to);
      return SendStatus::kDead;
    }
    const auto local_it = local_.find(to);
    if (local_it != local_.end()) {
      if (closed_ || local_it->second->closed()) {
        ++stats_.dead_letters;
        ++stats_.per_endpoint[to].dead_letters;
        return SendStatus::kClosed;
      }
      ++stats_.delivered;
      stats_.bytes += static_cast<int64_t>(msg.payload.size());
      auto& ep = stats_.per_endpoint[to];
      ++ep.messages;
      ep.bytes += static_cast<int64_t>(msg.payload.size());
      local_it->second->push(std::move(msg));
      return SendStatus::kDelivered;
    }
    if (hub_dead_ || closed_) {
      count_dead_letter(to);
      return SendStatus::kDead;
    }
    count_data = is_data_frame(msg.type);
  }
  NetEnvelope envelope;
  envelope.to = to;
  const size_t payload_bytes = msg.payload.size();
  envelope.msg = std::move(msg);
  const std::vector<uint8_t> frame = encode_frame(envelope);
  bool ok = false;
  {
    std::scoped_lock wlock(write_mutex_);
    ok = write_all(fd_, frame.data(), frame.size());
  }
  std::scoped_lock lock(mutex_);
  if (!ok) {
    hub_dead_ = true;
    count_dead_letter(to);
    return SendStatus::kDead;
  }
  ++stats_.delivered;
  stats_.bytes += static_cast<int64_t>(payload_bytes);
  auto& ep = stats_.per_endpoint[to];
  ++ep.messages;
  ep.bytes += static_cast<int64_t>(payload_bytes);
  if (count_data && metrics_ != nullptr) {
    metrics_->counter("net_tx_frames_total").add(1);
    metrics_->counter("net_tx_copied_bytes_total")
        .add(static_cast<int64_t>(payload_bytes));
  }
  return SendStatus::kDelivered;
}

int SocketNodeTransport::broadcast(dist::Message msg) {
  // Routed through the hub: it fans out to every endpoint except the
  // sender. The local return value only counts in-process deliveries.
  int delivered_count = 0;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [name, mailbox] : local_) {
      if (name == msg.from || mailbox->closed()) continue;
      mailbox->push(msg);
      ++stats_.delivered;
      ++delivered_count;
    }
    if (hub_dead_ || closed_) return delivered_count;
  }
  NetEnvelope envelope;
  envelope.to = "*";
  envelope.msg = std::move(msg);
  const std::vector<uint8_t> frame = encode_frame(envelope);
  std::scoped_lock wlock(write_mutex_);
  write_all(fd_, frame.data(), frame.size());
  return delivered_count;
}

void SocketNodeTransport::count_dead_letter(const std::string& to) {
  ++stats_.dead_letters;
  ++stats_.per_endpoint[to].dead_letters;
  if (metrics_ != nullptr) {
    metrics_->counter("net_dead_letters_total:" + to).add(1);
  }
}

void SocketNodeTransport::close_all() {
  {
    std::scoped_lock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    for (auto& [name, mailbox] : local_) mailbox->close();
  }
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SocketNodeTransport::mark_dead(const std::string& name) {
  std::scoped_lock lock(mutex_);
  dead_[name] = true;
}

bool SocketNodeTransport::is_dead(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = dead_.find(name);
  return it != dead_.end() && it->second;
}

bool SocketNodeTransport::unreachable(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = dead_.find(name);
  if (it != dead_.end() && it->second) return true;
  // Anything non-local is behind the hub connection.
  return hub_dead_ && local_.find(name) == local_.end();
}

int64_t SocketNodeTransport::delivered() const {
  std::scoped_lock lock(mutex_);
  return stats_.delivered;
}

BusStats SocketNodeTransport::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace p2g::net
