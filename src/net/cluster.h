// Real multi-process cluster driver (ISSUE 10).
//
// run_cluster() is the out-of-process counterpart of dist::Master::run():
// it derives the same partition / placement / kernel ownership from the
// workload's program, but instead of constructing in-process
// ExecutionNodes it fork+execs one `p2gnode` process per node, wires them
// through a SocketHub (control + data frames) and optionally a
// shared-memory data plane (memfd arenas + SPSC rings inherited across
// exec by fd number), supervises them with the phi-accrual failure
// detector, detects termination with the same two-round
// quiescence+conservation protocol, and gathers captures for bit-exact
// comparison against an in-process run.
//
// run_node() is the other side: what a `p2gnode` process does between
// exec and exit.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/program.h"
#include "core/runtime.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace p2g::net {

/// A named, self-contained workload both the supervisor and the node
/// binary can instantiate by name (the program must be identical in every
/// process — kernel bodies are code, not wire data).
struct WorkloadSpec {
  std::function<Program()> build;
  std::function<void(RunOptions&)> schedule;  ///< age caps etc.
  std::vector<std::string> capture;           ///< fields gathered at the end
};

/// Built-in workloads: "mul2", "kmeans", "pipeline". Returns nullptr for
/// unknown names.
const WorkloadSpec* find_workload(const std::string& name);

struct ClusterOptions {
  std::string workload = "mul2";
  int nodes = 2;
  int workers = 1;
  /// Enable the same-host shared-memory data plane.
  bool shm = false;
  /// Path of the node binary to exec (tools/p2gnode).
  std::string node_binary;
  /// Per-node arena size for the shm plane.
  size_t arena_bytes = 16u << 20;
  uint32_t ring_slots = 1024;
  std::chrono::milliseconds watchdog{30000};
  /// Fault injection for supervision tests: this node gets
  /// --crash-after-ms and dies mid-run; the supervisor must detect it,
  /// fence it and still terminate cleanly.
  std::string crash_node;
  int crash_after_ms = 0;
};

struct ClusterReport {
  bool timed_out = false;
  double wall_s = 0.0;
  std::vector<std::string> dead_nodes;
  /// field name -> age -> densely packed payload bytes (same shape as
  /// DistributedRunReport::captured).
  std::map<std::string, std::map<Age, std::vector<uint8_t>>> captured;
  /// Cross-node reduction of the nodes' metric snapshots plus the hub's
  /// own registry.
  obs::MetricsSnapshot combined_metrics;
  BusStats bus;
  std::map<std::string, bool> node_ok;
  std::map<std::string, std::string> node_errors;

  /// Data-plane economics: cross-process store frames (socket kRemoteStore
  /// + shm descriptors) and how many payload bytes were copied to ship
  /// them. On the shm fast lane a frame ships as an arena offset, so
  /// bytes_copied_per_frame collapses toward zero.
  int64_t data_frames = 0;
  int64_t copied_bytes = 0;
  double bytes_copied_per_frame = 0.0;
};

ClusterReport run_cluster(const ClusterOptions& options);

/// Shared-memory wiring of one peer, as handed to the node process (fd
/// numbers survive exec because the memfds are not close-on-exec).
struct PeerShmConfig {
  std::string name;
  int arena_fd = -1;
  size_t arena_bytes = 0;
  int tx_ring_fd = -1;  ///< this node -> peer
  int rx_ring_fd = -1;  ///< peer -> this node
};

struct NodeConfig {
  std::string name;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string workload;
  int workers = 1;
  int heartbeat_period_ms = 25;
  /// Fault injection: hard-exit this process after N ms (0 = off).
  int crash_after_ms = 0;
  /// Shared-memory plane (disabled when arena_fd < 0).
  int arena_fd = -1;
  size_t arena_bytes = 0;
  uint32_t ring_slots = 0;
  std::vector<PeerShmConfig> peers;
};

/// The node-process main loop: connect, handshake, receive the kernel
/// assignment, run the workload, ship captures, report done. Returns the
/// process exit code.
int run_node(const NodeConfig& config);

}  // namespace p2g::net
