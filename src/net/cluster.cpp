#include "net/cluster.h"

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "dist/exec_node.h"
#include "dist/message.h"
#include "ft/failure_detector.h"
#include "graph/partition.h"
#include "graph/static_graph.h"
#include "graph/topology.h"
#include "net/shm.h"
#include "net/socket.h"
#include "net/wire.h"
#include "workloads/kmeans.h"
#include "workloads/mul2plus5.h"
#include "workloads/pipeline.h"

namespace p2g::net {
namespace {

using dist::Message;
using dist::MessageType;

workloads::KmeansWorkload make_kmeans() {
  workloads::KmeansWorkload w;
  w.config.n = 24;
  w.config.k = 3;
  w.config.dim = 2;
  w.config.iterations = 3;
  w.config.seed = 7;
  return w;
}

}  // namespace

const WorkloadSpec* find_workload(const std::string& name) {
  static const std::map<std::string, WorkloadSpec> registry = [] {
    std::map<std::string, WorkloadSpec> reg;
    {
      WorkloadSpec spec;
      spec.build = [] { return workloads::Mul2Plus5{}.build(); };
      spec.schedule = [](RunOptions& options) { options.max_age = 3; };
      spec.capture = {"m_data", "p_data"};
      reg.emplace("mul2", std::move(spec));
    }
    {
      WorkloadSpec spec;
      spec.build = [] { return make_kmeans().build(); };
      spec.schedule = [](RunOptions& options) {
        make_kmeans().apply_schedule(options);
      };
      spec.capture = {"centroids"};
      reg.emplace("kmeans", std::move(spec));
    }
    {
      WorkloadSpec spec;
      spec.build = [] { return workloads::PipelineWorkload{}.build(); };
      spec.schedule = [](RunOptions& options) {
        workloads::PipelineWorkload{}.apply_schedule(options);
      };
      spec.capture = {"out"};
      reg.emplace("pipeline", std::move(spec));
    }
    return reg;
  }();
  const auto it = registry.find(name);
  return it != registry.end() ? &it->second : nullptr;
}

// --- supervisor -------------------------------------------------------------

namespace {

int make_ring_memfd(uint32_t slots) {
  const int fd = static_cast<int>(::memfd_create("p2g-ring", 0));
  check_internal(fd >= 0, "memfd_create for ring failed");
  check_internal(::ftruncate(fd, static_cast<off_t>(
                                     ShmRing::bytes_required(slots))) == 0,
                 "ftruncate for ring failed");
  return fd;  // zero-filled: the valid empty-ring state
}

}  // namespace

ClusterReport run_cluster(const ClusterOptions& options) {
  const WorkloadSpec* spec = find_workload(options.workload);
  check_argument(spec != nullptr,
                 "unknown workload '" + options.workload + "'");
  check_argument(!options.node_binary.empty(),
                 "ClusterOptions::node_binary is required");
  check_argument(options.nodes >= 1, "need at least one node");

  ClusterReport report;
  Stopwatch stopwatch;

  // Same derivation as dist::Master::run(): partition the final static
  // graph, place partitions on the (uniform) topology, name an owner per
  // kernel. Bit-exactness against the in-process run needs an identical
  // ownership map, and this is where it comes from in both drivers.
  Program reference = spec->build();
  const graph::FinalGraph final_graph =
      graph::FinalGraph::from_program(reference);
  const graph::Partition partition =
      graph::partition_graph(final_graph, options.nodes);

  std::vector<std::string> node_names;
  for (int i = 0; i < options.nodes; ++i) {
    node_names.push_back("node" + std::to_string(i));
  }
  graph::GlobalTopology topology;
  for (const std::string& name : node_names) {
    topology.add_node(graph::NodeTopology::local_machine(name));
  }
  const std::vector<size_t> placement =
      topology.place_partitions(partition.part_weights(final_graph));
  std::map<std::string, std::string> kernel_owner;
  for (size_t k = 0; k < final_graph.kernel_count(); ++k) {
    const int part = partition.assignment[k];
    const size_t node = placement[static_cast<size_t>(part)];
    kernel_owner[final_graph.kernel_names[k]] = node_names[node];
  }

  obs::MetricsRegistry hub_registry;
  SocketHub hub(&hub_registry);
  auto master_mailbox = hub.register_endpoint("master");

  // Shared-memory wiring: one arena memfd per node, one ring memfd per
  // directed pair. Created before fork so the fds are inherited; the
  // supervisor's own copies are closed after the last fork.
  const int n = options.nodes;
  std::vector<std::shared_ptr<ShmArena>> arenas;
  std::vector<std::vector<int>> ring_fd(  // ring_fd[i][j]: i -> j
      static_cast<size_t>(n), std::vector<int>(static_cast<size_t>(n), -1));
  if (options.shm) {
    for (int i = 0; i < n; ++i) {
      arenas.push_back(ShmArena::create(options.arena_bytes));
      for (int j = 0; j < n; ++j) {
        if (i != j) {
          ring_fd[static_cast<size_t>(i)][static_cast<size_t>(j)] =
              make_ring_memfd(options.ring_slots);
        }
      }
    }
  }

  // Launch one process per node. The argv is assembled pre-fork; the child
  // only execs (fork from a threaded process must not run arbitrary code).
  std::map<std::string, pid_t> pids;
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> args;
    args.push_back(options.node_binary);
    args.push_back("--node");
    args.push_back(node_names[static_cast<size_t>(i)]);
    args.push_back("--connect");
    args.push_back(std::to_string(hub.port()));
    args.push_back("--workload");
    args.push_back(options.workload);
    args.push_back("--workers");
    args.push_back(std::to_string(options.workers));
    if (options.crash_after_ms > 0 &&
        options.crash_node == node_names[static_cast<size_t>(i)]) {
      args.push_back("--crash-after-ms");
      args.push_back(std::to_string(options.crash_after_ms));
    }
    if (options.shm) {
      args.push_back("--shm-arena");
      args.push_back(std::to_string(arenas[static_cast<size_t>(i)]->fd()) +
                     ":" + std::to_string(options.arena_bytes));
      args.push_back("--shm-slots");
      args.push_back(std::to_string(options.ring_slots));
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        // peer:arena_fd:arena_bytes:tx_fd:rx_fd (tx = i->j, rx = j->i)
        args.push_back("--shm-peer");
        args.push_back(
            node_names[static_cast<size_t>(j)] + ":" +
            std::to_string(arenas[static_cast<size_t>(j)]->fd()) + ":" +
            std::to_string(options.arena_bytes) + ":" +
            std::to_string(ring_fd[static_cast<size_t>(i)]
                                  [static_cast<size_t>(j)]) +
            ":" +
            std::to_string(ring_fd[static_cast<size_t>(j)]
                                  [static_cast<size_t>(i)]));
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    check_internal(pid >= 0, "fork failed");
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed
    }
    pids[node_names[static_cast<size_t>(i)]] = pid;
  }
  // Children hold their inherited copies; drop the supervisor's.
  for (auto& row : ring_fd) {
    for (int& fd : row) {
      if (fd >= 0) ::close(fd);
    }
  }

  std::set<std::string> dead;
  const auto kill_node = [&](const std::string& name) {
    if (dead.count(name)) return;
    dead.insert(name);
    hub.mark_dead(name);
    const auto it = pids.find(name);
    if (it != pids.end()) ::kill(it->second, SIGKILL);
    report.dead_nodes.push_back(name);
    P2G_WARNC("net") << "cluster: node " << name << " declared dead";
  };

  ft::FailureDetector::Options detector_options;
  detector_options.min_silence_us = 2'000'000;  // real processes: 2s floor
  ft::FailureDetector detector(detector_options);

  std::map<std::string, obs::MetricsSnapshot> node_metrics;
  std::set<std::string> done_nodes;
  std::map<std::string, dist::IdleReport>* active_round = nullptr;

  const auto handle = [&](Message&& message) {
    switch (message.type) {
      case MessageType::kHeartbeat:
        detector.heartbeat(message.from, now_ns());
        break;
      case MessageType::kIdleReport:
        if (active_round != nullptr && !dead.count(message.from)) {
          (*active_round)[message.from] =
              dist::IdleReport::decode(message.payload);
        }
        break;
      case MessageType::kMetricsReport: {
        dist::MetricsReport metrics =
            dist::MetricsReport::decode(message.payload);
        node_metrics[metrics.node] = std::move(metrics.snapshot);
        break;
      }
      case MessageType::kCapture: {
        const CaptureMsg capture = CaptureMsg::decode(message.payload);
        auto& ages = report.captured[capture.field];
        if (!ages.count(capture.age)) ages[capture.age] = capture.payload;
        break;
      }
      case MessageType::kNodeDone: {
        const NodeDoneMsg nd = NodeDoneMsg::decode(message.payload);
        report.node_ok[message.from] = nd.ok;
        if (!nd.ok) report.node_errors[message.from] = nd.error;
        done_nodes.insert(message.from);
        break;
      }
      default:
        break;  // topology reports etc.
    }
  };
  const auto drain = [&] {
    while (auto message = master_mailbox->try_pop()) handle(std::move(*message));
  };

  const int64_t deadline_ns = now_ns() + options.watchdog.count() * 1'000'000;

  if (!hub.wait_for_nodes(static_cast<size_t>(n),
                          std::chrono::milliseconds(15000))) {
    report.timed_out = true;
  } else {
    // Ship the kernel assignment (and what to capture) to every node, and
    // prime the failure detector so a node that dies before its first
    // heartbeat is still suspected.
    AssignMsg assign;
    for (const auto& [kernel, owner] : kernel_owner) {
      assign.kernels.emplace_back(kernel, owner);
    }
    assign.capture_fields = spec->capture;
    const int64_t t0 = now_ns();
    for (const std::string& name : node_names) {
      Message message;
      message.type = MessageType::kAssign;
      message.from = "master";
      message.payload = assign.encode();
      hub.send(name, std::move(message));
      detector.heartbeat(name, t0);
    }

    // Termination detection, the out-of-process variant: probe every
    // alive node, require every one to answer "idle" with globally
    // conserved and unchanged store counts, twice in a row.
    int stable_rounds = 0;
    int64_t last_sent = -1;
    while (stable_rounds < 2) {
      if (now_ns() > deadline_ns) {
        report.timed_out = true;
        break;
      }
      for (const std::string& suspect : detector.suspects(now_ns())) {
        kill_node(suspect);
        detector.remove(suspect);
      }
      std::vector<std::string> alive;
      for (const std::string& name : node_names) {
        if (!dead.count(name)) alive.push_back(name);
      }
      if (alive.empty()) break;

      Message probe;
      probe.type = MessageType::kIdleProbe;
      probe.from = "master";
      for (const std::string& name : alive) {
        if (hub.send(name, probe) != SendStatus::kDelivered) kill_node(name);
      }

      std::map<std::string, dist::IdleReport> replies;
      active_round = &replies;
      const int64_t round_deadline = now_ns() + 500'000'000;
      while (replies.size() < alive.size() && now_ns() < round_deadline &&
             now_ns() < deadline_ns) {
        drain();
        bool lost = false;
        for (const std::string& name : alive) {
          if (dead.count(name)) lost = true;
        }
        if (lost) break;
        if (replies.size() < alive.size()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      active_round = nullptr;
      if (replies.size() < alive.size()) {
        stable_rounds = 0;  // straggler or death: not quiescent
        continue;
      }
      bool all_idle = true;
      int64_t sent = 0;
      int64_t received = 0;
      for (const auto& [name, idle] : replies) {
        all_idle = all_idle && idle.idle;
        sent += idle.stores_sent;
        received += idle.stores_received;
      }
      // A dead node takes its receive counters with it, so global
      // conservation can never balance again after a crash; alive-side
      // quiescence with stable send counts is the strongest terminating
      // condition left.
      const bool conserved = sent == received || !dead.empty();
      if (all_idle && conserved && sent == last_sent) {
        ++stable_rounds;
      } else {
        stable_rounds = 0;
      }
      last_sent = sent;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Shut down: every alive node drains, captures, reports done and exits.
  Message shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.from = "master";
  hub.broadcast(std::move(shutdown));

  const int64_t collect_deadline = now_ns() + 10'000'000'000LL;
  const auto all_done = [&] {
    for (const std::string& name : node_names) {
      if (!dead.count(name) && !done_nodes.count(name)) return false;
    }
    return true;
  };
  while (!all_done() && now_ns() < collect_deadline) {
    drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  drain();

  // Reap the children; anything still alive past the grace window is
  // killed hard.
  const int64_t reap_deadline = now_ns() + 5'000'000'000LL;
  for (const auto& [name, pid] : pids) {
    while (true) {
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || r < 0) break;
      if (now_ns() > reap_deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  for (const auto& [name, snapshot] : node_metrics) {
    report.combined_metrics.merge(snapshot);
  }
  report.combined_metrics.merge(hub_registry.snapshot());

  const auto counter_value = [&](const char* name) -> int64_t {
    const obs::CounterValue* c = report.combined_metrics.find_counter(name);
    return c != nullptr ? c->value : 0;
  };
  report.data_frames = counter_value("net_tx_frames_total") +
                       counter_value("shm_tx_frames_total");
  report.copied_bytes = counter_value("net_tx_copied_bytes_total") +
                        counter_value("shm_tx_copied_bytes_total");
  report.bytes_copied_per_frame =
      report.data_frames > 0
          ? static_cast<double>(report.copied_bytes) /
                static_cast<double>(report.data_frames)
          : 0.0;

  report.bus = hub.stats();
  hub.close_all();
  report.wall_s = stopwatch.elapsed_s();
  return report;
}

// --- node process -----------------------------------------------------------

int run_node(const NodeConfig& config) {
  const WorkloadSpec* spec = find_workload(config.workload);
  if (spec == nullptr) {
    std::fprintf(stderr, "p2gnode: unknown workload '%s'\n",
                 config.workload.c_str());
    return 2;
  }
  try {
    SocketNodeTransport bus(config.host, config.port, config.name);
    auto mailbox = bus.register_endpoint(config.name);

    // The assignment must arrive before the node can be built (kernel
    // ownership decides forwarding maps and enabled kernels).
    std::map<std::string, std::string> kernel_owner;
    std::vector<std::string> capture_fields;
    while (true) {
      auto message = mailbox->pop();
      if (!message) return 3;  // hub gone before assignment
      if (message->type == MessageType::kShutdown) return 0;
      if (message->type != MessageType::kAssign) continue;
      const AssignMsg assign = AssignMsg::decode(message->payload);
      for (const auto& [kernel, owner] : assign.kernels) {
        kernel_owner[kernel] = owner;
      }
      capture_fields = assign.capture_fields;
      break;
    }

    RunOptions options;
    options.workers = config.workers;
    options.metrics.enabled = true;
    spec->schedule(options);
    dist::ExecutionNode node(config.name, spec->build(), kernel_owner, bus,
                             options, dist::NodeFtOptions{});
    bus.set_metrics(node.runtime().mutable_metrics());

    std::shared_ptr<ShmArena> arena;
    std::unique_ptr<ShmDataPlane> plane;
    if (config.arena_fd >= 0) {
      arena = ShmArena::attach(config.arena_fd, config.arena_bytes);
      plane = std::make_unique<ShmDataPlane>(arena);
      for (const PeerShmConfig& peer : config.peers) {
        plane->add_peer(peer.name,
                        ShmArena::attach(peer.arena_fd, peer.arena_bytes),
                        peer.tx_ring_fd, peer.rx_ring_fd, config.ring_slots);
      }
      plane->attach(node);
    }

    node.announce("master");
    node.start();

    if (config.crash_after_ms > 0) {
      std::thread([ms = config.crash_after_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        ::_exit(137);  // simulated hard crash: no shutdown, no flush
      }).detach();
    }

    std::atomic<bool> heartbeat_stop{false};
    std::thread heartbeat([&] {
      int64_t seq = 0;
      while (!heartbeat_stop.load(std::memory_order_relaxed)) {
        dist::HeartbeatMsg beat;
        beat.seq = ++seq;
        beat.sent_ns = now_ns();
        Message message;
        message.type = MessageType::kHeartbeat;
        message.from = config.name;
        message.payload = beat.encode();
        bus.send("master", std::move(message));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config.heartbeat_period_ms));
      }
    });

    bool ok = true;
    std::string error;
    try {
      node.join();  // blocks until the supervisor's kShutdown
    } catch (const Error& e) {
      ok = false;
      error = e.what();
    }
    heartbeat_stop.store(true, std::memory_order_relaxed);
    heartbeat.join();

    if (plane) {
      plane->close_tx();
      // The poller exits once every peer closed too; guard against a
      // crashed peer whose ring never closes.
      std::atomic<bool> joined{false};
      std::thread guard([&] {
        for (int i = 0; i < 10'000; ++i) {
          if (joined.load(std::memory_order_relaxed)) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        plane->stop();
      });
      plane->join();
      joined.store(true, std::memory_order_relaxed);
      guard.join();
    }

    if (ok) {
      for (const std::string& field_name : capture_fields) {
        FieldStorage& storage = node.runtime().storage(field_name);
        for (const Age age : storage.live_ages()) {
          if (!storage.is_complete(age)) continue;
          const nd::AnyBuffer data = storage.fetch_whole(age);
          const auto* raw = reinterpret_cast<const uint8_t*>(data.raw());
          CaptureMsg capture;
          capture.field = field_name;
          capture.age = age;
          capture.payload.assign(
              raw, raw + static_cast<size_t>(data.element_count()) *
                             nd::element_size(data.type()));
          Message message;
          message.type = MessageType::kCapture;
          message.from = config.name;
          message.payload = capture.encode();
          bus.send("master", std::move(message));
        }
      }
    }

    NodeDoneMsg done;
    done.ok = ok;
    done.error = error;
    Message message;
    message.type = MessageType::kNodeDone;
    message.from = config.name;
    message.payload = done.encode();
    bus.send("master", std::move(message));
    bus.close_all();
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "p2gnode(%s): %s\n", config.name.c_str(), e.what());
    return 1;
  }
}

}  // namespace p2g::net
