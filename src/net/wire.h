// Framed wire format for the out-of-process transport.
//
// Every socket frame is [u32 length][body], where body is a serialized
// NetEnvelope: the routing destination plus the full dist::Message
// (type, from, payload, seq/attempt delivery metadata, trace context).
// The length prefix lets the stream reader cut message boundaries; the
// envelope reuses the existing serialize.h codecs so the whole truncation
// corpus (every strict prefix throws kProtocol) applies to the new format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dist/message.h"

namespace p2g::net {

/// One routed message on the wire: where it is going plus the message
/// itself. "*" as destination means broadcast to every endpoint except the
/// sender.
struct NetEnvelope {
  std::string to;
  dist::Message msg;

  std::vector<uint8_t> encode() const;
  static NetEnvelope decode(const std::vector<uint8_t>& bytes);
};

/// Connection handshake: the first frame a node sends after connecting,
/// naming the endpoint this socket carries.
struct HelloMsg {
  std::string name;
  int64_t pid = 0;

  std::vector<uint8_t> encode() const;
  static HelloMsg decode(const std::vector<uint8_t>& bytes);
};

/// Supervisor -> node: kernel ownership for the whole cluster plus the
/// fields the supervisor wants captured (complete ages shipped back as
/// kCapture) when the run drains.
struct AssignMsg {
  std::vector<std::pair<std::string, std::string>> kernels;  ///< name->owner
  std::vector<std::string> capture_fields;

  std::vector<uint8_t> encode() const;
  static AssignMsg decode(const std::vector<uint8_t>& bytes);
};

/// Node -> supervisor: one complete age of a captured field, densely
/// packed. The supervisor reassembles per-field output maps from these.
struct CaptureMsg {
  std::string field;
  int64_t age = 0;
  std::vector<uint8_t> payload;

  std::vector<uint8_t> encode() const;
  static CaptureMsg decode(const std::vector<uint8_t>& bytes);
};

/// Node -> supervisor: final exit status of the node process.
struct NodeDoneMsg {
  bool ok = false;
  std::string error;

  std::vector<uint8_t> encode() const;
  static NodeDoneMsg decode(const std::vector<uint8_t>& bytes);
};

/// Encodes a complete frame: [u32 body-length][body].
std::vector<uint8_t> encode_frame(const NetEnvelope& envelope);

/// One-shot decode of a complete frame. Throws kProtocol when the bytes
/// are not exactly one well-formed frame (short prefix, length mismatch,
/// truncated envelope) — this is the entry point the truncation corpus
/// drives.
NetEnvelope decode_frame(const std::vector<uint8_t>& bytes);

/// Incremental frame cutter for a byte stream: feed() whatever arrived,
/// poll() complete envelopes out. Throws kProtocol on an absurd length
/// prefix (> 64 MiB) — a corrupt stream must fail loudly, not allocate.
class FrameReader {
 public:
  void feed(const uint8_t* data, size_t size);
  std::optional<NetEnvelope> poll();

  /// Bytes buffered but not yet cut into a frame.
  size_t pending() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

}  // namespace p2g::net
