// Same-host shared-memory data plane.
//
// Control messages always flow over the socket transport; *data* (the
// payload bytes of cross-partition stores) can take a faster lane between
// processes on the same host. Each node owns one mmap'd arena (a memfd
// created by the supervisor before fork, inherited by fd number across
// exec), and every directed node pair shares one SPSC ring of fixed-size
// descriptor slots. A store travels as {arena offset, byte count} instead
// of serialized payload bytes: the receiver maps the sender's arena and
// builds an nd::ConstView directly over the mapped pages, so on the fast
// lane *zero* payload bytes are copied on either side.
//
// Lifetime rules that make the aliasing safe:
//  - Arena allocation is bump-only: a block handed out is never reused or
//    moved, so an offset stays valid for the mapping's lifetime.
//  - Field payloads are write-once: the bytes behind a published offset
//    never change after the descriptor is pushed.
//  - Views carry the arena mapping as their keepalive, so the pages stay
//    mapped while any view is alive even after the plane shuts down.
//
// The ring is deliberately usable over plain heap memory too (no fd or
// mmap dependency): the p2gcheck suites drive the same push/pop code
// under the schedule-exploring race checker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/exec_node.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace p2g::net {

/// One mmap'd bump-allocation arena backed by a memfd. Created by the
/// supervisor (one per node), attached by the owning node (which
/// allocates) and by every peer (which only reads). The bump cursor lives
/// inside the mapping, but only the owning node allocates, so it is
/// effectively process-local.
class ShmArena {
 public:
  /// Creates a memfd of `bytes` and maps it. The fd is intentionally NOT
  /// close-on-exec: node processes inherit it by number through exec.
  static std::shared_ptr<ShmArena> create(size_t bytes);

  /// Maps an inherited arena fd.
  static std::shared_ptr<ShmArena> attach(int fd, size_t bytes);

  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  /// Bump-allocates `bytes` (64-byte aligned). Returns nullptr when the
  /// arena is exhausted — callers fall back to heap buffers / the socket
  /// path. Blocks are never freed or reused.
  std::byte* alloc(size_t bytes);

  int fd() const { return fd_; }
  size_t capacity() const { return bytes_; }

  /// True when [p, p+n) lies inside this arena's data range.
  bool contains(const std::byte* p, size_t n) const;

  /// Offset of an in-arena pointer from the mapping base (stable across
  /// processes mapping the same memfd).
  uint64_t offset_of(const std::byte* p) const;

  /// Pointer at a peer-provided offset.
  const std::byte* at(uint64_t offset) const;

 private:
  struct Header {
    std::atomic<uint64_t> cursor;  ///< next free offset (starts past header)
  };
  static constexpr size_t kDataStart = 64;

  ShmArena() = default;
  Header* header() const { return reinterpret_cast<Header*>(map_); }

  int fd_ = -1;
  std::byte* map_ = nullptr;
  size_t bytes_ = 0;
  bool owns_fd_ = false;
};

/// Fixed-size store descriptor travelling through a ring. Plain POD — it
/// is copied byte-wise through shared memory.
struct ShmSlot {
  int32_t field = -1;
  int64_t age = 0;
  int32_t producer = -1;
  uint32_t store_decl = 0;
  uint8_t whole = 0;
  uint8_t type = 0;  ///< nd::ElementType of the payload
  uint8_t rank = 0;
  int64_t lo[4] = {0, 0, 0, 0};  ///< region interval begins
  int64_t hi[4] = {0, 0, 0, 0};  ///< region interval ends (exclusive)
  uint64_t offset = 0;           ///< payload offset in the sender's arena
  uint64_t bytes = 0;            ///< densely packed payload size
};

/// Single-producer single-consumer ring of ShmSlots over caller-provided
/// memory (an mmap'd memfd between processes, plain heap in tests). The
/// memory must be zero-initialized — all-zero is the valid empty state, so
/// producer and consumer can attach in either order with no handshake.
///
/// head is only advanced by the consumer, tail only by the producer; both
/// are monotonically increasing sequence numbers (slot index = seq %
/// slot_count). The release-store/acquire-load pairs on tail (publish) and
/// head (recycle) are described to the race checker via check::release /
/// check::acquire, and slot bodies via check::write_range / read_range —
/// p2gcheck explores the interleavings and proves the protocol race-free.
class ShmRing {
 public:
  /// Bytes of backing memory needed for `slot_count` slots.
  static size_t bytes_required(uint32_t slot_count);

  ShmRing() = default;
  ShmRing(void* mem, uint32_t slot_count);

  bool valid() const { return hdr_ != nullptr; }

  /// Producer side: publishes one slot. False when the ring is full.
  bool push(const ShmSlot& slot);

  enum class Pop { kGot, kEmpty, kClosed };

  /// Consumer side: takes the next slot. kEmpty = nothing now but the
  /// producer may still push; kClosed = drained and the producer closed.
  Pop pop(ShmSlot* out);

  /// Producer side: no more pushes will follow. The consumer drains what
  /// is buffered, then sees kClosed.
  void close();

  bool closed() const;

 private:
  struct Header {
    std::atomic<uint32_t> head;    ///< consumer cursor
    std::atomic<uint32_t> tail;    ///< producer cursor
    std::atomic<uint32_t> closed;
  };

  Header* hdr_ = nullptr;
  ShmSlot* slots_ = nullptr;
  uint32_t n_ = 0;
};

/// The per-node data plane: owns this node's arena, maps every peer's
/// arena, and runs one tx ring + one rx ring per peer. Implements the
/// ExecutionNode's StoreForwarder hook — when forward() accepts a store,
/// the socket path is skipped for that target.
class ShmDataPlane : public dist::StoreForwarder {
 public:
  static constexpr uint32_t kDefaultRingSlots = 1024;

  explicit ShmDataPlane(std::shared_ptr<ShmArena> own_arena);
  ~ShmDataPlane() override;

  /// Wires one peer: its arena (for rx aliasing) plus the two ring fds.
  /// `ring_slots` must match what the supervisor sized the ring memfds
  /// with. Call before attach().
  void add_peer(const std::string& name, std::shared_ptr<ShmArena> peer_arena,
                int tx_ring_fd, int rx_ring_fd, uint32_t ring_slots);

  /// Installs this plane on a node: registers as its StoreForwarder, puts
  /// arena-backed buffer factories on every field the node forwards (so
  /// outgoing payloads are born in the arena), and starts the rx poller.
  void attach(dist::ExecutionNode& node);

  /// Producer-side shutdown: closes every tx ring. Call after the node's
  /// runtime has drained (no more stores will be forwarded).
  void close_tx();

  /// Blocks until every peer closed its tx ring and the poller drained
  /// them (or `force` was requested via stop()).
  void join();

  /// Forces the poller to exit (peer crash — its ring will never close).
  void stop();

  const std::shared_ptr<ShmArena>& arena() const { return arena_; }

  // --- StoreForwarder -------------------------------------------------------
  bool forward(const StoreEvent& event, const std::string& target) override;

 private:
  struct PeerLink {
    std::shared_ptr<ShmArena> arena;  ///< the peer's arena, mapped here
    void* tx_mem = nullptr;
    void* rx_mem = nullptr;
    size_t ring_bytes = 0;
    ShmRing tx;
    ShmRing rx;
  };

  void poll_loop();
  void deliver(const std::string& peer, const PeerLink& link,
               const ShmSlot& slot);

  std::shared_ptr<ShmArena> arena_;
  std::map<std::string, std::unique_ptr<PeerLink>> peers_;
  dist::ExecutionNode* node_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::thread poller_;
  std::atomic<bool> stop_{false};
};

}  // namespace p2g::net
