#include "net/shm.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "check/sync.h"
#include "common/error.h"
#include "common/logging.h"
#include "core/runtime.h"
#include "nd/buffer.h"
#include "nd/region.h"
#include "nd/view.h"

namespace p2g::net {

// --- ShmArena ---------------------------------------------------------------

std::shared_ptr<ShmArena> ShmArena::create(size_t bytes) {
  check_argument(bytes > kDataStart, "arena too small");
  // No MFD_CLOEXEC: the fd is inherited by number through fork+exec.
  const int fd = static_cast<int>(::memfd_create("p2g-arena", 0));
  check_internal(fd >= 0, "memfd_create failed");
  check_internal(::ftruncate(fd, static_cast<off_t>(bytes)) == 0,
                 "ftruncate failed");
  auto arena = attach(fd, bytes);
  arena->owns_fd_ = true;
  arena->header()->cursor.store(kDataStart, std::memory_order_relaxed);
  return arena;
}

std::shared_ptr<ShmArena> ShmArena::attach(int fd, size_t bytes) {
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  check_internal(map != MAP_FAILED, "mmap of arena failed");
  auto arena = std::shared_ptr<ShmArena>(new ShmArena());
  arena->fd_ = fd;
  arena->map_ = static_cast<std::byte*>(map);
  arena->bytes_ = bytes;
  return arena;
}

ShmArena::~ShmArena() {
  if (map_ != nullptr) ::munmap(map_, bytes_);
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

std::byte* ShmArena::alloc(size_t bytes) {
  const size_t aligned = (bytes + 63) & ~size_t{63};
  uint64_t off = header()->cursor.load(std::memory_order_relaxed);
  while (true) {
    if (off + aligned > bytes_) return nullptr;  // exhausted: no cursor burn
    if (header()->cursor.compare_exchange_weak(off, off + aligned,
                                               std::memory_order_relaxed)) {
      return map_ + off;
    }
  }
}

bool ShmArena::contains(const std::byte* p, size_t n) const {
  return p >= map_ + kDataStart && p + n <= map_ + bytes_;
}

uint64_t ShmArena::offset_of(const std::byte* p) const {
  return static_cast<uint64_t>(p - map_);
}

const std::byte* ShmArena::at(uint64_t offset) const { return map_ + offset; }

// --- ShmRing ----------------------------------------------------------------

size_t ShmRing::bytes_required(uint32_t slot_count) {
  return sizeof(Header) + static_cast<size_t>(slot_count) * sizeof(ShmSlot);
}

ShmRing::ShmRing(void* mem, uint32_t slot_count)
    : hdr_(static_cast<Header*>(mem)),
      slots_(reinterpret_cast<ShmSlot*>(static_cast<std::byte*>(mem) +
                                        sizeof(Header))),
      n_(slot_count) {}

bool ShmRing::push(const ShmSlot& slot) {
  // tail is producer-private (we are the only writer); a relaxed load of
  // our own cursor is exact. head advances only on the consumer side: the
  // acquire pairs with its release in pop() so a recycled slot's bytes are
  // visible before we overwrite them.
  const uint32_t tail = hdr_->tail.load(std::memory_order_relaxed);
  const uint32_t head = hdr_->head.load(std::memory_order_acquire);
  check::acquire(&hdr_->head);
  if (tail - head >= n_) return false;  // full
  ShmSlot* s = &slots_[tail % n_];
  check::write_range(s, sizeof(ShmSlot), "ShmRing.slot");
  *s = slot;
  check::release(&hdr_->tail);
  hdr_->tail.store(tail + 1, std::memory_order_release);
  return true;
}

ShmRing::Pop ShmRing::pop(ShmSlot* out) {
  const uint32_t head = hdr_->head.load(std::memory_order_relaxed);
  const uint32_t tail = hdr_->tail.load(std::memory_order_acquire);
  check::acquire(&hdr_->tail);
  if (head == tail) {
    // Empty. Closed is checked *after* the emptiness check so every slot
    // pushed before close() is drained first.
    if (hdr_->closed.load(std::memory_order_acquire) != 0) return Pop::kClosed;
    return Pop::kEmpty;
  }
  const ShmSlot* s = &slots_[head % n_];
  check::read_range(s, sizeof(ShmSlot), "ShmRing.slot");
  *out = *s;
  check::release(&hdr_->head);
  hdr_->head.store(head + 1, std::memory_order_release);
  return Pop::kGot;
}

void ShmRing::close() { hdr_->closed.store(1, std::memory_order_release); }

bool ShmRing::closed() const {
  return hdr_->closed.load(std::memory_order_acquire) != 0;
}

// --- ShmDataPlane -----------------------------------------------------------

ShmDataPlane::ShmDataPlane(std::shared_ptr<ShmArena> own_arena)
    : arena_(std::move(own_arena)) {}

ShmDataPlane::~ShmDataPlane() {
  stop();
  join();
  for (auto& [name, link] : peers_) {
    if (link->tx_mem != nullptr) ::munmap(link->tx_mem, link->ring_bytes);
    if (link->rx_mem != nullptr) ::munmap(link->rx_mem, link->ring_bytes);
  }
}

void ShmDataPlane::add_peer(const std::string& name,
                            std::shared_ptr<ShmArena> peer_arena,
                            int tx_ring_fd, int rx_ring_fd,
                            uint32_t ring_slots) {
  check_argument(!poller_.joinable(), "add_peer after attach");
  auto link = std::make_unique<PeerLink>();
  link->arena = std::move(peer_arena);
  link->ring_bytes = ShmRing::bytes_required(ring_slots);
  link->tx_mem = ::mmap(nullptr, link->ring_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, tx_ring_fd, 0);
  check_internal(link->tx_mem != MAP_FAILED, "mmap of tx ring failed");
  link->rx_mem = ::mmap(nullptr, link->ring_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, rx_ring_fd, 0);
  check_internal(link->rx_mem != MAP_FAILED, "mmap of rx ring failed");
  link->tx = ShmRing(link->tx_mem, ring_slots);
  link->rx = ShmRing(link->rx_mem, ring_slots);
  peers_.emplace(name, std::move(link));
}

void ShmDataPlane::attach(dist::ExecutionNode& node) {
  check_argument(node_ == nullptr, "plane already attached");
  node_ = &node;
  metrics_ = node.runtime().mutable_metrics();
  // Outgoing payloads are born in the arena: every field this node's
  // kernels produce for remote consumers gets an arena-backed buffer
  // factory, so a whole-store's bytes already sit at a shippable offset.
  const auto arena = arena_;
  for (const FieldId field : node.forwarded_fields()) {
    node.runtime().storage(field).set_buffer_factory(
        [arena](nd::ElementType type, const nd::Extents& extents) {
          return nd::AnyBuffer::with_allocator(
              type, extents, [arena](size_t n) { return arena->alloc(n); });
        });
  }
  node.set_store_forwarder(this);
  poller_ = std::thread([this] { poll_loop(); });
}

void ShmDataPlane::close_tx() {
  for (auto& [name, link] : peers_) {
    if (link->tx.valid()) link->tx.close();
  }
}

void ShmDataPlane::join() {
  if (poller_.joinable()) poller_.join();
}

void ShmDataPlane::stop() { stop_.store(true, std::memory_order_relaxed); }

bool ShmDataPlane::forward(const StoreEvent& event, const std::string& target) {
  const auto it = peers_.find(target);
  if (it == peers_.end()) return false;
  PeerLink& link = *it->second;
  if (!link.tx.valid() || link.tx.closed()) return false;

  FieldStorage& storage = node_->runtime().storage(event.field);
  const nd::ElementType type = storage.decl().type;
  const size_t esz = nd::element_size(type);
  const size_t rank = event.region.rank();
  if (rank > 4) return false;  // descriptor carries at most 4 dimensions

  ShmSlot slot;
  slot.field = event.field;
  slot.age = event.age;
  slot.producer = event.producer;
  slot.store_decl = static_cast<uint32_t>(event.store_decl);
  slot.whole = event.whole ? 1 : 0;
  slot.type = static_cast<uint8_t>(type);
  slot.rank = static_cast<uint8_t>(rank);
  for (size_t d = 0; d < rank; ++d) {
    slot.lo[d] = event.region.interval(d).begin;
    slot.hi[d] = event.region.interval(d).end;
  }
  const int64_t elems = event.region.element_count();
  slot.bytes = static_cast<uint64_t>(elems) * esz;

  // Fast lane: the payload already lives in our arena (the buffer factory
  // put it there) and the region is one contiguous span of it — ship the
  // offset, copy nothing. Safe because bump arenas never reuse or move a
  // block and write-once semantics freeze published bytes.
  bool zero_copy = false;
  if (event.whole) {
    if (const auto block = storage.peek_block(event.age)) {
      if (const auto span = event.region.contiguous_span(block->extents);
          span && span->length == elems) {
        const std::byte* p = block->base + span->offset * esz;
        if (arena_->contains(p, slot.bytes)) {
          slot.offset = arena_->offset_of(p);
          zero_copy = true;
        }
      }
    }
  }
  if (!zero_copy) {
    std::byte* dst = arena_->alloc(slot.bytes);
    if (dst == nullptr) return false;  // arena exhausted: socket path
    const nd::AnyBuffer packed = storage.fetch(event.age, event.region);
    std::memcpy(dst, packed.raw(), slot.bytes);
    slot.offset = arena_->offset_of(dst);
    if (metrics_ != nullptr) {
      metrics_->counter("shm_tx_copied_bytes_total")
          .add(static_cast<int64_t>(slot.bytes));
    }
  }

  // The ring is sized for the steady state; a full ring means the consumer
  // is momentarily behind, so spin briefly before falling back to sockets.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    if (link.tx.push(slot)) {
      if (metrics_ != nullptr) metrics_->counter("shm_tx_frames_total").add(1);
      return true;
    }
    std::this_thread::yield();
  }
  return false;
}

void ShmDataPlane::poll_loop() {
  while (true) {
    bool any = false;
    bool all_closed = true;
    for (auto& [name, link] : peers_) {
      if (!link->rx.valid()) continue;
      ShmSlot slot;
      ShmRing::Pop result;
      while ((result = link->rx.pop(&slot)) == ShmRing::Pop::kGot) {
        deliver(name, *link, slot);
        any = true;
      }
      if (result != ShmRing::Pop::kClosed) all_closed = false;
    }
    if (all_closed) return;
    if (stop_.load(std::memory_order_relaxed)) return;
    if (!any) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void ShmDataPlane::deliver(const std::string& peer, const PeerLink& link,
                           const ShmSlot& slot) {
  try {
    std::vector<int64_t> dims(slot.rank);
    std::vector<nd::Interval> intervals(slot.rank);
    for (size_t d = 0; d < slot.rank; ++d) {
      intervals[d] = nd::Interval{slot.lo[d], slot.hi[d]};
      dims[d] = slot.hi[d] - slot.lo[d];
    }
    const nd::Region region{intervals};
    const nd::Extents extents{std::move(dims)};
    // The view aliases the peer's mapped arena; the aliasing shared_ptr
    // keeps the whole mapping alive as long as any view (or adopted
    // buffer) still references it.
    const std::shared_ptr<const void> keepalive(link.arena,
                                                link.arena->at(0));
    const nd::ConstView view(static_cast<nd::ElementType>(slot.type), extents,
                             link.arena->at(slot.offset), keepalive);
    bool adopted = false;
    node_->apply_plane_store(slot.field, slot.age, region, slot.producer,
                             slot.store_decl, slot.whole != 0, view, &adopted);
    if (metrics_ != nullptr) {
      metrics_->counter("shm_rx_frames_total").add(1);
      if (adopted) metrics_->counter("shm_rx_adopted_total").add(1);
    }
  } catch (const Error& e) {
    P2G_WARNC("net") << "shm plane dropping slot from '" << peer
                     << "': " << e.what();
  }
}

}  // namespace p2g::net
