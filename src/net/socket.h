// TCP socket transport: real out-of-process message passing.
//
// Topology is a hub-routed star: the supervisor process runs a SocketHub
// listening on 127.0.0.1, every node process connects one socket and
// identifies itself with a kHello frame. All traffic flows through the
// hub — node->node stores are forwarded by destination name — which keeps
// the connection count linear and gives the supervisor a single place to
// observe, fence, and count every link.
//
// Both ends implement net::Transport, so the Master/ExecutionNode code and
// the ft decorators (ReliableChannel, ChaosBus) run unchanged over real
// sockets.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace p2g::net {

/// Supervisor-side transport: listens, accepts node connections, routes
/// frames between nodes and to local (in-process) mailboxes. The
/// supervisor's own endpoints ("master") are registered locally; every
/// other destination must be a connected node.
class SocketHub : public Transport {
 public:
  /// Binds 127.0.0.1 on an ephemeral port and starts the accept thread.
  /// `metrics`, when given, receives per-link dead-letter counters
  /// (`net_dead_letters_total:<node>`).
  explicit SocketHub(obs::MetricsRegistry* metrics = nullptr);
  ~SocketHub() override;

  SocketHub(const SocketHub&) = delete;
  SocketHub& operator=(const SocketHub&) = delete;

  /// The port nodes should connect to.
  uint16_t port() const { return port_; }

  /// Blocks until `n` nodes have completed the kHello handshake (or the
  /// timeout expires). Returns true when all arrived.
  bool wait_for_nodes(size_t n, std::chrono::milliseconds timeout);

  /// Names of currently connected (hello-completed) nodes.
  std::vector<std::string> connected_nodes() const;

  // --- Transport ------------------------------------------------------------
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name) override;
  SendStatus send(const std::string& to, dist::Message msg) override;
  int broadcast(dist::Message msg) override;
  void close_all() override;
  void mark_dead(const std::string& name) override;
  bool is_dead(const std::string& name) const override;
  bool unreachable(const std::string& name) const override;
  int64_t delivered() const override;
  BusStats stats() const override;

 private:
  struct Connection {
    int fd = -1;
    std::string name;       ///< empty until kHello arrives
    bool dead = false;      ///< fenced or socket failed
    std::thread reader;
    std::mutex write_mutex; ///< serializes frame writes to this fd
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);

  /// Routes one message toward `to` ("*" = every endpoint except
  /// msg.from). Local mailboxes win over connections of the same name.
  SendStatus route(const std::string& to, dist::Message msg);

  /// Writes one frame to a connection; on failure marks it dead.
  /// Assumes the caller holds no hub lock (takes the write mutex).
  bool write_frame(const std::shared_ptr<Connection>& conn,
                   const NetEnvelope& envelope);

  void count_dead_letter(const std::string& to);

  obs::MetricsRegistry* metrics_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;

  mutable std::mutex mutex_;
  std::condition_variable hello_cv_;
  bool closed_ = false;
  std::map<std::string, std::shared_ptr<Mailbox>> local_;
  std::map<std::string, std::shared_ptr<Connection>> nodes_;  ///< by name
  std::vector<std::shared_ptr<Connection>> pending_;  ///< pre-hello
  std::map<std::string, bool> dead_;  ///< fenced endpoints (nodes or local)
  BusStats stats_;
};

/// Node-side transport: one socket to the hub. Local endpoints (the node's
/// own mailboxes) are delivered in-process; everything else is framed and
/// written to the hub, which routes it onward.
class SocketNodeTransport : public Transport {
 public:
  /// Connects to the hub and sends the kHello handshake for `name`.
  SocketNodeTransport(const std::string& host, uint16_t port,
                      const std::string& name);
  ~SocketNodeTransport() override;

  SocketNodeTransport(const SocketNodeTransport&) = delete;
  SocketNodeTransport& operator=(const SocketNodeTransport&) = delete;

  /// Installs the registry receiving data-plane counters
  /// (`net_tx_frames_total`, `net_tx_copied_bytes_total`). May be called
  /// after construction, before traffic matters.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// True once the hub connection failed or was shut down.
  bool hub_dead() const;

  // --- Transport ------------------------------------------------------------
  /// Idempotent: registering the same name twice returns the same mailbox
  /// (the node driver registers before ExecutionNode's constructor does).
  std::shared_ptr<Mailbox> register_endpoint(const std::string& name) override;
  SendStatus send(const std::string& to, dist::Message msg) override;
  int broadcast(dist::Message msg) override;
  void close_all() override;
  void mark_dead(const std::string& name) override;
  bool is_dead(const std::string& name) const override;
  bool unreachable(const std::string& name) const override;
  int64_t delivered() const override;
  BusStats stats() const override;

 private:
  void reader_loop();
  void count_dead_letter(const std::string& to);

  std::string name_;
  int fd_ = -1;
  std::thread reader_;

  mutable std::mutex mutex_;
  std::mutex write_mutex_;
  bool closed_ = false;
  bool hub_dead_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, std::shared_ptr<Mailbox>> local_;
  std::map<std::string, bool> dead_;
  BusStats stats_;
};

}  // namespace p2g::net
