// The pluggable cluster transport abstraction (ISSUE 10).
//
// Everything above the wire — exec nodes, the master/supervisor, the
// fault-tolerance decorators — talks to a Transport: named endpoints with
// mailboxes, point-to-point sends with an observable delivery status, and
// fencing of failed endpoints. The in-process dist::MessageBus is one
// implementation (the original simulated interconnect); net::SocketHub /
// net::SocketNodeTransport carry the same contract over real TCP sockets
// between OS processes, and ft::ChaosBus decorates any of them with seeded
// fault injection.
//
// Header-only by design: p2g_wire (bus), p2g_ft (chaos/reliable) and
// p2g_net (sockets, shm) all implement or decorate this interface without
// a library-dependency cycle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/blocking_queue.h"
#include "dist/message.h"

namespace p2g::net {

/// Outcome of a send() attempt. Delivery failure is a normal, queryable
/// result — a distributed sender must be able to observe "the other side is
/// gone" without an exception tearing down its worker thread.
enum class SendStatus : uint8_t {
  kDelivered = 0,  ///< enqueued into the destination mailbox / socket
  kClosed = 1,     ///< transport already shut down (close_all() ran)
  kDead = 2,       ///< destination declared failed (mark_dead())
  kDropped = 3,    ///< chaos layer discarded the message
};

/// Traffic counters of one transport endpoint (destination side).
struct EndpointStats {
  int64_t messages = 0;
  int64_t bytes = 0;  ///< payload bytes delivered to this endpoint
  /// Sends to this endpoint that failed (closed, dead or socket error).
  int64_t dead_letters = 0;
};

/// Transport-wide traffic snapshot: the interconnect view the paper's HLS
/// would consult when weighing edge cuts against link capacity.
struct BusStats {
  int64_t delivered = 0;
  int64_t bytes = 0;
  /// Messages addressed to closed or dead endpoints (delivery failures).
  int64_t dead_letters = 0;
  /// Per destination endpoint.
  std::map<std::string, EndpointStats> per_endpoint;
};

/// Abstract cluster interconnect. Implementations must be thread-safe:
/// sends arrive concurrently from worker, heartbeat and receiver threads.
class Transport {
 public:
  /// A registered endpoint's mailbox.
  using Mailbox = BlockingQueue<dist::Message>;

  virtual ~Transport() = default;

  /// Registers an endpoint; the returned mailbox lives as long as the
  /// transport. Local to this process — a remote backend only creates
  /// mailboxes for the endpoints hosted on this side of the wire.
  virtual std::shared_ptr<Mailbox> register_endpoint(
      const std::string& name) = 0;

  /// Sends to one endpoint. Unknown destinations throw kProtocol (that is
  /// a wiring bug, not a runtime failure); closed/dead destinations return
  /// a failure status and count as dead letters.
  virtual SendStatus send(const std::string& to, dist::Message message) = 0;

  /// Sends to every live endpoint except the sender. Returns the number of
  /// endpoints the message was handed to (0 once closed).
  virtual int broadcast(dist::Message message) = 0;

  /// Shuts the transport down; subsequent sends return kClosed.
  virtual void close_all() = 0;

  /// Declares an endpoint failed: its mailbox/link is closed and all
  /// further traffic to it is blackholed (kDead). Models fencing a
  /// crashed node.
  virtual void mark_dead(const std::string& name) = 0;

  /// True if `name` was declared failed via mark_dead().
  virtual bool is_dead(const std::string& name) const = 0;

  /// True when a send to `to` cannot succeed (transport closed or endpoint
  /// dead). The chaos layer checks this *before* reaching a fault verdict
  /// so that crash timing never perturbs the verdict stream of live links.
  virtual bool unreachable(const std::string& to) const = 0;

  /// Messages delivered so far (diagnostics).
  virtual int64_t delivered() const = 0;

  /// Message/byte counters, total and per destination endpoint.
  virtual BusStats stats() const = 0;
};

}  // namespace p2g::net
