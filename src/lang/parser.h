// Recursive-descent parser for the kernel language.
//
// Grammar sketch (see Fig. 5 of the paper):
//   module      := (field_def | timer_def | kernel_def)*
//   field_def   := TYPE brackets IDENT ["age"] ";"
//   timer_def   := "timer" IDENT ";"
//   kernel_def  := IDENT ":" clause*
//   clause      := "age" IDENT ";" | "index" IDENT {"," IDENT} ";"
//                | "once" ";" | "serial" ";"
//                | local_decl | fetch_stmt | store_stmt
//                | "%{" stmt* "%}"
//   fetch_stmt  := "fetch" IDENT "=" field_access ";"
//   store_stmt  := "store" field_access "=" expr ";"
//   field_access:= IDENT "(" age_expr ")" {"[" slice "]"}
//   age_expr    := IDENT [("+"|"-") INT] | INT
//   slice       := IDENT | INT | "*"        (* = all elements)
#pragma once

#include <string>

#include "lang/ast.h"

namespace p2g::lang {

/// Parses a whole module; throws ErrorKind::kParse with positions.
ModuleAst parse_module(const std::string& source);

}  // namespace p2g::lang
