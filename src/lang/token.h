// Tokens of the P2G kernel language (paper §V-B, Fig. 5).
#pragma once

#include <cstdint>
#include <string>

namespace p2g::lang {

enum class TokenKind {
  kEnd,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,

  // Keywords.
  kKwAge,
  kKwIndex,
  kKwLocal,
  kKwFetch,
  kKwStore,
  kKwTimer,
  kKwOnce,
  kKwSerial,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwTrue,
  kKwFalse,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kCodeOpen,   // %{
  kCodeClose,  // %}
  kSemicolon,
  kComma,
  kColon,
  kAssign,      // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kPlusAssign,  // +=
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPlusPlus,
  kMinusMinus,
  kEq,   // ==
  kNe,   // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;
};

const char* token_kind_name(TokenKind kind);

}  // namespace p2g::lang
