// Interpreter backend: turns a parsed + analyzed kernel-language module
// into a runnable p2g::Program whose kernel bodies execute the AST
// directly. This is the quickest path from .p2g source to execution; the
// codegen backend (codegen.h) reproduces the paper's compile-to-C++
// pipeline instead.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/program.h"
#include "lang/ast.h"
#include "lang/sema.h"

namespace p2g::lang {

/// Lines produced by the language's print(...) builtin, in execution
/// order. Thread-safe (kernel instances run on worker threads).
class PrintSink {
 public:
  void append(std::string line) {
    std::scoped_lock lock(mutex_);
    lines_.push_back(std::move(line));
  }
  std::vector<std::string> snapshot() const {
    std::scoped_lock lock(mutex_);
    return lines_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

struct CompiledModule {
  Program program;
  std::shared_ptr<PrintSink> printed = std::make_shared<PrintSink>();
};

/// Parses nothing — takes ownership of an already parsed module, runs
/// semantic analysis and builds the Program with interpreted bodies.
CompiledModule compile_to_program(ModuleAst module);

}  // namespace p2g::lang
